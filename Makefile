.PHONY: check lint test

check:
	bash scripts/check.sh

lint:
	bash scripts/check.sh lint

test:
	bash scripts/check.sh test
