.PHONY: check lint test resilience stress

check:
	bash scripts/check.sh

lint:
	bash scripts/check.sh lint

test:
	bash scripts/check.sh test

resilience:
	bash scripts/check.sh resilience

stress:
	PYTHONPATH=src python -m repro stress --seeds 20
