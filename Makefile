.PHONY: check lint test inventory resilience stress obs backend dataplane service fuse stream

check:
	bash scripts/check.sh

lint:
	bash scripts/check.sh lint

test:
	bash scripts/check.sh test

inventory:
	bash scripts/check.sh inventory

resilience:
	bash scripts/check.sh resilience

stress:
	PYTHONPATH=src python -m repro stress --seeds 20

obs:
	bash scripts/check.sh obs

backend:
	bash scripts/check.sh backend

dataplane:
	bash scripts/check.sh dataplane

service:
	bash scripts/check.sh service

fuse:
	bash scripts/check.sh fuse

stream:
	bash scripts/check.sh stream
