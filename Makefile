.PHONY: check lint test resilience

check:
	bash scripts/check.sh

lint:
	bash scripts/check.sh lint

test:
	bash scripts/check.sh test

resilience:
	bash scripts/check.sh resilience
