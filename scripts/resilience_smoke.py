#!/usr/bin/env python
"""Crash-resume smoke test: kill a checkpointed workflow, resume it,
prove the resume is exact.

Run from the repo root (``make resilience`` does this)::

    PYTHONPATH=src python scripts/resilience_smoke.py

The script builds a small diamond DAG of deterministic NumPy tasks,
kills the run after N task executions (via the fault injector's
``kill_after_n_tasks``, a ``BaseException`` that tears through the
failure machinery like SIGKILL), then re-runs the same workflow against
the same checkpoint store and asserts:

1. the resumed result is bit-identical to an uninterrupted run,
2. only the uncompleted tasks re-executed (the rest restored),
3. a corrupted checkpoint entry is detected, logged and recomputed.

Exit code 0 means all three hold.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.runtime import Runtime, faults, task, wait_on
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.config import RuntimeConfig
from repro.runtime.exceptions import WorkflowKilledError

N_BLOCKS = 4
KILL_AFTER = 5


@task(returns=1)
def load(i):
    rng = np.random.default_rng(i)
    return rng.standard_normal(256)


@task(returns=1)
def transform(block):
    return np.fft.rfft(np.asarray(block)).real


@task(returns=1)
def merge(a, b):
    return np.asarray(a) + np.asarray(b)


def workflow(config=None):
    with Runtime(executor="sequential", config=config) as rt:
        parts = [transform(load(i)) for i in range(N_BLOCKS)]
        while len(parts) > 1:
            parts = [merge(parts[i], parts[i + 1]) for i in range(0, len(parts), 2)]
        return wait_on(parts[0]), rt.trace(), rt.stats()


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-resilience-") as tmp:
        store_dir = Path(tmp) / "ckpt"
        config = RuntimeConfig(executor="sequential", checkpoint_dir=str(store_dir))

        print(f"baseline run ({N_BLOCKS} blocks, no checkpointing)...")
        baseline, baseline_trace, _ = workflow()

        print(f"checkpointed run, killed after {KILL_AFTER} task executions...")
        try:
            with faults.inject(faults.kill_after_n_tasks(KILL_AFTER)):
                workflow(config=config)
        except WorkflowKilledError as exc:
            print(f"  killed as planned: {exc}")
        else:
            print("FAIL: the kill never fired", file=sys.stderr)
            return 1
        n_saved = CheckpointStore(store_dir).stats()["n_entries"]
        print(f"  {n_saved} task results survived in the store")
        if n_saved != KILL_AFTER:
            print(f"FAIL: expected {KILL_AFTER} entries, found {n_saved}", file=sys.stderr)
            return 1

        print("resuming against the same store...")
        resumed, trace, stats = workflow(config=config)
        if not np.array_equal(resumed, baseline):
            print("FAIL: resumed result differs from the baseline", file=sys.stderr)
            return 1
        print(
            f"  restored={stats['restored']} executed={trace.n_executed} "
            f"(baseline executed {baseline_trace.n_executed})"
        )
        if stats["restored"] != KILL_AFTER:
            print("FAIL: completed tasks were not all replayed", file=sys.stderr)
            return 1
        if trace.n_executed >= baseline_trace.n_executed:
            print("FAIL: resume re-executed completed work", file=sys.stderr)
            return 1

        print("corrupting one entry and resuming again...")
        victim = sorted((store_dir / "entries").glob("*.ckpt"))[0]
        faults._flip_last_byte(str(victim))
        recovered, trace2, stats2 = workflow(config=config)
        if not np.array_equal(recovered, baseline):
            print("FAIL: post-corruption result differs", file=sys.stderr)
            return 1
        if trace2.n_executed != 1:
            print(
                f"FAIL: expected exactly 1 recompute, saw {trace2.n_executed}",
                file=sys.stderr,
            )
            return 1
        print(
            f"  corrupt entry detected and recomputed "
            f"(restored={stats2['restored']}, re-executed={trace2.n_executed})"
        )

        print("resilience smoke test passed")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
