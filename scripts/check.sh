#!/usr/bin/env bash
# Single local CI gate: lint (if ruff is available) + the test suite +
# the crash-resume smoke test.
#
#   scripts/check.sh             run every gate below
#   scripts/check.sh lint        lint only
#   scripts/check.sh test        tests only
#   scripts/check.sh inventory   every src/repro module must have a test file
#   scripts/check.sh resilience  crash-resume smoke test only
#   scripts/check.sh stress      scheduler concurrency stress (fixed seeds)
#   scripts/check.sh backend     tier-1 + stress under REPRO_BACKEND=processes
#   scripts/check.sh obs         observability smoke (metrics/trace exports)
#   scripts/check.sh dataplane   store tests + store-mode stress + pipe-bytes bench
#   scripts/check.sh service     queue-service chaos smoke + queue-op latency bench
#   scripts/check.sh fuse        fusion-on stress + fusion on/off bit-identity differential
#   scripts/check.sh stream      streaming tests + stream stress + serving differential + latency bench
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"

run_lint() {
    if command -v ruff >/dev/null 2>&1; then
        echo "== ruff check =="
        ruff check src tests scripts
    else
        echo "== ruff not installed; skipping lint (config lives in pyproject.toml) =="
    fi
}

run_tests() {
    echo "== pytest =="
    PYTHONPATH=src python -m pytest -x -q
}

run_inventory() {
    echo "== test inventory (every module needs a test file) =="
    python scripts/test_inventory.py
}

run_resilience() {
    echo "== resilience smoke (kill -> resume -> bit-identical) =="
    PYTHONPATH=src python scripts/resilience_smoke.py
}

run_stress() {
    # Small fixed seed set for the CI gate (one seed per scenario
    # family + a second mixed round); `make stress` runs 20 seeds.
    echo "== scheduler concurrency stress (fixed seeds) =="
    PYTHONPATH=src python -m repro stress --seed 0 --seed 1 --seed 2 --seed 3 --seed 4 --seed 7
}

run_fuse() {
    # The task-fusion pass: the randomized stress scenarios with
    # fusion enabled (same reference checks, so any fusion-induced
    # divergence fails the seed), then the deterministic differential
    # that runs each seed's DAG fusion-off and fusion-on and requires
    # bit-identical values and matching task counts.
    echo "== stress with task fusion enabled (fixed seeds) =="
    PYTHONPATH=src python -m repro stress --fuse \
        --seed 0 --seed 1 --seed 2 --seed 3 --seed 4 --seed 7
    echo "== fusion on/off bit-identity differential =="
    PYTHONPATH=src python -m repro stress --differential \
        --seed 0 --seed 1 --seed 2 --seed 3
}

run_obs() {
    # Real run with telemetry on: metrics reconcile with stats, the
    # Prometheus exposition parses, the chrome-trace export validates,
    # the critical path is bounded and the trace CLI works.  Then the
    # PR-10 tracing stack: trace-context propagation, structured
    # logging, the flight recorder, OTLP export and the service span
    # log, and the overhead benchmark (writes BENCH_observability.json,
    # asserts the tracing-on submit path stays within 10% of baseline).
    echo "== observability smoke (metrics + trace exports) =="
    PYTHONPATH=src python scripts/obs_smoke.py
    echo "== tracing / logging / flight-recorder tests =="
    PYTHONPATH=src python -m pytest -x -q \
        tests/runtime/test_tracectx.py tests/runtime/test_structlog.py \
        tests/runtime/test_flightrec.py tests/runtime/test_otlp.py \
        tests/service/test_spanlog.py tests/runtime/test_observability.py
    echo "== observability overhead benchmark (event emission + tracing bounds) =="
    PYTHONPATH=src python -m pytest benchmarks/test_observability_overhead.py -x -q
}

run_backend() {
    # The same gates again with task bodies dispatched to worker
    # processes: the differential guarantee is that nothing observable
    # changes.  REPRO_BACKEND is read by RuntimeConfig.from_env, so the
    # whole suite switches backend without touching a line of test code.
    echo "== pytest under REPRO_BACKEND=processes =="
    REPRO_BACKEND=processes PYTHONPATH=src python -m pytest -x -q
    echo "== stress under the processes backend (fixed seeds) =="
    PYTHONPATH=src python -m repro stress --backend processes \
        --seed 0 --seed 1 --seed 2 --seed 3
}

run_dataplane() {
    # The zero-copy data plane: store unit tests, store-mode stress
    # seeds on both backends, and the pipe-bytes benchmark (asserts a
    # >= 90% reduction in pickled bytes and bit-identical results,
    # writing BENCH_dataplane.json).
    echo "== object store tests =="
    PYTHONPATH=src python -m pytest tests/runtime/test_store.py -x -q
    echo "== store-mode stress (fixed seeds, both backends) =="
    PYTHONPATH=src python -m repro stress --store --seed 0 --seed 3 --seed 4
    PYTHONPATH=src python -m repro stress --store --backend processes \
        --workers 2 --seed 0 --seed 3
    echo "== data-plane benchmark (pipe bytes, store on vs off) =="
    PYTHONPATH=src python -m pytest benchmarks/test_dataplane.py -x -q
}

run_stream() {
    # The hybrid streaming layer: channel/operator/graph semantics and
    # the runtime lifecycle edges (shutdown-drain, abort interrupts,
    # fused pending-wait hook), the seeded streaming stress scenarios
    # (backpressure, RETRY mid-stream, abort, shutdown mid-flight; hang
    # watchdog + zero-leak audits, fusion off and on), the streamed vs
    # batch AF-serving bit-identity differential, and the throughput /
    # e2e-latency benchmark (writes BENCH_streaming.json).
    echo "== streaming tests (incl. serving differential) =="
    PYTHONPATH=src python -m pytest tests/streaming \
        tests/runtime/test_stream_shutdown.py -x -q
    echo "== streaming stress (fixed seeds: one per scenario family, then fused) =="
    PYTHONPATH=src python -m repro stress --stream \
        --seed 0 --seed 1 --seed 2 --seed 3 --seed 14
    PYTHONPATH=src python -m repro stress --stream --fuse \
        --seed 0 --seed 1 --seed 2 --seed 3
    echo "== streaming benchmark (throughput + e2e latency bounds) =="
    PYTHONPATH=src python -m pytest benchmarks/test_streaming.py -x -q
}

run_service() {
    # The durable queue service: unit/lifecycle tests, the kill-9
    # crash-recovery + lease-expiry chaos smoke (zero lost tasks, zero
    # duplicate side effects), and the queue-op latency benchmark
    # (writes BENCH_queue.json, asserts submit/claim/complete medians).
    echo "== queue service tests =="
    PYTHONPATH=src python -m pytest tests/service -x -q
    echo "== service chaos smoke (kill -9 recovery + lease expiry) =="
    PYTHONPATH=src python scripts/service_smoke.py
    echo "== queue-op latency benchmark =="
    PYTHONPATH=src python -m pytest benchmarks/test_queue_ops.py -x -q
}

case "$mode" in
    lint)       run_lint ;;
    test)       run_tests ;;
    inventory)  run_inventory ;;
    resilience) run_resilience ;;
    stress)     run_stress ;;
    backend)    run_backend ;;
    obs)        run_obs ;;
    dataplane)  run_dataplane ;;
    service)    run_service ;;
    fuse)       run_fuse ;;
    stream)     run_stream ;;
    all)        run_lint; run_tests; run_inventory; run_resilience; run_stress; run_fuse; run_obs; run_backend; run_dataplane; run_service; run_stream ;;
    *)          echo "usage: scripts/check.sh [lint|test|inventory|resilience|stress|obs|backend|dataplane|service|fuse|stream]" >&2; exit 2 ;;
esac
