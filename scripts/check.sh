#!/usr/bin/env bash
# Single local CI gate: lint (if ruff is available) + the test suite.
#
#   scripts/check.sh         run lint then tests
#   scripts/check.sh lint    lint only
#   scripts/check.sh test    tests only
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"

run_lint() {
    if command -v ruff >/dev/null 2>&1; then
        echo "== ruff check =="
        ruff check src tests
    else
        echo "== ruff not installed; skipping lint (config lives in pyproject.toml) =="
    fi
}

run_tests() {
    echo "== pytest =="
    PYTHONPATH=src python -m pytest -x -q
}

case "$mode" in
    lint) run_lint ;;
    test) run_tests ;;
    all)  run_lint; run_tests ;;
    *)    echo "usage: scripts/check.sh [lint|test]" >&2; exit 2 ;;
esac
