#!/usr/bin/env bash
# Single local CI gate: lint (if ruff is available) + the test suite +
# the crash-resume smoke test.
#
#   scripts/check.sh             run lint, tests, resilience smoke, stress
#   scripts/check.sh lint        lint only
#   scripts/check.sh test        tests only
#   scripts/check.sh resilience  crash-resume smoke test only
#   scripts/check.sh stress      scheduler concurrency stress (fixed seeds)
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"

run_lint() {
    if command -v ruff >/dev/null 2>&1; then
        echo "== ruff check =="
        ruff check src tests scripts
    else
        echo "== ruff not installed; skipping lint (config lives in pyproject.toml) =="
    fi
}

run_tests() {
    echo "== pytest =="
    PYTHONPATH=src python -m pytest -x -q
}

run_resilience() {
    echo "== resilience smoke (kill -> resume -> bit-identical) =="
    PYTHONPATH=src python scripts/resilience_smoke.py
}

run_stress() {
    # Small fixed seed set for the CI gate (one seed per scenario
    # family + a second mixed round); `make stress` runs 20 seeds.
    echo "== scheduler concurrency stress (fixed seeds) =="
    PYTHONPATH=src python -m repro stress --seed 0 --seed 1 --seed 2 --seed 3 --seed 4 --seed 7
}

case "$mode" in
    lint)       run_lint ;;
    test)       run_tests ;;
    resilience) run_resilience ;;
    stress)     run_stress ;;
    all)        run_lint; run_tests; run_resilience; run_stress ;;
    *)          echo "usage: scripts/check.sh [lint|test|resilience|stress]" >&2; exit 2 ;;
esac
