#!/usr/bin/env bash
# Single local CI gate: lint (if ruff is available) + the test suite +
# the crash-resume smoke test.
#
#   scripts/check.sh             run lint, tests, then the resilience smoke
#   scripts/check.sh lint        lint only
#   scripts/check.sh test        tests only
#   scripts/check.sh resilience  crash-resume smoke test only
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"

run_lint() {
    if command -v ruff >/dev/null 2>&1; then
        echo "== ruff check =="
        ruff check src tests scripts
    else
        echo "== ruff not installed; skipping lint (config lives in pyproject.toml) =="
    fi
}

run_tests() {
    echo "== pytest =="
    PYTHONPATH=src python -m pytest -x -q
}

run_resilience() {
    echo "== resilience smoke (kill -> resume -> bit-identical) =="
    PYTHONPATH=src python scripts/resilience_smoke.py
}

case "$mode" in
    lint)       run_lint ;;
    test)       run_tests ;;
    resilience) run_resilience ;;
    all)        run_lint; run_tests; run_resilience ;;
    *)          echo "usage: scripts/check.sh [lint|test|resilience]" >&2; exit 2 ;;
esac
