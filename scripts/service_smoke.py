#!/usr/bin/env python
"""Queue-service smoke test: the chaos scenarios as a CI gate.

Run from the repo root (``make service`` does this)::

    PYTHONPATH=src python scripts/service_smoke.py

Runs the two seeded chaos scenarios from :mod:`repro.service.chaos`
under hang watchdogs:

1. **kill -9 crash recovery** — a real ``repro serve`` subprocess
   works a multi-tenant workload with a worker-kill fault injected,
   is SIGKILLed mid-workload, and a second server on the same data
   directory recovers from the WAL and drains to idle;
2. **lease expiry** — a delivery goes dark, its lease expires, the
   redelivery completes, and the dark delivery deduplicates.

Both verify zero lost tasks and zero duplicate side-effecting
executions from durable state (results table + provenance log).
Exit code 0 means both hold.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.runtime.stress import run_under_watchdog
from repro.service.chaos import run_crash_recovery_scenario, run_lease_expiry_scenario

SCENARIOS = [
    ("crash-recovery", run_crash_recovery_scenario, 120.0),
    ("lease-expiry", run_lease_expiry_scenario, 60.0),
]


def main() -> int:
    failures = 0
    for name, scenario, timeout in SCENARIOS:
        workdir = Path(tempfile.mkdtemp(prefix=f"svc-smoke-{name}-"))
        outcome = run_under_watchdog(
            lambda: scenario(workdir, seed=0), timeout, label=name
        )
        if not outcome["ok"]:
            failures += 1
            print(f"chaos {name:<16} seed=0    HUNG/CRASHED: {outcome.get('error')}")
            for problem in outcome.get("problems", []):
                print(f"    - {problem}")
            continue
        report = outcome["value"]
        print(report.line())
        if not report.ok:
            failures += 1
    if failures:
        print(f"service smoke: {failures}/{len(SCENARIOS)} scenarios failed")
        return 1
    print("service smoke: every invariant held (no lost tasks, no duplicates)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
