#!/usr/bin/env python
"""Test-inventory gate: every module under ``src/repro`` must have a
test file.

A module ``src/repro/a/b/foo.py`` counts as covered when either

* some ``test_*.py`` under ``tests/`` or ``benchmarks/`` contains the
  module's stem in its filename (``foo`` -> ``test_foo.py``,
  ``test_foo_bar.py``, ...), or
* ``EXTRA_COVERAGE`` maps it to the test file that exercises it under a
  different name (the mapping is validated: the file must exist, and a
  mapping for a module that a filename already matches is flagged as
  stale so the table cannot rot).

The filename heuristic is deliberately simple — it checks that someone
*claimed* the module, not that the tests are good — so keep new module
and test names aligned and the mapping short.  Exits non-zero listing
every uncovered module; ``scripts/check.sh inventory`` runs this.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
TEST_DIRS = (REPO_ROOT / "tests", REPO_ROOT / "benchmarks")

#: Entry points / generated stamps with no testable surface of their own
#: (``__main__`` just forwards to ``repro.cli``, which has tests).
EXEMPT = {"__main__.py", "_version.py"}

#: Packages held to a stricter rule: the matching test file must live in
#: the package's own test directory, not merely anywhere under tests/ or
#: benchmarks/.  Concurrency-heavy subsystems earn an entry here so a
#: coincidental filename elsewhere can never satisfy the gate.
STRICT_DIRS = {
    "streaming": "tests/streaming",
}

#: module (relative to src/repro) -> test file (relative to repo root)
#: that exercises it despite the name mismatch.
EXTRA_COVERAGE = {
    "cluster/resources.py": "tests/cluster/test_simulator.py",
    "dsarray/blocking.py": "tests/dsarray/test_ops.py",
    "dsarray/creation.py": "tests/dsarray/test_array.py",
    "ecg/augmentation.py": "tests/ecg/test_rpeaks_augment_features.py",
    "edge/device.py": "tests/edge/test_edge.py",
    "edge/export.py": "tests/edge/test_edge.py",
    "federated/aggregation.py": "tests/federated/test_federated.py",
    "federated/partition.py": "tests/federated/test_federated.py",
    "ml/model_selection/cross_val.py": "tests/ml/test_model_selection.py",
    "ml/model_selection/kfold.py": "tests/ml/test_model_selection.py",
    "ml/neighbors/nearest.py": "tests/ml/test_neighbors.py",
    "ml/svm/kernels.py": "tests/ml/test_smo_svc.py",
    "nn/initializers.py": "tests/nn/test_layers.py",
    "nn/losses.py": "tests/nn/test_model_optim.py",
    "runtime/dag.py": "tests/runtime/test_graph_trace_dot.py",
    "runtime/exceptions.py": "tests/runtime/test_failure_policies.py",
    "runtime/future.py": "tests/runtime/test_task_basic.py",
    "runtime/provenance.py": "tests/runtime/test_checkpoint_resume.py",
    "runtime/registry.py": "tests/runtime/test_directions.py",
    "service/demo.py": "tests/service/test_worker.py",
}


def source_modules() -> list[pathlib.Path]:
    return sorted(
        p
        for p in SRC.rglob("*.py")
        if p.name != "__init__.py" and p.name not in EXEMPT
    )


def test_file_names() -> set[str]:
    names: set[str] = set()
    for root in TEST_DIRS:
        names.update(p.name.lower() for p in root.rglob("test_*.py"))
    return names


def strict_test_names(test_dir: str) -> set[str]:
    return {
        p.name.lower() for p in (REPO_ROOT / test_dir).rglob("test_*.py")
    }


def main() -> int:
    test_names = test_file_names()
    uncovered: list[str] = []
    stale: list[str] = []
    broken: list[str] = []

    for module in source_modules():
        rel = module.relative_to(SRC).as_posix()
        package = rel.split("/", 1)[0]
        strict_dir = STRICT_DIRS.get(package)
        if strict_dir is not None:
            candidates = strict_test_names(strict_dir)
        else:
            candidates = test_names
        name_match = any(module.stem.lower() in t for t in candidates)
        if strict_dir is not None:
            if not name_match:
                uncovered.append(f"{rel} (needs a test under {strict_dir}/)")
            continue
        mapped = EXTRA_COVERAGE.get(rel)
        if mapped is not None:
            if not (REPO_ROOT / mapped).is_file():
                broken.append(f"{rel} -> {mapped} (mapped test file missing)")
            elif name_match:
                stale.append(f"{rel} (filename already matches; drop the mapping)")
            continue
        if not name_match:
            uncovered.append(rel)

    ok = True
    if uncovered:
        ok = False
        print("modules with no test file (add tests or map in "
              "scripts/test_inventory.py EXTRA_COVERAGE):")
        for rel in uncovered:
            print(f"  src/repro/{rel}")
    if broken:
        ok = False
        print("broken EXTRA_COVERAGE entries:")
        for line in broken:
            print(f"  {line}")
    if stale:
        ok = False
        print("stale EXTRA_COVERAGE entries:")
        for line in stale:
            print(f"  {line}")
    if ok:
        n = len(source_modules())
        print(f"test inventory: {n} modules covered "
              f"({len(EXTRA_COVERAGE)} via explicit mapping)")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
