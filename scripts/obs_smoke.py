#!/usr/bin/env python
"""Observability smoke test: run a tiny-but-real AF pipeline stage with
telemetry on, then prove every export is well-formed and consistent.

Run from the repo root (``make obs`` does this)::

    PYTHONPATH=src python scripts/obs_smoke.py

The script runs the feature-extraction + PCA stages of the AF workflow
(real DAG dependencies through the distributed PCA) on the threads
executor with metrics enabled, and asserts:

1. ``reconcile`` finds no disagreement between the live metrics
   registry, ``Runtime.stats()`` and the trace,
2. the Prometheus exposition parses and its totals match the trace,
3. the chrome-trace export validates (lanes, flow events, phases) and
   carries one lane per worker that actually ran a task,
4. the critical path is bounded: at least the longest single task,
   at most the makespan,
5. the ``repro trace`` CLI (summarize / critical-path / chrome) works
   end to end on the saved trace file.

Exit code 0 means all five hold.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.cli import main as cli_main
from repro.cluster.chrometrace import trace_to_chrome, validate_chrome_json
from repro.runtime import Runtime, RuntimeConfig, observability as obs
from repro.runtime.tracing import Trace
from repro.workflows.af_pipeline import (
    PipelineConfig,
    extract_features,
    prepare_dataset,
    reduce_dimensions,
)

TINY = PipelineConfig(
    scale=0.004,
    seed=0,
    block_size=(16, 64),
    n_splits=3,
    decimate=8,
    stft_batch=8,
)


def fail(msg: str) -> None:
    print(f"FAIL: {msg}")
    sys.exit(1)


def main() -> None:
    cfg = RuntimeConfig(executor="threads", max_workers=2, observability="metrics")
    with Runtime(config=cfg) as rt:
        dataset = prepare_dataset(TINY)
        feats, _labels = extract_features(dataset, TINY)
        reduced, _pca = reduce_dimensions(feats, TINY)
        reduced.collect()
        rt.shutdown()

        stats = rt.stats()
        trace = rt.trace()
        snap = rt.metrics()
        prom = rt.metrics_text()

    # -- 1. registry / stats / trace agree ------------------------------
    problems = obs.reconcile(rt) + obs.reconcile_trace(rt, trace)
    if problems:
        fail("reconcile: " + "; ".join(problems))
    print(f"ok: metrics reconcile with stats ({stats['n_tasks']} tasks)")

    # -- 2. Prometheus exposition parses and matches the trace ----------
    parsed = obs.parse_prometheus(prom)
    n_done = parsed[("repro_tasks_total", (("state", "done"),))]
    if n_done != trace.n_executed + trace.n_restored:
        fail(f"prometheus done={n_done} != trace {trace.n_executed}")
    print(f"ok: prometheus exposition parses ({len(parsed)} series)")

    # -- 3. chrome trace validates with one lane per active worker ------
    text = trace_to_chrome(trace)
    events = validate_chrome_json(text)
    xs = [e for e in events if e["ph"] == "X"]
    lanes = {(e["pid"], e["tid"]) for e in xs}
    workers = {r.worker for r in trace if r.worker is not None}
    if len(xs) != len(trace):
        fail(f"chrome trace has {len(xs)} slices for {len(trace)} records")
    if len(lanes) != len(workers):
        fail(f"{len(lanes)} lanes for {len(workers)} workers")
    flows = sum(1 for e in events if e["ph"] == "s")
    if flows == 0:
        fail("no flow events despite DAG dependencies")
    print(f"ok: chrome trace valid ({len(xs)} slices, {len(lanes)} lanes, {flows} flows)")

    # -- 4. critical-path bounds ----------------------------------------
    cp = obs.critical_path(trace)
    longest = max(r.duration for r in trace)
    if not (longest <= cp.length * (1 + 1e-9)):
        fail(f"critical path {cp.length} shorter than longest task {longest}")
    if not (cp.length <= trace.makespan * (1 + 1e-6)):
        fail(f"critical path {cp.length} exceeds makespan {trace.makespan}")
    print(
        f"ok: critical path bounded ({cp.length:.3f}s of {trace.makespan:.3f}s"
        f" makespan, {len(cp.records)} tasks)"
    )

    # -- 5. the trace CLI end to end ------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        trace_file = Path(tmp) / "trace.json"
        trace.save(trace_file)
        for action in ("summarize", "critical-path"):
            rc = cli_main([ "trace", action, str(trace_file)])
            if rc != 0:
                fail(f"repro trace {action} exited {rc}")
        chrome_file = Path(tmp) / "trace.chrome.json"
        rc = cli_main(["trace", "chrome", str(trace_file), "--output", str(chrome_file)])
        if rc != 0:
            fail(f"repro trace chrome exited {rc}")
        validate_chrome_json(chrome_file.read_text())
        # the saved trace round-trips with spans intact
        back = Trace.load(trace_file)
        if any(r.t_submit is None for r in back):
            fail("saved trace lost span timestamps")
    print("ok: repro trace CLI (summarize, critical-path, chrome)")

    print("observability smoke: ALL OK")


if __name__ == "__main__":
    main()
