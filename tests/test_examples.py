"""The examples must stay runnable — they are executed as subprocesses
with a reduced environment so regressions in the public API surface
show up here."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "sum of squares" in out
    assert "random forest held-out accuracy" in out
    assert "workflow ran" in out


def test_scalability_replay():
    out = run_example("scalability_replay.py")
    assert "CascadeSVM training time" in out
    assert "speedup at 192 cores" in out


@pytest.mark.slow
def test_af_classification():
    out = run_example("af_classification.py", timeout=600)
    assert "accuracy" in out
    assert "CSVM" in out and "Random Forest" in out


@pytest.mark.slow
def test_distributed_cnn():
    out = run_example("distributed_cnn.py", timeout=600)
    assert "nesting speedup" in out


@pytest.mark.slow
def test_federated_af():
    out = run_example("federated_af.py", timeout=600)
    assert "federated rounds" in out
    assert "no raw data ever left a device" in out


@pytest.mark.slow
def test_edge_deployment():
    out = run_example("edge_deployment.py", timeout=600)
    assert "bandwidth saved" in out
    assert "model bundle" in out
