"""AF pipeline crash/resume: kill mid-run, resume, identical predictions.

The deterministic-resume proof for the paper's flagship workflow: a run
killed partway through the STFT stage is re-run against the same
checkpoint store and must (a) produce bit-identical features and
predictions, (b) replay the completed work instead of re-executing it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import Runtime, faults
from repro.runtime.config import RuntimeConfig
from repro.runtime.exceptions import WorkflowKilledError
from repro.workflows import (
    PipelineConfig,
    extract_features,
    make_estimator,
    prepare_dataset,
    reduce_dimensions,
)

TINY = PipelineConfig(
    scale=0.004,
    seed=0,
    block_size=(16, 64),
    n_splits=3,
    decimate=8,
    stft_batch=8,
)


@pytest.fixture(scope="module")
def tiny_dataset():
    return prepare_dataset(TINY)


def run_pipeline(dataset, config=None):
    """Features -> PCA -> KNN train/predict under one runtime."""
    with Runtime(executor="sequential", config=config) as rt:
        feats, labels = extract_features(dataset, TINY)
        reduced, _ = reduce_dimensions(feats, TINY)
        import repro.dsarray as ds

        dy = ds.array(labels.reshape(-1, 1), (TINY.block_size[0], 1))
        knn = make_estimator("knn", n_neighbors=3).fit(reduced, dy)
        preds = knn.predict(reduced)
        return feats, preds, rt.trace()


def test_kill_then_resume_is_bit_identical(tmp_path, tiny_dataset):
    feats_clean, preds_clean, trace_clean = run_pipeline(tiny_dataset)
    assert trace_clean.n_restored == 0

    config = RuntimeConfig(
        executor="sequential", checkpoint_dir=str(tmp_path / "ckpt")
    )
    # the process "dies" three task executions in
    with pytest.raises(WorkflowKilledError):
        with faults.inject(faults.kill_after_n_tasks(3)):
            run_pipeline(tiny_dataset, config=config)

    # resume against the same store
    feats, preds, trace = run_pipeline(tiny_dataset, config=config)

    np.testing.assert_array_equal(feats, feats_clean)
    np.testing.assert_array_equal(preds, preds_clean)
    # the three completed tasks were replayed, not re-executed
    assert trace.n_restored >= 3
    assert trace.n_executed < trace_clean.n_executed
    assert trace.n_executed + trace.n_restored >= len(trace_clean)


def test_second_resume_replays_everything_checkpointable(tmp_path, tiny_dataset):
    config = RuntimeConfig(
        executor="sequential", checkpoint_dir=str(tmp_path / "ckpt")
    )
    _, preds1, trace1 = run_pipeline(tiny_dataset, config=config)
    _, preds2, trace2 = run_pipeline(tiny_dataset, config=config)

    np.testing.assert_array_equal(preds1, preds2)
    assert trace2.n_restored > 0
    # every checkpointed task of run 1 restores in run 2
    assert trace2.n_executed < trace1.n_executed
