"""End-to-end AF pipeline tests (small scale, every stage exercised)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.dsarray as ds
from repro.ecg import generate_dataset
from repro.runtime import Runtime
from repro.workflows import (
    PipelineConfig,
    extract_features,
    make_estimator,
    prepare_dataset,
    reduce_dimensions,
    run_classical,
    run_cnn,
    table1_block,
    side_by_side,
    figure_series,
)

TINY = PipelineConfig(
    scale=0.004,
    seed=0,
    block_size=(16, 64),
    n_splits=3,
    decimate=8,
    stft_batch=8,
)


@pytest.fixture(scope="module")
def tiny_dataset():
    return prepare_dataset(TINY)


def test_prepare_dataset_balanced(tiny_dataset):
    counts = tiny_dataset.class_counts()
    assert counts["N"] == counts["AF"]


def test_extract_features_shapes(tiny_dataset):
    feats, labels = extract_features(tiny_dataset, TINY)
    assert feats.shape[0] == len(tiny_dataset)
    assert labels.shape == (len(tiny_dataset),)
    assert set(np.unique(labels)) == {0.0, 1.0}
    assert feats.shape[1] > 100  # real STFT dimensionality


def test_stft_runs_as_tasks(tiny_dataset):
    with Runtime(executor="sequential") as rt:
        extract_features(tiny_dataset, TINY)
        counts = rt.graph.count_by_name()
    expected = -(-len(tiny_dataset) // TINY.stft_batch)  # ceil division
    assert counts["stft_batch"] == expected


def test_reduce_dimensions(tiny_dataset):
    feats, _ = extract_features(tiny_dataset, TINY)
    reduced, pca = reduce_dimensions(feats, TINY)
    assert isinstance(reduced, ds.Array)
    assert reduced.shape[0] == feats.shape[0]
    assert pca.n_components_ < feats.shape[1]
    assert pca.explained_variance_ratio_.sum() >= 0.95 - 1e-6


def test_make_estimator_factory():
    from repro.ml import CascadeSVM, KNeighborsClassifier, RandomForestClassifier

    assert isinstance(make_estimator("csvm"), CascadeSVM)
    assert isinstance(make_estimator("knn"), KNeighborsClassifier)
    assert isinstance(make_estimator("rf"), RandomForestClassifier)
    assert make_estimator("rf", n_estimators=7).n_estimators == 7
    with pytest.raises(ValueError):
        make_estimator("xgboost")


@pytest.mark.parametrize("algo", ["csvm", "knn", "rf"])
def test_run_classical_all_algorithms(tiny_dataset, algo):
    overrides = {"max_iter": 1} if algo == "csvm" else (
        {"n_estimators": 5} if algo == "rf" else {}
    )
    res = run_classical(algo, TINY, tiny_dataset, estimator_overrides=overrides)
    assert 0.0 <= res.accuracy <= 1.0
    assert res.confusion.shape == (2, 2)
    assert res.confusion.sum() == pytest.approx(1.0)
    assert res.train_time_s > 0
    assert res.n_components <= res.n_features_in


def test_run_classical_under_runtime(tiny_dataset):
    with Runtime(executor="threads", max_workers=4):
        res = run_classical("rf", TINY, tiny_dataset, estimator_overrides={"n_estimators": 5})
    assert 0.0 <= res.accuracy <= 1.0


def test_run_cnn_smoke(tiny_dataset):
    res = run_cnn(
        TINY,
        tiny_dataset,
        epochs=2,
        n_workers=2,
        nested=False,
        downsample=32,
    )
    assert 0.0 <= res["mean_accuracy"] <= 1.0
    assert res["mean_confusion"].shape == (2, 2)
    assert res["train_time_s"] > 0


def test_run_cnn_raw_mode(tiny_dataset):
    res = run_cnn(
        TINY, tiny_dataset, epochs=1, n_workers=2, nested=False,
        downsample=32, input_mode="raw",
    )
    assert 0.0 <= res["mean_accuracy"] <= 1.0


def test_run_cnn_invalid_mode(tiny_dataset):
    with pytest.raises(ValueError):
        run_cnn(TINY, tiny_dataset, epochs=1, input_mode="wavelet")


def test_run_cnn_spectrogram_learns(tiny_dataset):
    """The spectrogram input (the cited CNN approach) must actually
    separate the classes even at tiny scale."""
    res = run_cnn(TINY, tiny_dataset, epochs=10, n_workers=2, nested=True, lr=0.05)
    assert res["mean_accuracy"] > 0.6


def test_run_cnn_nested_under_runtime(tiny_dataset):
    with Runtime(executor="threads", max_workers=4):
        res = run_cnn(
            TINY,
            tiny_dataset,
            epochs=2,
            n_workers=2,
            nested=True,
            downsample=32,
        )
    assert len(res["fold_accuracies"]) == TINY.n_splits


class TestReporting:
    def test_table1_block(self):
        cm = np.array([[0.4, 0.1], [0.1, 0.4]])
        text = table1_block("CSVM", 0.749, cm, ["AF", "N"])
        assert "74.9%" in text
        assert "CSVM" in text
        assert "0.400" in text

    def test_side_by_side(self):
        assert "a\n\nb" == side_by_side(["a", "b"])

    def test_figure_series(self):
        text = figure_series("Fig 11a", "cores", "time", [48, 96], [100.0, 60.0])
        assert "48" in text and "100.000" in text
