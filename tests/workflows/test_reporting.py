"""Unit tests of :mod:`repro.workflows.reporting`."""

from __future__ import annotations

import numpy as np

from repro.workflows import figure_series, side_by_side, table1_block


def test_table1_block_contains_name_accuracy_and_confusion():
    cm = np.array([[0.96, 0.04], [0.25, 0.75]])
    block = table1_block("CSVM", 0.943, cm, ["N", "AF"])
    lines = block.splitlines()
    assert lines[0] == "--- CSVM ---"
    assert lines[1] == "accuracy: 94.3%"
    # header row + one row per class, fraction-normalised cells
    assert "N" in lines[2] and "AF" in lines[2]
    assert "0.960" in block and "0.750" in block


def test_table1_block_accepts_list_confusion():
    block = table1_block("RF", 1.0, [[1.0, 0.0], [0.0, 1.0]], ["N", "AF"])
    assert "accuracy: 100.0%" in block


def test_side_by_side_joins_blocks_with_blank_lines():
    assert side_by_side(["a", "b", "c"]) == "a\n\nb\n\nc"
    assert side_by_side(["solo"]) == "solo"
    assert side_by_side([]) == ""


def test_figure_series_rows_and_alignment():
    text = figure_series("Fig. 11", "nodes", "speedup", [1, 2, 4], [1.0, 1.9, 3.5])
    lines = text.splitlines()
    assert lines[0] == "Fig. 11"
    assert lines[1].split() == ["nodes", "speedup"]
    assert len(lines) == 5
    assert lines[2].split() == ["1", "1.000"]
    assert lines[4].split() == ["4", "3.500"]


def test_figure_series_truncates_to_shorter_sequence():
    text = figure_series("t", "x", "y", [1, 2, 3], [0.5])
    assert len(text.splitlines()) == 3  # title + header + one row
