"""Experiment presets and the CLI."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.workflows.experiments import PRESETS, get_preset


class TestPresets:
    def test_all_presets_complete(self):
        for name, preset in PRESETS.items():
            assert preset.name == name
            assert preset.pipeline.scale > 0
            assert preset.cnn_epochs >= 1

    def test_paper_preset_is_full_size(self):
        paper = get_preset("paper")
        assert paper.pipeline.scale == 1.0
        assert paper.pipeline.decimate == 1
        assert paper.pipeline.block_size == (500, 500)

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            get_preset("huge")


class TestCLI:
    def test_help(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0
        assert "table1" in proc.stdout
        assert "scaling" in proc.stdout

    def test_scaling_command_runs(self):
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "scaling",
                "--algorithm", "rf", "--samples", "600",
                "--block-rows", "150", "--nodes", "1", "2",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr[-1500:]
        assert "simulated MareNostrum IV" in proc.stdout

    @pytest.mark.slow
    def test_table1_tiny(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "table1", "--preset", "tiny", "--skip-cnn"],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr[-1500:]
        assert "CSVM" in proc.stdout
