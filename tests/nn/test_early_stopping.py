"""Early stopping / validation tracking in Sequential.fit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, Sequential
from repro.nn.layers import Dense, ReLU


def make_model(seed=0, width=64):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(4, width, rng), ReLU(), Dense(width, 2, rng)])


def make_data(n=150, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 4))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
    return x, y


def test_val_history_recorded():
    x, y = make_data()
    model = make_model()
    model.fit(x[:100], y[:100], epochs=5, validation_data=(x[100:], y[100:]))
    assert len(model.val_history_) == 5


def test_patience_requires_validation():
    x, y = make_data()
    with pytest.raises(ValueError):
        make_model().fit(x, y, epochs=3, patience=2)


def test_early_stop_triggers_on_overfitting():
    """A high-capacity net on tiny noisy data overfits; with patience
    the run stops before the epoch cap and keeps the best weights."""
    rng = np.random.default_rng(3)
    x_tr = rng.standard_normal((24, 4))
    y_tr = rng.integers(0, 2, 24)
    x_val = rng.standard_normal((60, 4))
    y_val = rng.integers(0, 2, 60)
    model = make_model(width=128)
    hist = model.fit(
        x_tr, y_tr, epochs=300, batch_size=8, optimizer=Adam(0.01),
        validation_data=(x_val, y_val), patience=5,
    )
    assert len(hist) < 300  # stopped early
    # restored weights achieve the best recorded validation loss
    final_val = model.loss_fn.loss(model.forward(x_val, training=False), y_val)
    assert final_val == pytest.approx(min(model.val_history_), abs=1e-9)


def test_no_early_stop_without_patience():
    x, y = make_data()
    model = make_model()
    hist = model.fit(x[:100], y[:100], epochs=8, validation_data=(x[100:], y[100:]))
    assert len(hist) == 8
