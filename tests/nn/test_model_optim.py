"""Losses, optimisers, Sequential training and serialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, Adam, Sequential, af_cnn, softmax
from repro.nn.layers import Dense, ReLU
from repro.nn.losses import SoftmaxCrossEntropy


def tiny_mlp(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(4, 16, rng), ReLU(), Dense(16, 2, rng)])


def xor_like_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 4))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
    return x, y


class TestLoss:
    def test_softmax_rows_sum_to_one(self, rng):
        p = softmax(rng.standard_normal((10, 4)))
        np.testing.assert_allclose(p.sum(axis=1), 1.0)
        assert (p > 0).all()

    def test_softmax_shift_invariance(self, rng):
        z = rng.standard_normal((5, 3))
        np.testing.assert_allclose(softmax(z), softmax(z + 100.0), rtol=1e-10)

    def test_ce_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = SoftmaxCrossEntropy().loss(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_ce_uniform_is_log_k(self):
        logits = np.zeros((4, 3))
        loss = SoftmaxCrossEntropy().loss(logits, np.array([0, 1, 2, 0]))
        assert loss == pytest.approx(np.log(3))

    def test_ce_grad_matches_numeric(self, rng):
        ce = SoftmaxCrossEntropy()
        logits = rng.standard_normal((3, 4))
        labels = np.array([1, 0, 3])
        g = ce.grad(logits, labels)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                lp, lm = logits.copy(), logits.copy()
                lp[i, j] += eps
                lm[i, j] -= eps
                num = (ce.loss(lp, labels) - ce.loss(lm, labels)) / (2 * eps)
                # ce.loss averages over batch; grad is per-sample
                assert g[i, j] / len(labels) == pytest.approx(num, abs=1e-5)

    def test_label_out_of_range(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().loss(np.zeros((2, 2)), np.array([0, 5]))


class TestOptimizers:
    def test_sgd_step(self):
        p = [np.array([1.0, 2.0])]
        SGD(lr=0.1).step(p, [np.array([1.0, -1.0])])
        np.testing.assert_allclose(p[0], [0.9, 2.1])

    def test_sgd_momentum_accumulates(self):
        p = [np.array([0.0])]
        opt = SGD(lr=0.1, momentum=0.9)
        opt.step(p, [np.array([1.0])])
        first = p[0].copy()
        opt.step(p, [np.array([1.0])])
        second_step = p[0] - first
        assert abs(second_step[0]) > 0.1  # momentum adds to plain step

    def test_adam_converges_on_quadratic(self):
        p = [np.array([5.0])]
        opt = Adam(lr=0.3)
        for _ in range(200):
            opt.step(p, [2 * p[0]])  # grad of x^2
        assert abs(p[0][0]) < 1e-2

    def test_param_validation(self):
        with pytest.raises(ValueError):
            SGD(lr=0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            Adam(lr=-1)


class TestSequential:
    def test_training_reduces_loss(self):
        x, y = xor_like_data()
        model = tiny_mlp()
        hist = model.fit(x, y, epochs=30, batch_size=32, optimizer=Adam(0.01))
        assert hist[-1] < hist[0]
        assert model.evaluate(x, y) > 0.9

    def test_predict_proba_normalised(self, rng):
        model = tiny_mlp()
        p = model.predict_proba(rng.standard_normal((7, 4)))
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_weights_roundtrip(self, rng):
        m1 = tiny_mlp(seed=1)
        m2 = tiny_mlp(seed=2)
        x = rng.standard_normal((5, 4))
        assert not np.allclose(m1.forward(x, training=False), m2.forward(x, training=False))
        m2.set_weights(m1.get_weights())
        np.testing.assert_allclose(
            m1.forward(x, training=False), m2.forward(x, training=False)
        )

    def test_set_weights_validation(self):
        m = tiny_mlp()
        with pytest.raises(ValueError):
            m.set_weights([np.zeros(2)])
        w = m.get_weights()
        w[0] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            m.set_weights(w)

    def test_config_roundtrip_same_shapes(self):
        m = tiny_mlp()
        m2 = Sequential.from_config(m.config())
        assert [w.shape for w in m.get_weights()] == [w.shape for w in m2.get_weights()]

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_fit_length_mismatch(self):
        with pytest.raises(ValueError):
            tiny_mlp().fit(np.zeros((4, 4)), np.zeros(3))

    def test_deterministic_training(self):
        x, y = xor_like_data(seed=5)
        a = tiny_mlp(seed=3)
        b = tiny_mlp(seed=3)
        a.fit(x, y, epochs=3, seed=11)
        b.fit(x, y, epochs=3, seed=11)
        for wa, wb in zip(a.get_weights(), b.get_weights()):
            np.testing.assert_array_equal(wa, wb)


class TestAfCnn:
    def test_architecture_matches_paper(self):
        """Two Conv1D layers with 32 filters and a dense layer with 32
        neurons (§III-D), plus the 2-class head."""
        model = af_cnn(input_length=128)
        convs = [l for l in model.layers if type(l).__name__ == "Conv1D"]
        denses = [l for l in model.layers if type(l).__name__ == "Dense"]
        assert len(convs) == 2
        assert all(c.out_channels == 32 for c in convs)
        assert denses[0].out_features == 32
        assert denses[-1].out_features == 2

    def test_learns_frequency_discrimination(self):
        """The AF-style task: distinguish slow vs fast oscillations."""
        rng = np.random.default_rng(0)
        n, L = 200, 64
        t = np.arange(L)
        x = rng.standard_normal((n, 1, L)) * 0.3
        y = rng.integers(0, 2, n)
        x[y == 1] += np.sin(t / 2.0)
        x[y == 0] += np.sin(t / 8.0)
        model = af_cnn(input_length=L)
        model.fit(x[:150], y[:150], epochs=5, batch_size=32, optimizer=SGD(0.02, 0.9))
        assert model.evaluate(x[150:], y[150:]) > 0.9

    def test_too_short_input_rejected(self):
        with pytest.raises(ValueError):
            af_cnn(input_length=4)

    def test_short_spectrogram_inputs_supported(self):
        """Spectrogram time axes are tens of frames; the architecture
        adapts its kernel/pool sizes."""
        model = af_cnn(input_length=20, in_channels=65)
        import numpy as np

        out = model.forward(np.zeros((2, 65, 20)), training=False)
        assert out.shape == (2, 2)
