"""Distributed CNN training: strategies, graph shapes (paper Figs. 9/10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import DistributedTrainer, Sequential, TrainerParams, cnn_cross_validation
from repro.nn.layers import Dense, ReLU
from repro.runtime import Runtime


def make_config(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(6, 16, rng), ReLU(), Dense(16, 2, rng)]).config()


def make_data(n=240, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 6))
    y = (x[:, :3].sum(axis=1) > x[:, 3:].sum(axis=1)).astype(int)
    return x, y


def test_trainer_produces_working_model():
    x, y = make_data()
    cfg = make_config()
    params = TrainerParams(epochs=6, n_workers=4, lr=0.05, batch_size=16)
    with Runtime(executor="threads", max_workers=4):
        weights = DistributedTrainer(cfg, params).fit(x, y)
    model = Sequential.from_config(cfg)
    model.set_weights(weights)
    assert model.evaluate(x, y) > 0.85


def test_trainer_works_without_runtime():
    x, y = make_data(n=120)
    params = TrainerParams(epochs=3, n_workers=2, lr=0.05)
    weights = DistributedTrainer(make_config(), params).fit(x, y)
    assert isinstance(weights, list)


def test_4gpu_numerics_close_to_1gpu():
    """Intra-task replication averages weights; the result must stay a
    working model (not bit-identical, but comparable accuracy)."""
    x, y = make_data()
    cfg = make_config()
    accs = {}
    for gpus in (1, 4):
        params = TrainerParams(epochs=10, n_workers=2, gpus_per_worker=gpus, lr=0.05)
        weights = DistributedTrainer(cfg, params).fit(x, y)
        model = Sequential.from_config(cfg)
        model.set_weights(weights)
        accs[gpus] = model.evaluate(x, y)
    assert accs[1] > 0.8
    assert accs[4] > 0.7


def test_gpus_per_worker_validation():
    with pytest.raises(ValueError):
        DistributedTrainer(make_config(), TrainerParams(gpus_per_worker=2))


def test_epoch_task_structure_non_nested():
    """Per epoch: one train task per worker + one merge (Fig. 9)."""
    x, y = make_data(n=80)
    cfg = make_config()
    params = TrainerParams(epochs=3, n_workers=4, lr=0.05)
    with Runtime(executor="sequential") as rt:
        DistributedTrainer(cfg, params).fit(x, y)
        counts = rt.graph.count_by_name()
    assert counts["train_epoch_1gpu"] == 3 * 4
    assert counts["merge_weights"] == 3


def test_4gpu_task_constraint_recorded():
    x, y = make_data(n=40)
    cfg = make_config()
    params = TrainerParams(epochs=1, n_workers=2, gpus_per_worker=4, lr=0.05)
    with Runtime(executor="sequential") as rt:
        DistributedTrainer(cfg, params).fit(x, y)
        recs = [r for r in rt.trace() if r.name == "train_epoch_4gpu"]
    assert recs and all(r.gpus == 4 for r in recs)


def test_nested_fold_tasks_parallel_graph():
    """Nested CV: one fold_train task per fold at the top level, with
    the epoch tasks nested inside (Fig. 10)."""
    x, y = make_data(n=90)
    cfg = make_config()
    params = TrainerParams(epochs=2, n_workers=2, lr=0.05)
    # pinned to the thread backend: the test asserts the nested-DAG
    # *shape*, which worker dispatch legitimately collapses
    with Runtime(executor="threads", max_workers=4, backend="threads") as rt:
        res = cnn_cross_validation(cfg, x, y, n_splits=3, params=params, nested=True)
        trace = rt.trace()
    folds = [r for r in trace if r.name == "fold_train"]
    assert len(folds) == 3
    assert all(r.parent_id is None for r in folds)
    trains = [r for r in trace if r.name == "train_epoch_1gpu"]
    assert len(trains) == 3 * 2 * 2
    fold_ids = {r.task_id for r in folds}
    assert all(r.parent_id in fold_ids for r in trains)
    assert 0.0 <= res["mean_accuracy"] <= 1.0


def test_non_nested_cv_matches_nested_quality():
    x, y = make_data(n=150, seed=4)
    cfg = make_config()
    params = TrainerParams(epochs=5, n_workers=2, lr=0.05)
    with Runtime(executor="threads", max_workers=4):
        flat = cnn_cross_validation(cfg, x, y, n_splits=3, params=params, nested=False)
        nested = cnn_cross_validation(cfg, x, y, n_splits=3, params=params, nested=True)
    assert flat["mean_accuracy"] > 0.7
    assert abs(flat["mean_accuracy"] - nested["mean_accuracy"]) < 0.25
    assert flat["mean_confusion"].shape == (2, 2)
    assert flat["mean_confusion"].sum() == pytest.approx(1.0)


def test_cv_returns_per_fold_accuracies():
    x, y = make_data(n=90)
    params = TrainerParams(epochs=2, n_workers=2, lr=0.05)
    res = cnn_cross_validation(make_config(), x, y, n_splits=3, params=params)
    assert len(res["fold_accuracies"]) == 3
