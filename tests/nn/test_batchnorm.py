"""BatchNorm1D: statistics, gradients, train/inference modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import BatchNorm1D, Sequential
from repro.nn.layers import Dense, ReLU, layer_from_config
from tests.nn.test_layers import numerical_grad


def test_training_output_normalised(rng):
    bn = BatchNorm1D(4)
    x = rng.normal(5, 3, (200, 4))
    out = bn.forward(x, training=True)
    np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
    np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)


def test_gamma_beta_affect_output(rng):
    bn = BatchNorm1D(3)
    bn.gamma[:] = 2.0
    bn.beta[:] = 1.0
    x = rng.standard_normal((50, 3))
    out = bn.forward(x, training=True)
    np.testing.assert_allclose(out.mean(axis=0), 1.0, atol=1e-10)
    np.testing.assert_allclose(out.std(axis=0), 2.0, atol=1e-2)


def test_running_stats_converge(rng):
    bn = BatchNorm1D(2, momentum=0.5)
    for _ in range(30):
        bn.forward(rng.normal(3.0, 2.0, (100, 2)), training=True)
    np.testing.assert_allclose(bn.running_mean, 3.0, atol=0.3)
    np.testing.assert_allclose(bn.running_var, 4.0, atol=1.0)


def test_inference_uses_running_stats(rng):
    bn = BatchNorm1D(2)
    for _ in range(20):
        bn.forward(rng.normal(1.0, 1.0, (100, 2)), training=True)
    # a wildly shifted batch at inference is normalised by the
    # *running* stats, not its own
    shifted = rng.normal(50.0, 1.0, (100, 2))
    out = bn.forward(shifted, training=False)
    assert out.mean() > 10  # not re-centered to zero


def test_input_gradient_numerically(rng):
    bn = BatchNorm1D(3)
    x = rng.standard_normal((12, 3))

    def loss():
        return float((bn.forward(x, training=True) ** 2).sum() / 2)

    out = bn.forward(x, training=True)
    dx = bn.backward(out)
    ref = numerical_grad(loss, x)
    np.testing.assert_allclose(dx, ref, rtol=1e-3, atol=1e-5)


def test_param_gradients_numerically(rng):
    bn = BatchNorm1D(3)
    x = rng.standard_normal((10, 3))

    def loss():
        return float((bn.forward(x, training=True) ** 2).sum() / 2)

    out = bn.forward(x, training=True)
    bn.backward(out)
    np.testing.assert_allclose(
        bn.dgamma, numerical_grad(loss, bn.gamma) / len(x), rtol=1e-4, atol=1e-6
    )
    np.testing.assert_allclose(
        bn.dbeta, numerical_grad(loss, bn.beta) / len(x), rtol=1e-4, atol=1e-6
    )


def test_in_model(rng):
    model = Sequential(
        [Dense(4, 16, rng), BatchNorm1D(16), ReLU(), Dense(16, 2, rng)]
    )
    x = rng.standard_normal((120, 4))
    y = (x[:, 0] > 0).astype(int)
    hist = model.fit(x, y, epochs=20)
    assert hist[-1] < hist[0]
    assert model.evaluate(x, y) > 0.85


def test_config_roundtrip():
    bn = BatchNorm1D(5, momentum=0.8)
    rebuilt = layer_from_config(bn.config())
    assert isinstance(rebuilt, BatchNorm1D)
    assert rebuilt.n_features == 5
    assert rebuilt.momentum == 0.8


def test_validation(rng):
    with pytest.raises(ValueError):
        BatchNorm1D(0)
    with pytest.raises(ValueError):
        BatchNorm1D(2, momentum=1.0)
    with pytest.raises(ValueError):
        BatchNorm1D(3).forward(rng.standard_normal((5, 4)))
