"""Learning-rate schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, Sequential
from repro.nn.layers import Dense, ReLU
from repro.nn.schedules import ConstantLR, CosineDecay, StepDecay, fit_with_schedule


def test_constant():
    s = ConstantLR(0.1)
    assert s(0) == s(100) == 0.1


def test_step_decay():
    s = StepDecay(1.0, factor=0.5, every=10)
    assert s(0) == 1.0
    assert s(9) == 1.0
    assert s(10) == 0.5
    assert s(25) == 0.25


def test_cosine_endpoints():
    s = CosineDecay(1.0, total=20, lr_min=0.1)
    assert s(0) == pytest.approx(1.0)
    assert s(20) == pytest.approx(0.1)
    assert s(10) == pytest.approx(0.55)
    assert s(100) == pytest.approx(0.1)  # clamps past total


def test_validation():
    with pytest.raises(ValueError):
        ConstantLR(0)
    with pytest.raises(ValueError):
        StepDecay(1.0, factor=0.0)
    with pytest.raises(ValueError):
        CosineDecay(1.0, total=0)
    with pytest.raises(ValueError):
        CosineDecay(0.1, total=5, lr_min=0.5)


def test_fit_with_schedule_trains():
    rng = np.random.default_rng(0)
    model = Sequential([Dense(4, 16, rng), ReLU(), Dense(16, 2, rng)])
    x = rng.standard_normal((120, 4))
    y = (x[:, 0] + x[:, 1] > 0).astype(int)
    opt = SGD(lr=0.1, momentum=0.9)
    hist = fit_with_schedule(
        model, x, y, CosineDecay(0.1, total=15), epochs=15, optimizer=opt,
    )
    assert len(hist) == 15
    assert hist[-1] < hist[0]
    assert opt.lr == pytest.approx(CosineDecay(0.1, total=15)(14))
