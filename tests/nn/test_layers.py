"""Layer forward/backward correctness, including numerical gradient
checks against finite differences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    Conv1D,
    Dense,
    Flatten,
    MaxPool1D,
    ReLU,
    layer_from_config,
)


def numerical_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f w.r.t. array x."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f()
        x[idx] = orig - eps
        fm = f()
        x[idx] = orig
        g[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


class TestConv1D:
    def test_output_shape(self, rng):
        conv = Conv1D(2, 4, 3, rng)
        x = rng.standard_normal((5, 2, 10))
        assert conv.forward(x).shape == (5, 4, 8)

    def test_matches_naive_convolution(self, rng):
        conv = Conv1D(1, 1, 3, rng)
        x = rng.standard_normal((1, 1, 6))
        out = conv.forward(x)
        w = conv.w[0, 0]
        for i in range(4):
            expect = (x[0, 0, i : i + 3] * w).sum() + conv.b[0]
            assert out[0, 0, i] == pytest.approx(expect)

    def test_input_gradient_numerically(self, rng):
        conv = Conv1D(2, 3, 3, rng)
        x = rng.standard_normal((2, 2, 7))

        def loss():
            return float((conv.forward(x.copy(), training=False) ** 2).sum() / 2)

        out = conv.forward(x)
        dx = conv.backward(out)  # dL/dy = y for L = ||y||^2/2
        ref = numerical_grad(loss, x)
        np.testing.assert_allclose(dx, ref, rtol=1e-4, atol=1e-6)

    def test_weight_gradient_numerically(self, rng):
        conv = Conv1D(1, 2, 3, rng)
        x = rng.standard_normal((3, 1, 6))

        def loss():
            return float((conv.forward(x, training=False) ** 2).sum() / 2)

        out = conv.forward(x)
        conv.backward(out)
        ref_w = numerical_grad(loss, conv.w)
        np.testing.assert_allclose(conv.dw, ref_w / len(x), rtol=1e-4, atol=1e-6)
        ref_b = numerical_grad(loss, conv.b)
        np.testing.assert_allclose(conv.db, ref_b / len(x), rtol=1e-4, atol=1e-6)

    def test_input_validation(self, rng):
        conv = Conv1D(2, 3, 3, rng)
        with pytest.raises(ValueError):
            conv.forward(rng.standard_normal((2, 5, 10)))  # wrong channels
        with pytest.raises(ValueError):
            conv.forward(rng.standard_normal((2, 2, 2)))  # shorter than kernel
        with pytest.raises(ValueError):
            Conv1D(1, 1, 0)

    def test_config_roundtrip(self, rng):
        conv = Conv1D(3, 5, 4, rng)
        rebuilt = layer_from_config(conv.config())
        assert isinstance(rebuilt, Conv1D)
        assert rebuilt.w.shape == conv.w.shape


class TestMaxPool1D:
    def test_forward(self):
        pool = MaxPool1D(2)
        x = np.array([[[1.0, 3.0, 2.0, 0.0, 5.0, 4.0]]])
        np.testing.assert_array_equal(pool.forward(x), [[[3.0, 2.0, 5.0]]])

    def test_truncates_remainder(self):
        pool = MaxPool1D(2)
        x = np.arange(7.0).reshape(1, 1, 7)
        assert pool.forward(x).shape == (1, 1, 3)

    def test_backward_routes_to_argmax(self):
        pool = MaxPool1D(2)
        x = np.array([[[1.0, 3.0, 2.0, 0.0]]])
        pool.forward(x)
        dx = pool.backward(np.array([[[10.0, 20.0]]]))
        np.testing.assert_array_equal(dx, [[[0.0, 10.0, 20.0, 0.0]]])

    def test_gradient_numerically(self, rng):
        pool = MaxPool1D(3)
        x = rng.standard_normal((2, 2, 9))

        def loss():
            return float((pool.forward(x, training=False) ** 2).sum() / 2)

        out = pool.forward(x)
        dx = pool.backward(out)
        ref = numerical_grad(loss, x)
        np.testing.assert_allclose(dx, ref, rtol=1e-4, atol=1e-6)

    def test_too_short(self):
        with pytest.raises(ValueError):
            MaxPool1D(4).forward(np.zeros((1, 1, 3)))
        with pytest.raises(ValueError):
            MaxPool1D(0)


class TestReLU:
    def test_forward(self):
        r = ReLU()
        np.testing.assert_array_equal(
            r.forward(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )

    def test_backward(self):
        r = ReLU()
        r.forward(np.array([-1.0, 0.5]))
        np.testing.assert_array_equal(r.backward(np.array([3.0, 3.0])), [0.0, 3.0])

    def test_inference_mode_no_state(self):
        r = ReLU()
        r.forward(np.array([1.0]), training=False)
        assert r._mask is None


class TestFlatten:
    def test_roundtrip(self, rng):
        f = Flatten()
        x = rng.standard_normal((4, 3, 5))
        out = f.forward(x)
        assert out.shape == (4, 15)
        back = f.backward(out)
        assert back.shape == x.shape
        np.testing.assert_array_equal(back, x)


class TestDense:
    def test_forward(self, rng):
        d = Dense(3, 2, rng)
        x = rng.standard_normal((5, 3))
        np.testing.assert_allclose(d.forward(x), x @ d.w + d.b)

    def test_gradients_numerically(self, rng):
        d = Dense(4, 3, rng)
        x = rng.standard_normal((6, 4))

        def loss():
            return float((d.forward(x, training=False) ** 2).sum() / 2)

        out = d.forward(x)
        dx = d.backward(out)
        np.testing.assert_allclose(dx, numerical_grad(loss, x), rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(
            d.dw, numerical_grad(loss, d.w) / len(x), rtol=1e-4, atol=1e-6
        )
        np.testing.assert_allclose(
            d.db, numerical_grad(loss, d.b) / len(x), rtol=1e-4, atol=1e-6
        )

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            Dense(3, 2).forward(rng.standard_normal((5, 4)))


def test_layer_from_config_unknown():
    with pytest.raises(ValueError):
        layer_from_config({"type": "LSTM"})
