"""Epoch checkpoints in Sequential.fit: kill, resume, bit-identical."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, Sequential
from repro.nn.layers import Dense, ReLU
from repro.nn.optim import SGD


def make_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(4, 16, rng), ReLU(), Dense(16, 2, rng)])


def make_data(n=120, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 4))
    y = ((x[:, 0] + x[:, 2]) > 0).astype(int)
    return x, y


def weights_equal(a, b):
    return len(a) == len(b) and all(np.array_equal(w1, w2) for w1, w2 in zip(a, b))


@pytest.mark.parametrize("make_opt", [lambda: SGD(0.05, 0.9), lambda: Adam(0.01)])
def test_resume_is_bit_identical(tmp_path, make_opt):
    x, y = make_data()

    baseline = make_model()
    hist_full = baseline.fit(x, y, epochs=6, batch_size=16, optimizer=make_opt())

    # the same run, killed after 3 epochs...
    interrupted = make_model()
    interrupted.fit(
        x, y, epochs=3, batch_size=16, optimizer=make_opt(), checkpoint_dir=tmp_path
    )
    # ...and restarted with the *original* epoch budget.  The fresh
    # model and fresh optimizer stand in for a new process.
    resumed = make_model()
    hist_resumed = resumed.fit(
        x, y, epochs=6, batch_size=16, optimizer=make_opt(), checkpoint_dir=tmp_path
    )

    assert hist_resumed == hist_full
    assert weights_equal(resumed.get_weights(), baseline.get_weights())


def test_resume_skips_completed_epochs(tmp_path):
    x, y = make_data()
    model = make_model()
    model.fit(x, y, epochs=4, batch_size=16, checkpoint_dir=tmp_path)

    # budget already exhausted: nothing to train, state reloaded as-is
    again = make_model()
    hist = again.fit(x, y, epochs=4, batch_size=16, checkpoint_dir=tmp_path)
    assert len(hist) == 4
    assert weights_equal(again.get_weights(), model.get_weights())


def test_checkpoint_every_n(tmp_path):
    from repro.runtime.checkpoint import CheckpointStore

    x, y = make_data()
    make_model().fit(
        x, y, epochs=5, batch_size=16, checkpoint_dir=tmp_path, checkpoint_every=2
    )
    store = CheckpointStore(tmp_path)
    # one rolling entry, overwritten in place (epochs 2, 4, 5-final)
    assert store.stats()["n_entries"] == 1
    saved = store.get("fit")
    assert saved is not None
    assert saved[0]["epoch"] == 5


def test_checkpoint_every_validation(tmp_path):
    x, y = make_data()
    with pytest.raises(ValueError):
        make_model().fit(x, y, epochs=2, checkpoint_dir=tmp_path, checkpoint_every=0)


def test_distinct_tags_do_not_collide(tmp_path):
    x, y = make_data()
    m1 = make_model(seed=1)
    m1.fit(x, y, epochs=2, checkpoint_dir=tmp_path, checkpoint_tag="run-a")
    m2 = make_model(seed=2)
    m2.fit(x, y, epochs=2, checkpoint_dir=tmp_path, checkpoint_tag="run-b")

    r1 = make_model(seed=1)
    r1.fit(x, y, epochs=2, checkpoint_dir=tmp_path, checkpoint_tag="run-a")
    assert weights_equal(r1.get_weights(), m1.get_weights())
    assert not weights_equal(m1.get_weights(), m2.get_weights())


def test_early_stopped_run_stays_stopped_on_resume(tmp_path):
    """A fit that early-stopped must not keep training when re-run."""
    rng = np.random.default_rng(3)
    x_tr = rng.standard_normal((24, 4))
    y_tr = rng.integers(0, 2, 24)
    x_val = rng.standard_normal((60, 4))
    y_val = rng.integers(0, 2, 60)

    model = make_model()
    hist = model.fit(
        x_tr, y_tr, epochs=300, batch_size=8, optimizer=Adam(0.01),
        validation_data=(x_val, y_val), patience=5, checkpoint_dir=tmp_path,
    )
    assert len(hist) < 300

    resumed = make_model()
    hist2 = resumed.fit(
        x_tr, y_tr, epochs=300, batch_size=8, optimizer=Adam(0.01),
        validation_data=(x_val, y_val), patience=5, checkpoint_dir=tmp_path,
    )
    assert hist2 == hist
    assert resumed.val_history_ == model.val_history_
    assert weights_equal(resumed.get_weights(), model.get_weights())


def test_optimizer_state_roundtrip():
    """state_dict/load_state_dict reproduce momentum and Adam buffers."""
    rng = np.random.default_rng(0)
    params = [rng.standard_normal((3, 3)), rng.standard_normal(3)]
    grads = [np.ones((3, 3)), np.ones(3)]

    for opt_factory in (lambda: SGD(0.1, 0.9), lambda: Adam(0.05)):
        a = opt_factory()
        source_params = [p.copy() for p in params]
        a.step(source_params, grads)
        state = a.state_dict(source_params)

        b = opt_factory()
        target_params = [p.copy() for p in params]
        b.step(target_params, grads)
        b.load_state_dict(state, target_params)

        a.step(source_params, grads)
        b.step(target_params, grads)
        for pa, pb in zip(source_params, target_params):
            np.testing.assert_array_equal(pa, pb)


def test_plain_sgd_state_dict_is_empty():
    opt = SGD(0.1, momentum=0.0)
    params = [np.zeros(2)]
    opt.step(params, [np.ones(2)])
    assert opt.state_dict(params) == {"velocity": {}}
