"""Dropout layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Dropout, Sequential
from repro.nn.layers import Dense, layer_from_config


def test_inference_is_identity():
    d = Dropout(0.5)
    x = np.ones((4, 8))
    np.testing.assert_array_equal(d.forward(x, training=False), x)


def test_training_zeroes_and_scales():
    d = Dropout(0.5, seed=0)
    x = np.ones((100, 100))
    out = d.forward(x, training=True)
    zero_frac = np.mean(out == 0)
    assert 0.4 < zero_frac < 0.6
    kept = out[out != 0]
    np.testing.assert_allclose(kept, 2.0)  # inverted scaling


def test_expected_value_preserved():
    d = Dropout(0.3, seed=1)
    x = np.ones((200, 200))
    out = d.forward(x, training=True)
    assert out.mean() == pytest.approx(1.0, abs=0.02)


def test_backward_uses_same_mask():
    d = Dropout(0.5, seed=2)
    x = np.ones((10, 10))
    out = d.forward(x, training=True)
    grad = d.backward(np.ones_like(x))
    np.testing.assert_array_equal((out == 0), (grad == 0))


def test_rate_zero_is_identity():
    d = Dropout(0.0)
    x = np.random.default_rng(0).standard_normal((5, 5))
    np.testing.assert_array_equal(d.forward(x, training=True), x)


def test_rate_validation():
    with pytest.raises(ValueError):
        Dropout(1.0)
    with pytest.raises(ValueError):
        Dropout(-0.1)


def test_config_roundtrip():
    d = Dropout(0.25, seed=3)
    rebuilt = layer_from_config(d.config())
    assert isinstance(rebuilt, Dropout)
    assert rebuilt.rate == 0.25


def test_in_model_training():
    rng = np.random.default_rng(0)
    model = Sequential([Dense(4, 16, rng), Dropout(0.2, seed=1), Dense(16, 2, rng)])
    x = rng.standard_normal((60, 4))
    y = (x[:, 0] > 0).astype(int)
    hist = model.fit(x, y, epochs=20)
    assert hist[-1] < hist[0]
    # inference is deterministic despite the dropout layer
    a = model.predict_proba(x)
    b = model.predict_proba(x)
    np.testing.assert_array_equal(a, b)
