"""Cross-subsystem integration: one run exercising every layer.

ecg → preprocessing → dsarray → PCA → classifier → metrics, recorded by
the runtime, exported as provenance + DOT, and replayed on a simulated
cluster — the complete loop a downstream user of this library runs.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.dsarray as ds
from repro.cluster import bottleneck_report, core_sweep, marenostrum4, simulate
from repro.ecg import ECGConfig
from repro.ml import PCA, RandomForestClassifier, StandardScaler, cross_validate
from repro.runtime import Runtime, build_provenance, graph_summary, to_dot, wait_on
from repro.workflows import PipelineConfig, extract_features, prepare_dataset

CFG = PipelineConfig(
    scale=0.006,
    seed=1,
    block_size=(16, 64),
    n_splits=3,
    decimate=8,
    stft_batch=8,
    ecg=ECGConfig(noise_std=0.1),
)


@pytest.fixture(scope="module")
def full_run():
    """Execute the whole workflow once under a recording runtime."""
    dataset = prepare_dataset(CFG)
    with Runtime(executor="threads", max_workers=4) as rt:
        feats, labels = extract_features(dataset, CFG)
        dx = ds.array(feats, CFG.block_size)
        dy = ds.array(labels.reshape(-1, 1), (CFG.block_size[0], 1))
        pca = PCA(n_components=0.95)
        reduced = pca.fit_transform(dx, block_size=CFG.block_size)
        scaled = StandardScaler().fit_transform(reduced)
        cv = cross_validate(
            lambda: RandomForestClassifier(n_estimators=8, random_state=0),
            scaled,
            dy,
            n_splits=CFG.n_splits,
        )
        rt.barrier()
        trace = rt.trace()
        graph = rt.graph
        prov = build_provenance(
            "af-integration",
            graph,
            trace,
            parameters={"scale": CFG.scale},
            results={"accuracy": cv.mean_accuracy},
        )
        dot = to_dot(graph, title="af-integration")
    return {
        "dataset": dataset,
        "cv": cv,
        "trace": trace,
        "graph": graph,
        "prov": prov,
        "dot": dot,
        "pca": pca,
    }


def test_workflow_learns(full_run):
    assert full_run["cv"].mean_accuracy > 0.7


def test_pca_reduced_dimensionality(full_run):
    pca = full_run["pca"]
    assert pca.n_components_ < pca.n_features_in_
    assert pca.explained_variance_ratio_.sum() >= 0.95 - 1e-9


def test_every_stage_present_in_graph(full_run):
    names = set(full_run["graph"].count_by_name())
    for expected in (
        "stft_batch",
        "slice_block",
        "_partial_sum",
        "_partial_cov",
        "_eigendecomposition",
        "_partial_stats",
        "_scale_block",
        "_gather",
        "_bootstrap",
        "_build_subtree",
        "_predict_stripe_proba",
    ):
        assert expected in names, f"missing stage {expected}"


def test_trace_consistent_with_graph(full_run):
    assert len(full_run["trace"]) == full_run["graph"].n_tasks
    summary = graph_summary(full_run["graph"])
    assert summary["n_tasks"] > 100
    assert summary["max_width"] > 4


def test_provenance_serialisable(full_run):
    blob = json.loads(full_run["prov"].to_json())
    assert blob["workflow"] == "af-integration"
    assert blob["results"]["accuracy"] > 0
    assert blob["n_tasks"] == full_run["graph"].n_tasks


def test_dot_export_contains_all_tasks(full_run):
    assert full_run["dot"].count("fillcolor=") == full_run["graph"].n_tasks


def test_trace_replays_on_simulated_cluster(full_run):
    trace = full_run["trace"]
    res = simulate(trace, marenostrum4(2))
    assert res.n_tasks == len(trace)
    assert res.makespan > 0
    report = bottleneck_report(trace, res)
    assert "critical path" in report


def test_trace_core_sweep_sane(full_run):
    from repro.cluster import NodeSpec

    points = core_sweep(full_run["trace"], NodeSpec(cores=48), [1, 4])
    assert points[1].makespan <= points[0].makespan * 1.01
