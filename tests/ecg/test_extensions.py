"""ECG extensions: Other-rhythm class, artifacts, dataset persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecg import (
    ECGConfig,
    gamboa_segmenter,
    generate_dataset,
    generate_other,
    generate_recording,
    load_npz,
    rr_intervals,
    save_npz,
)


class TestOtherRhythm:
    def test_other_rhythm_generates(self, rng):
        sig = generate_other(15.0, rng)
        assert len(sig) == 15 * 300

    def test_other_keeps_regular_base_rhythm(self, rng):
        """'O' is ectopic morphology on a sinus base, not AF: the
        detector may miss the low-amplitude ectopic beats (doubling an
        occasional RR), but the *typical* RR stays at the sinus period."""
        sig = generate_other(40.0, rng)
        peaks = gamboa_segmenter(sig, 300.0)
        rr = rr_intervals(peaks, 300.0)
        assert 0.7 < np.median(rr) < 1.0

    def test_dataset_with_other_class(self):
        dsd = generate_dataset(4, 3, n_other=5, seed=1)
        counts = dsd.class_counts()
        assert counts == {"N": 4, "AF": 3, "O": 5}

    def test_bad_label_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_recording("X", 10.0, rng)


class TestArtifacts:
    def test_muscle_artifact_raises_hf_energy(self):
        cfg_clean = ECGConfig(noise_std=0.01)
        cfg_emg = ECGConfig(noise_std=0.01, muscle_artifact_prob=1.0, muscle_artifact_amplitude=0.4)
        clean = generate_recording("N", 20.0, np.random.default_rng(3), cfg_clean)
        noisy = generate_recording("N", 20.0, np.random.default_rng(3), cfg_emg)
        assert noisy.std() > clean.std()

    def test_motion_spike_adds_extreme(self):
        cfg = ECGConfig(noise_std=0.01, motion_spike_prob=1.0, motion_spike_amplitude=3.0)
        sig = generate_recording("N", 20.0, np.random.default_rng(4), cfg)
        assert sig.max() > 2.0

    def test_probability_zero_means_disabled(self):
        cfg = ECGConfig(noise_std=0.01)
        a = generate_recording("N", 10.0, np.random.default_rng(5), cfg)
        b = generate_recording("N", 10.0, np.random.default_rng(5), cfg)
        np.testing.assert_array_equal(a, b)

    def test_gain_variation_changes_scale(self):
        cfg = ECGConfig(gain_std=1.0)
        rng = np.random.default_rng(6)
        maxima = [generate_recording("N", 10.0, rng, cfg).max() for _ in range(8)]
        assert max(maxima) > 2 * min(maxima)


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        dsd = generate_dataset(3, 2, n_other=1, seed=7)
        path = tmp_path / "ecg.npz"
        save_npz(dsd, path)
        back = load_npz(path)
        assert back.class_counts() == dsd.class_counts()
        assert len(back) == len(dsd)
        for a, b in zip(dsd.records, back.records):
            np.testing.assert_array_equal(a.signal, b.signal)
            assert a.label == b.label
            assert a.fs == b.fs

    def test_roundtrip_preserves_variable_lengths(self, tmp_path):
        dsd = generate_dataset(4, 0, seed=8)
        lengths = [len(r.signal) for r in dsd.records]
        path = tmp_path / "ecg.npz"
        save_npz(dsd, path)
        back = load_npz(path)
        assert [len(r.signal) for r in back.records] == lengths
