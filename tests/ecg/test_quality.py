"""Signal-quality indices and noisy-recording filtering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecg import (
    Dataset,
    Record,
    assess_quality,
    clipping_fraction,
    filter_dataset,
    flatline_fraction,
    generate_nsr,
    qrs_band_ratio,
)


@pytest.fixture()
def clean(rng):
    return generate_nsr(20.0, rng)


def test_clean_recording_acceptable(clean):
    report = assess_quality(clean)
    assert report.acceptable
    assert 40 < report.detected_rate_bpm < 110


def test_band_ratio_clean_vs_noise(clean, rng):
    noise = rng.standard_normal(len(clean))
    assert qrs_band_ratio(clean, 300.0) > qrs_band_ratio(noise, 300.0)


def test_pure_noise_rejected(rng):
    noise = rng.standard_normal(6000) * 0.5
    report = assess_quality(noise)
    assert not report.acceptable


def test_flatline_detection(clean):
    corrupted = clean.copy()
    corrupted[1000:3000] = corrupted[1000]  # ~6.7 s flat
    frac = flatline_fraction(corrupted, 300.0)
    assert frac > 0.25
    assert not assess_quality(corrupted).acceptable


def test_flatline_clean_is_low(clean):
    assert flatline_fraction(clean, 300.0) < 0.05


def test_clipping_detection(clean):
    clipped = np.clip(clean, -0.1, 0.25)
    assert clipping_fraction(clipped) > 0.05
    assert clipping_fraction(clean) < 0.01


def test_constant_signal_fully_clipped():
    assert clipping_fraction(np.ones(100)) == 1.0


def test_filter_dataset(rng):
    good = [Record(signal=generate_nsr(15.0, rng), label="N", fs=300.0) for _ in range(3)]
    bad = [Record(signal=rng.standard_normal(4500) * 0.5, label="N", fs=300.0)]
    dsd = Dataset(good + bad)
    clean_ds, removed = filter_dataset(dsd)
    assert removed == 1
    assert len(clean_ds) == 3


def test_empty_edge_cases():
    assert flatline_fraction(np.zeros(1), 300.0) == 0.0
    assert clipping_fraction(np.zeros(0)) == 0.0
