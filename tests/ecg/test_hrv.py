"""HRV features and the RR baseline's discriminative behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecg import (
    HRV_FEATURE_NAMES,
    generate_af,
    generate_nsr,
    hrv_features,
    rr_feature_matrix,
)


def test_feature_vector_shape_and_names():
    rr = np.full(20, 0.8)
    feats = hrv_features(rr)
    assert feats.shape == (len(HRV_FEATURE_NAMES),)


def test_constant_rr_zero_variability():
    feats = dict(zip(HRV_FEATURE_NAMES, hrv_features(np.full(30, 0.8))))
    assert feats["mean_rr"] == pytest.approx(0.8)
    assert feats["sdnn"] == pytest.approx(0.0, abs=1e-12)
    assert feats["rmssd"] == pytest.approx(0.0, abs=1e-12)
    assert feats["pnn50"] == 0.0


def test_too_short_series_zeros():
    assert (hrv_features(np.array([0.8, 0.9])) == 0).all()


def test_irregular_rr_higher_variability():
    rng = np.random.default_rng(0)
    regular = rng.normal(0.8, 0.02, 50)
    irregular = rng.normal(0.65, 0.18, 50)
    f_reg = dict(zip(HRV_FEATURE_NAMES, hrv_features(regular)))
    f_irr = dict(zip(HRV_FEATURE_NAMES, hrv_features(irregular)))
    assert f_irr["sdnn"] > f_reg["sdnn"]
    assert f_irr["rmssd"] > f_reg["rmssd"]
    assert f_irr["pnn50"] > f_reg["pnn50"]


def test_rr_matrix_separates_af_from_nsr():
    """The RR baseline's core competence: AF recordings score higher on
    variability features."""
    rng = np.random.default_rng(1)
    nsr = [generate_nsr(30.0, rng) for _ in range(6)]
    af = [generate_af(30.0, rng) for _ in range(6)]
    m_nsr = rr_feature_matrix(nsr)
    m_af = rr_feature_matrix(af)
    rmssd_idx = HRV_FEATURE_NAMES.index("rmssd")
    assert m_af[:, rmssd_idx].mean() > 2 * m_nsr[:, rmssd_idx].mean()


def test_rr_matrix_empty():
    assert rr_feature_matrix([]).shape == (0, len(HRV_FEATURE_NAMES))
