"""Synthetic ECG generator and dataset tests: the physiology the
paper's pipeline depends on must actually be present in the signals."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import signal as sp_signal

from repro.ecg import (
    ECGConfig,
    PAPER_N_AF,
    PAPER_N_NORMAL,
    Dataset,
    Record,
    gamboa_segmenter,
    generate_af,
    generate_dataset,
    generate_nsr,
    generate_recording,
    load_cinc2017_like,
    rr_intervals,
)


class TestGenerator:
    def test_sampling_rate_and_length(self, rng):
        sig = generate_nsr(10.0, rng)
        assert len(sig) == 3000  # 10 s at 300 Hz

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            generate_recording("X", 10.0, rng)
        with pytest.raises(ValueError):
            generate_recording("N", -1.0, rng)

    def test_r_peaks_dominate_amplitude(self, rng):
        sig = generate_nsr(15.0, rng)
        assert sig.max() > 0.7  # R waves ~1 mV

    def test_nsr_rr_regular_af_rr_irregular(self, rng):
        """The third diagnostic AF feature: heart-rate irregularity."""
        nsr = generate_nsr(40.0, rng)
        af = generate_af(40.0, rng)
        rr_n = rr_intervals(gamboa_segmenter(nsr, 300.0), 300.0)
        rr_a = rr_intervals(gamboa_segmenter(af, 300.0), 300.0)
        assert rr_n.std() < 0.08
        assert rr_a.std() > 2 * rr_n.std()

    def test_af_has_fwave_band_power(self, rng):
        """The second AF feature: f-waves in the 4-9 Hz band.  Compare
        the band power in beat-free segments via Welch."""
        cfg = ECGConfig(noise_std=0.01)
        nsr = generate_nsr(40.0, rng, cfg)
        af = generate_af(40.0, rng, cfg)
        def band_power(sig):
            f, p = sp_signal.welch(sig, fs=300.0, nperseg=1024)
            return p[(f >= 4) & (f <= 9)].sum()
        assert band_power(af) > band_power(nsr)

    def test_nsr_has_p_waves_af_does_not(self, rng):
        """The first AF feature: absent P wave.  Check the mean signal
        level in the P-wave window (~180 ms before each R peak)."""
        cfg = ECGConfig(noise_std=0.005, baseline_amplitude=0.0)
        rng1 = np.random.default_rng(1)
        rng2 = np.random.default_rng(2)
        fs = 300.0

        def p_window_mean(sig):
            peaks = gamboa_segmenter(sig, fs)
            vals = []
            for p in peaks:
                lo = p - int(0.24 * fs)
                hi = p - int(0.12 * fs)
                if lo >= 0:
                    vals.append(sig[lo:hi].max())
            return np.median(vals)

        nsr = generate_nsr(30.0, rng1, cfg)
        af = generate_af(30.0, rng2, cfg)
        assert p_window_mean(nsr) > p_window_mean(af) + 0.02

    def test_deterministic_given_rng_seed(self):
        a = generate_nsr(10.0, np.random.default_rng(5))
        b = generate_nsr(10.0, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)


class TestDataset:
    def test_paper_scale_counts(self):
        dsd = load_cinc2017_like(scale=0.01, seed=0)
        counts = dsd.class_counts()
        assert counts["N"] == round(PAPER_N_NORMAL * 0.01)
        assert counts["AF"] == round(PAPER_N_AF * 0.01)

    def test_imbalance_ratio_preserved(self):
        dsd = load_cinc2017_like(scale=0.02, seed=0)
        counts = dsd.class_counts()
        ratio = counts["N"] / counts["AF"]
        assert ratio == pytest.approx(PAPER_N_NORMAL / PAPER_N_AF, rel=0.1)

    def test_duration_range(self):
        dsd = load_cinc2017_like(scale=0.005, seed=3)
        for r in dsd.records:
            assert 9.0 <= r.duration <= 61.0 + 1e-6

    def test_max_length_bounded_by_paper(self):
        dsd = load_cinc2017_like(scale=0.005, seed=3)
        assert dsd.max_length() <= 18300

    def test_generate_dataset_explicit_counts(self):
        dsd = generate_dataset(5, 3, seed=1)
        assert dsd.class_counts() == {"N": 5, "AF": 3}
        assert len(dsd) == 8

    def test_records_shuffled(self):
        dsd = generate_dataset(10, 10, seed=1)
        labels = dsd.labels
        assert not (labels[:10] == "N").all()  # not grouped by class

    def test_subset_and_shuffled(self):
        dsd = generate_dataset(6, 4, seed=2)
        assert len(dsd.subset("AF")) == 4
        reshuffled = dsd.shuffled(seed=9)
        assert sorted(reshuffled.labels) == sorted(dsd.labels)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            load_cinc2017_like(scale=0)
        with pytest.raises(ValueError):
            generate_dataset(-1, 2)
        with pytest.raises(ValueError):
            generate_dataset(2, 2, duration_range=(5.0, 1.0))

    def test_record_properties(self, rng):
        r = Record(signal=np.zeros(600), label="N", fs=300.0)
        assert r.duration == 2.0
