"""Persistence and structure tests for :mod:`repro.ecg.dataset`
(generation itself is covered by ``test_generator_dataset.py``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecg import ECGConfig
from repro.ecg.dataset import (
    DURATION_RANGE,
    PAPER_N_AF,
    PAPER_N_NORMAL,
    Dataset,
    Record,
    generate_dataset,
    load_npz,
    save_npz,
)


@pytest.fixture(scope="module")
def small_dataset():
    return generate_dataset(4, 3, n_other=1, seed=7, cfg=ECGConfig(), duration_range=(2.0, 4.0))


def test_paper_constants_match_section_iii_a():
    assert (PAPER_N_NORMAL, PAPER_N_AF) == (5154, 771)
    assert DURATION_RANGE == (9.0, 61.0)


def test_npz_roundtrip_preserves_everything(tmp_path, small_dataset):
    path = tmp_path / "ds.npz"
    save_npz(small_dataset, path)
    loaded = load_npz(path)
    assert len(loaded) == len(small_dataset)
    assert list(loaded.labels) == list(small_dataset.labels)
    for orig, back in zip(small_dataset.records, loaded.records):
        assert back.fs == orig.fs
        assert back.duration == orig.duration
        np.testing.assert_array_equal(back.signal, orig.signal)


def test_npz_roundtrip_variable_lengths(tmp_path, small_dataset):
    # the flat+offsets layout must not mix neighbouring records up
    lengths = [len(r.signal) for r in small_dataset.records]
    assert len(set(lengths)) > 1, "fixture should have variable-length records"
    path = tmp_path / "ds.npz"
    save_npz(small_dataset, path)
    loaded = load_npz(path)
    assert [len(r.signal) for r in loaded.records] == lengths


def test_npz_loaded_signals_are_independent_copies(tmp_path, small_dataset):
    path = tmp_path / "ds.npz"
    save_npz(small_dataset, path)
    loaded = load_npz(path)
    first = loaded.records[0].signal
    before = loaded.records[1].signal.copy()
    first[:] = 0.0
    np.testing.assert_array_equal(loaded.records[1].signal, before)


def test_npz_roundtrip_empty_dataset(tmp_path):
    path = tmp_path / "empty.npz"
    save_npz(Dataset([]), path)
    assert len(load_npz(path)) == 0


def test_class_counts_and_subset(small_dataset):
    counts = small_dataset.class_counts()
    assert counts == {"N": 4, "AF": 3, "O": 1}
    af = small_dataset.subset("AF")
    assert len(af) == 3
    assert set(af.labels) == {"AF"}


def test_shuffled_is_a_permutation(small_dataset):
    shuffled = small_dataset.shuffled(seed=1)
    assert len(shuffled) == len(small_dataset)
    assert shuffled.class_counts() == small_dataset.class_counts()
    assert sorted(len(r.signal) for r in shuffled.records) == sorted(
        len(r.signal) for r in small_dataset.records
    )


def test_max_length_matches_longest_record(small_dataset):
    assert small_dataset.max_length() == max(len(s) for s in small_dataset.signals)


def test_record_duration_property():
    rec = Record(signal=np.zeros(600), label="N", fs=300.0)
    assert rec.duration == 2.0
