"""R-peak detection, patch-shuffle augmentation, padding and STFT."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecg import (
    Dataset,
    Record,
    augment_minority,
    gamboa_segmenter,
    generate_af,
    generate_dataset,
    generate_nsr,
    pan_tompkins,
    preprocess_signals,
    rr_intervals,
    segment_patches,
    shuffle_patches,
    stft_feature_dim,
    stft_features,
    zero_pad,
)


class TestRPeaks:
    def test_gamboa_count_close_to_truth(self, rng):
        sig = generate_nsr(30.0, rng)
        peaks = gamboa_segmenter(sig, 300.0)
        expected = 30.0 / 0.83
        assert abs(len(peaks) - expected) <= 3

    def test_pan_tompkins_agrees_with_gamboa(self, rng):
        sig = generate_nsr(30.0, rng)
        g = gamboa_segmenter(sig, 300.0)
        p = pan_tompkins(sig, 300.0)
        assert abs(len(g) - len(p)) <= 2

    def test_peaks_fall_on_r_waves(self, rng):
        sig = generate_nsr(20.0, rng)
        peaks = gamboa_segmenter(sig, 300.0)
        # signal at detected peaks should be near the R amplitude
        assert np.median(sig[peaks]) > 0.6

    def test_peaks_sorted_and_spaced(self, rng):
        sig = generate_af(30.0, rng)
        peaks = gamboa_segmenter(sig, 300.0)
        assert (np.diff(peaks) > 0.2 * 300).all()  # refractory respected

    def test_short_signal_empty(self):
        assert len(gamboa_segmenter(np.zeros(10), 300.0)) == 0
        assert len(pan_tompkins(np.zeros(10), 300.0)) == 0

    def test_flat_signal_empty(self):
        assert len(gamboa_segmenter(np.ones(3000), 300.0)) == 0

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            gamboa_segmenter(np.zeros((10, 10)), 300.0)
        with pytest.raises(ValueError):
            pan_tompkins(np.zeros((10, 10)), 300.0)

    def test_rr_intervals(self):
        rr = rr_intervals(np.array([0, 300, 600]), 300.0)
        np.testing.assert_allclose(rr, [1.0, 1.0])


class TestAugmentation:
    def test_shuffle_preserves_length_approximately(self, rng):
        sig = generate_af(30.0, rng)
        peaks = gamboa_segmenter(sig, 300.0)
        out = shuffle_patches(sig, peaks, rng)
        assert len(out) == len(sig)

    def test_shuffle_preserves_sample_multiset(self, rng):
        sig = generate_af(30.0, rng)
        peaks = gamboa_segmenter(sig, 300.0)
        out = shuffle_patches(sig, peaks, rng)
        np.testing.assert_allclose(np.sort(out), np.sort(sig))

    def test_shuffle_changes_order(self, rng):
        sig = generate_af(40.0, rng)
        peaks = gamboa_segmenter(sig, 300.0)
        out = shuffle_patches(sig, peaks, np.random.default_rng(123))
        assert not np.array_equal(out, sig)

    def test_patch_structure(self, rng):
        sig = generate_af(40.0, rng)
        peaks = gamboa_segmenter(sig, 300.0)
        patches, spacers, (head, tail) = segment_patches(sig, peaks)
        n_groups = len(peaks) // 6
        assert len(patches) == n_groups
        assert len(spacers) == n_groups - 1
        total = len(head) + len(tail) + sum(map(len, patches)) + sum(map(len, spacers))
        assert total == len(sig)

    def test_each_patch_contains_six_peaks(self, rng):
        """The paper's invariant: patches are stretches of 6 contiguous
        R peaks (the minimum to detect irregular rhythms)."""
        sig = generate_af(45.0, rng)
        peaks = gamboa_segmenter(sig, 300.0)
        patches, _, (head, _) = segment_patches(sig, peaks)
        offset = len(head)
        for patch in patches:
            inside = [p for p in peaks if offset <= p < offset + len(patch)]
            # spacers between patches shift later offsets; recount from
            # the patch signal itself instead
            offset += len(patch)
        # cheap but meaningful proxy: total peaks in groups match
        assert len(patches) * 6 <= len(peaks)

    def test_too_few_peaks_rejected(self, rng):
        sig = generate_af(10.0, rng)
        peaks = gamboa_segmenter(sig, 300.0)[:8]
        with pytest.raises(ValueError):
            segment_patches(sig, peaks)

    def test_augment_minority_balances(self):
        dsd = generate_dataset(12, 3, seed=4)
        balanced = augment_minority(dsd, seed=5)
        counts = balanced.class_counts()
        assert counts["AF"] == counts["N"] == 12

    def test_augmented_signals_are_new(self):
        dsd = generate_dataset(6, 2, seed=4)
        balanced = augment_minority(dsd, seed=5)
        af = balanced.subset("AF")
        lengths = [len(r.signal) for r in af.records]
        assert len(af) == 6

    def test_augment_missing_label(self):
        dsd = Dataset([Record(signal=np.zeros(100), label="N", fs=300.0)])
        with pytest.raises(ValueError):
            augment_minority(dsd, minority_label="AF")

    def test_augment_already_balanced_noop(self):
        dsd = generate_dataset(3, 3, seed=1)
        out = augment_minority(dsd, seed=1)
        assert len(out) == 6


class TestFeatures:
    def test_zero_pad_to_max(self):
        out = zero_pad([np.ones(5), np.ones(3)])
        assert out.shape == (2, 5)
        np.testing.assert_array_equal(out[1], [1, 1, 1, 0, 0])

    def test_zero_pad_explicit_target(self):
        out = zero_pad([np.ones(4)], target_length=10)
        assert out.shape == (1, 10)

    def test_zero_pad_never_truncates(self):
        with pytest.raises(ValueError):
            zero_pad([np.ones(20)], target_length=10)

    def test_zero_pad_empty(self):
        with pytest.raises(ValueError):
            zero_pad([])

    def test_stft_shape_deterministic(self, rng):
        x = rng.standard_normal((3, 3000))
        feats = stft_features(x, fs=300.0, nperseg=128)
        assert feats.shape == (3, stft_feature_dim(3000, nperseg=128))

    def test_stft_nperseg_too_long(self):
        with pytest.raises(ValueError):
            stft_features(np.zeros((1, 64)), nperseg=128)

    def test_stft_separates_frequencies(self):
        """Signals of different frequency must differ in STFT space far
        more than same-frequency signals — the property the classifier
        relies on."""
        t = np.arange(3000) / 300.0
        slow1 = np.sin(2 * np.pi * 2 * t)
        slow2 = np.sin(2 * np.pi * 2 * t + 0.5)
        fast = np.sin(2 * np.pi * 8 * t)
        f = stft_features(np.vstack([slow1, slow2, fast]), fs=300.0, nperseg=256)
        d_same = np.linalg.norm(f[0] - f[1])
        d_diff = np.linalg.norm(f[0] - f[2])
        assert d_diff > 3 * d_same

    def test_preprocess_chain(self, rng):
        sigs = [generate_nsr(9.0, rng), generate_nsr(12.0, rng)]
        feats = preprocess_signals(sigs, target_length=3600)
        assert feats.shape[0] == 2
        assert feats.shape[1] == stft_feature_dim(3600)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_shuffle_conserves_energy(self, seed):
        rng = np.random.default_rng(seed)
        sig = generate_af(35.0, rng)
        peaks = gamboa_segmenter(sig, 300.0)
        if len(peaks) < 12:
            return
        out = shuffle_patches(sig, peaks, rng)
        assert np.sum(out**2) == pytest.approx(np.sum(sig**2))
