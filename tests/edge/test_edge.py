"""Edge deployment: model export/import, on-device streaming inference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.edge import (
    DeviceSpec,
    EdgeDevice,
    bandwidth_savings,
    bundle_nbytes,
    export_model,
    import_model,
    load_bundle,
    save_bundle,
)
from repro.nn import Sequential
from repro.nn.layers import Conv1D, Dense, Flatten, MaxPool1D, ReLU


def trained_af_model(window=375, seed=0):
    """A small trained slow-vs-fast discriminator (AF proxy).

    375 samples = 10 s at 300 Hz downsampled by 8.
    """
    rng = np.random.default_rng(seed)
    model = Sequential(
        [
            Conv1D(1, 6, 7, rng),
            ReLU(),
            MaxPool1D(4),
            Flatten(),
            Dense(6 * ((window - 6) // 4), 12, rng),
            ReLU(),
            Dense(12, 2, rng),
        ]
    )
    t = np.arange(window)
    n = 300
    x = rng.standard_normal((n, 1, window)) * 0.3
    y = rng.integers(0, 2, n)
    # random phases, matching the arbitrary window alignment a
    # streaming device sees
    for i in range(n):
        period = 2.0 if y[i] == 1 else 9.0
        x[i, 0] += np.sin(t / period + rng.uniform(0, 2 * np.pi))
    # z-normalise per window, exactly as EdgeDevice.monitor does
    mu = x.mean(axis=2, keepdims=True)
    sd = x.std(axis=2, keepdims=True)
    x = (x - mu) / sd
    from repro.nn import SGD

    model.fit(x, y, epochs=6, batch_size=32, optimizer=SGD(0.03, 0.9))
    assert model.evaluate(x, y) > 0.9
    return model, (x, y)


@pytest.fixture(scope="module")
def model_and_data():
    return trained_af_model()


class TestExport:
    def test_roundtrip_preserves_predictions(self, model_and_data):
        model, (x, _) = model_and_data
        bundle = export_model(model)
        back = import_model(bundle)
        np.testing.assert_allclose(back.predict_proba(x[:8]), model.predict_proba(x[:8]))

    def test_bundle_format_guard(self):
        with pytest.raises(ValueError):
            import_model({"format": "onnx", "config": [], "weights": []})

    def test_npz_roundtrip(self, model_and_data, tmp_path):
        model, (x, _) = model_and_data
        path = tmp_path / "model.npz"
        save_bundle(export_model(model), path)
        back = import_model(load_bundle(path))
        np.testing.assert_allclose(
            back.predict_proba(x[:4]), model.predict_proba(x[:4]), rtol=1e-6
        )

    def test_bundle_size_accounting(self, model_and_data):
        model, _ = model_and_data
        bundle = export_model(model)
        expected = sum(w.nbytes for w in model.get_weights())
        assert bundle_nbytes(bundle) == expected


class TestEdgeDevice:
    def make_stream(self, seed=1, af=True, seconds=120):
        """A long 'wearable' stream: slow oscillation (normal) with an
        AF-like fast segment in the middle when af=True."""
        rng = np.random.default_rng(seed)
        fs = 300.0
        n = int(seconds * fs)
        t_full = np.arange(n)
        sig = np.sin(t_full / (9.0 * 8)) + rng.standard_normal(n) * 0.3
        if af:
            third = n // 3
            seg = slice(third, 2 * third)
            sig[seg] = np.sin(t_full[seg] / (2.0 * 8)) + rng.standard_normal(third) * 0.3
        return sig

    def test_monitor_reports_windows(self, model_and_data):
        model, _ = model_and_data
        device = EdgeDevice(export_model(model))
        report = device.monitor(self.make_stream(), window_s=10.0)
        assert report.n_windows == 12
        assert report.compute_s > 0
        assert 0 <= report.escalation_rate <= 1

    def test_af_segment_escalates_more(self, model_and_data):
        model, _ = model_and_data
        device = EdgeDevice(export_model(model))
        af_report = device.monitor(self.make_stream(af=True), window_s=10.0)
        quiet_report = device.monitor(self.make_stream(af=False), window_s=10.0)
        assert af_report.n_escalated > quiet_report.n_escalated

    def test_bandwidth_savings(self, model_and_data):
        model, _ = model_and_data
        device = EdgeDevice(export_model(model))
        report = device.monitor(self.make_stream(af=False), window_s=10.0)
        savings = bandwidth_savings(report)
        # quiet stream: almost everything stays on-device
        assert savings > 0.5

    def test_energy_and_battery(self, model_and_data):
        model, _ = model_and_data
        spec = DeviceSpec(battery_j=10.0)
        device = EdgeDevice(export_model(model), spec)
        report = device.monitor(self.make_stream(), window_s=10.0)
        assert report.energy_j > 0
        assert report.battery_fraction_used == pytest.approx(report.energy_j / 10.0)

    def test_slower_device_higher_latency(self, model_and_data):
        model, _ = model_and_data
        fast = EdgeDevice(export_model(model), DeviceSpec(speed=1.0))
        slow = EdgeDevice(export_model(model), DeviceSpec(speed=0.01))
        assert slow.window_latency() > fast.window_latency()

    def test_validation(self, model_and_data):
        model, _ = model_and_data
        device = EdgeDevice(export_model(model))
        with pytest.raises(ValueError):
            device.monitor(np.zeros(100), window_s=10.0)  # too short
        with pytest.raises(ValueError):
            device.monitor(np.zeros(10000), window_s=0.0)

    def test_threshold_controls_escalation(self, model_and_data):
        model, _ = model_and_data
        device = EdgeDevice(export_model(model))
        stream = self.make_stream()
        lax = device.monitor(stream, threshold=0.1)
        strict = device.monitor(stream, threshold=0.9)
        assert lax.n_escalated >= strict.n_escalated
