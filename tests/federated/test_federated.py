"""Federated learning: partitioning, aggregation, end-to-end rounds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated import (
    ClientData,
    FederatedConfig,
    Federation,
    dirichlet_partition,
    fedavg,
    fedavg_with_momentum,
    iid_partition,
    partition_stats,
    uniform_average,
)
from repro.nn import Sequential
from repro.nn.layers import Dense, ReLU
from repro.runtime import Runtime


def make_config(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(4, 12, rng), ReLU(), Dense(12, 2, rng)]).config()


def make_task_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 4))
    y = (x[:, 0] + x[:, 1] > 0).astype(int)
    return x, y


class TestPartition:
    def test_iid_covers_everything(self, rng):
        parts = iid_partition(103, 5, rng)
        allidx = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(allidx, np.arange(103))
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_iid_validation(self, rng):
        with pytest.raises(ValueError):
            iid_partition(10, 0, rng)
        with pytest.raises(ValueError):
            iid_partition(2, 5, rng)

    def test_dirichlet_covers_everything(self, rng):
        labels = np.array([0] * 60 + [1] * 40)
        parts = dirichlet_partition(labels, 4, alpha=0.5, rng=rng)
        allidx = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(allidx, np.arange(100))

    def test_dirichlet_low_alpha_skews(self):
        rng = np.random.default_rng(7)
        labels = np.array([0] * 500 + [1] * 500)
        parts = dirichlet_partition(labels, 4, alpha=0.05, rng=rng)
        stats = partition_stats(parts, labels)
        # at least one client should be strongly dominated by a class
        dominances = [
            max(h.values()) / max(sum(h.values()), 1)
            for h in stats["label_histograms"]
        ]
        assert max(dominances) > 0.8

    def test_dirichlet_high_alpha_near_iid(self):
        rng = np.random.default_rng(7)
        labels = np.array([0] * 500 + [1] * 500)
        parts = dirichlet_partition(labels, 4, alpha=100.0, rng=rng)
        stats = partition_stats(parts, labels)
        for h in stats["label_histograms"]:
            frac = h[0] / (h[0] + h[1])
            assert 0.3 < frac < 0.7

    def test_dirichlet_min_per_client(self, rng):
        labels = np.array([0] * 50 + [1] * 50)
        parts = dirichlet_partition(labels, 10, alpha=0.05, rng=rng, min_per_client=2)
        assert all(len(p) >= 2 for p in parts)

    def test_dirichlet_validation(self, rng):
        with pytest.raises(ValueError):
            dirichlet_partition(np.zeros(10), 2, alpha=0.0, rng=rng)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 8), st.floats(0.05, 10.0))
    def test_property_dirichlet_partition_is_partition(self, seed, k, alpha):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 3, 120)
        parts = dirichlet_partition(labels, k, alpha=alpha, rng=rng)
        allidx = np.concatenate(parts)
        assert len(allidx) == 120
        assert len(np.unique(allidx)) == 120


class TestAggregation:
    def test_fedavg_weighted(self):
        w1 = [np.array([0.0]), np.array([2.0])]
        w2 = [np.array([3.0]), np.array([4.0])]
        out = fedavg([w1, w2], n_samples=[1, 2])
        np.testing.assert_allclose(out[0], [2.0])
        np.testing.assert_allclose(out[1], [2.0 / 3 + 8.0 / 3])

    def test_fedavg_identity_single_client(self):
        w = [np.array([1.0, 2.0])]
        out = fedavg([w], n_samples=[10])
        np.testing.assert_allclose(out[0], w[0])

    def test_uniform_average(self):
        out = uniform_average([[np.array([0.0])], [np.array([4.0])]])
        np.testing.assert_allclose(out[0], [2.0])

    def test_fedavg_validation(self):
        with pytest.raises(ValueError):
            fedavg([], [])
        with pytest.raises(ValueError):
            fedavg([[np.zeros(2)]], [1, 2])
        with pytest.raises(ValueError):
            fedavg([[np.zeros(2)]], [0])

    def test_momentum_accelerates(self):
        g = [np.array([0.0])]
        updates = [[np.array([1.0])]]
        w1, v = fedavg_with_momentum(updates, [1], g, None, beta=0.9)
        np.testing.assert_allclose(w1[0], [1.0])
        w2, v = fedavg_with_momentum(updates, [1], w1, v, beta=0.9)
        # momentum pushes beyond the plain average
        assert w2[0][0] > 1.0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 6), st.integers(0, 1000))
    def test_property_fedavg_convex(self, k, seed):
        """FedAvg output lies within the per-coordinate envelope of the
        client weights (convex combination)."""
        rng = np.random.default_rng(seed)
        sets = [[rng.standard_normal(3)] for _ in range(k)]
        ns = rng.integers(1, 50, k).tolist()
        out = fedavg(sets, ns)[0]
        stacked = np.stack([s[0] for s in sets])
        assert (out <= stacked.max(axis=0) + 1e-12).all()
        assert (out >= stacked.min(axis=0) - 1e-12).all()


class TestFederation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FederatedConfig(rounds=0)
        with pytest.raises(ValueError):
            FederatedConfig(client_fraction=0.0)
        with pytest.raises(ValueError):
            FederatedConfig(aggregation="median")

    def test_client_data_validation(self):
        with pytest.raises(ValueError):
            ClientData(np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(ValueError):
            ClientData(np.zeros((0, 2)), np.zeros(0))

    def test_empty_federation_rejected(self):
        with pytest.raises(ValueError):
            Federation(make_config(), [])

    def _make_federation(self, n_clients=4, rounds=6, **cfg_kwargs):
        x, y = make_task_data()
        rng = np.random.default_rng(0)
        parts = iid_partition(len(x), n_clients, rng)
        clients = [ClientData(x[p], y[p]) for p in parts]
        cfg = FederatedConfig(rounds=rounds, local_epochs=2, lr=0.05, **cfg_kwargs)
        return Federation(make_config(), clients, cfg), x, y

    def test_convergence_iid(self):
        fed, x, y = self._make_federation()
        history = fed.fit(x, y)
        assert len(history) == 6
        assert history[-1].global_accuracy > 0.85
        # learning actually progressed
        assert history[-1].global_accuracy >= history[0].global_accuracy - 0.05

    def test_convergence_under_threads_runtime(self):
        with Runtime(executor="threads", max_workers=4):
            fed, x, y = self._make_federation(rounds=4)
            history = fed.fit(x, y)
        assert history[-1].global_accuracy > 0.8

    def test_client_sampling_fraction(self):
        fed, x, y = self._make_federation(n_clients=8, rounds=3, client_fraction=0.5)
        fed.fit()
        for m in fed.history:
            assert len(m.selected_clients) == 4

    def test_round_task_graph(self):
        """One client_update task per selected client + one aggregate
        per round — the DAG the paper's future-work section sketches."""
        with Runtime(executor="sequential") as rt:
            fed, x, y = self._make_federation(n_clients=5, rounds=2)
            fed.fit()
            counts = rt.graph.count_by_name()
        assert counts["client_update"] == 2 * 5
        assert counts["aggregate"] == 2

    def test_non_iid_still_learns(self):
        x, y = make_task_data(n=600, seed=3)
        rng = np.random.default_rng(1)
        parts = dirichlet_partition(y, 5, alpha=0.3, rng=rng, min_per_client=10)
        clients = [ClientData(x[p], y[p]) for p in parts]
        cfg = FederatedConfig(rounds=8, local_epochs=2, lr=0.05, seed=1)
        fed = Federation(make_config(), clients, cfg)
        history = fed.fit(x, y)
        assert history[-1].global_accuracy > 0.75

    def test_server_momentum_variant(self):
        fed, x, y = self._make_federation(rounds=4, server_momentum=0.5)
        history = fed.fit(x, y)
        assert history[-1].global_accuracy > 0.7

    def test_global_model_usable(self):
        fed, x, y = self._make_federation(rounds=2)
        fed.fit()
        model = fed.global_model()
        preds = model.predict(x[:10])
        assert preds.shape == (10,)
