"""Graceful degradation of federated rounds under client failures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.federated import (
    ClientData,
    FederatedConfig,
    FederatedRoundError,
    Federation,
)
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.runtime import Runtime, faults


def make_config(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(4, 8, rng), ReLU(), Dense(8, 2, rng)]).config()


def make_clients(n=4, seed=0):
    rng = np.random.default_rng(seed)
    return [
        ClientData(
            x=rng.standard_normal((24, 4)),
            y=(rng.standard_normal(24) > 0).astype(int),
        )
        for _ in range(n)
    ]


def test_quorum_validation():
    with pytest.raises(ValueError):
        FederatedConfig(quorum=0.0)
    with pytest.raises(ValueError):
        FederatedConfig(quorum=1.5)


def test_round_proceeds_with_quorum_of_survivors():
    fed = Federation(
        make_config(), make_clients(), FederatedConfig(rounds=1, quorum=0.5, seed=1)
    )
    before = [w.copy() for w in fed.global_weights]
    with faults.inject(faults.fail_nth("client_update", 2)):
        with Runtime(executor="threads"):
            metrics = fed.run_round()
    assert len(metrics.dropped_clients) == 1
    # the round still updated the global model from the survivors
    assert any(not np.allclose(a, b) for a, b in zip(before, fed.global_weights))


def test_dropped_clients_logged_to_provenance():
    fed = Federation(
        make_config(), make_clients(), FederatedConfig(rounds=1, quorum=0.5, seed=1)
    )
    with faults.inject(faults.fail_nth("client_update", 2)):
        with Runtime(executor="threads"):
            fed.run_round()
    (entry,) = fed.provenance_log
    assert entry["round"] == 0
    assert len(entry["dropped_clients"]) == 1
    assert len(entry["survivors"]) == 3
    assert entry["dropped_clients"][0] not in entry["survivors"]
    assert entry["errors"]  # the cause is recorded


def test_below_quorum_raises_round_error():
    fed = Federation(
        make_config(), make_clients(), FederatedConfig(rounds=1, quorum=0.9, seed=1)
    )
    with faults.inject(faults.fail_nth("client_update", 1, 3)):
        with Runtime(executor="threads"):
            with pytest.raises(FederatedRoundError, match="quorum"):
                fed.run_round()


def test_strict_quorum_keeps_legacy_failure_behaviour():
    """At quorum=1.0 (default) a client failure fails the round."""
    from repro.runtime.exceptions import CancelledTaskError, TaskExecutionError

    fed = Federation(make_config(), make_clients(), FederatedConfig(rounds=1, seed=1))
    with faults.inject(faults.fail_nth("client_update", 1)):
        with Runtime(executor="threads"):
            with pytest.raises((TaskExecutionError, CancelledTaskError)):
                fed.run_round()


def test_clean_round_logs_no_drops():
    fed = Federation(
        make_config(), make_clients(), FederatedConfig(rounds=1, quorum=0.5, seed=1)
    )
    with Runtime(executor="threads"):
        metrics = fed.run_round()
    assert metrics.dropped_clients == []
    (entry,) = fed.provenance_log
    assert entry["dropped_clients"] == []
    assert entry["errors"] == []


def test_quorum_with_server_momentum_path():
    fed = Federation(
        make_config(),
        make_clients(),
        FederatedConfig(rounds=1, quorum=0.5, server_momentum=0.9, seed=1),
    )
    with faults.inject(faults.fail_nth("client_update", 2)):
        with Runtime(executor="threads"):
            metrics = fed.run_round()
    assert len(metrics.dropped_clients) == 1
