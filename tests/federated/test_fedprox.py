"""FedProx client updates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.federated import ClientData, FederatedConfig, Federation, dirichlet_partition
from repro.nn import Sequential
from repro.nn.layers import Dense, ReLU
from repro.runtime import Runtime


def make_config(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(4, 12, rng), ReLU(), Dense(12, 2, rng)]).config()


def make_non_iid_federation(mu, rounds=6, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((500, 4))
    y = (x[:, 0] + x[:, 1] > 0).astype(int)
    parts = dirichlet_partition(y, 5, alpha=0.2, rng=rng, min_per_client=10)
    clients = [ClientData(x[p], y[p]) for p in parts]
    cfg = FederatedConfig(
        rounds=rounds, local_epochs=3, lr=0.05, proximal_mu=mu, seed=seed
    )
    return Federation(make_config(), clients, cfg), x, y


def test_mu_validation():
    with pytest.raises(ValueError):
        FederatedConfig(proximal_mu=-0.1)


def test_fedprox_learns_non_iid():
    fed, x, y = make_non_iid_federation(mu=0.1)
    history = fed.fit(x, y)
    assert history[-1].global_accuracy > 0.75


def test_fedprox_task_name_in_graph():
    with Runtime(executor="sequential") as rt:
        fed, x, y = make_non_iid_federation(mu=0.1, rounds=1)
        fed.fit()
        counts = rt.graph.count_by_name()
    assert counts.get("client_update_prox") == 5
    assert "client_update" not in counts


def test_high_mu_bounds_client_drift():
    """With a huge proximal pull, one round barely moves the weights;
    with mu=0 it moves far more."""

    def drift(mu):
        fed, x, y = make_non_iid_federation(mu=mu, rounds=1, seed=2)
        before = [w.copy() for w in fed.global_weights]
        fed.fit()
        after = fed.global_weights
        return float(
            np.sqrt(sum(np.sum((a - b) ** 2) for a, b in zip(after, before)))
        )

    assert drift(mu=50.0) < 0.3 * drift(mu=0.0)


def test_mu_zero_matches_fedavg_numerics():
    """FedProx with mu=0 is exactly FedAvg's local SGD."""
    fed_prox, _, _ = make_non_iid_federation(mu=0.0, rounds=2, seed=5)
    fed_prox.fit()
    fed_avg, _, _ = make_non_iid_federation(mu=None, rounds=2, seed=5)
    fed_avg.fit()
    for a, b in zip(fed_prox.global_weights, fed_avg.global_weights):
        np.testing.assert_allclose(a, b, rtol=1e-8, atol=1e-10)
