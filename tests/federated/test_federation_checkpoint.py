"""Round checkpoints in Federation.fit: resume to bit-identical weights."""

from __future__ import annotations

import numpy as np
import pytest

from repro.federated import ClientData, FederatedConfig, Federation
from repro.nn import Sequential
from repro.nn.layers import Dense, ReLU
from repro.runtime import Runtime


def make_config(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(4, 8, rng), ReLU(), Dense(8, 2, rng)]).config()


def make_clients(n_clients=3, per_client=40, seed=0):
    rng = np.random.default_rng(seed)
    clients = []
    for _ in range(n_clients):
        x = rng.standard_normal((per_client, 4))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        clients.append(ClientData(x, y))
    return clients


def weights_equal(a, b):
    return len(a) == len(b) and all(np.array_equal(w1, w2) for w1, w2 in zip(a, b))


def run_federation(rounds, checkpoint_dir=None, fed_cfg=None):
    cfg = fed_cfg or FederatedConfig(
        rounds=rounds, local_epochs=1, lr=0.1, client_fraction=0.67, seed=0
    )
    fed = Federation(make_config(), make_clients(), cfg)
    with Runtime(executor="sequential"):
        fed.fit(checkpoint_dir=checkpoint_dir)
    return fed


def test_resume_matches_uninterrupted_run(tmp_path):
    baseline = run_federation(rounds=4)

    run_federation(rounds=2, checkpoint_dir=tmp_path)  # "killed" after 2
    resumed = run_federation(rounds=4, checkpoint_dir=tmp_path)

    assert len(resumed.history) == 4
    assert weights_equal(resumed.global_weights, baseline.global_weights)
    # client selections per round replayed identically (RNG state saved)
    assert [m.selected_clients for m in resumed.history] == [
        m.selected_clients for m in baseline.history
    ]


def test_resume_restores_history_and_provenance(tmp_path):
    run_federation(rounds=2, checkpoint_dir=tmp_path)
    resumed = run_federation(rounds=3, checkpoint_dir=tmp_path)
    assert [m.round for m in resumed.history] == [0, 1, 2]
    assert [p["round"] for p in resumed.provenance_log] == [0, 1, 2]


def test_fully_trained_federation_does_not_retrain(tmp_path):
    done = run_federation(rounds=3, checkpoint_dir=tmp_path)
    again = run_federation(rounds=3, checkpoint_dir=tmp_path)
    assert weights_equal(again.global_weights, done.global_weights)
    assert len(again.history) == 3


def test_server_momentum_state_survives_resume(tmp_path):
    def cfg(rounds):
        return FederatedConfig(
            rounds=rounds, local_epochs=1, lr=0.1, server_momentum=0.9, seed=0
        )

    baseline = run_federation(rounds=4, fed_cfg=cfg(4))
    run_federation(rounds=2, checkpoint_dir=tmp_path, fed_cfg=cfg(2))
    resumed = run_federation(rounds=4, checkpoint_dir=tmp_path, fed_cfg=cfg(4))
    assert weights_equal(resumed.global_weights, baseline.global_weights)


def test_without_store_fit_twice_keeps_training():
    """No checkpoint store: a second fit() continues (legacy behavior)."""
    fed = Federation(
        make_config(), make_clients(), FederatedConfig(rounds=2, lr=0.1, seed=0)
    )
    with Runtime(executor="sequential"):
        fed.fit()
        fed.fit()
    assert len(fed.history) == 4


def test_checkpoint_every_validation(tmp_path):
    fed = Federation(make_config(), make_clients(), FederatedConfig(rounds=2))
    with pytest.raises(ValueError):
        fed.fit(checkpoint_dir=tmp_path, checkpoint_every=0)
