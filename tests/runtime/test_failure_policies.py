"""on_failure policy semantics, under both executors."""

from __future__ import annotations

import pytest

from repro.runtime import (
    CANCEL_SUCCESSORS,
    FAIL,
    IGNORE,
    RETRY,
    CancelledTaskError,
    Runtime,
    TaskDefinitionError,
    TaskExecutionError,
    WorkflowAbortedError,
    task,
    wait_on,
)

EXECUTORS = ["sequential", "threads"]


@pytest.mark.parametrize("executor", EXECUTORS)
def test_cancel_successors_is_default(executor):
    """Default policy: descendants cancelled, independent branch lives."""

    @task(returns=1)
    def bad():
        raise ValueError("boom")

    @task(returns=1)
    def child(v):
        return v

    @task(returns=1)
    def independent():
        return 99

    with Runtime(executor=executor):
        c = child(bad())
        ok = independent()
        with pytest.raises((TaskExecutionError, CancelledTaskError)):
            wait_on(c)
        assert wait_on(ok) == 99


@pytest.mark.parametrize("executor", EXECUTORS)
def test_fail_aborts_whole_workflow(executor):
    @task(returns=1, on_failure=FAIL)
    def fatal():
        raise RuntimeError("die")

    @task(returns=1)
    def other(v):
        return v

    with Runtime(executor=executor) as rt:
        f = fatal()
        with pytest.raises(TaskExecutionError):
            wait_on(f)
        assert rt.aborted is not None
        with pytest.raises(WorkflowAbortedError):
            other(1)
        with pytest.raises(WorkflowAbortedError):
            rt.barrier()


@pytest.mark.parametrize("executor", EXECUTORS)
def test_ignore_resolves_to_default_and_runs_successors(executor):
    @task(returns=1, on_failure=IGNORE, failure_default=-1)
    def bad():
        raise ValueError("swallowed")

    @task(returns=1)
    def child(v):
        return v * 10

    with Runtime(executor=executor) as rt:
        out = wait_on(child(bad()))
        assert out == -10
        assert rt.stats()["ignored_failures"] == 1


@pytest.mark.parametrize("executor", EXECUTORS)
def test_ignore_multi_return_default_shapes(executor):
    @task(returns=2, on_failure=IGNORE, failure_default=(7, 8))
    def bad2():
        raise ValueError("x")

    with Runtime(executor=executor):
        a, b = bad2()
        assert wait_on(a) == 7
        assert wait_on(b) == 8


@pytest.mark.parametrize("executor", EXECUTORS)
def test_retry_policy_uses_config_default_budget(executor):
    calls = {"n": 0}

    @task(returns=1, on_failure=RETRY)
    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise OSError("transient")
        return 5

    # default_max_retries=2 -> three attempts in total
    with Runtime(executor=executor):
        assert wait_on(flaky()) == 5
    assert calls["n"] == 3


@pytest.mark.parametrize("executor", EXECUTORS)
def test_retry_exhaustion_falls_back_to_cancel(executor):
    @task(returns=1, on_failure=RETRY, max_retries=1)
    def always_bad():
        raise ValueError("permanent")

    @task(returns=1)
    def child(v):
        return v

    with Runtime(executor=executor) as rt:
        c = child(always_bad())
        with pytest.raises((TaskExecutionError, CancelledTaskError)):
            wait_on(c)
        assert rt.stats()["retries"] == 1
        assert rt.aborted is None


def test_unknown_policy_rejected():
    with pytest.raises(TaskDefinitionError):

        @task(returns=1, on_failure="EXPLODE")
        def f():
            return 1


def test_retry_attempts_are_distinct_graph_nodes():
    calls = {"n": 0}

    @task(returns=1, max_retries=2)
    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise OSError("transient")
        return 1

    with Runtime(executor="sequential") as rt:
        wait_on(flaky())
        trace = rt.trace()
        graph = rt.graph.snapshot()
    attempts = sorted(trace.records(name="flaky"), key=lambda r: r.attempt)
    assert [r.attempt for r in attempts] == [0, 1, 2]
    assert [r.status for r in attempts] == ["failed", "failed", "done"]
    # each attempt is its own node, chained by retry edges
    ids = [r.task_id for r in attempts]
    assert len(set(ids)) == 3
    for prev, nxt in zip(ids, ids[1:]):
        assert graph.edges[prev, nxt]["kind"] == "retry"


def test_cancellation_propagates_in_dependency_order():
    """Transitive descendants of a failed task are all cancelled."""

    @task(returns=1)
    def bad():
        raise ValueError("boom")

    @task(returns=1)
    def step(v):
        return v

    with Runtime(executor="sequential") as rt:
        a = step(bad())
        b = step(a)
        c = step(b)
        for fut in (a, b, c):
            with pytest.raises((TaskExecutionError, CancelledTaskError)):
                wait_on(fut)
        states = rt.stats()["by_state"]
        assert states.get("cancelled", 0) == 3
