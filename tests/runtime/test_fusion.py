"""Task-fusion optimizer: correctness, accounting and demotion.

Fusion collapses chains of small pure tasks (and map-map stages, which
are N parallel chains) into single scheduled units whose members run
inline on one thread.  It must be invisible everywhere except the
scheduler counters: same values, same per-task trace records, same
stats/metrics reconciliation, same retry and cancellation semantics.
"""

from __future__ import annotations

import pytest

from repro.runtime import (
    INOUT,
    CancelledTaskError,
    Runtime,
    TaskExecutionError,
    task,
    wait_on,
)
from repro.runtime import observability as obs
from repro.runtime.config import RuntimeConfig
from repro.runtime.engine import _FUSE_MAX


@task(returns=1)
def inc(x):
    return x + 1


@task(returns=1)
def double(x):
    return x * 2


def fused_runtime(**kw):
    kw.setdefault("executor", "threads")
    kw.setdefault("max_workers", 4)
    kw.setdefault("fusion", True)
    return Runtime(config=RuntimeConfig(**kw))


def sched(rt):
    return rt.stats()["scheduler"]


# ----------------------------------------------------------------------
# values & counters
# ----------------------------------------------------------------------
def test_chain_fuses_into_one_unit():
    with fused_runtime() as rt:
        f = rt.submit_many([inc.defer(0)])[0]
        for _ in range(7):
            f = rt.submit_many([inc.defer(f)])[0]
        assert wait_on(f) == 8
        s = sched(rt)
        assert s["fused_units"] == 1
        assert s["fused_tasks"] == 8


def test_map_map_fuses_one_unit_per_element():
    width, depth = 8, 5
    with fused_runtime() as rt:
        futs = rt.submit_many([inc.defer(i) for i in range(width)])
        for _ in range(depth - 1):
            futs = rt.submit_many([double.defer(f) for f in futs])
        assert wait_on(futs) == [(i + 1) * 2 ** (depth - 1) for i in range(width)]
        s = sched(rt)
        assert s["fused_units"] == width
        assert s["fused_tasks"] == width * depth


def test_single_submit_chain_fuses_opportunistically():
    """Plain submit() calls flow through the same buffering: a linear
    chain built one call at a time still fuses until the first wait."""
    with fused_runtime() as rt:
        f = inc(0)
        for _ in range(5):
            f = inc(f)
        assert wait_on(f) == 6
        assert sched(rt)["fused_tasks"] == 6


def test_fusion_off_runs_identically():
    def workload(rt):
        futs = rt.submit_many([inc.defer(i) for i in range(6)])
        futs = rt.submit_many([double.defer(f) for f in futs])
        return wait_on(futs)

    with fused_runtime() as rt:
        fused = workload(rt)
        assert sched(rt)["fused_tasks"] == 12
    with fused_runtime(fusion=False) as rt:
        unfused = workload(rt)
        assert sched(rt)["fused_tasks"] == 0
    assert fused == unfused


def test_singleton_unit_demotes_to_plain_task():
    """A lone eligible task opens a unit but nothing extends it: the
    flush demotes it back to a plain enqueue, not a 1-member unit."""
    with fused_runtime() as rt:
        f = rt.submit_many([inc.defer(41)])[0]
        assert wait_on(f) == 42
        s = sched(rt)
        assert s["fused_units"] == 0
        assert s["fused_tasks"] == 0


def test_unit_capped_at_fuse_max():
    depth = _FUSE_MAX + 10
    with fused_runtime() as rt:
        f = rt.submit_many([inc.defer(0)])[0]
        for _ in range(depth - 1):
            f = rt.submit_many([inc.defer(f)])[0]
        assert wait_on(f) == depth
        s = sched(rt)
        # The cap closes the unit; the overflow links depend on a
        # buffered (still-pending) tail, so they run unfused — only a
        # dependency-free head opens a fresh unit.
        assert s["fused_units"] == 1
        assert s["fused_tasks"] == _FUSE_MAX


def test_consumed_intermediate_breaks_the_chain():
    """A second consumer of an intermediate future must not fuse past
    it — the chain rule requires exactly one consumer so far."""
    with fused_runtime() as rt:
        a = rt.submit_many([inc.defer(0)])[0]
        b = rt.submit_many([inc.defer(a)])[0]
        c = rt.submit_many([double.defer(a)])[0]  # second consumer of a
        assert wait_on([b, c]) == [2, 2]


# ----------------------------------------------------------------------
# eligibility gates
# ----------------------------------------------------------------------
def test_impure_tasks_do_not_fuse():
    np = pytest.importorskip("numpy")

    @task(acc=INOUT)
    def accumulate(acc, v):
        acc += v

    @task(returns=1)
    def read_sum(arr):
        return float(arr.sum())

    with fused_runtime() as rt:
        acc = np.zeros(4)
        rt.submit_many([accumulate.defer(acc, 1.0)])
        rt.submit_many([accumulate.defer(acc, 2.0)])
        assert wait_on(read_sum(acc)) == pytest.approx(12.0)
        assert sched(rt)["fused_tasks"] == 0


def test_timeout_tasks_do_not_fuse():
    @task(returns=1, time_out=30.0)
    def timed(x):
        return x

    with fused_runtime() as rt:
        f = rt.submit_many([timed.defer(1)])[0]
        g = rt.submit_many([timed.defer(f)])[0]
        assert wait_on(g) == 1
        assert sched(rt)["fused_tasks"] == 0


# ----------------------------------------------------------------------
# failure, retry & cancellation semantics
# ----------------------------------------------------------------------
def test_mid_unit_failure_demotes_and_retries():
    state = {"left": 1}

    @task(returns=1, retries=2)
    def flaky(x):
        if state["left"] > 0:
            state["left"] -= 1
            raise OSError("transient")
        return x + 10

    with fused_runtime() as rt:
        f = rt.submit_many([inc.defer(0)])[0]
        f = rt.submit_many([flaky.defer(f)])[0]
        f = rt.submit_many([inc.defer(f)])[0]
        assert wait_on(f) == 12  # 1 -> (+10 after one retry) -> +1
        assert rt.stats()["retries"] == 1


def test_mid_unit_failure_cancels_successors():
    @task(returns=1, retries=0)
    def bad(x):
        raise ValueError("boom")

    with fused_runtime() as rt:
        f = rt.submit_many([inc.defer(0)])[0]
        g = rt.submit_many([bad.defer(f)])[0]
        h = rt.submit_many([inc.defer(g)])[0]
        with pytest.raises((TaskExecutionError, CancelledTaskError)):
            wait_on(h)
        with pytest.raises(TaskExecutionError):
            wait_on(g)
        assert wait_on(f) == 1  # the member before the failure completed


# ----------------------------------------------------------------------
# accounting: stats, metrics, trace, provenance
# ----------------------------------------------------------------------
def _chain_and_map_workload(rt):
    futs = rt.submit_many([inc.defer(i) for i in range(4)])
    futs = rt.submit_many([double.defer(f) for f in futs])
    head = rt.submit_many([inc.defer(futs[0])])[0]
    return wait_on([head, *futs[1:]])


def test_stats_and_metrics_reconcile_exactly():
    with fused_runtime(observability="metrics") as rt:
        _chain_and_map_workload(rt)
        rt.barrier()
        assert obs.reconcile(rt) == []
        assert obs.reconcile_trace(rt) == []


def test_every_member_has_its_own_trace_record():
    with fused_runtime() as rt:
        _chain_and_map_workload(rt)
        rt.barrier()
        trace = rt.trace()
        s = sched(rt)
        fused_records = [r for r in trace if r.fused_id is not None]
        assert len(trace) == 9
        assert len(fused_records) == s["fused_tasks"]
        # members of one unit share its id and ran on one thread
        by_unit: dict[int, list] = {}
        for rec in fused_records:
            by_unit.setdefault(rec.fused_id, []).append(rec)
        assert len(by_unit) == s["fused_units"]
        for members in by_unit.values():
            assert len({m.worker for m in members}) == 1
            for m in members:
                assert m.status == "done"
                assert m.t_end >= m.t_start
                assert m.queue_wait >= 0.0


def test_fused_graph_states_are_terminal():
    with fused_runtime() as rt:
        _chain_and_map_workload(rt)
        rt.barrier()
        snap = rt.graph.snapshot()
        assert snap.number_of_nodes() == 9
        assert all(d.get("state") == "done" for _, d in snap.nodes(data=True))


def test_checkpoint_store_falls_back_to_full_path(tmp_path):
    """With a checkpoint store attached, members run the full execute
    path (signatures, store writes) and a resume restores them."""
    with fused_runtime(checkpoint_dir=str(tmp_path)) as rt:
        f = rt.submit_many([inc.defer(0)])[0]
        f = rt.submit_many([inc.defer(f)])[0]
        assert wait_on(f) == 2
    with fused_runtime(checkpoint_dir=str(tmp_path)) as rt:
        f = rt.submit_many([inc.defer(0)])[0]
        f = rt.submit_many([inc.defer(f)])[0]
        assert wait_on(f) == 2
        assert rt.trace().n_restored == 2


def test_repro_fusion_env_enables(monkeypatch):
    monkeypatch.setenv("REPRO_FUSION", "1")
    cfg = RuntimeConfig.from_env(executor="threads", max_workers=2)
    assert cfg.fusion is True
    with Runtime(config=cfg) as rt:
        f = rt.submit_many([inc.defer(0)])[0]
        f = rt.submit_many([inc.defer(f)])[0]
        assert wait_on(f) == 2
        assert sched(rt)["fused_tasks"] == 2


def test_sequential_executor_ignores_fusion():
    with Runtime(config=RuntimeConfig(executor="sequential", fusion=True)) as rt:
        f = rt.submit_many([inc.defer(0)])[0]
        assert wait_on(f) == 1
        assert sched(rt)["fused_tasks"] == 0


# ----------------------------------------------------------------------
# event-only waiters must flush buffered units (deadlock regression)
# ----------------------------------------------------------------------
def test_future_result_flushes_buffered_unit():
    """``submit(); result()`` with no wait_on/barrier anywhere: the
    last-touched unit stays buffered at submit() return, so result()
    itself must arm it or the wait deadlocks forever."""
    with fused_runtime() as rt:
        f = inc(41)
        assert f.result(timeout=10) == 42


def test_future_result_flushes_buffered_chain():
    with fused_runtime() as rt:
        f = inc(0)
        for _ in range(5):
            f = inc(f)
        assert f.result(timeout=10) == 6
        assert sched(rt)["fused_tasks"] == 6


def test_future_result_flushes_submit_many_unit():
    with fused_runtime() as rt:
        f = rt.submit_many([inc.defer(0)])[0]
        f = rt.submit_many([inc.defer(f)])[0]
        assert f.result(timeout=10) == 2


def test_done_polling_flushes_buffered_unit():
    """A ``while not f.done`` loop is the other event-only
    synchronisation shape: polling must make progress too."""
    import time as _time

    with fused_runtime() as rt:
        f = inc(0)
        f = inc(f)
        deadline = _time.monotonic() + 10
        while not f.done:
            assert _time.monotonic() < deadline, "done polling deadlocked"
            _time.sleep(0.001)
        assert f.result() == 2


def test_taskcall_kwargs_mutation_does_not_leak():
    """TaskCall is public: a caller may mutate its kwargs dict after
    submit_many() returns, while the task is still buffered in an open
    fused unit — the submitted arguments must be unaffected."""

    @task(returns=1)
    def add_kw(*, x=0):
        return x + 1

    from repro.runtime.model import TaskCall

    with fused_runtime() as rt:
        kw = {"x": 1}
        f = rt.submit_many([TaskCall(add_kw.spec, (), kw)])[0]
        kw["x"] = 999  # the singleton unit is still buffered here
        assert f.result(timeout=10) == 2
