"""Regression tests for engine fixes: all-scope shutdown drain and the
condition-variable wait replacing the busy-loop."""

from __future__ import annotations

import threading
import time

from repro.runtime import Runtime, task, wait_on
from repro.runtime import engine


def test_shutdown_waits_for_all_live_scopes():
    """shutdown(wait=True) must drain tasks submitted from *every*
    thread's scope, not only the root scope."""
    box: list[int] = []

    @task(returns=1)
    def slow_mark():
        time.sleep(0.1)
        box.append(1)
        return 1

    rt = Runtime(executor="threads", max_workers=2)
    rt.__enter__()

    def submit_from_own_scope():
        # a fresh thread gets its own scope, distinct from the root one
        engine._tls.scope = engine.Scope(rt)
        slow_mark()

    t = threading.Thread(target=submit_from_own_scope)
    t.start()
    t.join()
    try:
        assert rt.unfinished >= 1  # task still pending when shutdown starts
        rt.shutdown(wait=True)
        assert box == [1]
        assert rt.unfinished == 0
    finally:
        rt.__exit__(None, None, None)  # pop the runtime stack


def test_context_exit_drains_background_submissions():
    box: list[int] = []

    @task(returns=1)
    def slow_mark():
        time.sleep(0.02)
        box.append(1)
        return 1

    with Runtime(executor="threads", max_workers=2) as rt:
        for _ in range(3):
            slow_mark()
        # no barrier: __exit__ must wait for the three tasks
    assert box == [1, 1, 1]
    assert rt.unfinished == 0


def test_help_until_parks_instead_of_spinning():
    """A long wait_on on an idle runtime must park on the condition
    variable, not spin: the wakeup count stays far below what a
    0.5 ms busy-loop would produce."""

    @task(returns=1)
    def napper():
        time.sleep(0.3)
        return 1

    with Runtime(executor="threads", max_workers=2) as rt:
        assert wait_on(napper()) == 1
        wakeups = rt.stats()["idle_wakeups"]
    # Event-driven scheduler: the waiter parks at most once for the
    # napper (plus one spurious re-check); 0.3 s of waiting under the
    # old 50 ms safety-net poll gave ~6, the busy-loop >= 300.
    assert wakeups <= 2


def test_idle_wakeups_exposed_in_stats():
    with Runtime(executor="sequential") as rt:
        assert "idle_wakeups" in rt.stats()


# ----------------------------------------------------------------------
# submit-path correctness: submit() / submit_many() parity
# ----------------------------------------------------------------------
def test_submit_many_empty_batch_after_shutdown_raises():
    """The empty batch must hit the same state check as submit(): a
    shut-down runtime rejects submit_many([]) instead of silently
    returning []."""
    import pytest

    from repro.runtime import RuntimeStateError

    @task(returns=1)
    def one():
        return 1

    rt = Runtime(executor="threads", max_workers=1)
    with rt:
        pass  # clean shutdown
    with pytest.raises(RuntimeStateError):
        rt.submit(one.spec, (), {})
    with pytest.raises(RuntimeStateError):
        rt.submit_many([])
    with pytest.raises(RuntimeStateError):
        rt.submit_many([one.defer()])


def test_submit_many_empty_batch_after_abort_raises():
    """Same parity for the aborted state: an on_failure='FAIL' abort
    rejects later submit_many([]) exactly like submit()."""
    import pytest

    from repro.runtime import TaskExecutionError, WorkflowAbortedError
    from repro.runtime.failures import FAIL

    @task(returns=1, on_failure=FAIL)
    def fatal():
        raise RuntimeError("die")

    @task(returns=1)
    def one():
        return 1

    with Runtime(executor="threads", max_workers=1) as rt:
        f = fatal()
        with pytest.raises(TaskExecutionError):
            wait_on(f)
        assert rt.aborted is not None
        with pytest.raises(WorkflowAbortedError):
            one(1)
        with pytest.raises(WorkflowAbortedError):
            rt.submit_many([])
        rt._aborted = None  # let the context exit drain cleanly


def test_submit_many_accepts_tuple_and_list_forms():
    @task(returns=1)
    def add(a, b=0):
        return a + b

    with Runtime(executor="threads", max_workers=2) as rt:
        futs = rt.submit_many(
            [
                add.defer(1, b=2),
                (add, (3,)),
                [add, [4], {"b": 5}],
                (add.spec, (6,), {"b": 7}),
            ]
        )
        assert wait_on(futs) == [3, 3, 9, 13]


def test_submit_many_bad_item_names_type_and_index():
    import pytest

    @task(returns=1)
    def one():
        return 1

    with Runtime(executor="threads", max_workers=1) as rt:
        with pytest.raises(TypeError) as err:
            rt.submit_many([one.defer(), "nonsense"])
        msg = str(err.value)
        assert "str" in msg
        assert "batch index 1" in msg
        with pytest.raises(TypeError) as err:
            rt.submit_many([(one, (), {}, None, None)])  # 5-tuple: too long
        assert "batch index 0" in str(err.value)
