"""`repro checkpoint` — inspect / verify / prune a store from the CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.faults import _flip_last_byte


@pytest.fixture()
def store(tmp_path):
    s = CheckpointStore(tmp_path / "ckpt")
    s.put("sig-a", "train", (1, 2))
    s.put("sig-b", "train", (3,))
    s.put("sig-c", "merge", (4,))
    return s


def test_inspect_lists_entries(store, capsys):
    assert main(["checkpoint", "inspect", "--dir", str(store.root)]) == 0
    out = capsys.readouterr().out
    assert "entries  : 3" in out
    assert "train: 2" in out
    assert "merge: 1" in out


def test_verify_clean_store(store, capsys):
    assert main(["checkpoint", "verify", "--dir", str(store.root)]) == 0
    out = capsys.readouterr().out
    assert "ok       : 3" in out
    assert "corrupt  : 0" in out


def test_verify_flags_corruption(store, capsys):
    victim = next(store.entries())
    _flip_last_byte(victim.path)
    assert main(["checkpoint", "verify", "--dir", str(store.root)]) == 1
    out = capsys.readouterr().out
    assert "corrupt  : 1" in out


def test_prune_requires_a_selector(store, capsys):
    assert main(["checkpoint", "prune", "--dir", str(store.root)]) == 2
    assert "--task/--corrupt/--older-than/--all" in capsys.readouterr().err


def test_prune_by_task(store, capsys):
    assert main(["checkpoint", "prune", "--dir", str(store.root), "--task", "train"]) == 0
    assert "removed 2 entries" in capsys.readouterr().out
    assert store.get("sig-c") == (4,)


def test_prune_all(store, capsys):
    assert main(["checkpoint", "prune", "--dir", str(store.root), "--all"]) == 0
    assert "removed 3 entries" in capsys.readouterr().out


def test_missing_dir_fails(tmp_path, capsys):
    assert main(["checkpoint", "inspect", "--dir", str(tmp_path / "nope")]) == 1
    assert "no checkpoint store" in capsys.readouterr().err
