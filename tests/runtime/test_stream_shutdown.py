"""Runtime/streaming lifecycle edges: shutdown-drain of stream scopes,
EOS with in-flight windows, and the pending-wait fused-flush hook
firing from stream-stage threads."""

from __future__ import annotations

import itertools
import threading
import time

import pytest

from repro.runtime import Runtime, task, wait_on
from repro.runtime.config import RuntimeConfig
from repro.streaming import StreamGraph, TumblingCountWindow


@task(returns=1)
def inc(x):
    return x + 1


@task(returns=1)
def double(x):
    return x * 2


def runtime(**kw):
    kw.setdefault("executor", "threads")
    kw.setdefault("max_workers", 2)
    kw.setdefault("debug_invariants", True)
    return Runtime(config=RuntimeConfig(**kw))


def test_eos_flushes_in_flight_windows_through_shutdown():
    """A bounded feed whose length does not divide the window size: the
    open (partial) window must flush at EOS and still be delivered when
    ``shutdown(wait=True)`` runs with the graph already draining."""
    rt = runtime()
    g = StreamGraph(rt, name="g", capacity=4)
    src = g.source(range(10), name="src")
    w = g.window(src, TumblingCountWindow(4), fn=list)
    sink = g.sink(w)
    g.start()
    # wait for EOS to be emitted (source thread done) but do NOT join
    # the graph: the partial window [8, 9] is still in flight when
    # shutdown's drain hook joins the stages before the unfinished wait.
    g.stages[0].thread.join(timeout=10.0)
    rt.shutdown(wait=True)
    g.join(timeout=30.0)
    assert sink.collected == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
    assert g.slots_leaked() == 0
    assert rt.check_invariants(quiesced=True) == []


def test_shutdown_mid_flight_drains_consistently():
    """shutdown(wait=True) against a pipeline still pumping: whatever
    was emitted must come out as exact reference windows (including the
    flushed partial), with zero leaked slots."""
    rt = runtime()
    g = StreamGraph(rt, name="g", capacity=4)
    src = g.source(itertools.count(), name="src", rate=2000.0)
    m = g.map(src, lambda v: v * 2, name="m")
    w = g.window(m, TumblingCountWindow(5), fn=list)
    sink = g.sink(w)
    g.start()
    time.sleep(0.05)
    rt.shutdown(wait=True)
    g.join(timeout=30.0, raise_on_error=False)
    assert g.error is None  # a drain, not an abort
    emitted = g.stages[0].stats.n_out
    assert 0 < emitted  # and the infinite source really was cut short
    vals = [v * 2 for v in range(emitted)]
    expected = [vals[i : i + 5] for i in range(0, len(vals), 5)]
    assert sink.collected == expected
    assert g.slots_leaked() == 0
    assert rt.check_invariants(quiesced=True) == []


def test_pending_wait_hook_fires_with_stage_parked_on_full_queue():
    """Fusion buffers small pure tasks until a wait flushes them.  A
    stream stage polling ``Future.done`` (never entering the runtime)
    must still make progress via ``_pending_wait_hook`` — even while
    the downstream stage sits parked on a full queue.  Without the
    hook this pipeline deadlocks."""
    rt = runtime(fusion=True, max_workers=2)
    try:
        g = StreamGraph(rt, name="g", capacity=1)
        src = g.source(range(30), name="src")

        def via_fused_task(v):
            fut = inc(v)
            # poll, don't wait_on: exercises the done-path hook
            while not fut.done:
                time.sleep(0.0005)
            return fut.result()

        m = g.map(src, via_fused_task, name="m")
        slow = g.map(m, lambda v: (time.sleep(0.002), v)[1], name="slow")
        sink = g.sink(slow)
        g.start()
        g.join(timeout=60.0)
        assert sink.collected == [v + 1 for v in range(30)]
        assert g.slots_leaked() == 0
    finally:
        rt.shutdown()
    assert rt.check_invariants(quiesced=True) == []


def test_shutdown_drains_fire_and_forget_stage_submissions():
    """Tasks submitted by stage bodies without a wait are ordinary
    unfinished work: ``shutdown(wait=True)`` must run them to
    completion after the stage threads drain."""
    rt = runtime()
    futures = []
    lock = threading.Lock()

    def submit_only(v):
        fut = double(v)
        with lock:
            futures.append((v, fut))
        return v

    g = StreamGraph(rt, name="g", capacity=4)
    src = g.source(range(20), name="src")
    m = g.map(src, submit_only, name="m")
    sink = g.sink(m)
    g.start()
    g.stages[0].thread.join(timeout=10.0)  # feed fully emitted
    rt.shutdown(wait=True)
    g.join(timeout=30.0)
    assert sink.collected == list(range(20))
    assert len(futures) == 20
    for v, fut in futures:
        assert fut.done
        assert fut.result() == v * 2
    assert rt.check_invariants(quiesced=True) == []


def test_abort_interrupts_stage_blocked_on_stream():
    """A workflow abort must reach a stage parked on a stream wait (the
    interrupt registry) and unwind the graph with a chained cause."""

    @task(returns=1, name="aborting_boom", on_failure="FAIL")
    def boom():
        raise RuntimeError("fatal task")

    from repro.runtime.engine import pop_runtime, push_runtime
    from repro.runtime.exceptions import WorkflowAbortedError
    from repro.streaming import StreamFailure

    rt = runtime()
    push_runtime(rt)
    try:
        g = StreamGraph(rt, name="g", capacity=2)
        src = g.source(itertools.count(), name="src", rate=500.0)
        sink = g.sink(src, fn=lambda v: v, collect=True)
        g.start()
        time.sleep(0.03)
        boom()
        with pytest.raises(WorkflowAbortedError):
            rt.barrier()
        g.join(timeout=30.0, raise_on_error=False)
        assert g.error is not None
        err = g.error
        cause = err.__cause__ if isinstance(err, StreamFailure) else err
        assert isinstance(cause, WorkflowAbortedError)
        assert g.slots_leaked() == 0
    finally:
        pop_runtime(rt)
        rt.shutdown()


def test_second_graph_after_clean_drain():
    """Drain hooks unregister: a second graph on the same runtime must
    behave identically after the first joined."""
    with runtime() as rt:
        for round_ in range(2):
            g = StreamGraph(rt, name=f"g{round_}", capacity=4)
            src = g.source(range(10), name="src")
            m = g.map(src, lambda v: wait_on(inc(v)), name="m")
            sink = g.sink(m)
            g.start()
            g.join()
            assert sink.collected == [v + 1 for v in range(10)]
