"""Tests of the shared-memory object store and the redesigned
data-passing API: refcounted release, LRU spill/reload, concurrent
access, crash-safe cleanup, ref transport on the process backend, and
the ``put``/``get``/``submit_many`` runtime surface."""

from __future__ import annotations

import os
import threading
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro.runtime import (
    ObjectRef,
    Runtime,
    RuntimeConfig,
    StoreError,
    is_ref,
    task,
    wait_on,
)
from repro.runtime.store import ObjectStore, WorkerStore, scan_refs


@task(returns=1)
def _double(block):
    return block * 2.0


@task(returns=1)
def _add_blocks(a, b):
    return a + b


@task(returns=1)
def _checksum(block):
    return float(np.asarray(block).sum())


def _store(**kw):
    kw.setdefault("capacity_bytes", 1 << 20)
    kw.setdefault("threshold_bytes", 1024)
    return ObjectStore(**kw)


# ----------------------------------------------------------------------
# refs and scanning
# ----------------------------------------------------------------------
def test_object_ref_identity_and_scan():
    ref = ObjectRef("oid-1", (2, 2), "<f8", 32, segment="seg-1")
    same = ObjectRef("oid-1", (2, 2), "<f8", 32, segment=None)
    other = ObjectRef("oid-2", (2, 2), "<f8", 32)
    assert ref == same and hash(ref) == hash(same)
    assert ref != other
    assert is_ref(ref) and not is_ref("oid-1")
    found = scan_refs({"a": [ref, 1], "b": (other, {"c": ref})})
    assert found.count(ref) == 2 and other in found


# ----------------------------------------------------------------------
# put / get / release
# ----------------------------------------------------------------------
def test_put_get_roundtrip_zero_copy_view():
    store = _store()
    try:
        src = np.arange(512.0).reshape(16, 32)
        ref = store.put(src)
        assert ref.shape == (16, 32) and ref.nbytes == src.nbytes
        view = store.get(ref)
        assert np.array_equal(view, src)
        assert not view.flags.writeable  # IN immutability
        with pytest.raises(ValueError):
            view[0, 0] = 1.0
        copy = store.get(ref, copy=True)
        copy[0, 0] = -1.0  # independent array
        assert store.get(ref)[0, 0] == 0.0
    finally:
        store.shutdown()


def test_put_is_deduplicated_per_array_object():
    store = _store()
    try:
        src = np.ones(256)
        ref1, ref2 = store.put(src), store.put(src)
        assert ref1 == ref2
        assert store.n_objects == 1
        assert store.stats()["dedup_hits"] == 1
        # an equal but distinct array is a distinct object
        assert store.put(np.ones(256)) != ref1
    finally:
        store.shutdown()


def test_put_rejects_object_dtype():
    store = _store()
    try:
        with pytest.raises(StoreError):
            store.put(np.array([object()], dtype=object))
    finally:
        store.shutdown()


def test_refcount_release_is_deterministic():
    store = _store()
    try:
        ref = store.put(np.zeros(128))
        segment = ref.segment
        assert Path(f"/dev/shm/{segment}").exists()
        assert store.refcount(ref) == 1
        store.incref(ref)
        store.release(ref)
        assert ref in store  # one reference left
        store.release(ref)
        assert ref not in store
        assert not Path(f"/dev/shm/{segment}").exists()  # freed eagerly
        with pytest.raises(StoreError):
            store.get(ref)
        store.release(ref)  # releasing a dead ref is a no-op
    finally:
        store.shutdown()


def test_lease_pins_entry_until_unleased():
    store = _store()
    try:
        ref = store.put(np.zeros(64))
        segment = store.lease(ref)
        assert segment == ref.segment
        store.release(ref)  # refcount 0, but the lease pins it
        assert ref in store
        store.unlease(ref)  # last pin drops -> freed
        assert ref not in store
    finally:
        store.shutdown()


# ----------------------------------------------------------------------
# LRU spill tier
# ----------------------------------------------------------------------
def test_lru_spill_and_reload_roundtrip(tmp_path):
    block = 64 * 1024
    store = ObjectStore(
        capacity_bytes=3 * block, spill_dir=tmp_path, threshold_bytes=1024
    )
    try:
        arrays = [np.full(block // 8, float(i)) for i in range(5)]
        refs = [store.put(a) for a in arrays]
        stats = store.stats()
        # five 64K objects under a 192K budget: the least recently
        # used ones were spilled to disk
        assert stats["n_spilled"] >= 2
        assert stats["spills"] == stats["n_spilled"]
        assert list(Path(tmp_path).glob("repro-store-*/*.bin"))
        # reading a spilled object reloads it bit-exactly (and may
        # evict another resident in turn)
        for ref, src in zip(refs, arrays):
            assert np.array_equal(store.get(ref, copy=True), src)
        assert store.stats()["reloads"] >= 2
        assert store.stats()["bytes_resident"] <= 3 * block
    finally:
        store.shutdown()
    # shutdown removed the spill directory and its files
    assert not list(Path(tmp_path).glob("repro-store-*"))


def test_spill_lru_order_prefers_cold_objects():
    block = 64 * 1024
    store = _store(capacity_bytes=3 * block)
    try:
        hot = store.put(np.zeros(block // 8))
        cold = store.put(np.ones(block // 8))
        store.get(hot)  # touch: hot is now most recently used
        store.put(np.full(block // 8, 2.0))
        store.put(np.full(block // 8, 3.0))  # forces one eviction
        entries = store._entries
        assert entries[hot.object_id].resident
        assert not entries[cold.object_id].resident
    finally:
        store.shutdown()


# ----------------------------------------------------------------------
# concurrency
# ----------------------------------------------------------------------
def test_concurrent_put_get_release_threads():
    store = _store(capacity_bytes=256 * 1024)
    errors: list[BaseException] = []

    def churn(worker: int) -> None:
        try:
            rng = np.random.default_rng(worker)
            for i in range(25):
                src = rng.standard_normal(256)
                ref = store.put(src)
                got = store.get(ref, copy=True)
                if not np.array_equal(got, src):
                    raise AssertionError(f"worker {worker} round {i}: bytes diverged")
                store.release(ref)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=churn, args=(w,)) for w in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    try:
        assert not errors, errors
        assert store.n_objects == 0  # everything released
    finally:
        store.shutdown()


def test_concurrent_get_from_worker_processes():
    """Many tasks reading one stored block from pool workers: every
    read sees the same bytes, and repeat reads hit the worker cache."""
    cfg = RuntimeConfig(
        backend="processes", max_workers=2, store_threshold_bytes=1024
    )
    with Runtime(config=cfg) as rt:
        src = np.arange(4096.0)
        ref = rt.put(src)
        futs = [_checksum(ref) for _ in range(8)]
        sums = wait_on(futs)
        assert sums == [float(src.sum())] * 8
        stats = rt.stats()["backend_stats"]
        assert stats["store_enabled"]
        assert stats["store_hits"] > 0  # cached re-reads
        assert stats["store_bytes_moved"] <= 2 * src.nbytes  # once per worker


# ----------------------------------------------------------------------
# crash safety
# ----------------------------------------------------------------------
def test_shutdown_sweeps_orphan_segments():
    """A segment created under the store's prefix but never adopted
    (worker crashed mid-freeze) is removed by the shutdown sweep."""
    store = _store()
    orphan_name = f"{store.prefix}worphan"
    shm = shared_memory.SharedMemory(create=True, size=64, name=orphan_name)
    try:
        from repro.runtime.store import _untrack

        _untrack(shm)
        shm.close()
        assert Path(f"/dev/shm/{orphan_name}").exists()
    finally:
        store.shutdown()
    assert not Path(f"/dev/shm/{orphan_name}").exists()
    assert store.stats()["orphans_swept"] == 1


def test_live_view_survives_release_and_shutdown():
    """Zero-copy views handed out by get() stay readable after the
    object is released and after the whole store shuts down — the store
    detaches instead of unmapping under a live view (regression: this
    used to segfault, because np.ndarray(buffer=...) holds no buffer
    export and SharedMemory.close() unmaps silently)."""
    store = _store()
    x = np.arange(1024, dtype=np.float64)
    ref = store.put(x)
    view = store.get(ref)
    store.release(ref)
    np.testing.assert_array_equal(view, x)
    store.shutdown()
    np.testing.assert_array_equal(view, x)


def test_shutdown_is_idempotent_and_closes_api():
    store = _store()
    ref = store.put(np.zeros(32))
    store.shutdown()
    store.shutdown()
    with pytest.raises(StoreError):
        store.put(np.zeros(32))
    with pytest.raises(StoreError):
        store.get(ref)


def test_worker_crash_leaves_no_segments_behind():
    """SIGKILLing a worker mid-run must not leak /dev/shm segments
    once the runtime shuts down."""
    from repro.runtime import faults

    cfg = RuntimeConfig(
        backend="processes", max_workers=2, store_threshold_bytes=1024
    )
    with faults.inject(faults.kill_worker("_double", 1)):
        with Runtime(config=cfg) as rt:
            prefix = rt.store.prefix
            block = np.ones(2048)
            out = wait_on(_double.opts(max_retries=2)(block))
            assert np.array_equal(out, block * 2.0)
    assert not list(Path("/dev/shm").glob(f"{prefix}*"))


def test_worker_crash_releases_transfer_pins():
    """A store-shipped argument is pinned resident for the duration of
    the dispatch; when the worker dies mid-task the coordinator must
    release those transfer pins on the failure path, or the entries
    stay unspillable and unevictable forever.  After the retry
    completes, zero pins may remain."""
    from repro.runtime import faults

    cfg = RuntimeConfig(
        backend="processes", max_workers=2, store_threshold_bytes=1024
    )
    with faults.inject(faults.kill_worker("_double", 1)):
        with Runtime(config=cfg) as rt:
            block = np.ones(2048)
            out = wait_on(_double.opts(max_retries=2)(block))
            assert np.array_equal(out, block * 2.0)
            stats = rt.store.stats()
            assert rt.stats()["backend_stats"]["worker_crashes"] == 1
            assert stats["n_pinned"] == 0
            assert stats["pinned_bytes"] == 0


def test_sweep_prefix_is_scoped_to_one_store(tmp_path):
    """Two stores sharing /dev/shm and one spill root: sweeping the
    prefix of a dead store must not touch the live one's segments —
    concurrent services pointed at the same directories stay isolated."""
    from repro.runtime.store import sweep_prefix

    a = _store(capacity_bytes=4096, spill_dir=tmp_path)
    b = _store(capacity_bytes=4096, spill_dir=tmp_path)
    try:
        # Both stores hold segments in shm plus a spilled block in the
        # shared spill root (capacity fits one 4 KiB block, so the
        # second put evicts the first to disk).
        b_refs = []
        for store in (a, b):
            refs = [store.put(np.full(512, float(i + 1))) for i in range(2)]
            if store is b:
                b_refs = refs
        assert list(Path("/dev/shm").glob(f"{a.prefix}*"))
        assert list(Path("/dev/shm").glob(f"{b.prefix}*"))
        assert (tmp_path / f"repro-store-{a.prefix}").is_dir()

        # Simulate store A dying without cleanup, then a cold-start
        # sweep of exactly its prefix.
        a_prefix = a.prefix
        removed = sweep_prefix(a_prefix, spill_dir=tmp_path)
        assert removed > 0
        assert not list(Path("/dev/shm").glob(f"{a_prefix}*"))
        assert not (tmp_path / f"repro-store-{a_prefix}").exists()
        # B's world is untouched: shm segments, spill dir, and data.
        assert list(Path("/dev/shm").glob(f"{b.prefix}*"))
        assert (tmp_path / f"repro-store-{b.prefix}").is_dir()
        for i, ref in enumerate(b_refs):
            assert float(b.get(ref)[0]) == float(i + 1)
    finally:
        b.shutdown()
        sweep_prefix(a.prefix, spill_dir=tmp_path)


def test_sweep_prefix_rejects_empty_prefix():
    from repro.runtime.store import sweep_prefix

    with pytest.raises(ValueError):
        sweep_prefix("")


def test_runtime_shutdown_unlinks_all_segments():
    cfg = RuntimeConfig(
        backend="processes", max_workers=2, store_threshold_bytes=1024
    )
    with Runtime(config=cfg) as rt:
        prefix = rt.store.prefix
        refs = [rt.put(np.full(1024, float(i))) for i in range(4)]
        wait_on([_checksum(r) for r in refs])
        assert list(Path("/dev/shm").glob(f"{prefix}*"))
    assert not list(Path("/dev/shm").glob(f"{prefix}*"))


# ----------------------------------------------------------------------
# ref transport correctness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["threads", "processes"])
def test_ref_passed_results_bit_identical_to_inline(backend):
    """The same workload computed with arguments passed by reference
    and passed inline produces bit-identical results on both backends."""
    src = np.arange(8192.0).reshape(64, 128) / 3.0

    def run(store_mode: str) -> np.ndarray:
        cfg = RuntimeConfig(
            backend=backend,
            max_workers=2,
            store=store_mode,
            store_threshold_bytes=1024,
        )
        with Runtime(config=cfg) as rt:
            a = rt.put(src) if store_mode == "on" else src
            doubled = _double(a)
            summed = _add_blocks(doubled, src)
            return np.asarray(rt.get(summed, copy=True))

    with_store = run("on")
    without = run("off")
    assert with_store.tobytes() == without.tobytes()
    assert with_store.tobytes() == (src * 3.0).tobytes()


def test_large_args_and_results_travel_by_reference():
    cfg = RuntimeConfig(
        backend="processes", max_workers=1, store_threshold_bytes=1024
    )
    with Runtime(config=cfg) as rt:
        src = np.ones(4096)
        out = wait_on(_double(src))
        assert np.array_equal(out, src * 2.0)
        stats = rt.stats()["backend_stats"]
        assert stats["store_bytes_moved"] > 0
        assert stats["store_bytes_saved"] >= src.nbytes
        # the argument block itself never crossed the pickle pipe
        assert stats["pipe_bytes_sent"] < src.nbytes


def test_small_values_stay_inline():
    cfg = RuntimeConfig(backend="processes", max_workers=1)
    with Runtime(config=cfg) as rt:
        out = wait_on(_double(np.ones(16)))  # far below the threshold
        assert np.array_equal(out, np.full(16, 2.0))
        assert rt.stats()["backend_stats"]["store_bytes_moved"] == 0


def test_store_off_disables_ref_transport():
    cfg = RuntimeConfig(
        backend="processes", max_workers=1, store="off",
        store_threshold_bytes=1024,
    )
    with Runtime(config=cfg) as rt:
        out = wait_on(_double(np.ones(4096)))
        assert np.array_equal(out, np.full(4096, 2.0))
        stats = rt.stats()["backend_stats"]
        assert not stats["store_enabled"]
        assert stats["pipe_bytes_sent"] > 4096 * 8  # block went inline


# ----------------------------------------------------------------------
# the Runtime surface: put / get / release / submit_many
# ----------------------------------------------------------------------
def test_runtime_put_get_release():
    with Runtime(config=RuntimeConfig(backend="threads")) as rt:
        src = np.arange(64.0)
        ref = rt.put(src)
        assert is_ref(ref)
        assert np.array_equal(rt.get(ref), src)
        got = rt.get({"x": [ref]}, copy=True)  # derefs inside containers
        assert np.array_equal(got["x"][0], src)
        assert rt.release(ref) == 1
        assert rt.release(ref) == 1  # idempotent: ref already dead
        assert rt.store.n_objects == 0


def test_wait_on_derefs_task_results():
    cfg = RuntimeConfig(
        backend="processes", max_workers=1, store_threshold_bytes=1024
    )
    with Runtime(config=cfg):
        out = wait_on(_double(np.ones(4096)))
        assert isinstance(out, np.ndarray)  # a value, not a ref
        assert np.array_equal(out, np.full(4096, 2.0))


def test_submit_many_returns_futures_in_order():
    with Runtime(config=RuntimeConfig(backend="threads", max_workers=2)) as rt:
        calls = [_checksum.defer(np.full(8, float(i))) for i in range(10)]
        futs = rt.submit_many(calls)
        assert wait_on(futs) == [8.0 * i for i in range(10)]


def test_submit_many_accepts_tuples_and_opts_defer():
    with Runtime(config=RuntimeConfig(backend="threads", max_workers=2)) as rt:
        futs = rt.submit_many(
            [
                (_add_blocks, (1.0, 2.0)),
                (_add_blocks, (3.0,), {"b": 4.0}),
                _checksum.opts(label="tagged").defer(np.ones(4)),
            ]
        )
        assert wait_on(futs) == [3.0, 7.0, 4.0]
        record = next(iter(rt.trace().records(name="_checksum")))
        assert record.label == "tagged"


def test_submit_many_rejects_non_calls():
    with Runtime(config=RuntimeConfig(backend="threads")) as rt:
        with pytest.raises(TypeError):
            rt.submit_many([42])
        assert rt.submit_many([]) == []


def test_submit_many_results_chain_into_later_tasks():
    with Runtime(config=RuntimeConfig(backend="threads", max_workers=2)) as rt:
        [f1, f2] = rt.submit_many(
            [_add_blocks.defer(1.0, 2.0), _add_blocks.defer(10.0, 20.0)]
        )
        total = _add_blocks(f1, f2)
        assert rt.get(total) == 33.0


# ----------------------------------------------------------------------
# worker-side store
# ----------------------------------------------------------------------
def test_worker_store_thaw_freeze_roundtrip():
    store = _store()
    try:
        ws = WorkerStore()
        src = np.arange(1024.0)
        ref = store.put(src)
        info = WorkerStore.new_info()
        thawed = ws.thaw([ref, 5], info)
        assert np.array_equal(thawed[0], src)
        assert thawed[1] == 5
        assert not thawed[0].flags.writeable
        assert info["moved_bytes"] == src.nbytes and info["hits"] == []
        # second thaw of the same segment is a cache (locality) hit
        info2 = WorkerStore.new_info()
        ws.thaw(ref, info2)
        assert len(info2["hits"]) == 1 and info2["moved_bytes"] == 0

        out, created_info = np.asarray(thawed[0]) * 2, WorkerStore.new_info()
        frozen = ws.freeze(out, store.prefix, 1024, created_info)
        assert is_ref(frozen)
        adopted = store.adopt(*created_info["created"][0])
        assert np.array_equal(store.get(adopted), out)
    finally:
        store.shutdown()


def test_worker_store_prune_bounds_cache():
    store = _store()
    try:
        ws = WorkerStore()
        refs = [store.put(np.full(512, float(i))) for i in range(6)]
        info = WorkerStore.new_info()
        for ref in refs:
            ws.thaw(ref, info)
        evicted = ws.prune(2 * 512 * 8)
        assert evicted  # cache was trimmed to the byte budget
        info2 = WorkerStore.new_info()
        ws.thaw(refs[0], info2)  # evicted entry re-attaches
        assert info2["moved_bytes"] == 512 * 8
    finally:
        store.shutdown()
