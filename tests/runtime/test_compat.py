"""PyCOMPSs-compatibility facade: paper-style code runs unmodified."""

from __future__ import annotations

import pytest

from repro.runtime import Runtime, task
from repro.runtime.compat import (
    compss_barrier,
    compss_delete_file,
    compss_delete_object,
    compss_open,
    compss_wait_on,
)


@task(returns=1)
def increment(v):
    return v + 1


def test_paper_style_snippet_runs_unmodified():
    """The canonical PyCOMPSs example, verbatim."""
    with Runtime(executor="threads"):
        value = 0
        for _ in range(4):
            value = increment(value)
        value = compss_wait_on(value)
    assert value == 4


def test_wait_on_multiple_returns_list():
    with Runtime(executor="sequential"):
        a, b = increment(1), increment(10)
        got = compss_wait_on(a, b)
    assert got == [2, 11]


def test_wait_on_nested_containers():
    with Runtime(executor="sequential"):
        futures = {"xs": [increment(i) for i in range(3)]}
        got = compss_wait_on(futures)
    assert got == {"xs": [1, 2, 3]}


def test_barrier_waits_for_all_tasks():
    done = []

    @task(returns=0)
    def record(i):
        done.append(i)

    with Runtime(executor="threads"):
        for i in range(5):
            record(i)
        compss_barrier()
        assert sorted(done) == [0, 1, 2, 3, 4]


def test_barrier_accepts_no_more_tasks_flag():
    with Runtime(executor="sequential"):
        increment(0)
        compss_barrier(no_more_tasks=True)


def test_compss_open_syncs_producer(tmp_path):
    @task(returns=1)
    def write_file(path):
        with open(path, "w") as fh:
            fh.write("payload")
        return path

    target = str(tmp_path / "out.txt")
    with Runtime(executor="threads"):
        fut = write_file(target)
        with compss_open(fut) as fh:
            assert fh.read() == "payload"


def test_compss_open_rejects_non_path():
    with Runtime(executor="sequential"):
        with pytest.raises(TypeError):
            compss_open(increment(1))


def test_delete_helpers(tmp_path):
    p = tmp_path / "junk.txt"
    p.write_text("x")
    assert compss_delete_object(object()) is True
    assert compss_delete_file(str(p)) is True
    assert not p.exists()
    assert compss_delete_file(str(tmp_path / "missing.txt")) is False


def test_facade_importable_from_package_root():
    import repro.runtime as rr

    assert rr.compss_wait_on is compss_wait_on
    assert rr.compss_barrier is compss_barrier


def test_works_without_runtime():
    assert compss_wait_on(increment(7)) == 8
    compss_barrier()


def test_compss_delete_object_releases_store_refs():
    import numpy as np

    with Runtime(executor="threads") as rt:
        ref = rt.put(np.ones(64))
        assert ref in rt.store
        assert compss_delete_object(ref) is True
        assert ref not in rt.store


def test_put_get_object_shims_deprecated():
    import numpy as np

    from repro.runtime.compat import get_object, put_object

    src = np.arange(8.0)
    with Runtime(executor="threads") as rt:
        with pytest.warns(DeprecationWarning, match="Runtime.put"):
            ref = put_object(src)
        assert ref in rt.store
        with pytest.warns(DeprecationWarning, match="Runtime.get"):
            assert np.array_equal(get_object(ref), src)
    # outside a runtime both pass values through
    with pytest.warns(DeprecationWarning):
        assert put_object(5) == 5
    with pytest.warns(DeprecationWarning):
        assert get_object(5) == 5
