"""Per-task time_out enforcement."""

from __future__ import annotations

import time

import pytest

from repro.runtime import (
    IGNORE,
    Runtime,
    TaskTimeoutError,
    task,
    wait_on,
)


def test_timeout_fires_under_threads():
    @task(returns=1, time_out=0.05)
    def sleepy():
        time.sleep(5.0)
        return 1

    t0 = time.perf_counter()
    with Runtime(executor="threads") as rt:
        f = sleepy()
        with pytest.raises(TaskTimeoutError) as exc_info:
            wait_on(f)
        assert exc_info.value.timeout == 0.05
        assert rt.stats()["timeouts"] == 1
    # watchdog must not wait for the abandoned body to finish
    assert time.perf_counter() - t0 < 4.0


def test_timeout_not_triggered_when_fast():
    @task(returns=1, time_out=5.0)
    def quick(x):
        return x + 1

    with Runtime(executor="threads") as rt:
        assert wait_on(quick(1)) == 2
        assert rt.stats()["timeouts"] == 0


def test_timeout_detected_post_hoc_under_sequential():
    """The sequential executor cannot interrupt a running body; the
    overrun is detected after the fact (documented best effort)."""

    @task(returns=1, time_out=0.01)
    def sleepy():
        time.sleep(0.05)
        return 1

    with Runtime(executor="sequential"):
        f = sleepy()
        with pytest.raises(TaskTimeoutError):
            wait_on(f)


def test_timeout_feeds_retry_policy():
    calls = {"n": 0}

    @task(returns=1, time_out=0.05, max_retries=1)
    def sometimes_slow():
        calls["n"] += 1
        if calls["n"] == 1:
            time.sleep(5.0)
        return 7

    with Runtime(executor="threads") as rt:
        assert wait_on(sometimes_slow()) == 7
        stats = rt.stats()
        assert stats["timeouts"] == 1
        assert stats["retries"] == 1


def test_timeout_feeds_ignore_policy():
    @task(returns=1, time_out=0.05, on_failure=IGNORE, failure_default=0)
    def sleepy():
        time.sleep(5.0)
        return 1

    with Runtime(executor="threads") as rt:
        assert wait_on(sleepy()) == 0
        assert rt.stats()["ignored_failures"] == 1


def test_timeout_records_failed_attempt_in_trace():
    @task(returns=1, time_out=0.05)
    def sleepy():
        time.sleep(5.0)
        return 1

    with Runtime(executor="threads") as rt:
        f = sleepy()
        with pytest.raises(TaskTimeoutError):
            wait_on(f)
        (rec,) = rt.trace().records(name="sleepy")
    assert rec.status == "failed"
    assert "time_out" in (rec.error or "")
