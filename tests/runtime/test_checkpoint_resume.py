"""Crash/resume through the runtime: kill, restart, restore, recompute."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import Runtime, barrier, task, wait_on
from repro.runtime import faults
from repro.runtime.config import RuntimeConfig
from repro.runtime.directions import INOUT
from repro.runtime.dot import to_dot
from repro.runtime.exceptions import WorkflowKilledError
from repro.runtime.provenance import build_provenance

CALLS: list[str] = []


@task(returns=1)
def load(i):
    CALLS.append(f"load-{i}")
    return np.arange(8.0) + i


@task(returns=1)
def step(block):
    CALLS.append("step")
    return np.asarray(block) * 2.0


@task(returns=1)
def merge(a, b):
    CALLS.append("merge")
    return float(np.asarray(a).sum() + np.asarray(b).sum())


def run_chain(executor="sequential", config=None):
    with Runtime(executor=executor, config=config) as rt:
        total = wait_on(merge(step(load(0)), step(load(1))))
        return total, rt.trace(), rt.stats(), rt.graph


@pytest.fixture(autouse=True)
def _reset_calls():
    CALLS.clear()
    yield


def cfg(tmp_path, **kw):
    return RuntimeConfig(executor="sequential", checkpoint_dir=str(tmp_path / "ckpt"), **kw)


class TestResume:
    def test_cold_run_writes_then_warm_run_restores(self, tmp_path):
        config = cfg(tmp_path)
        total1, trace1, stats1, _ = run_chain(config=config)
        assert stats1["checkpointing"] is True
        assert stats1["checkpoint_writes"] == 5
        assert stats1["restored"] == 0
        executed_cold = len(CALLS)

        CALLS.clear()
        total2, trace2, stats2, _ = run_chain(config=config)
        assert total2 == total1
        assert CALLS == []  # nothing re-executed
        assert stats2["restored"] == 5
        assert stats2["checkpoint_writes"] == 0
        assert trace2.n_restored == 5
        assert trace2.n_executed == 0
        assert trace1.n_executed == executed_cold

    def test_restored_records_have_zero_duration_and_ok(self, tmp_path):
        config = cfg(tmp_path)
        run_chain(config=config)
        _, trace, _, _ = run_chain(config=config)
        for rec in trace:
            assert rec.status == "restored"
            assert rec.ok
            assert not rec.executed
            assert rec.duration == 0.0
        assert trace.n_failed_attempts == 0

    def test_kill_then_resume_executes_only_the_rest(self, tmp_path):
        config = cfg(tmp_path)
        with pytest.raises(WorkflowKilledError):
            with faults.inject(faults.kill_after_n_tasks(3)):
                run_chain(config=config)
        survived = len(CALLS)
        assert survived == 3

        CALLS.clear()
        total, trace, stats, _ = run_chain(config=config)
        # the three completed tasks are replayed, the other two run
        assert stats["restored"] == 3
        assert len(CALLS) == 2
        assert trace.n_restored == 3
        assert trace.n_executed == 2
        # ...and the result matches a clean run
        clean_total, _, _, _ = run_chain()
        assert total == clean_total

    def test_corrupted_entry_is_recomputed(self, tmp_path, caplog):
        config = cfg(tmp_path)
        run_chain(config=config)
        # corrupt exactly one entry on disk
        store_dir = tmp_path / "ckpt" / "entries"
        victim = sorted(store_dir.glob("*.ckpt"))[0]
        faults._flip_last_byte(str(victim))

        CALLS.clear()
        with caplog.at_level("WARNING", logger="repro.runtime.checkpoint"):
            total, trace, stats, _ = run_chain(config=config)
        assert any("corrupt" in r.message for r in caplog.records)
        # One entry recomputes.  Depending on which entry was corrupted,
        # the recomputed task's downstream signatures still match (keys
        # are lineage-based), so everything else restores.
        assert stats["restored"] == 4
        assert len(CALLS) == 1
        assert stats["checkpoint_writes"] == 1  # the recomputed entry
        clean_total, _, _, _ = run_chain()
        assert total == clean_total

    def test_injected_corruption_via_corrupt_nth(self, tmp_path, caplog):
        config = cfg(tmp_path)
        with faults.inject(faults.corrupt_nth("step", 1)) as injector:
            run_chain(config=config)
        assert ("step", 1, "corrupt") in injector.log

        CALLS.clear()
        with caplog.at_level("WARNING", logger="repro.runtime.checkpoint"):
            _, _, stats, _ = run_chain(config=config)
        assert stats["restored"] == 4
        assert CALLS == ["step"]

    def test_without_store_nothing_checkpoints(self, tmp_path):
        _, _, stats, _ = run_chain()
        assert stats["checkpointing"] is False
        assert stats["checkpoint_writes"] == 0
        assert stats["restored"] == 0

    def test_threads_executor_also_resumes(self, tmp_path):
        config = RuntimeConfig(executor="threads", checkpoint_dir=str(tmp_path / "ckpt"))
        total1, _, _, _ = run_chain(executor="threads", config=config)
        CALLS.clear()
        total2, _, stats, _ = run_chain(executor="threads", config=config)
        assert total2 == total1
        assert CALLS == []
        assert stats["restored"] == 5

    def test_threads_executor_kill_reaches_the_driver(self, tmp_path):
        # A kill firing on a worker thread must re-raise in the waiting
        # driver thread, not silently kill the worker and hang wait_on.
        config = RuntimeConfig(executor="threads", checkpoint_dir=str(tmp_path / "ckpt"))
        with pytest.raises(WorkflowKilledError):
            with faults.inject(faults.kill_after_n_tasks(2)):
                run_chain(executor="threads", config=config)

        CALLS.clear()
        with Runtime(executor="threads", config=config) as rt:
            total = wait_on(merge(step(load(0)), step(load(1))))
            barrier()  # drain in-flight siblings before snapshotting
            trace, stats = rt.trace(), rt.stats()
        clean_total, _, _, _ = run_chain()
        assert total == clean_total
        assert stats["restored"] >= 2
        assert trace.n_restored + trace.n_executed == 5


class TestEligibility:
    def test_opt_out_per_task(self, tmp_path):
        @task(returns=1, checkpoint=False)
        def roll(n):
            CALLS.append("roll")
            return n * 3

        config = cfg(tmp_path)
        with Runtime(config=config):
            assert wait_on(roll(2)) == 6
        with Runtime(config=config) as rt:
            assert wait_on(roll(2)) == 6
            assert rt.stats()["restored"] == 0
        assert CALLS == ["roll", "roll"]

    def test_tasks_with_writes_never_checkpoint(self, tmp_path):
        class Bag:
            def __init__(self):
                self.items = []

        @task(returns=1, acc=INOUT)
        def accumulate(acc, v):
            acc.items.append(v)
            return sum(acc.items)

        config = cfg(tmp_path)
        bag1, bag2 = Bag(), Bag()
        with Runtime(config=config):
            assert wait_on(accumulate(bag1, 5)) == 5
        with Runtime(config=config) as rt:
            assert wait_on(accumulate(bag2, 5)) == 5
            assert rt.stats()["checkpoint_writes"] == 0
        # the side effect happened both times (never replayed away)
        assert bag1.items == [5] and bag2.items == [5]

    def test_zero_return_tasks_never_checkpoint(self, tmp_path):
        @task(returns=0)
        def fire(x):
            CALLS.append("fire")

        config = cfg(tmp_path)
        with Runtime(config=config) as rt:
            fire(1)
            rt.barrier()
            assert rt.stats()["checkpoint_writes"] == 0

    def test_unfingerprintable_argument_skips_checkpointing(self, tmp_path):
        @task(returns=1)
        def probe(fn):
            CALLS.append("probe")
            return fn(3)

        config = cfg(tmp_path)
        for _ in range(2):
            with Runtime(config=config) as rt:
                assert wait_on(probe(lambda v: v + 1)) == 4
                assert rt.stats()["checkpoint_writes"] == 0
        assert CALLS == ["probe", "probe"]

    def test_repeated_identical_calls_stay_distinct(self, tmp_path):
        @task(returns=1)
        def draw(seed):
            CALLS.append("draw")
            return len(CALLS)

        config = cfg(tmp_path)
        with Runtime(config=config):
            a, b = wait_on([draw(0), draw(0)])
        assert (a, b) == (1, 2)  # two executions, not one cached
        CALLS.clear()
        with Runtime(config=config):
            a2, b2 = wait_on([draw(0), draw(0)])
        # call lineage replays each occurrence with its own value
        assert (a2, b2) == (1, 2)
        assert CALLS == []


class TestRetryInteraction:
    def test_successful_retry_checkpoints_once(self, tmp_path):
        @task(returns=1, max_retries=2)
        def flaky(x):
            CALLS.append("flaky")
            return x + 1

        config = cfg(tmp_path)
        with faults.inject(faults.fail_nth("flaky", 1)):
            with Runtime(config=config) as rt:
                assert wait_on(flaky(1)) == 2
                assert rt.stats()["checkpoint_writes"] == 1
        CALLS.clear()
        with Runtime(config=config) as rt:
            assert wait_on(flaky(1)) == 2
            assert rt.stats()["restored"] == 1
        assert CALLS == []


class TestReporting:
    def test_provenance_separates_restored_from_executed(self, tmp_path):
        config = cfg(tmp_path)
        run_chain(config=config)
        _, trace, _, graph = run_chain(config=config)
        record = build_provenance("chain", graph, trace)
        assert record.restored["count"] == 5
        assert record.restored["by_name"] == {"load": 2, "step": 2, "merge": 1}
        # restored-only names contribute no timing rows
        assert record.task_stats == {}

    def test_dot_marks_restored_nodes(self, tmp_path):
        config = cfg(tmp_path)
        run_chain(config=config)
        _, _, _, graph = run_chain(config=config)
        dot = to_dot(graph)
        assert dot.count("peripheries=2") == 5
        assert "restored" in dot

    def test_trace_roundtrips_restored_status(self, tmp_path):
        config = cfg(tmp_path)
        run_chain(config=config)
        _, trace, _, _ = run_chain(config=config)
        path = tmp_path / "trace.json"
        trace.save(path)
        from repro.runtime.tracing import Trace

        loaded = Trace.load(path)
        assert loaded.n_restored == 5
        assert [r.status for r in loaded] == [r.status for r in trace]


class TestFaultRules:
    def test_kill_rule_requires_after(self):
        with pytest.raises(ValueError):
            faults.FaultRule(task="*", kind="kill")

    def test_kill_after_n_validates(self):
        with pytest.raises(ValueError):
            faults.kill_after_n_tasks(-1)

    def test_corrupt_nth_needs_indices(self):
        with pytest.raises(ValueError):
            faults.corrupt_nth("step")

    def test_kill_fires_on_the_n_plus_first_execution(self, tmp_path):
        config = cfg(tmp_path)
        with pytest.raises(WorkflowKilledError):
            with faults.inject(faults.kill_after_n_tasks(0)):
                run_chain(config=config)
        assert CALLS == []  # the very first execution died
