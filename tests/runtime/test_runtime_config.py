"""RuntimeConfig: construction, env overrides, Runtime wiring."""

from __future__ import annotations

import pytest

from repro.runtime import (
    CANCEL_SUCCESSORS,
    IGNORE,
    Runtime,
    RuntimeConfig,
    task,
    wait_on,
)


def test_defaults():
    cfg = RuntimeConfig()
    assert cfg.executor == "threads"
    assert cfg.default_on_failure == CANCEL_SUCCESSORS
    assert cfg.default_max_retries == 2
    assert cfg.collect_trace is True


def test_validation():
    with pytest.raises(ValueError):
        RuntimeConfig(executor="fibers")
    with pytest.raises(ValueError):
        RuntimeConfig(default_on_failure="EXPLODE")
    with pytest.raises(ValueError):
        RuntimeConfig(default_max_retries=-1)


def test_store_defaults_and_validation():
    cfg = RuntimeConfig()
    assert cfg.store == "auto"
    assert cfg.store_capacity_mb == 256.0
    assert cfg.store_spill_dir is None
    assert cfg.store_threshold_bytes == 65536
    assert cfg.locality is True
    with pytest.raises(ValueError):
        RuntimeConfig(store="maybe")
    with pytest.raises(ValueError):
        RuntimeConfig(store_capacity_mb=0)
    with pytest.raises(ValueError):
        RuntimeConfig(store_threshold_bytes=-1)


def test_store_env_overrides():
    env = {
        "REPRO_STORE": "on",
        "REPRO_STORE_CAPACITY_MB": "64",
        "REPRO_STORE_SPILL_DIR": "/tmp/spill-here",
        "REPRO_STORE_THRESHOLD_BYTES": "4096",
        "REPRO_LOCALITY": "0",
    }
    cfg = RuntimeConfig.from_env(environ=env)
    assert cfg.store == "on"
    assert cfg.store_capacity_mb == 64.0
    assert cfg.store_spill_dir == "/tmp/spill-here"
    assert cfg.store_threshold_bytes == 4096
    assert cfg.locality is False


def test_replace_returns_new_config():
    cfg = RuntimeConfig()
    cfg2 = cfg.replace(executor="sequential", default_max_retries=5)
    assert cfg2.executor == "sequential"
    assert cfg2.default_max_retries == 5
    assert cfg.executor == "threads"  # original untouched


def test_from_env_overrides():
    env = {
        "REPRO_EXECUTOR": "sequential",
        "REPRO_MAX_WORKERS": "3",
        "REPRO_ON_FAILURE": "IGNORE",
        "REPRO_MAX_RETRIES": "7",
        "REPRO_TRACE": "0",
    }
    cfg = RuntimeConfig.from_env(environ=env)
    assert cfg.executor == "sequential"
    assert cfg.max_workers == 3
    assert cfg.default_on_failure == IGNORE
    assert cfg.default_max_retries == 7
    assert cfg.collect_trace is False


def test_from_env_explicit_overrides_beat_env():
    env = {"REPRO_EXECUTOR": "sequential"}
    cfg = RuntimeConfig.from_env(environ=env, executor="threads")
    assert cfg.executor == "threads"


def test_runtime_accepts_config():
    cfg = RuntimeConfig(executor="sequential", name="unit-test")
    with Runtime(config=cfg) as rt:
        assert rt.config is cfg
        assert rt.executor == "sequential"


def test_runtime_keywords_override_config():
    cfg = RuntimeConfig(executor="threads", max_workers=8)
    with Runtime(executor="sequential", config=cfg) as rt:
        assert rt.executor == "sequential"


def test_config_default_failure_policy_applies():
    cfg = RuntimeConfig(executor="sequential", default_on_failure=IGNORE)

    @task(returns=1, failure_default=-5)
    def bad():
        raise ValueError("swallowed by config default")

    with Runtime(config=cfg) as rt:
        assert wait_on(bad()) == -5
        assert rt.stats()["ignored_failures"] == 1


def test_trace_collection_can_be_disabled():
    cfg = RuntimeConfig(executor="sequential", collect_trace=False)

    @task(returns=1)
    def t(x):
        return x

    with Runtime(config=cfg) as rt:
        wait_on(t(1))
        assert len(rt.trace()) == 0
        assert rt.stats()["trace_enabled"] is False


def test_positional_runtime_args_deprecated():
    with pytest.warns(DeprecationWarning, match="keyword"):
        rt = Runtime("sequential")
    with rt:
        assert rt.executor == "sequential"
