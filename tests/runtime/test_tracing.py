"""Direct unit tests for :mod:`repro.runtime.tracing`."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.runtime.tracing import TaskRecord, Trace, estimate_nbytes


def _rec(task_id, t_start, t_end, name="t", deps=(), **kw):
    return TaskRecord(
        task_id=task_id, name=name, deps=tuple(deps), t_start=t_start, t_end=t_end, **kw
    )


# ----------------------------------------------------------------------
# estimate_nbytes
# ----------------------------------------------------------------------
def test_estimate_nbytes_ndarray_and_scalar():
    arr = np.zeros((10, 10), dtype=np.float64)
    assert estimate_nbytes(arr) == 800
    assert estimate_nbytes(np.float64(1.5)) == 8
    assert estimate_nbytes(np.int32(7)) == 4


def test_estimate_nbytes_memoryview_and_bytes():
    assert estimate_nbytes(b"abcd") == 4
    assert estimate_nbytes(bytearray(16)) == 16
    assert estimate_nbytes(memoryview(bytes(32))) == 32


def test_estimate_nbytes_nested_containers():
    block = np.zeros(100, dtype=np.float64)  # 800 B
    # list-of-lists of blocks — the ds-array layout — must sum the
    # arrays, not bottom out at the 64-byte fallback.
    grid = [[block, block], [block, block]]
    assert estimate_nbytes(grid) == 4 * 800
    assert estimate_nbytes({"a": [block], "b": (block,)}) == 2 * 800
    assert estimate_nbytes({np.int64(1), np.int64(2)}) == 16
    assert estimate_nbytes([[[np.float32(0.5)]]]) == 4


def test_estimate_nbytes_fallback_constant():
    class Opaque:
        pass

    assert estimate_nbytes(Opaque()) == 64
    assert estimate_nbytes("some string") == 64
    assert estimate_nbytes([1, 2]) == 128  # two opaque ints


# ----------------------------------------------------------------------
# TaskRecord span properties
# ----------------------------------------------------------------------
def test_queue_wait_and_overhead():
    rec = _rec(0, t_start=1.0, t_end=2.0, t_submit=0.1, t_ready=0.2, t_dispatch=0.7)
    assert rec.queue_wait == pytest.approx(0.5)
    # submit -> body start is 0.9s; 0.5s of it was queue wait
    assert rec.overhead == pytest.approx(0.4)
    assert rec.duration == pytest.approx(1.0)


def test_span_properties_default_to_zero_without_timestamps():
    rec = _rec(0, t_start=1.0, t_end=2.0)
    assert rec.queue_wait == 0.0
    assert rec.overhead == 0.0


def test_span_properties_clamp_negative():
    # A pre-observability trace could carry clock skew; never negative.
    rec = _rec(0, t_start=0.5, t_end=2.0, t_submit=0.9, t_ready=0.95, t_dispatch=0.4)
    assert rec.queue_wait == 0.0
    assert rec.overhead == 0.0


# ----------------------------------------------------------------------
# attempts_of / records / counts
# ----------------------------------------------------------------------
def _retry_trace():
    return Trace(
        [
            _rec(0, 0.0, 1.0, name="flaky", status="failed", error="boom"),
            _rec(1, 1.0, 2.0, name="flaky", deps=(0,), attempt=1, retry_of=0,
                 status="failed", error="boom"),
            _rec(2, 2.0, 3.0, name="flaky", deps=(1,), attempt=2, retry_of=1),
            _rec(3, 0.0, 0.5, name="other"),
            _rec(4, 0.0, 0.0, name="cached", status="restored"),
        ]
    )


def test_attempts_of_follows_retry_chain():
    tr = _retry_trace()
    chain = tr.attempts_of(0)
    assert [r.task_id for r in chain] == [0, 1, 2]
    assert [r.attempt for r in chain] == [0, 1, 2]
    assert [r.status for r in chain] == ["failed", "failed", "done"]
    # a task with no retries is a one-element chain
    assert [r.task_id for r in tr.attempts_of(3)] == [3]
    # unknown root: empty chain
    assert tr.attempts_of(99) == []


def test_records_filters_by_name_and_status():
    tr = _retry_trace()
    assert len(tr.records(name="flaky")) == 3
    assert len(tr.records(name="flaky", status="failed")) == 2
    assert [r.task_id for r in tr.records(status="done")] == [2, 3]
    assert tr.records(name="missing") == []


def test_counts_and_aggregates():
    tr = _retry_trace()
    assert tr.n_failed_attempts == 2
    assert tr.n_restored == 1
    assert tr.n_executed == 4
    assert tr.total_task_time == pytest.approx(3.5)
    assert tr.makespan == pytest.approx(3.0)
    assert tr.mean_duration("flaky") == pytest.approx(1.0)
    with pytest.raises(KeyError):
        tr.mean_duration("missing")


# ----------------------------------------------------------------------
# scaled
# ----------------------------------------------------------------------
def test_scaled_multiplies_makespan_exactly():
    tr = Trace([_rec(0, 2.0, 3.0), _rec(1, 3.5, 5.0, deps=(0,))])
    for factor in (0.5, 2.0, 10.0):
        scaled = tr.scaled(factor)
        assert scaled.makespan == pytest.approx(tr.makespan * factor)
        assert scaled.total_task_time == pytest.approx(tr.total_task_time * factor)


def test_scaled_reanchors_to_trace_start():
    # An epoch-like absolute start must not explode: timestamps are
    # re-anchored to the trace's own t0.
    t0 = 1_700_000_000.0
    tr = Trace([_rec(0, t0, t0 + 1.0), _rec(1, t0 + 2.0, t0 + 3.0)])
    scaled = tr.scaled(10.0)
    assert min(r.t_start for r in scaled) == pytest.approx(t0)
    assert scaled.makespan == pytest.approx(30.0)
    assert scaled[1].t_start == pytest.approx(t0 + 20.0)


def test_scaled_remaps_span_timestamps():
    tr = Trace([_rec(0, 1.0, 2.0, t_submit=0.0, t_ready=0.25, t_dispatch=0.5)])
    scaled = tr.scaled(2.0)
    rec = scaled[0]
    # t0 is t_start=1.0; earlier span stamps scale around the same anchor
    assert rec.t_submit == pytest.approx(-1.0)
    assert rec.t_ready == pytest.approx(-0.5)
    assert rec.t_dispatch == pytest.approx(0.0)
    assert rec.queue_wait == pytest.approx(0.5)
    # a record without span stamps survives scaling untouched
    bare = Trace([_rec(0, 0.0, 1.0)]).scaled(3.0)[0]
    assert bare.t_submit is None


def test_scaled_empty_trace():
    assert len(Trace().scaled(4.0)) == 0


# ----------------------------------------------------------------------
# (de)serialisation
# ----------------------------------------------------------------------
def test_json_roundtrip_preserves_spans():
    tr = Trace(
        [
            _rec(0, 1.0, 2.0, t_submit=0.1, t_ready=0.2, t_dispatch=0.9,
                 worker="w-0", pid=123),
        ]
    )
    back = Trace.from_json(tr.to_json())
    rec = back[0]
    assert rec.t_submit == 0.1 and rec.t_dispatch == 0.9
    assert rec.worker == "w-0" and rec.pid == 123
    assert rec.deps == ()


def test_from_json_tolerates_unknown_keys():
    payload = [
        {
            "task_id": 0,
            "name": "t",
            "deps": [],
            "t_start": 0.0,
            "t_end": 1.0,
            "some_future_field": {"nested": True},
            "another_new_key": 42,
        }
    ]
    tr = Trace.from_json(json.dumps(payload))
    assert len(tr) == 1
    assert tr[0].duration == 1.0


def test_save_and_load(tmp_path):
    tr = _retry_trace()
    path = tmp_path / "trace.json"
    tr.save(path)
    back = Trace.load(path)
    assert len(back) == len(tr)
    assert back.n_failed_attempts == tr.n_failed_attempts
    assert [r.task_id for r in back] == [r.task_id for r in tr]
