"""Tests of :mod:`repro.runtime.flightrec`: the bounded event ring,
dump/load round-trips, the live-recorder registry, and the engine and
watchdog integrations that dump the black box on the way down."""

from __future__ import annotations

import json

import pytest

from repro.runtime import Runtime, task, wait_on
from repro.runtime.config import RuntimeConfig
from repro.runtime.exceptions import WorkflowKilledError
from repro.runtime.flightrec import FlightRecorder, dump_all, load_dump
from repro.runtime.observability import TaskEvent


def _ev(kind="done", task_id=0):
    return TaskEvent(kind=kind, t=0.0, task_id=task_id, root_id=task_id, name="t")


# ----------------------------------------------------------------------
# the ring
# ----------------------------------------------------------------------
def test_capacity_bounds_memory_and_counts_drops():
    rec = FlightRecorder(capacity=3, name="ring")
    try:
        for i in range(5):
            rec.record(_ev(task_id=i))
        assert len(rec) == 3
        assert rec.dropped == 2
        snap = rec.snapshot()
        assert [e["task_id"] for e in snap["events"]] == [2, 3, 4]
        assert snap["n_dropped"] == 2
        assert snap["capacity"] == 3
    finally:
        rec.close()


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


# ----------------------------------------------------------------------
# dump / load
# ----------------------------------------------------------------------
def test_dump_roundtrip(tmp_path):
    rec = FlightRecorder(capacity=8, name="rt", dump_dir=tmp_path / "dumps")
    try:
        rec.record(_ev("submitted"))
        rec.record(_ev("done"))
        path = rec.dump(reason="unit test")
        assert path in rec.dumps_written
        payload = load_dump(path)
        assert payload["format"] == "repro-flightrec-v1"
        assert payload["reason"] == "unit test"
        assert payload["name"] == "rt"
        assert payload["n_events"] == 2
        assert [e["kind"] for e in payload["events"]] == ["submitted", "done"]
    finally:
        rec.close()


def test_load_dump_rejects_foreign_json(tmp_path):
    path = tmp_path / "not-a-dump.json"
    path.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(ValueError):
        load_dump(path)


def test_metrics_snapshot_captured_and_errors_contained(tmp_path):
    good = FlightRecorder(
        name="good", dump_dir=tmp_path, metrics_snapshot=lambda: {"counters": [1]}
    )
    bad = FlightRecorder(
        name="bad",
        dump_dir=tmp_path,
        metrics_snapshot=lambda: (_ for _ in ()).throw(RuntimeError("no metrics")),
    )
    try:
        assert load_dump(good.dump())["metrics"] == {"counters": [1]}
        payload = load_dump(bad.dump())
        assert "metrics" not in payload
        assert "no metrics" in payload["metrics_error"]
    finally:
        good.close()
        bad.close()


def test_dump_all_covers_live_recorders_and_skips_closed(tmp_path):
    live = FlightRecorder(name="live", dump_dir=tmp_path / "a")
    closed = FlightRecorder(name="closed", dump_dir=tmp_path / "b")
    closed.close()
    try:
        written = dump_all("sweep", directory=tmp_path / "out")
        names = {load_dump(p)["name"] for p in written}
        assert "live" in names
        assert "closed" not in names
        assert all(str(tmp_path / "out") in p for p in written)
    finally:
        live.close()


# ----------------------------------------------------------------------
# engine integration: automatic dump on kill
# ----------------------------------------------------------------------
@task(returns=1)
def _fine(x):
    return x


@task(returns=1)
def _killer():
    raise KeyboardInterrupt()


def test_runtime_dumps_flight_recorder_on_kill(tmp_path):
    dump_dir = tmp_path / "flightrec"
    cfg = RuntimeConfig(executor="threads", flightrec_dir=str(dump_dir))
    with Runtime(config=cfg) as rt:
        assert rt.flight_recorder is not None
        wait_on(_fine(1))
        with pytest.raises((WorkflowKilledError, KeyboardInterrupt)):
            wait_on(_killer())
    dumps = list(dump_dir.glob("flightrec-*.json"))
    assert dumps, "kill path wrote no flight-recorder dump"
    payload = load_dump(dumps[0])
    assert payload["reason"].startswith("kill:")
    assert payload["n_events"] >= 1
    kinds = {e["kind"] for e in payload["events"]}
    assert "submitted" in kinds
    assert "metrics" in payload  # the engine wires its metrics snapshot


def test_runtime_without_flightrec_dir_has_no_recorder():
    with Runtime(executor="threads") as rt:
        assert rt.flight_recorder is None
        assert wait_on(_fine(2)) == 2


# ----------------------------------------------------------------------
# watchdog integration
# ----------------------------------------------------------------------
def test_watchdog_trip_dumps_live_recorders(tmp_path):
    import threading

    from repro.runtime.stress import run_under_watchdog

    rec = FlightRecorder(name="hangwatch", dump_dir=tmp_path)
    rec.record(_ev("running"))
    release = threading.Event()
    try:
        outcome = run_under_watchdog(
            lambda: release.wait(30), timeout=0.2, label="unit-hang"
        )
        assert not outcome["ok"]
        assert any("HANG" in p for p in outcome["problems"])
        assert outcome["flightrec_dumps"]
        payload = load_dump(outcome["flightrec_dumps"][0])
        assert payload["reason"] == "watchdog: unit-hang"
    finally:
        release.set()
        rec.close()
