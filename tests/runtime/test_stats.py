"""Runtime monitoring surface."""

from __future__ import annotations

from repro.runtime import Runtime, task, wait_on


@task(returns=1)
def double(x):
    return 2 * x


def test_stats_counts():
    with Runtime(executor="sequential") as rt:
        futs = [double(i) for i in range(5)]
        wait_on(futs)
        stats = rt.stats()
    assert stats["executor"] == "sequential"
    assert stats["n_tasks"] == 5
    assert stats["by_state"] == {"done": 5}
    assert stats["by_name"] == {"double": 5}
    assert stats["ready_queue"] == 0


def test_stats_reflect_failures():
    @task(returns=1)
    def boom():
        raise RuntimeError("x")

    import pytest

    from repro.runtime import TaskExecutionError

    with Runtime(executor="sequential") as rt:
        f = boom()
        with pytest.raises(TaskExecutionError):
            wait_on(f)
        stats = rt.stats()
    assert stats["by_state"].get("failed") == 1


def test_stats_threads_mode():
    with Runtime(executor="threads", max_workers=3) as rt:
        wait_on([double(i) for i in range(10)])
        stats = rt.stats()
    assert stats["max_workers"] == 3
    assert stats["by_state"]["done"] == 10
