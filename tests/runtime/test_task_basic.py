"""Basic @task semantics: futures, dependency chaining, wait_on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    Future,
    Runtime,
    TaskDefinitionError,
    barrier,
    is_future,
    task,
    wait_on,
)


@task(returns=1)
def add(a, b):
    return a + b


@task(returns=2)
def divmod_task(a, b):
    return a // b, a % b


@task()
def effectless(x):
    return x * 2  # return value is dropped: returns=0


def test_task_returns_future_inside_runtime(seq_runtime):
    f = add(1, 2)
    assert is_future(f)
    assert wait_on(f) == 3


def test_task_runs_inline_without_runtime():
    assert add(1, 2) == 3


def test_wait_on_passthrough_without_runtime():
    assert wait_on(41) == 41
    assert wait_on([1, (2, 3)]) == [1, (2, 3)]


def test_future_chain(seq_runtime):
    a = add(1, 2)
    b = add(a, 10)
    c = add(b, a)
    assert wait_on(c) == 16


def test_multiple_returns(seq_runtime):
    q, r = divmod_task(17, 5)
    assert wait_on(q) == 3
    assert wait_on(r) == 2


def test_returns_zero_yields_none(seq_runtime):
    assert effectless(3) is None


def test_wait_on_container(seq_runtime):
    futs = [add(i, i) for i in range(5)]
    assert wait_on(futs) == [0, 2, 4, 6, 8]


def test_wait_on_nested_container(seq_runtime):
    obj = {"a": add(1, 1), "b": [add(2, 2), (add(3, 3),)]}
    out = wait_on(obj)
    assert out == {"a": 2, "b": [4, (6,)]}


def test_numpy_payloads(seq_runtime):
    x = np.arange(10.0)
    f = add(x, x)
    np.testing.assert_allclose(wait_on(f), 2 * x)


def test_dependency_graph_edges(seq_runtime):
    a = add(1, 2)
    b = add(a, 3)
    wait_on(b)
    g = seq_runtime.graph.snapshot()
    assert g.number_of_nodes() == 2
    assert g.has_edge(a.task_id, b.task_id)


def test_barrier_noop_without_runtime():
    barrier()  # must not raise


def test_barrier_waits_all(thread_runtime):
    futs = [add(i, 1) for i in range(20)]
    barrier()
    assert all(f.done for f in futs)


def test_invalid_direction_param_name():
    with pytest.raises(TaskDefinitionError):

        @task(returns=1, nonexistent="inout")
        def f(a):
            return a


def test_negative_returns_rejected():
    with pytest.raises(TaskDefinitionError):

        @task(returns=-1)
        def f(a):
            return a


def test_future_repr_and_done(seq_runtime):
    f = add(1, 1)
    assert f.done  # sequential executes at submission
    assert isinstance(f, Future)


def test_futures_from_different_runtime_are_opaque():
    with Runtime(executor="sequential") as rt1:
        f = add(5, 5)
        assert wait_on(f) == 10
    # A new runtime treats the stale future as data, not a dependency.
    with Runtime(executor="sequential"):
        g = add(f.result(), 1)
        assert wait_on(g) == 11


def test_task_name_override(seq_runtime):
    @task(returns=1, name="custom_name")
    def f(a):
        return a

    f(1)
    assert "custom_name" in seq_runtime.graph.count_by_name()
