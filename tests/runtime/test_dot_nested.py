"""Nested-cluster DOT export (the Fig. 10 presentation)."""

from __future__ import annotations

from repro.runtime import Runtime, task, to_dot, wait_on


@task(returns=1)
def leaf(x):
    return x + 1


@task(returns=1)
def parent(x):
    return wait_on(leaf(x)) + wait_on(leaf(x + 10))


def test_group_nested_clusters():
    with Runtime(executor="sequential") as rt:
        wait_on([parent(1), parent(2)])
        dot = to_dot(rt.graph, title="nested", group_nested=True)
    assert dot.count("subgraph cluster_t") == 2
    assert "style=dashed" in dot
    assert 'label="parent#' in dot
    # all six tasks present
    assert dot.count("fillcolor=") == 6


def test_group_nested_flat_graph_no_clusters():
    with Runtime(executor="sequential") as rt:
        wait_on([leaf(1), leaf(2)])
        dot = to_dot(rt.graph, title="flat", group_nested=True)
    assert "subgraph" not in dot


def test_two_level_nesting_clusters():
    @task(returns=1)
    def grandparent(x):
        return wait_on(parent(x))

    with Runtime(executor="sequential") as rt:
        wait_on(grandparent(5))
        dot = to_dot(rt.graph, title="deep", group_nested=True)
    # grandparent cluster contains the parent cluster
    assert dot.count("subgraph cluster_t") == 2
    assert 'label="grandparent#' in dot


def test_default_export_unchanged():
    with Runtime(executor="sequential") as rt:
        wait_on(parent(1))
        dot = to_dot(rt.graph)
    assert "subgraph" not in dot
    assert dot.count("fillcolor=") == 3
