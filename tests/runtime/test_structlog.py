"""Tests of :mod:`repro.runtime.structlog`: field rendering (text and
JSON-lines), ambient trace correlation, stdlib/caplog compatibility,
and idempotent handler configuration."""

from __future__ import annotations

import io
import json
import logging
import os

from repro.runtime import structlog
from repro.runtime.structlog import (
    StructFormatter,
    configure,
    format_event,
    get_logger,
    json_mode_enabled,
)
from repro.runtime.tracectx import new_trace, use_context


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def test_format_event_text_appends_fields():
    line = format_event(
        "INFO", "repro.x", "task claimed", {"task_id": 7, "tenant": "acme"},
        json_mode=False,
    )
    assert line == "task claimed task_id=7 tenant=acme"


def test_format_event_text_quotes_awkward_values():
    line = format_event(
        "INFO", "repro.x", "m", {"detail": 'two words "quoted"'}, json_mode=False
    )
    assert line == 'm detail="two words \\"quoted\\""'


def test_format_event_json_is_parseable():
    line = format_event(
        "WARNING", "repro.x", "msg", {"task_id": 3}, json_mode=True
    )
    payload = json.loads(line)
    assert payload["level"] == "WARNING"
    assert payload["logger"] == "repro.x"
    assert payload["msg"] == "msg"
    assert payload["task_id"] == 3
    assert isinstance(payload["ts"], float)


def test_format_event_json_degrades_unserialisable_values():
    line = format_event(
        "INFO", "repro.x", "m", {"bad": object()}, json_mode=True
    )
    payload = json.loads(line)  # repr fallback, never a crash
    assert "object" in payload["bad"]


def test_json_mode_enabled_parses_common_truthy_forms():
    for raw in ("1", "true", "YES", " on "):
        assert json_mode_enabled({"REPRO_LOG_JSON": raw})
    for raw in ("", "0", "false", "off"):
        assert not json_mode_enabled({"REPRO_LOG_JSON": raw})
    assert not json_mode_enabled({})


# ----------------------------------------------------------------------
# the logger: correlation fields, caplog compatibility
# ----------------------------------------------------------------------
def test_fields_land_on_the_record_and_pid_is_automatic(caplog):
    with caplog.at_level(logging.INFO, logger="repro.test.structlog"):
        get_logger("repro.test.structlog").info("hello", task_id=9)
    (record,) = caplog.records
    assert record.getMessage() == "hello"
    assert record.repro_fields["task_id"] == 9
    assert record.repro_fields["pid"] == os.getpid()


def test_ambient_trace_context_is_attached(caplog):
    ctx = new_trace()
    with caplog.at_level(logging.INFO, logger="repro.test.structlog"):
        with use_context(ctx):
            get_logger("repro.test.structlog").info("traced")
        get_logger("repro.test.structlog").info("untraced")
    traced, untraced = caplog.records
    assert traced.repro_fields["trace_id"] == ctx.trace_id
    assert traced.repro_fields["span_id"] == ctx.span_id
    assert "trace_id" not in untraced.repro_fields


def test_explicit_fields_win_over_ambient_and_none_is_dropped(caplog):
    ctx = new_trace()
    with caplog.at_level(logging.INFO, logger="repro.test.structlog"):
        with use_context(ctx):
            get_logger("repro.test.structlog").info(
                "override", trace_id="feedface", worker=None
            )
    (record,) = caplog.records
    assert record.repro_fields["trace_id"] == "feedface"
    assert "worker" not in record.repro_fields


def test_level_gating_short_circuits(caplog):
    with caplog.at_level(logging.WARNING, logger="repro.test.structlog"):
        get_logger("repro.test.structlog").debug("invisible", task_id=1)
    assert not caplog.records


def test_exception_carries_exc_info(caplog):
    log = get_logger("repro.test.structlog")
    with caplog.at_level(logging.ERROR, logger="repro.test.structlog"):
        try:
            raise ValueError("boom")
        except ValueError:
            log.exception("it broke", task_id=1)
    (record,) = caplog.records
    assert record.exc_info is not None
    assert record.repro_fields["task_id"] == 1


# ----------------------------------------------------------------------
# formatter + configure
# ----------------------------------------------------------------------
def _make_record(fields):
    record = logging.LogRecord(
        "repro.test", logging.INFO, __file__, 1, "msg", (), None
    )
    record.repro_fields = fields
    return record


def test_struct_formatter_text_and_json_modes():
    record = _make_record({"task_id": 5})
    assert StructFormatter(json_mode=False).format(record) == "msg task_id=5"
    payload = json.loads(StructFormatter(json_mode=True).format(record))
    assert payload["task_id"] == 5 and payload["msg"] == "msg"


def test_configure_is_idempotent_and_force_replaces():
    stream = io.StringIO()
    handler = configure(stream=stream, force=True)
    again = configure(stream=io.StringIO())
    assert again is handler  # second call reuses the installed handler
    replacement = configure(stream=io.StringIO(), force=True)
    assert replacement is not handler
    root = logging.getLogger("repro")
    struct_handlers = [
        h for h in root.handlers if getattr(h, "_repro_struct", False)
    ]
    assert struct_handlers == [replacement]
    root.removeHandler(replacement)
    structlog._configured = False


def test_configured_stream_receives_json_lines():
    stream = io.StringIO()
    handler = configure(stream=stream, json_mode=True, force=True)
    try:
        get_logger("repro.test.structlog").warning("served", tenant="acme")
        payload = json.loads(stream.getvalue().strip().splitlines()[-1])
        assert payload["msg"] == "served"
        assert payload["tenant"] == "acme"
    finally:
        logging.getLogger("repro").removeHandler(handler)
        structlog._configured = False
