"""Thread executor correctness and nested task graphs (paper §III-D)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.runtime import Constraints, Runtime, barrier, task, wait_on


@task(returns=1)
def slow_add(a, b, delay=0.01):
    time.sleep(delay)
    return a + b


@task(returns=1)
def fan_in(parts):
    return sum(parts)


def test_parallel_fan_out_fan_in():
    with Runtime(executor="threads", max_workers=4):
        parts = [slow_add(i, 0) for i in range(16)]
        total = wait_on(fan_in(parts))
    assert total == sum(range(16))


def test_threads_actually_overlap():
    """16 x 50ms tasks on 8 workers should take well under 16*50ms."""
    # pinned to the thread backend: the timing bound assumes zero
    # dispatch overhead (worker spawn would eat the 40ms headroom)
    with Runtime(executor="threads", max_workers=8, backend="threads"):
        t0 = time.perf_counter()
        futs = [slow_add(i, 0, delay=0.05) for i in range(16)]
        wait_on(futs)
        elapsed = time.perf_counter() - t0
    assert elapsed < 0.05 * 16 * 0.8


def test_diamond_dependency():
    with Runtime(executor="threads", max_workers=4):
        a = slow_add(1, 1)
        b = slow_add(a, 10)
        c = slow_add(a, 20)
        d = wait_on(fan_in([b, c]))
    assert d == (2 + 10) + (2 + 20)


@task(returns=1)
def nested_sum(values):
    """A task that itself spawns tasks (nesting)."""
    futs = [slow_add(v, 1, delay=0.002) for v in values]
    return wait_on(fan_in(futs))


def test_nesting_basic():
    with Runtime(executor="threads", max_workers=4):
        out = wait_on(nested_sum([1, 2, 3]))
    assert out == 9


def test_nesting_sequential():
    with Runtime(executor="sequential"):
        out = wait_on(nested_sum([1, 2, 3]))
    assert out == 9


def test_nesting_no_deadlock_when_pool_saturated():
    """More nested parents than workers: help-while-waiting must avoid
    deadlock even with a single worker thread."""
    with Runtime(executor="threads", max_workers=1):
        outs = wait_on([nested_sum([i, i]) for i in range(6)])
    assert outs == [2 * i + 2 for i in range(6)]


def test_two_level_nesting():
    @task(returns=1)
    def outer(values):
        return wait_on(nested_sum(values)) + 100

    with Runtime(executor="threads", max_workers=2):
        out = wait_on(outer([1, 2]))
    assert out == 105


def test_nested_tasks_recorded_with_parent():
    # pinned to the thread backend: asserts nested tasks become DAG
    # nodes with parent ids, which worker dispatch legitimately collapses
    with Runtime(executor="threads", max_workers=2, backend="threads") as rt:
        wait_on(nested_sum([1, 2]))
        trace = rt.trace()
    parents = {r.name: r.parent_id for r in trace}
    assert parents["nested_sum"] is None
    nested_parent = [r for r in trace if r.name == "slow_add"][0].parent_id
    root = [r for r in trace if r.name == "nested_sum"][0]
    assert nested_parent == root.task_id


def test_task_returning_future_is_resolved():
    """A task may return a future of a nested task; the parent future
    must hold the concrete value."""

    @task(returns=1)
    def delegate(x):
        return slow_add(x, 5, delay=0.001)  # returns a Future

    with Runtime(executor="threads", max_workers=2):
        assert wait_on(delegate(2)) == 7


def test_constraints_recorded_in_trace():
    @task(returns=1, constraints=Constraints(computing_units=8, gpus=1))
    def heavy(x):
        return x

    with Runtime(executor="sequential") as rt:
        wait_on(heavy(1))
        rec = [r for r in rt.trace() if r.name == "heavy"][0]
    assert rec.computing_units == 8
    assert rec.gpus == 1


def test_constraints_dict_form():
    @task(returns=1, constraints={"computing_units": 4})
    def heavy(x):
        return x

    with Runtime(executor="sequential"):
        assert wait_on(heavy(3)) == 3


def test_constraints_validation():
    with pytest.raises(ValueError):
        Constraints(computing_units=0)
    with pytest.raises(ValueError):
        Constraints(gpus=-1)


def test_many_tasks_stress():
    with Runtime(executor="threads", max_workers=8):
        futs = [slow_add(i, i, delay=0.0) for i in range(300)]
        total = wait_on(fan_in(futs))
    assert total == 2 * sum(range(300))


def test_concurrent_submission_from_threads():
    """Submissions from several application threads interleave safely."""
    results = {}

    def submitter(rt, key):
        with_rt_futs = [slow_add(key, i, delay=0.001) for i in range(10)]
        results[key] = sum(rt.wait_on(with_rt_futs))

    with Runtime(executor="threads", max_workers=4) as rt:
        threads = [
            threading.Thread(target=submitter, args=(rt, k)) for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    for k in range(4):
        assert results[k] == 10 * k + sum(range(10))


def test_numpy_parallel_consistency():
    rng = np.random.default_rng(0)
    blocks = [rng.standard_normal((50, 50)) for _ in range(8)]

    @task(returns=1)
    def gram(b):
        return b.T @ b

    with Runtime(executor="threads", max_workers=4):
        grams = wait_on([gram(b) for b in blocks])
    for b, g in zip(blocks, grams):
        np.testing.assert_allclose(g, b.T @ b)
