"""TaskGraph analyses, tracing, DOT export and provenance."""

from __future__ import annotations

import json

import numpy as np

from repro.runtime import (
    Runtime,
    Trace,
    build_provenance,
    graph_summary,
    task,
    to_dot,
    wait_on,
)
from repro.runtime.dag import TaskGraph
from repro.runtime.dot import color_for
from repro.runtime.tracing import TaskRecord, estimate_nbytes


@task(returns=1)
def produce(n):
    return np.ones(n)


@task(returns=1)
def combine(a, b):
    return a + b


def _run_diamond(rt):
    a = produce(4)
    b = combine(a, a)
    c = combine(a, a)
    d = combine(b, c)
    wait_on(d)


def test_graph_levels_and_depth(seq_runtime):
    _run_diamond(seq_runtime)
    g = seq_runtime.graph
    assert g.n_tasks == 4
    assert g.depth() == 3
    levels = g.levels()
    assert len(levels) == 3
    assert len(levels[1]) == 2
    assert g.max_width() == 2


def test_count_by_name(seq_runtime):
    _run_diamond(seq_runtime)
    counts = seq_runtime.graph.count_by_name()
    assert counts == {"produce": 1, "combine": 3}


def test_graph_summary(seq_runtime):
    _run_diamond(seq_runtime)
    s = graph_summary(seq_runtime.graph)
    assert s["n_tasks"] == 4
    assert s["n_edges"] == 4
    assert s["depth"] == 3
    assert s["by_name"]["combine"] == 3


def test_empty_graph_analyses():
    g = TaskGraph()
    assert g.depth() == 0
    assert g.max_width() == 0
    assert g.levels() == []


def test_dot_export(seq_runtime):
    _run_diamond(seq_runtime)
    dot = to_dot(seq_runtime.graph, title="diamond")
    assert dot.startswith("// execution graph: diamond")
    assert "digraph" in dot
    assert dot.count("->") == 4
    # every node present
    for i in range(4):
        assert f"t{i} " in dot or f"t{i}[" in dot


def test_color_stability():
    assert color_for("fit") == color_for("fit")
    assert color_for("fit").startswith("#")


def test_trace_records_and_stats(seq_runtime):
    _run_diamond(seq_runtime)
    trace = seq_runtime.trace()
    assert len(trace) == 4
    assert trace.total_task_time >= 0
    assert trace.makespan >= 0
    assert trace.mean_duration("combine") >= 0
    by_name = trace.by_name()
    assert len(by_name["combine"]) == 3


def test_trace_bytes_estimates(seq_runtime):
    f = produce(1000)
    wait_on(f)
    rec = [r for r in seq_runtime.trace() if r.name == "produce"][0]
    assert rec.out_bytes == 8000


def test_estimate_nbytes():
    assert estimate_nbytes(np.zeros(10)) == 80
    assert estimate_nbytes([np.zeros(10), np.zeros(10)]) == 160
    assert estimate_nbytes({"a": b"abc"}) == 3
    assert estimate_nbytes(object()) == 64
    assert estimate_nbytes((np.zeros(2), 5)) == 16 + 64


def test_trace_json_roundtrip(seq_runtime):
    _run_diamond(seq_runtime)
    trace = seq_runtime.trace()
    text = trace.to_json()
    back = Trace.from_json(text)
    assert len(back) == len(trace)
    orig = list(trace)[0]
    copy = back[orig.task_id]
    assert copy.name == orig.name
    assert copy.deps == orig.deps
    assert copy.duration == orig.duration


def test_trace_scaling():
    rec = TaskRecord(task_id=0, name="t", deps=(), t_start=1.0, t_end=2.0)
    tr = Trace([rec])
    scaled = tr.scaled(3.0)
    assert scaled[0].duration == 3.0


def test_provenance_record(seq_runtime):
    _run_diamond(seq_runtime)
    prov = build_provenance(
        "diamond",
        seq_runtime.graph,
        seq_runtime.trace(),
        parameters={"n": 4},
        results={"answer": np.float64(1.5)},
    )
    assert prov.n_tasks == 4
    assert prov.task_stats["combine"]["count"] == 3.0
    blob = json.loads(prov.to_json())
    assert blob["workflow"] == "diamond"
    assert blob["parameters"]["n"] == 4
    assert blob["environment"]["python"]
