"""Unit tests of :mod:`repro.runtime.atomic_write` — the primitive the
checkpoint store's crash-consistency guarantees are built on."""

from __future__ import annotations

import os
import threading

import pytest

from repro.runtime.atomic_write import atomic_write, atomic_write_text


def _tmp_residue(directory):
    return [p for p in os.listdir(directory) if p.endswith(".tmp")]


def test_writes_bytes_and_str(tmp_path):
    target = tmp_path / "blob.bin"
    atomic_write(target, b"\x00\x01binary")
    assert target.read_bytes() == b"\x00\x01binary"
    atomic_write(target, "text payload")
    assert target.read_text() == "text payload"
    assert _tmp_residue(tmp_path) == []


def test_text_alias_and_encoding(tmp_path):
    target = tmp_path / "note.txt"
    atomic_write_text(target, "héllo", encoding="latin-1")
    assert target.read_bytes() == "héllo".encode("latin-1")


def test_replaces_existing_file_completely(tmp_path):
    target = tmp_path / "state.json"
    atomic_write(target, b"x" * 4096)
    atomic_write(target, b"short")
    # the replace is whole-file: no stale tail from the longer version
    assert target.read_bytes() == b"short"


def test_crash_window_before_rename_leaves_old_content(tmp_path):
    """A crash after the temp write but before the rename (simulated by
    a failing ``os.replace``) must leave the previous complete file in
    place and no temp-file litter behind."""
    target = tmp_path / "manifest.json"
    atomic_write(target, b"generation-1")

    real_replace = os.replace

    def exploding_replace(src, dst):
        raise OSError("simulated crash at the rename boundary")

    os.replace = exploding_replace
    try:
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write(target, b"generation-2")
    finally:
        os.replace = real_replace
    assert target.read_bytes() == b"generation-1"
    assert _tmp_residue(tmp_path) == []


def test_crash_window_on_first_write_leaves_no_file(tmp_path):
    target = tmp_path / "fresh.json"
    real_replace = os.replace
    os.replace = lambda src, dst: (_ for _ in ()).throw(OSError("boom"))
    try:
        with pytest.raises(OSError):
            atomic_write(target, b"never lands")
    finally:
        os.replace = real_replace
    assert not target.exists()
    assert _tmp_residue(tmp_path) == []


def test_concurrent_writers_never_expose_torn_content(tmp_path):
    """Many threads rewriting one path: every read observes one
    writer's *complete* payload, never an interleaving."""
    target = tmp_path / "hot.txt"
    payloads = [f"writer-{i}:" + str(i) * 2000 for i in range(8)]
    atomic_write(target, payloads[0])
    stop = threading.Event()
    torn: list[str] = []

    def writer(payload: str):
        while not stop.is_set():
            atomic_write(target, payload)

    def reader():
        while not stop.is_set():
            content = target.read_text()
            if content not in payloads:
                torn.append(content[:50])
                return

    threads = [threading.Thread(target=writer, args=(p,)) for p in payloads]
    threads += [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    try:
        threading.Event().wait(0.5)
    finally:
        stop.set()
        for t in threads:
            t.join()
    assert torn == []
    assert target.read_text() in payloads
    assert _tmp_residue(tmp_path) == []
