"""Failure propagation and cancellation."""

from __future__ import annotations

import pytest

from repro.runtime import (
    CancelledTaskError,
    Runtime,
    RuntimeStateError,
    TaskExecutionError,
    task,
    wait_on,
)


@task(returns=1)
def boom(x):
    raise ValueError(f"bad value {x}")


@task(returns=1)
def ident(x):
    return x


def test_error_surfaces_on_wait_on_threads():
    with Runtime(executor="threads", max_workers=2):
        f = boom(3)
        with pytest.raises(TaskExecutionError) as excinfo:
            wait_on(f)
    assert "boom" in str(excinfo.value)
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_error_surfaces_on_wait_on_sequential():
    with Runtime(executor="sequential"):
        f = boom(3)
        with pytest.raises(TaskExecutionError):
            wait_on(f)


def test_downstream_cancelled_after_failure():
    with Runtime(executor="threads", max_workers=2):
        f = boom(1)
        g = ident(f)
        h = ident(g)
        with pytest.raises((TaskExecutionError, CancelledTaskError)):
            wait_on(h)


def test_failure_does_not_poison_independent_tasks():
    with Runtime(executor="threads", max_workers=2):
        bad = boom(1)
        good = ident(42)
        assert wait_on(good) == 42
        with pytest.raises(TaskExecutionError):
            wait_on(bad)


def test_submit_after_shutdown_rejected():
    rt = Runtime(executor="sequential")
    rt.shutdown()
    with rt_active(rt):
        with pytest.raises(RuntimeStateError):
            ident(1)


class rt_active:
    """Push a runtime without the shutdown-on-exit of the context manager."""

    def __init__(self, rt):
        self.rt = rt

    def __enter__(self):
        from repro.runtime.engine import push_runtime

        push_runtime(self.rt)
        return self.rt

    def __exit__(self, *exc):
        from repro.runtime.engine import pop_runtime

        pop_runtime(self.rt)


def test_wrong_arity_of_returns():
    @task(returns=3)
    def two_not_three(x):
        return x, x

    with Runtime(executor="threads", max_workers=1):
        f, g, h = two_not_three(1)
        with pytest.raises(TaskExecutionError):
            wait_on(f)


def test_failed_task_recorded_in_trace():
    with Runtime(executor="sequential") as rt:
        f = boom(9)
        with pytest.raises(TaskExecutionError):
            wait_on(f)
        trace = rt.trace()
    assert any(r.name == "boom" for r in trace)


def test_nested_failure_propagates_to_parent():
    @task(returns=1)
    def parent(x):
        return wait_on(boom(x))

    with Runtime(executor="threads", max_workers=2):
        f = parent(1)
        with pytest.raises(TaskExecutionError):
            wait_on(f)
