"""Task retry semantics."""

from __future__ import annotations

import pytest

from repro.runtime import (
    Runtime,
    TaskDefinitionError,
    TaskExecutionError,
    task,
    wait_on,
)


def flaky_maker(failures: int):
    state = {"left": failures}

    @task(returns=1, retries=failures)
    def flaky(x):
        if state["left"] > 0:
            state["left"] -= 1
            raise OSError("transient")
        return x * 2

    return flaky


def test_retry_recovers_transient_failure():
    flaky = flaky_maker(2)
    with Runtime(executor="sequential"):
        assert wait_on(flaky(21)) == 42


def test_retry_exhaustion_fails():
    state = {"calls": 0}

    @task(returns=1, retries=2)
    def always_bad():
        state["calls"] += 1
        raise ValueError("permanent")

    with Runtime(executor="sequential"):
        f = always_bad()
        with pytest.raises(TaskExecutionError):
            wait_on(f)
    assert state["calls"] == 3  # initial + 2 retries


def test_retry_under_threads():
    flaky = flaky_maker(1)
    with Runtime(executor="threads", max_workers=2):
        assert wait_on(flaky(5)) == 10


def test_retry_zero_is_default():
    state = {"calls": 0}

    @task(returns=1)
    def once():
        state["calls"] += 1
        raise ValueError("no retry")

    with Runtime(executor="sequential"):
        f = once()
        with pytest.raises(TaskExecutionError):
            wait_on(f)
    assert state["calls"] == 1


def test_negative_retries_rejected():
    with pytest.raises(TaskDefinitionError):

        @task(returns=1, retries=-1)
        def f(x):
            return x


def test_no_runtime_retries_still_apply():
    flaky = flaky_maker(1)
    assert flaky(3) == 6
