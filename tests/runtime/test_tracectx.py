"""Tests of :mod:`repro.runtime.tracectx`: context minting, the W3C
traceparent wire form, ambient propagation, and the engine/backends
integration that stamps trace lineage onto :class:`TaskRecord`s."""

from __future__ import annotations

import os
import threading

import pytest

from repro.runtime import Runtime, task, wait_on
from repro.runtime.config import RuntimeConfig
from repro.runtime.tracectx import (
    TraceContext,
    child_of,
    current_context,
    iter_lineage,
    new_trace,
    set_context,
    use_context,
)


# ----------------------------------------------------------------------
# minting + shapes
# ----------------------------------------------------------------------
def test_new_trace_shapes():
    ctx = new_trace()
    assert len(ctx.trace_id) == 32 and int(ctx.trace_id, 16) >= 0
    assert len(ctx.span_id) == 16 and int(ctx.span_id, 16) >= 0
    assert ctx.parent_id is None


def test_child_keeps_trace_and_parents_under_span():
    root = new_trace()
    child = root.child()
    assert child.trace_id == root.trace_id
    assert child.span_id != root.span_id
    assert child.parent_id == root.span_id
    grand = child.child()
    assert grand.parent_id == child.span_id
    assert grand.trace_id == root.trace_id


def test_span_ids_unique_across_many_mints():
    root = new_trace()
    ids = {root.child().span_id for _ in range(1000)}
    assert len(ids) == 1000


def test_child_of_none_is_a_new_root():
    ctx = child_of(None)
    assert ctx.parent_id is None
    parent = new_trace()
    assert child_of(parent).parent_id == parent.span_id


def test_to_dict_and_lineage():
    child = new_trace().child()
    d = child.to_dict()
    assert d == {
        "trace_id": child.trace_id,
        "span_id": child.span_id,
        "parent_id": child.parent_id,
    }
    assert list(iter_lineage(child)) == [child.span_id, child.parent_id]
    root = new_trace()
    assert list(iter_lineage(root)) == [root.span_id]


# ----------------------------------------------------------------------
# wire form
# ----------------------------------------------------------------------
def test_header_roundtrip_drops_parent():
    ctx = new_trace().child()
    header = ctx.to_header()
    assert header == f"00-{ctx.trace_id}-{ctx.span_id}-01"
    back = TraceContext.from_header(header)
    assert back.trace_id == ctx.trace_id
    assert back.span_id == ctx.span_id
    # the parent does not travel: the receiver mints a child instead
    assert back.parent_id is None


@pytest.mark.parametrize(
    "header",
    [
        "",
        "00-abc-def-01",
        "00-" + "g" * 32 + "-" + "0" * 16 + "-01",  # non-hex
        "00-" + "0" * 31 + "-" + "0" * 16 + "-01",  # short trace id
        "00-" + "0" * 32 + "-" + "0" * 15 + "-01",  # short span id
        "no dashes here",
    ],
)
def test_from_header_rejects_malformed(header):
    with pytest.raises(ValueError):
        TraceContext.from_header(header)


# ----------------------------------------------------------------------
# ambient propagation
# ----------------------------------------------------------------------
def test_set_context_returns_previous():
    assert current_context() is None
    a, b = new_trace(), new_trace()
    prev = set_context(a)
    assert prev is None and current_context() is a
    prev = set_context(b)
    assert prev is a and current_context() is b
    set_context(None)
    assert current_context() is None


def test_use_context_restores_on_exit_even_on_error():
    outer = new_trace()
    set_context(outer)
    try:
        with pytest.raises(RuntimeError):
            with use_context(new_trace()):
                assert current_context() is not outer
                raise RuntimeError("boom")
        assert current_context() is outer
    finally:
        set_context(None)


def test_ambient_context_is_per_thread():
    ctx = new_trace()
    seen = {}

    def probe():
        seen["other"] = current_context()

    with use_context(ctx):
        t = threading.Thread(target=probe)
        t.start()
        t.join()
        assert current_context() is ctx
    assert seen["other"] is None


# ----------------------------------------------------------------------
# engine integration: records carry trace lineage
# ----------------------------------------------------------------------
@task(returns=1)
def _leaf(x):
    return x + 1


@task(returns=1)
def _parent_task(x):
    # nested submission: the engine's ambient context makes this a child
    return _leaf(x)


def test_records_stamp_trace_and_nested_parenting():
    with Runtime(executor="threads") as rt:
        assert wait_on(_parent_task(1)) == 2
        trace = rt.trace()
    records = {r.name: r for r in trace}
    outer, leaf = records["_parent_task"], records["_leaf"]
    assert outer.trace_id and outer.span_id
    assert leaf.trace_id == outer.trace_id
    assert leaf.parent_span_id == outer.span_id


def test_sibling_roots_get_distinct_traces():
    with Runtime(executor="threads") as rt:
        futures = [_leaf(i) for i in range(3)]
        assert [wait_on(f) for f in futures] == [1, 2, 3]
        trace = rt.trace()
    trace_ids = {r.trace_id for r in trace}
    assert len(trace_ids) == 3  # no shared ancestor: three root traces


def test_ambient_caller_context_adopts_submissions():
    root = new_trace()
    with Runtime(executor="threads") as rt:
        with use_context(root):
            assert wait_on(_leaf(1)) == 2
        trace = rt.trace()
    (rec,) = list(trace)
    assert rec.trace_id == root.trace_id
    assert rec.parent_span_id == root.span_id


def test_collect_trace_off_skips_minting():
    cfg = RuntimeConfig(executor="threads", collect_trace=False)
    with Runtime(config=cfg) as rt:
        assert wait_on(_leaf(1)) == 2
        assert rt.trace() is None or len(rt.trace()) == 0


@task(returns=1, max_retries=2)
def _flaky_once():
    from repro.runtime.backends import current_attempt

    if current_attempt() == 0:
        raise ValueError("first attempt fails")
    return "ok"


def test_retry_spans_share_trace_and_parent_under_failed_attempt():
    with Runtime(executor="threads") as rt:
        assert wait_on(_flaky_once()) == "ok"
        trace = rt.trace()
    records = sorted(trace, key=lambda r: r.attempt)
    assert len(records) == 2
    failed, retried = records
    assert retried.trace_id == failed.trace_id
    assert retried.span_id != failed.span_id
    assert retried.parent_span_id == failed.span_id


# ----------------------------------------------------------------------
# process backend: context crosses the pickle pipe
# ----------------------------------------------------------------------
def _report_worker_view():
    ctx = current_context()
    return (os.getpid(), None if ctx is None else ctx.trace_id)


@task(returns=1)
def _worker_view():
    return _report_worker_view()


@pytest.mark.slow
def test_context_propagates_into_worker_process():
    cfg = RuntimeConfig(executor="threads", backend="processes", max_workers=2)
    with Runtime(config=cfg) as rt:
        pid, worker_trace_id = wait_on(_worker_view())
        trace = rt.trace()
    (rec,) = list(trace)
    assert pid != os.getpid()  # it really ran in a worker process
    # the worker saw the same trace id the coordinator stamped
    assert worker_trace_id == rec.trace_id
