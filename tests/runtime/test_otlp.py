"""Tests of :mod:`repro.runtime.otlp`: the OTLP/JSON shape, typed
attributes, status mapping, interrupted service spans, document
merging, and the runtime-trace export path."""

from __future__ import annotations

import json

from repro.runtime import Runtime, task, wait_on
from repro.runtime.otlp import (
    iter_spans,
    merge_otlp,
    otlp_to_chrome,
    save_otlp,
    span_attributes,
    spans_to_otlp,
    trace_to_otlp,
)

TRACE = "ab" * 16
SPAN_A = "01" * 8
SPAN_B = "02" * 8


def _start(span_id, *, parent=None, name="deliver", t=100.0, **attrs):
    return {
        "event": "start",
        "trace_id": TRACE,
        "span_id": span_id,
        "parent_id": parent,
        "name": name,
        "t_start": t,
        "attributes": attrs,
    }


def _end(span_id, *, status="ok", t=101.0, **attrs):
    return {
        "event": "end",
        "span_id": span_id,
        "t_end": t,
        "status": status,
        "attributes": attrs,
    }


# ----------------------------------------------------------------------
# service span rows
# ----------------------------------------------------------------------
def test_spans_to_otlp_pairs_start_and_end():
    doc = spans_to_otlp(
        [_start(SPAN_A, pid=42, attempt=0), _end(SPAN_A, extra="late")]
    )
    (span,) = list(iter_spans(doc))
    assert span["traceId"] == TRACE and span["spanId"] == SPAN_A
    assert span["startTimeUnixNano"] == str(int(100.0 * 1e9))
    assert span["endTimeUnixNano"] == str(int(101.0 * 1e9))
    attrs = span_attributes(span)
    assert attrs["pid"] == 42  # intValue round-trips as int
    assert attrs["extra"] == "late"  # end attributes merged in
    assert span["status"]["code"] == 1


def test_interrupted_span_has_zero_duration_and_marker():
    doc = spans_to_otlp([_start(SPAN_A)])
    (span,) = list(iter_spans(doc))
    assert span["startTimeUnixNano"] == span["endTimeUnixNano"]
    assert span_attributes(span)["repro.interrupted"] is True
    assert span["status"]["code"] == 2


def test_status_mapping_failed_vs_informational():
    doc = spans_to_otlp(
        [
            _start(SPAN_A),
            _end(SPAN_A, status="failed"),
            _start(SPAN_B),
            _end(SPAN_B, status="dedup"),
        ]
    )
    by_id = {s["spanId"]: s for s in iter_spans(doc)}
    assert by_id[SPAN_A]["status"]["code"] == 2
    assert by_id[SPAN_B]["status"]["code"] == 1  # dedup is not an error


def test_parent_id_becomes_parent_span_id():
    doc = spans_to_otlp([_start(SPAN_B, parent=SPAN_A), _end(SPAN_B)])
    (span,) = list(iter_spans(doc))
    assert span["parentSpanId"] == SPAN_A


def test_rows_without_span_id_are_skipped():
    doc = spans_to_otlp([{"event": "start", "trace_id": TRACE}])
    assert list(iter_spans(doc)) == []


def test_typed_attributes_bool_int_float_string():
    doc = spans_to_otlp(
        [_start(SPAN_A, flag=True, n=3, ratio=0.5, tag="x"), _end(SPAN_A)]
    )
    (span,) = list(iter_spans(doc))
    raw = {a["key"]: a["value"] for a in span["attributes"]}
    assert raw["flag"] == {"boolValue": True}  # bool checked before int
    assert raw["n"] == {"intValue": "3"}
    assert raw["ratio"] == {"doubleValue": 0.5}
    assert raw["tag"] == {"stringValue": "x"}
    attrs = span_attributes(span)
    assert attrs == {"flag": True, "n": 3, "ratio": 0.5, "tag": "x"}


# ----------------------------------------------------------------------
# runtime traces
# ----------------------------------------------------------------------
@task(returns=1)
def _leaf(x):
    return x * 2


@task(returns=1)
def _outer(x):
    return _leaf(x)


def test_trace_to_otlp_exports_lineage_and_resource():
    with Runtime(executor="threads") as rt:
        assert wait_on(_outer(3)) == 6
        trace = rt.trace()
    doc = trace_to_otlp(trace, wall_t0=1000.0, resource={"repro.server_id": "s1"})
    spans = {s["name"]: s for s in iter_spans(doc)}
    assert spans["_leaf"]["traceId"] == spans["_outer"]["traceId"]
    assert spans["_leaf"]["parentSpanId"] == spans["_outer"]["spanId"]
    assert int(spans["_outer"]["startTimeUnixNano"]) >= int(1000.0 * 1e9)
    assert span_attributes(spans["_outer"])["repro.pid"] is not None
    (group,) = doc["resourceSpans"]
    res = {a["key"]: a["value"]["stringValue"] for a in group["resource"]["attributes"]}
    assert res["service.name"] == "repro-runtime"
    assert res["repro.server_id"] == "s1"


def test_trace_to_otlp_synthesizes_ids_for_untraced_records():
    from repro.runtime.config import RuntimeConfig

    with Runtime(config=RuntimeConfig(executor="threads", collect_trace=True)) as rt:
        wait_on(_leaf(1))
        trace = rt.trace()
    for rec in trace:  # simulate a pre-tracing artifact
        rec.trace_id = None
        rec.span_id = None
    doc = trace_to_otlp(trace)
    (span,) = list(iter_spans(doc))
    assert len(span["traceId"]) == 32
    assert len(span["spanId"]) == 16


# ----------------------------------------------------------------------
# merge + save
# ----------------------------------------------------------------------
def test_merge_otlp_concatenates_resource_groups():
    a = spans_to_otlp([_start(SPAN_A), _end(SPAN_A)])
    b = spans_to_otlp([_start(SPAN_B), _end(SPAN_B)], resource={"x": "y"})
    merged = merge_otlp(a, b)
    assert len(merged["resourceSpans"]) == 2
    assert {s["spanId"] for s in iter_spans(merged)} == {SPAN_A, SPAN_B}


def test_otlp_to_chrome_merged_timeline():
    """One process row per resource, rebased µs timestamps, instant
    events for zero-duration (interrupted / point) spans."""
    a = spans_to_otlp(
        [_start(SPAN_A, worker="w-1"), _end(SPAN_A)],
        resource={"repro.server_id": "srv-a"},
    )
    b = spans_to_otlp(
        [_start(SPAN_B, t=100.5)],  # no end row -> interrupted
        resource={"repro.server_id": "srv-b"},
    )
    chrome = otlp_to_chrome(merge_otlp(a, b))
    events = chrome["traceEvents"]

    process_names = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert len(process_names) == 2
    assert any("srv-a" in name for name in process_names.values())
    assert any("srv-b" in name for name in process_names.values())

    complete = [e for e in events if e["ph"] == "X"]
    (done,) = complete
    assert done["name"] == "deliver"
    assert done["ts"] == 0.0  # rebased to the earliest span
    assert done["dur"] == 1_000_000.0  # 1s in µs
    assert done["args"]["spanId"] == SPAN_A

    (instant,) = [e for e in events if e["ph"] == "i"]
    assert instant["cat"] == "error"  # interrupted exports as error
    assert instant["ts"] == 500_000.0  # 0.5s after the first span
    assert instant["args"]["repro.interrupted"] is True

    # worker attribute names the thread lane
    lanes = {
        (e["pid"], e["tid"]): e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert (done["pid"], done["tid"]) in lanes
    assert lanes[(done["pid"], done["tid"])] == "w-1"


def test_save_otlp_writes_parseable_json(tmp_path):
    doc = spans_to_otlp([_start(SPAN_A), _end(SPAN_A)])
    path = tmp_path / "out.json"
    save_otlp(doc, path)
    loaded = json.loads(path.read_text())
    assert [s["spanId"] for s in iter_spans(loaded)] == [SPAN_A]
