"""Call-site option overrides via ``my_task.opts(...)`` and the
deprecated ``_task_label`` keyword."""

from __future__ import annotations

import pytest

from repro.runtime import (
    Runtime,
    TaskDefinitionError,
    TaskOptions,
    task,
    wait_on,
)


@task(returns=1)
def plain(x):
    return x + 1


def test_opts_label_recorded_in_trace():
    with Runtime(executor="sequential") as rt:
        wait_on(plain.opts(label="fold-3")(1))
        (rec,) = rt.trace().records(name="plain")
    assert rec.label == "fold-3"


def test_opts_overrides_decorator_retries():
    calls = {"n": 0}

    @task(returns=1, max_retries=0)
    def flaky():
        calls["n"] += 1
        if calls["n"] < 2:
            raise OSError("transient")
        return 1

    with Runtime(executor="sequential"):
        assert wait_on(flaky.opts(max_retries=1)()) == 1
    assert calls["n"] == 2


def test_opts_bound_callable_is_reusable_and_exposes_options():
    bound = plain.opts(label="a", priority=3)
    assert isinstance(bound.options, TaskOptions)
    assert bound.options.label == "a"
    assert bound.options.priority == 3
    with Runtime(executor="sequential"):
        assert wait_on(bound(1)) == 2
        assert wait_on(bound(5)) == 6


def test_priority_orders_ready_tasks():
    """With a single blocked worker, the higher-priority submission is
    picked from the ready queue first once the worker frees up."""
    import threading

    gate = threading.Event()
    started = threading.Event()
    order: list[str] = []

    @task(returns=1)
    def blocker():
        started.set()
        gate.wait(5.0)
        return 0

    @task(returns=1)
    def mark(tag):
        order.append(tag)
        return tag

    with Runtime(executor="threads", max_workers=1):
        blocker()
        started.wait(5.0)  # the only worker is now occupied
        lo = mark.opts(label="lo", priority=0)("lo")
        hi = mark.opts(label="hi", priority=10)("hi")
        # wait_on turns this thread into the only free worker; it must
        # drain the ready queue in priority order.
        wait_on([lo, hi])
        gate.set()
    assert order == ["hi", "lo"]


def test_task_label_kwarg_deprecated_but_works():
    with Runtime(executor="sequential") as rt:
        with pytest.warns(DeprecationWarning, match="_task_label"):
            f = plain(1, _task_label="legacy")
        assert wait_on(f) == 2
        (rec,) = rt.trace().records(name="plain")
    assert rec.label == "legacy"


def test_opts_rejects_conflicting_retry_spellings():
    with pytest.raises(TaskDefinitionError):
        plain.opts(retries=1, max_retries=2)


def test_opts_validation_matches_decorator():
    with pytest.raises(TaskDefinitionError):
        plain.opts(on_failure="NOPE")
    with pytest.raises(TaskDefinitionError):
        plain.opts(time_out=-1.0)
