"""CheckpointStore unit tests: atomic writes, checksums, manifest."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.runtime.atomic_write import atomic_write, atomic_write_text
from repro.runtime.checkpoint import (
    MAGIC,
    CheckpointStore,
    UnfingerprintableError,
    as_store,
    fingerprint,
    function_identity,
    task_signature,
)
from repro.runtime.exceptions import CheckpointError


# ----------------------------------------------------------------------
# atomic_write
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_writes_bytes_and_text(self, tmp_path):
        p = tmp_path / "a.bin"
        atomic_write(p, b"\x00\x01")
        assert p.read_bytes() == b"\x00\x01"
        atomic_write_text(p, "hello")
        assert p.read_text() == "hello"

    def test_replaces_existing_file(self, tmp_path):
        p = tmp_path / "a.txt"
        p.write_text("old")
        atomic_write(p, "new")
        assert p.read_text() == "new"

    def test_no_temp_file_left_behind(self, tmp_path):
        p = tmp_path / "a.txt"
        atomic_write(p, "data")
        assert os.listdir(tmp_path) == ["a.txt"]

    def test_failed_write_leaves_target_intact(self, tmp_path):
        p = tmp_path / "a.txt"
        p.write_text("original")
        with pytest.raises(TypeError):
            atomic_write(p, 12345)  # not str/bytes
        assert p.read_text() == "original"
        assert os.listdir(tmp_path) == ["a.txt"]


# ----------------------------------------------------------------------
# fingerprinting
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_deterministic_across_calls(self):
        obj = {"a": [1, 2.5, "x"], "b": np.arange(6).reshape(2, 3)}
        assert fingerprint(obj) == fingerprint(obj)

    def test_value_sensitivity(self):
        a = np.arange(4.0)
        b = a.copy()
        b[0] += 1
        assert fingerprint(a) != fingerprint(b)

    def test_dtype_and_shape_matter(self):
        a = np.zeros(4, dtype=np.float32)
        b = np.zeros(4, dtype=np.float64)
        assert fingerprint(a) != fingerprint(b)
        assert fingerprint(np.zeros((2, 2))) != fingerprint(np.zeros(4))

    def test_dict_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_distinguishes_scalar_types(self):
        assert fingerprint(1) != fingerprint(1.0)
        assert fingerprint("1") != fingerprint(1)
        assert fingerprint(True) != fingerprint(1)

    def test_unfingerprintable_raises(self):
        with pytest.raises(UnfingerprintableError):
            fingerprint(lambda x: x)  # unpicklable local

    def test_function_identity_tracks_source(self):
        def f(x):
            return x + 1

        def g(x):
            return x + 2

        assert function_identity(f) != function_identity(g)
        assert function_identity(f) == function_identity(f)

    def test_task_signature_uses_resolver_for_futures(self):
        from repro.runtime.future import Future

        fut = Future(7, 0, runtime_id=1)
        ident = "abc"
        sig1 = task_signature(ident, (fut,), {}, resolve=lambda f: "sigA@0")
        sig2 = task_signature(ident, (fut,), {}, resolve=lambda f: "sigB@0")
        assert sig1 != sig2


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        values = (np.arange(5), {"k": 1}, "text")
        store.put("key1", "mytask", values)
        out = store.get("key1")
        assert out is not None
        np.testing.assert_array_equal(out[0], values[0])
        assert out[1:] == values[1:]

    def test_get_missing_returns_none(self, tmp_path):
        assert CheckpointStore(tmp_path).get("absent") is None

    def test_get_wrong_arity_discards(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("k", "t", (1, 2))
        assert store.get("k", expect=3) is None
        # the entry was discarded, not just skipped
        assert not store.contains("k")

    def test_overwrite_replaces(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("k", "t", (1,))
        store.put("k", "t", (2,))
        assert store.get("k") == (2,)
        assert store.stats()["n_entries"] == 1

    def test_checksum_mismatch_detected_logged_recomputed(self, tmp_path, caplog):
        store = CheckpointStore(tmp_path)
        entry = store.put("k", "t", (42,))
        with open(entry.path, "r+b") as fh:
            fh.seek(-1, 2)
            byte = fh.read(1)
            fh.seek(-1, 2)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with caplog.at_level("WARNING", logger="repro.runtime.checkpoint"):
            assert store.get("k") is None
        assert any("corrupt" in r.message for r in caplog.records)
        # corrupt file deleted so it cannot shadow a future write
        assert not os.path.exists(entry.path)
        assert store.stats()["n_entries"] == 0

    def test_truncated_entry_is_corrupt(self, tmp_path):
        store = CheckpointStore(tmp_path)
        entry = store.put("k", "t", (np.arange(100),))
        data = open(entry.path, "rb").read()
        with open(entry.path, "wb") as fh:
            fh.write(data[: len(data) // 2])
        assert store.get("k") is None

    def test_garbage_file_is_corrupt(self, tmp_path):
        store = CheckpointStore(tmp_path)
        bad = store.entries_dir / "deadbeef.ckpt"
        bad.write_bytes(b"not a checkpoint")
        report = store.verify()
        assert bad.name in report.corrupt

    def test_manifest_rebuilt_after_loss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("k1", "t", (1,))
        store.put("k2", "t", (2,))
        store.manifest_path.unlink()
        reopened = CheckpointStore(tmp_path)
        assert reopened.stats()["n_entries"] == 2
        assert reopened.get("k1") == (1,)

    def test_manifest_corruption_rebuilds(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("k1", "t", (1,))
        store.manifest_path.write_text("{broken json")
        reopened = CheckpointStore(tmp_path)
        assert reopened.get("k1") == (1,)

    def test_entry_file_is_self_describing(self, tmp_path):
        store = CheckpointStore(tmp_path)
        entry = store.put("some key", "mytask", (1,))
        with open(entry.path, "rb") as fh:
            assert fh.read(len(MAGIC)) == MAGIC
            header = json.loads(fh.readline())
        assert header["key"] == "some key"
        assert header["task"] == "mytask"
        assert header["sha256"] == entry.sha256

    def test_verify_reindexes_orphans_and_drops_missing(self, tmp_path):
        store = CheckpointStore(tmp_path)
        e1 = store.put("k1", "t", (1,))
        store.put("k2", "t", (2,))
        # orphan: entry exists on disk but manifest forgot it
        manifest = json.loads(store.manifest_path.read_text())
        stem1 = os.path.basename(e1.path).rsplit(".", 1)[0]
        del manifest["entries"][stem1]
        store.manifest_path.write_text(json.dumps(manifest))
        store2 = CheckpointStore(tmp_path)
        # missing: manifest row whose file is gone
        e2_path = store2._entry_path("k2")
        e2_path.unlink()
        report = store2.verify()
        assert [os.path.basename(e1.path)] == report.orphaned
        assert report.missing == [e2_path.name]
        assert not report.clean
        assert store2.get("k1") == (1,)

    def test_prune_by_task(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("k1", "alpha", (1,))
        store.put("k2", "beta", (2,))
        removed = store.prune(task="alpha")
        assert len(removed) == 1
        assert store.get("k1") is None
        assert store.get("k2") == (2,)

    def test_prune_corrupt_only(self, tmp_path):
        store = CheckpointStore(tmp_path)
        e = store.put("k1", "t", (1,))
        store.put("k2", "t", (2,))
        with open(e.path, "r+b") as fh:
            fh.seek(-1, 2)
            fh.write(b"\x00")
        removed = store.prune(corrupt=True)
        assert len(removed) == 1
        assert store.get("k2") == (2,)

    def test_prune_older_than(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("k1", "t", (1,))
        assert store.prune(older_than=3600.0) == []
        assert len(store.prune(older_than=-1.0)) == 1

    def test_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("k1", "t", (1,))
        store.clear()
        assert store.stats()["n_entries"] == 0
        assert list(store.entries()) == []

    def test_root_must_be_directory(self, tmp_path):
        f = tmp_path / "file"
        f.write_text("x")
        with pytest.raises(CheckpointError):
            CheckpointStore(f)

    def test_as_store_coercion(self, tmp_path):
        assert as_store(None) is None
        store = CheckpointStore(tmp_path)
        assert as_store(store) is store
        assert isinstance(as_store(tmp_path), CheckpointStore)

    def test_stats_by_task(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("k1", "a", (1,))
        store.put("k2", "a", (2,))
        store.put("k3", "b", (3,))
        stats = store.stats()
        assert stats["by_task"] == {"a": 2, "b": 1}
        assert stats["total_bytes"] > 0
