"""Unit tests of :mod:`repro.runtime.backends`: serialization framing,
worker pool lifecycle, dispatch/fallback rules, crash detection and the
``kill_worker`` fault injector."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.runtime import (
    NodeFailureError,
    Runtime,
    RuntimeConfig,
    TaskExecutionError,
    current_attempt,
    faults,
    task,
    wait_on,
)
from repro.runtime.backends import (
    ProcessPoolBackend,
    ThreadBackend,
    _decode,
    _encode,
    create_backend,
    get_worker_pool,
)


# ----------------------------------------------------------------------
# module-level (worker-importable) probes
# ----------------------------------------------------------------------
@task(returns=1)
def _probe(x):
    """Which process ran me, on which attempt?"""
    return (os.getpid(), current_attempt(), x)


@task(returns=1, on_failure="RETRY", max_retries=3)
def _flaky_probe(n_failures):
    """Deterministically fail the first *n_failures* attempts."""
    if current_attempt() < n_failures:
        raise ValueError(f"flaky attempt {current_attempt()}")
    return os.getpid()


@task(returns=1)
def _raise_value_error(msg):
    raise ValueError(msg)


@task(returns=2)
def _two_sums(block):
    a = np.asarray(block)
    return float(a.sum()), float((a * 2).sum())


def _processes_cfg(**kw):
    return RuntimeConfig(backend="processes", max_workers=2, **kw)


# ----------------------------------------------------------------------
# serialization framing
# ----------------------------------------------------------------------
def test_encode_decode_roundtrip_numpy_out_of_band():
    payload = {"x": np.arange(1024.0), "meta": ("a", 3)}
    frames = _encode(payload)
    # count header + pickle payload + at least one raw buffer frame:
    # protocol-5 out-of-band export kept the array out of the pickle
    n_buffers = int.from_bytes(frames[0], "little")
    assert n_buffers >= 1
    assert len(frames) == 2 + n_buffers
    assert len(frames[1]) < payload["x"].nbytes  # array not in payload
    decoded = _decode(frames)
    assert decoded["meta"] == ("a", 3)
    assert np.array_equal(decoded["x"], payload["x"])


def test_encode_rejects_unpicklable():
    import threading

    with pytest.raises(Exception):
        _encode(threading.Lock())


# ----------------------------------------------------------------------
# backend construction
# ----------------------------------------------------------------------
def test_create_backend():
    assert isinstance(create_backend("threads", 4), ThreadBackend)
    assert isinstance(create_backend("processes", 4), ProcessPoolBackend)
    with pytest.raises(ValueError):
        create_backend("mpi", 4)


def test_config_validates_backend():
    with pytest.raises(ValueError):
        RuntimeConfig(backend="bogus")


def test_backend_from_env():
    cfg = RuntimeConfig.from_env(environ={"REPRO_BACKEND": "processes"})
    assert cfg.backend == "processes"
    assert RuntimeConfig.from_env(environ={}).backend == "threads"


def test_thread_backend_runs_in_coordinator():
    backend = ThreadBackend()
    spec = _probe.spec
    (pid, attempt, x), run_pid, info = backend.run(spec, (7,), {}, attempt=2)
    assert pid == run_pid == os.getpid()
    assert info is None
    assert attempt == 2
    assert x == 7
    assert backend.stats()["tasks_run"] == 1


def test_thread_backend_simulates_worker_kill():
    backend = ThreadBackend()
    with pytest.raises(NodeFailureError) as err:
        backend.run(_probe.spec, (1,), {}, kill_worker=True)
    assert err.value.simulated
    assert err.value.pid == os.getpid()


# ----------------------------------------------------------------------
# process dispatch
# ----------------------------------------------------------------------
def test_dispatched_task_runs_in_worker_with_attempt():
    with Runtime(config=_processes_cfg()):
        pid, attempt, x = wait_on(_probe(11))
    assert pid != os.getpid()
    assert attempt == 0
    assert x == 11


def test_multi_return_task_dispatches():
    with Runtime(config=_processes_cfg()):
        s1, s2 = wait_on(list(_two_sums(np.ones(8))))
    assert (s1, s2) == (8.0, 16.0)


def test_worker_exception_transports_with_pid():
    with Runtime(config=_processes_cfg()) as rt:
        fut = _raise_value_error.opts(max_retries=0)("boom-42")
        with pytest.raises(TaskExecutionError) as err:
            wait_on(fut)
        trace = rt.trace()
    cause = err.value.__cause__
    assert isinstance(cause, ValueError)
    assert "boom-42" in str(cause)
    record = next(iter(trace.records(name="_raise_value_error")))
    assert record.status == "failed"
    assert record.pid is not None and record.pid != os.getpid()


def test_retries_run_with_increasing_attempts_across_workers():
    with Runtime(config=_processes_cfg()) as rt:
        pid = wait_on(_flaky_probe(2))
        trace = rt.trace()
    assert pid != os.getpid()
    records = sorted(trace.records(name="_flaky_probe"), key=lambda r: r.attempt)
    assert [r.status for r in records] == ["failed", "failed", "done"]


def test_worker_pool_is_shared_across_runtimes():
    pool = get_worker_pool()
    with Runtime(config=_processes_cfg()):
        wait_on(_probe(1))
    spawned_after_first = pool.spawned
    with Runtime(config=_processes_cfg()):
        wait_on(_probe(2))
    assert pool.spawned == spawned_after_first  # workers were reused


# ----------------------------------------------------------------------
# kill_worker fault injection
# ----------------------------------------------------------------------
def test_kill_worker_crash_recovers_by_retry_under_processes():
    """The worker process is SIGKILLed mid-task; the coordinator sees
    the broken pipe, fails the attempt with NodeFailureError, and the
    failure-policy retry lands on a fresh worker and succeeds."""
    with faults.inject(faults.kill_worker("_probe", 1)) as injector:
        with Runtime(config=_processes_cfg()) as rt:
            pid, attempt, _ = wait_on(_probe.opts(max_retries=2)(5))
            trace = rt.trace()
            stats = rt.stats()
    assert injector.log == [("_probe", 1, "kill_worker")]
    assert attempt == 1  # first attempt died, retry succeeded
    records = sorted(trace.records(name="_probe"), key=lambda r: r.attempt)
    assert [r.status for r in records] == ["failed", "done"]
    # the dead worker's pid is attributed to the failed attempt and
    # differs from the pid that completed the retry
    assert records[0].pid not in (None, os.getpid())
    assert records[0].pid != records[1].pid == pid
    assert "NodeFailureError" in records[0].error
    assert stats["backend_stats"]["worker_crashes"] == 1


def test_kill_worker_parity_under_threads():
    """The same fault schedule under the thread backend produces the
    same observable outcome via a simulated NodeFailureError."""
    with faults.inject(faults.kill_worker("_probe", 1)) as injector:
        with Runtime(config=RuntimeConfig(backend="threads")) as rt:
            pid, attempt, _ = wait_on(_probe.opts(max_retries=2)(5))
            trace = rt.trace()
    assert injector.log == [("_probe", 1, "kill_worker")]
    assert attempt == 1
    records = sorted(trace.records(name="_probe"), key=lambda r: r.attempt)
    assert [r.status for r in records] == ["failed", "done"]
    assert "NodeFailureError" in records[0].error
    assert pid == os.getpid()


def test_kill_worker_exhausting_retries_fails_task():
    with faults.inject(faults.kill_worker("_probe", 1, 2)):
        with Runtime(config=_processes_cfg()):
            fut = _probe.opts(max_retries=1)(9)
            with pytest.raises(TaskExecutionError) as err:
                wait_on(fut)
    assert isinstance(err.value.__cause__, NodeFailureError)


def test_kill_worker_rule_validates():
    with pytest.raises(ValueError):
        faults.kill_worker("_probe")
    rule = faults.kill_worker("_probe", 2)
    assert rule.kind == "kill_worker"
    assert rule.executions == frozenset({2})


def test_node_failure_error_is_picklable():
    err = NodeFailureError(123, task_name="train", simulated=True)
    clone = pickle.loads(pickle.dumps(err))
    assert clone.pid == 123
    assert "123" in str(clone)
