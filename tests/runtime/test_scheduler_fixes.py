"""Regression tests for the event-driven scheduler overhaul and the
correctness fixes that rode along with it:

* retried tasks are counted once per attempt in ``stats()`` (the root
  alias no longer shadows the failed attempt);
* ``_identity_candidates`` traverses dict *values*, so INOUT shards
  passed in a dict create dependencies;
* declared parameter defaults take part in dependency detection, so a
  direction-annotated parameter left at its default records its write;
* a ``BaseException`` (e.g. ``KeyboardInterrupt``) escaping a task body
  kills the workflow instead of silently killing the worker thread and
  hanging every waiter;
* the scheduler hot path contains no ``Condition.wait(timeout=...)``
  polling.
"""

from __future__ import annotations

import inspect
import re
import threading

from repro.runtime import INOUT, Runtime, TaskExecutionError, task, wait_on
from repro.runtime import engine


# ----------------------------------------------------------------------
# S1: retry accounting
# ----------------------------------------------------------------------
def test_stats_counts_each_attempt_once():
    """A task that fails once and succeeds on retry must show up as one
    failed and one done attempt — the old root-alias bookkeeping
    dropped the failed attempt and counted the retry twice."""
    calls = {"n": 0}

    @task(returns=1, on_failure="RETRY", max_retries=2)
    def flaky():
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("first attempt fails")
        return 42

    with Runtime(executor="sequential") as rt:
        assert wait_on(flaky()) == 42
        stats = rt.stats()

    assert stats["by_state"] == {"failed": 1, "done": 1}
    assert stats["retries"] == 1
    assert sum(stats["by_state"].values()) == stats["n_tasks"]


def test_task_state_of_root_id_follows_latest_attempt():
    calls = {"n": 0}

    @task(returns=1, on_failure="RETRY", max_retries=2)
    def flaky():
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("boom")
        return 7

    with Runtime(executor="sequential") as rt:
        fut = flaky()
        assert wait_on(fut) == 7
        # the root id resolves to the (successful) latest attempt ...
        assert rt.task_state(fut.task_id) == "done"
        # ... while the retry attempt has its own id and state
        retried = [
            t for t in rt._tasks.values() if t.retry_of == fut.task_id
        ]
        assert len(retried) == 1 and retried[0].state == "done"
        assert rt._tasks[fut.task_id].state == "failed"


# ----------------------------------------------------------------------
# S2: dict traversal in dependency detection
# ----------------------------------------------------------------------
class _Shard:
    """Mutable identity-carrying object (containers are rebuilt by
    ``resolve_futures``; custom objects pass through by reference)."""

    def __init__(self) -> None:
        self.value = 0


def test_dict_values_participate_in_inout_dependencies():
    """A task mutating shards passed inside a dict must order before a
    later reader of one shard — dict values were previously invisible
    to identity-based dependency detection."""
    shard = _Shard()

    @task(shards=INOUT)
    def write_shards(shards):
        for v in shards.values():
            v.value += 1

    @task(returns=1)
    def read_shard(s):
        return s.value

    with Runtime(executor="sequential") as rt:
        write_shards({"a": shard})
        fut = read_shard(shard)
        assert wait_on(fut) == 1
        trace = rt.trace()

    reader = [r for r in trace if r.name == "read_shard"][0]
    writer = [r for r in trace if r.name == "write_shards"][0]
    assert writer.task_id in reader.deps


# ----------------------------------------------------------------------
# S3: declared defaults take part in dependency detection
# ----------------------------------------------------------------------
def test_default_parameter_records_inout_write():
    """An INOUT parameter left at its declared default must still
    record a write (Python evaluates defaults once, so the default
    object's identity is stable across calls)."""
    log = _Shard()

    @task(log=INOUT, returns=1)
    def record(value, log=log):
        log.value += value
        return log.value

    @task(returns=1)
    def read_log(entries):
        return entries.value

    with Runtime(executor="sequential") as rt:
        record(3)  # log at its default — the write must be recorded
        fut = read_log(log)
        assert wait_on(fut) == 3
        trace = rt.trace()

    reader = [r for r in trace if r.name == "read_log"][0]
    writer = [r for r in trace if r.name == "record"][0]
    assert writer.task_id in reader.deps


# ----------------------------------------------------------------------
# S4: BaseException escaping a task body
# ----------------------------------------------------------------------
def test_keyboard_interrupt_in_body_does_not_hang_waiters():
    """A raw ``KeyboardInterrupt`` raised inside a task body used to
    bypass ``except Exception``, silently kill the worker thread and
    hang every waiter; it must now surface through ``wait_on``."""

    @task(returns=1)
    def interrupt():
        raise KeyboardInterrupt("simulated ctrl-c inside a task body")

    outcome: dict[str, object] = {}
    rt = Runtime(executor="threads", max_workers=2)
    engine.push_runtime(rt)
    try:
        fut = interrupt()

        def drive() -> None:
            try:
                outcome["value"] = rt.wait_on(fut)
            except BaseException as exc:  # noqa: BLE001 - under test
                outcome["error"] = exc

        waiter = threading.Thread(target=drive, daemon=True)
        waiter.start()
        waiter.join(10.0)
        assert not waiter.is_alive(), "waiter hung after in-body KeyboardInterrupt"
        error = outcome.get("error")
        assert isinstance(error, (KeyboardInterrupt, TaskExecutionError))
    finally:
        engine.pop_runtime(rt)
        rt.shutdown(wait=False)


# ----------------------------------------------------------------------
# event-driven scheduler invariants
# ----------------------------------------------------------------------
def test_no_timeout_polling_on_scheduler_wait_paths():
    """The no-poll invariant at the source level: every park on the
    scheduler condition is ``wait()`` with no timeout.  (``Event.wait``
    deadlines — the task time_out watchdog — and thread joins are
    deadline waits, not polling, and are unaffected.)"""
    src = inspect.getsource(engine)
    assert re.search(r"_cond\.wait\(\s*[^)\s]", src) is None, (
        "scheduler condition must be waited on without a timeout"
    )
    assert "_cond.wait()" in src


def test_scheduler_counters_exposed_in_stats():
    @task(returns=1)
    def one():
        return 1

    with Runtime(executor="threads", max_workers=2) as rt:
        assert wait_on([one() for _ in range(10)]) == [1] * 10
        stats = rt.stats()

    sched = stats["scheduler"]
    for key in (
        "idle_wakeups",
        "worker_parks",
        "notifies",
        "broadcasts",
        "submit_contentions",
    ):
        assert key in sched and sched[key] >= 0
    # one targeted notify per enqueue, at least
    assert sched["notifies"] >= 10
    assert stats["idle_wakeups"] == sched["idle_wakeups"]
    assert stats["invariant_violations"] == 0


def test_check_invariants_clean_after_quiesced_run():
    @task(returns=1)
    def double(x):
        return 2 * x

    from repro.runtime.config import RuntimeConfig

    cfg = RuntimeConfig(executor="threads", max_workers=4, debug_invariants=True)
    with Runtime(config=cfg) as rt:
        f = 1
        for _ in range(20):
            f = double(f)
        assert wait_on(f) == 2**20
        rt.barrier()
        assert rt.check_invariants(quiesced=True) == []
