"""Tests for :mod:`repro.runtime.observability`: event bus, metrics
registry, Prometheus exposition, progress reporting, critical-path
analysis, and the engine's lifecycle-event emission."""

from __future__ import annotations

import io
import json

import pytest

from repro.runtime import Runtime, RuntimeConfig, faults, task, wait_on
from repro.runtime import observability as obs
from repro.runtime.tracing import TaskRecord, Trace


@task(returns=1)
def _add(a, b):
    return a + b


@task(returns=1)
def _inc(x):
    return x + 1


# ----------------------------------------------------------------------
# parse_flags
# ----------------------------------------------------------------------
def test_parse_flags():
    assert obs.parse_flags("") == frozenset()
    assert obs.parse_flags(None) == frozenset()
    assert obs.parse_flags("off") == frozenset()
    assert obs.parse_flags("metrics") == {"metrics"}
    assert obs.parse_flags("metrics,progress") == {"metrics", "progress"}
    assert obs.parse_flags("metrics progress") == {"metrics", "progress"}
    assert obs.parse_flags("all") == {"metrics", "progress"}
    assert obs.parse_flags("METRICS") == {"metrics"}
    with pytest.raises(ValueError, match="unknown observability flag"):
        obs.parse_flags("metrics,bogus")


def test_config_validates_observability():
    RuntimeConfig(observability="metrics")  # fine
    with pytest.raises(ValueError, match="unknown observability flag"):
        RuntimeConfig(observability="telemetry")


def test_config_env_observability_and_metrics_shorthand():
    cfg = RuntimeConfig.from_env({"REPRO_OBSERVABILITY": "progress"})
    assert cfg.observability == "progress"
    cfg = RuntimeConfig.from_env({"REPRO_METRICS": "1"})
    assert obs.parse_flags(cfg.observability) == {"metrics"}
    cfg = RuntimeConfig.from_env(
        {"REPRO_OBSERVABILITY": "metrics,progress", "REPRO_METRICS": "0"}
    )
    assert obs.parse_flags(cfg.observability) == {"progress"}
    with pytest.raises(ValueError, match="REPRO_METRICS"):
        RuntimeConfig.from_env({"REPRO_METRICS": "maybe"})


# ----------------------------------------------------------------------
# EventBus
# ----------------------------------------------------------------------
def _ev(kind="done", **kw):
    defaults = dict(kind=kind, t=0.0, task_id=0, root_id=0, name="t")
    defaults.update(kw)
    return obs.TaskEvent(**defaults)


def test_event_bus_truthiness_and_fanout():
    bus = obs.EventBus()
    assert not bus
    seen = []
    fn = bus.subscribe(seen.append)
    assert bus
    bus.emit(_ev())
    assert len(seen) == 1
    bus.unsubscribe(fn)
    assert not bus
    bus.emit(_ev())
    assert len(seen) == 1


def test_event_bus_logs_subscriber_error_once(caplog):
    import logging

    bus = obs.EventBus()

    def bad(event):
        raise RuntimeError("observer bug")

    bus.subscribe(bad)
    with caplog.at_level(logging.ERROR, logger="repro.runtime.observability"):
        bus.emit(_ev())
        bus.emit(_ev())
    records = [r for r in caplog.records if "subscriber failed" in r.getMessage()]
    # surfaced exactly once (the subscriber is dropped, not re-raised),
    # with structured correlation fields and the captured traceback
    assert len(records) == 1
    assert records[0].repro_fields["event_kind"] == "done"
    assert records[0].exc_info is not None


def test_raising_subscriber_does_not_kill_runtime_workers():
    from repro.runtime import Runtime, task, wait_on

    @task(returns=1)
    def double(x):
        return 2 * x

    with Runtime(executor="threads") as rt:
        rt.events.subscribe(lambda e: (_ for _ in ()).throw(RuntimeError("bug")))
        seen = []
        rt.events.subscribe(lambda e: seen.append(e.kind))
        # the raising subscriber (registered first, so it fires first)
        # must neither take down the emitting worker thread nor starve
        # the healthy subscriber behind it
        assert [wait_on(double(i)) for i in range(4)] == [0, 2, 4, 6]
    assert "done" in seen


def test_event_bus_drops_raising_subscriber():
    bus = obs.EventBus()
    calls = []

    def bad(event):
        calls.append("bad")
        raise RuntimeError("observer bug")

    bus.subscribe(bad)
    bus.subscribe(lambda e: calls.append("good"))
    bus.emit(_ev())
    bus.emit(_ev())
    # the raising subscriber ran once, was dropped, and never blocked
    # the healthy one
    assert calls == ["bad", "good", "good"]
    assert bus  # good subscriber still attached


# ----------------------------------------------------------------------
# Histogram / registry primitives
# ----------------------------------------------------------------------
def test_histogram_buckets_are_cumulative():
    h = obs.Histogram(bounds=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.005, 0.005, 0.05, 5.0):
        h.observe(v)
    snap = h.snapshot()
    assert [c for _, c in snap["buckets"]] == [1, 3, 4, 5]
    assert snap["buckets"][-1][0] == "+Inf"
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(5.0605)


def test_histogram_boundary_value_falls_in_lower_bucket():
    h = obs.Histogram(bounds=(1.0, 2.0))
    h.observe(1.0)  # le="1" bucket includes exactly 1.0
    assert h.snapshot()["buckets"][0] == [1.0, 1]


def test_registry_manual_series_and_snapshot():
    reg = obs.MetricsRegistry(max_workers=2)
    reg.inc("repro_things_total", 3, kind="a")
    reg.set_gauge("repro_depth", 7)
    reg.observe("repro_latency_seconds", 0.5)
    snap = reg.snapshot()
    assert obs.metric_value(snap, "repro_things_total", kind="a") == 3
    assert obs.metric_value(snap, "repro_depth") == 7
    assert obs.metric_value(snap, "repro_missing", default=-1) == -1
    (hist,) = snap["histograms"]
    assert hist["count"] == 1
    json.dumps(snap)  # snapshot must be JSON-serialisable


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def test_prometheus_roundtrip():
    reg = obs.MetricsRegistry(max_workers=4)
    reg.handle(_ev(obs.SUBMITTED))
    reg.handle(_ev(obs.RUNNING))
    reg.handle(_ev(obs.DONE, state="done", ran=True, duration=0.01,
                   queue_wait=0.001, overhead=0.0005, worker="w-0"))
    text = obs.to_prometheus(reg.snapshot())
    parsed = obs.parse_prometheus(text)
    assert parsed[("repro_tasks_submitted_total", ())] == 1
    assert parsed[("repro_tasks_total", (("state", "done"),))] == 1
    assert parsed[("repro_tasks_running", ())] == 0
    assert parsed[("repro_task_duration_seconds_count", (("task", "t"),))] == 1
    # histogram exposition carries cumulative le buckets and a sum
    assert ("repro_task_duration_seconds_sum", (("task", "t"),)) in parsed
    assert any(name == "repro_task_duration_seconds_bucket" for name, _ in parsed)
    assert "# TYPE repro_task_duration_seconds histogram" in text


def test_parse_prometheus_rejects_malformed():
    with pytest.raises(ValueError):
        obs.parse_prometheus("repro_x{unterminated 1")
    with pytest.raises(ValueError):
        obs.parse_prometheus("repro_x notanumber")
    with pytest.raises(ValueError):
        obs.parse_prometheus('repro_x{label=unquoted} 1')


def test_prometheus_escapes_hostile_label_values():
    hostile = 'evil\\path"quoted"\nnewline,comma={brace}'
    reg = obs.MetricsRegistry(max_workers=2)
    reg.inc("repro_things_total", 5, task=hostile, plain="x")
    text = obs.to_prometheus(reg.snapshot())
    # the exposition stays one sample per line: the raw newline must
    # have been escaped, never emitted
    sample_lines = [
        l for l in text.splitlines()
        if l.startswith("repro_things_total")
    ]
    assert len(sample_lines) == 1
    assert "\\n" in sample_lines[0]
    parsed = obs.parse_prometheus(text)
    ((name, labels),) = [k for k in parsed if k[0] == "repro_things_total"]
    assert dict(labels)["task"] == hostile  # byte-exact round-trip
    assert parsed[(name, labels)] == 5


def test_label_escape_unescape_roundtrip_edge_cases():
    for value in ("", "\\", "\\n", '\\"', "\n\n", 'a\\"b', "trailing\\"):
        assert (
            obs._unescape_label_value(obs._escape_label_value(value)) == value
        )


def test_merge_helpers_are_idempotent():
    snap = obs.empty_snapshot()
    backend = {"backend": "threads", "tasks_run": 5, "max_workers": 4}
    store = {"n_objects": 3, "puts": 7}
    service = {"tenants": {"acme": {"queued": 2, "leased": 1}}, "counters": {"claims": 9}}
    for _ in range(3):  # re-merging must overwrite, never double-count
        obs.merge_backend_stats(snap, backend)
        obs.merge_store_stats(snap, store)
        obs.merge_service_stats(snap, service)
    names = [
        (s["name"], tuple(sorted(s["labels"].items())))
        for section in ("counters", "gauges")
        for s in snap[section]
    ]
    assert len(names) == len(set(names))  # no duplicate series
    assert obs.metric_value(snap, "repro_backend_tasks_run_total") == 5
    assert obs.metric_value(snap, "repro_store_puts_total") == 7
    assert obs.metric_value(snap, "repro_service_claims_total") == 9
    assert obs.metric_value(snap, "repro_service_queue_depth", tenant="acme") == 2


def test_merge_idempotency_updates_changed_values():
    snap = obs.empty_snapshot()
    obs.merge_store_stats(snap, {"puts": 7})
    obs.merge_store_stats(snap, {"puts": 11})  # newer snapshot wins
    assert obs.metric_value(snap, "repro_store_puts_total") == 11
    assert (
        sum(1 for s in snap["counters"] if s["name"] == "repro_store_puts_total")
        == 1
    )


def test_merge_backend_stats_prefixes_series():
    snap = obs.empty_snapshot()
    merged = obs.merge_backend_stats(
        snap, {"backend": "threads", "tasks_run": 5, "max_workers": 4}
    )
    assert obs.metric_value(merged, "repro_backend_tasks_run_total") == 5
    assert obs.metric_value(merged, "repro_backend_max_workers") == 4
    assert merged["backend"]["backend"] == "threads"


# ----------------------------------------------------------------------
# runtime integration: events, metrics(), reconcile
# ----------------------------------------------------------------------
def test_event_sequence_for_one_task():
    events = []
    with Runtime(executor="sequential") as rt:
        rt.subscribe(events.append)
        wait_on(_add(1, 2))
    kinds = [e.kind for e in events]
    # sequential executor runs at submission: no READY hop
    assert kinds == ["submitted", "dispatched", "running", "done"]
    by_kind = {e.kind: e for e in events}
    ts = [e.t for e in events]
    assert ts == sorted(ts)
    done = by_kind["done"]
    assert done.ran and done.duration is not None and done.duration >= 0
    assert done.state == "done"
    assert done.queue_wait == 0.0  # never queued
    assert by_kind["dispatched"].worker is not None


def test_event_sequence_threads_includes_ready():
    events = []
    cfg = RuntimeConfig(executor="threads", max_workers=2)
    with Runtime(config=cfg) as rt:
        rt.subscribe(events.append)
        wait_on(_add(1, 2))
        rt.shutdown()
    kinds = [e.kind for e in events]
    assert kinds[:2] == ["submitted", "ready"]
    assert set(kinds) == {"submitted", "ready", "dispatched", "running", "done"}


def test_metrics_disabled_snapshot_shape():
    with Runtime(executor="sequential") as rt:
        wait_on(_add(1, 1))
        snap = rt.metrics()
    assert snap["enabled"] is False
    # no lifecycle series, but backend stats are still merged in
    assert all(c["name"].startswith("repro_backend_") for c in snap["counters"])
    assert "backend" in snap
    # exposition of a disabled runtime still renders (backend series only)
    obs.parse_prometheus(rt.metrics_text())


def test_metrics_reconcile_with_stats_and_trace():
    cfg = RuntimeConfig(executor="threads", max_workers=2, observability="metrics")
    with Runtime(config=cfg) as rt:
        futs = [_add(i, 1) for i in range(25)]
        futs += [_inc(futs[i]) for i in range(5)]
        wait_on(futs)
        rt.shutdown()
        assert obs.reconcile(rt) == []
        assert obs.reconcile_trace(rt) == []
        snap = rt.metrics()
    assert obs.metric_value(snap, "repro_tasks_submitted_total") == 30
    assert obs.metric_value(snap, "repro_tasks_total", state="done") == 30
    assert obs.metric_value(snap, "repro_tasks_running") == 0
    util = obs.metric_value(snap, "repro_worker_utilization")
    assert util is not None and 0 <= util <= 1


def test_metrics_count_retries_and_failures():
    @task(returns=1, on_failure="RETRY", max_retries=2)
    def flaky(x):
        from repro.runtime.backends import current_attempt

        if current_attempt() < 1:
            raise RuntimeError("first attempt fails")
        return x

    cfg = RuntimeConfig(
        executor="threads", max_workers=2, observability="metrics", retry_backoff=0.0
    )
    with Runtime(config=cfg) as rt:
        assert wait_on(flaky(5)) == 5
        rt.shutdown()
        assert obs.reconcile(rt) == []
        snap = rt.metrics()
    assert obs.metric_value(snap, "repro_retries_total") == 1
    assert obs.metric_value(snap, "repro_tasks_total", state="failed") == 1
    assert obs.metric_value(snap, "repro_tasks_total", state="done") == 1
    assert obs.metric_value(snap, "repro_task_failures_total", task="flaky") == 1


def test_metrics_count_cancellations():
    @task(returns=1)
    def boom():
        raise ValueError("dead")

    cfg = RuntimeConfig(executor="threads", max_workers=2, observability="metrics")
    with Runtime(config=cfg) as rt:
        f = boom()
        g = _inc(f)  # cancelled when boom fails (CANCEL_SUCCESSORS)
        with pytest.raises(Exception):
            wait_on(g)
        rt.shutdown()
        assert obs.reconcile(rt) == []
        snap = rt.metrics()
    assert obs.metric_value(snap, "repro_tasks_total", state="failed") == 1
    assert obs.metric_value(snap, "repro_tasks_total", state="cancelled") == 1


def test_metrics_count_restored(tmp_path):
    cfg = RuntimeConfig(
        executor="sequential",
        checkpoint_dir=str(tmp_path / "ckpt"),
        observability="metrics",
    )
    with Runtime(config=cfg) as rt:
        assert wait_on(_add(3, 4)) == 7
    with Runtime(config=cfg) as rt:
        assert wait_on(_add(3, 4)) == 7
        assert obs.reconcile(rt) == []
        snap = rt.metrics()
        assert rt.trace().n_restored == 1
    assert obs.metric_value(snap, "repro_tasks_restored_total") == 1
    # the restored attempt terminates as done, so totals still reconcile
    assert obs.metric_value(snap, "repro_tasks_total", state="done") == 1


def test_save_metrics_json(tmp_path):
    cfg = RuntimeConfig(executor="sequential", observability="metrics")
    out = tmp_path / "metrics.json"
    with Runtime(config=cfg) as rt:
        wait_on(_add(1, 1))
        rt.save_metrics(out)
    doc = json.loads(out.read_text())
    assert doc["enabled"] is True
    assert obs.metric_value(doc, "repro_tasks_submitted_total") == 1


def test_trace_records_carry_span_timestamps():
    cfg = RuntimeConfig(executor="threads", max_workers=2)
    with Runtime(config=cfg) as rt:
        wait_on(_inc(_add(1, 2)))
        rt.shutdown()
        trace = rt.trace()
    for rec in trace:
        assert rec.t_submit is not None and rec.t_ready is not None
        assert rec.t_dispatch is not None and rec.worker is not None
        assert rec.t_submit <= rec.t_ready <= rec.t_dispatch <= rec.t_start <= rec.t_end
        assert rec.queue_wait >= 0 and rec.overhead >= 0


# ----------------------------------------------------------------------
# ProgressReporter
# ----------------------------------------------------------------------
def test_progress_reporter_counts_and_stream():
    stream = io.StringIO()
    rep = obs.ProgressReporter(stream=stream, min_interval=0.0)
    rep.handle(_ev(obs.SUBMITTED))
    rep.handle(_ev(obs.SUBMITTED))
    rep.handle(_ev(obs.RUNNING))
    rep.handle(_ev(obs.DONE, ran=True))
    rep.handle(_ev(obs.FAILED, state="failed"))
    snap = rep.snapshot()
    assert snap["submitted"] == 2 and snap["done"] == 1 and snap["failed"] == 1
    assert snap["finished"] == 2 and snap["running"] == 0
    rep.close()
    out = stream.getvalue()
    assert "2/2 tasks" in out
    assert out.endswith("\n")


def test_progress_reporter_callback_mode():
    snaps = []
    rep = obs.ProgressReporter(callback=snaps.append, min_interval=0.0)
    rep.handle(_ev(obs.SUBMITTED))
    rep.handle(_ev(obs.RESTORED, state="done"))
    rep.close()
    assert snaps[-1]["restored"] == 1
    assert snaps[-1]["done"] == 1  # restored counts as finished work


def test_progress_throttles_renders():
    ticks = iter([0.0] + [0.01 * i for i in range(1, 200)])
    snaps = []
    rep = obs.ProgressReporter(
        callback=snaps.append, min_interval=10.0, clock=lambda: next(ticks)
    )
    for _ in range(50):
        rep.handle(_ev(obs.SUBMITTED))
    assert len(snaps) <= 1  # throttled: interval never elapsed


def test_runtime_progress_flag_renders_line(capsys):
    cfg = RuntimeConfig(executor="sequential", observability="progress")
    with Runtime(config=cfg):
        wait_on([_add(i, i) for i in range(5)])
    err = capsys.readouterr().err
    assert "5/5 tasks" in err


# ----------------------------------------------------------------------
# critical path & summary
# ----------------------------------------------------------------------
def _diamond_trace():
    #   0 (1s) -> 1 (2s) -\
    #          \-> 2 (0.5s) -> 3 (1s)
    return Trace(
        [
            TaskRecord(task_id=0, name="src", deps=(), t_start=0.0, t_end=1.0),
            TaskRecord(task_id=1, name="slow", deps=(0,), t_start=1.0, t_end=3.0),
            TaskRecord(task_id=2, name="fast", deps=(0,), t_start=1.0, t_end=1.5),
            TaskRecord(task_id=3, name="sink", deps=(1, 2), t_start=3.0, t_end=4.0),
        ]
    )


def test_critical_path_diamond():
    cp = obs.critical_path(_diamond_trace())
    assert cp.task_ids == [0, 1, 3]
    assert cp.length == pytest.approx(4.0)
    assert cp.makespan == pytest.approx(4.0)
    assert cp.work == pytest.approx(4.5)
    assert cp.by_name() == {"slow": 2.0, "src": 1.0, "sink": 1.0}


def test_critical_path_empty_and_single():
    assert obs.critical_path(Trace()).length == 0.0
    one = Trace([TaskRecord(task_id=0, name="t", deps=(), t_start=0.0, t_end=2.0)])
    cp = obs.critical_path(one)
    assert cp.length == pytest.approx(2.0)
    assert cp.task_ids == [0]


def test_critical_path_includes_retry_lost_time():
    tr = Trace(
        [
            TaskRecord(task_id=0, name="flaky", deps=(), t_start=0.0, t_end=1.0,
                       status="failed"),
            TaskRecord(task_id=1, name="flaky", deps=(0,), t_start=1.0, t_end=2.0,
                       attempt=1, retry_of=0),
        ]
    )
    cp = obs.critical_path(tr)
    # the retry depends on the failed attempt: lost time is on the chain
    assert cp.task_ids == [0, 1]
    assert cp.length == pytest.approx(2.0)


def test_critical_path_bounds_on_real_run():
    # The chain tasks are microsecond-scale: a garbage-collection
    # pause landing inside any single independent task can outweigh
    # the whole 5-task chain and steal the critical path, so the
    # timed window runs with the collector off.
    import gc

    gc.collect()
    gc.disable()
    cfg = RuntimeConfig(executor="threads", max_workers=2)
    with Runtime(config=cfg) as rt:
        f = _add(1, 2)
        for _ in range(4):
            f = _inc(f)
        extra = [_add(i, i) for i in range(6)]
        wait_on([f] + extra)
        rt.shutdown()
        trace = rt.trace()
    gc.enable()
    cp = obs.critical_path(trace)
    max_single = max(r.duration for r in trace)
    assert cp.length <= trace.makespan * (1 + 1e-6)
    assert cp.length >= max_single
    assert len(cp.records) >= 5  # at least the 5-task chain


def test_critical_path_zero_duration_restored_spans():
    """A checkpoint-restored span has t_start == t_end (zero duration)
    and no ready/dispatch stamps: the analyzer must not crash, must
    not report negative waits, and must still walk through it."""
    tr = Trace(
        [
            TaskRecord(task_id=0, name="seed", deps=(), t_start=0.0, t_end=0.0,
                       status="restored"),
            TaskRecord(task_id=1, name="seed", deps=(), t_start=0.0, t_end=0.0,
                       status="restored"),
            TaskRecord(task_id=2, name="work", deps=(0, 1), t_start=0.1, t_end=1.1),
        ]
    )
    cp = obs.critical_path(tr)
    assert cp.length == pytest.approx(1.0)
    assert cp.task_ids[-1] == 2
    summary = obs.summarize_trace(tr)
    assert summary["queue_wait"] >= 0.0
    assert summary["n_restored"] == 2
    assert all(r.queue_wait >= 0.0 for r in tr)
    assert all(r.overhead >= 0.0 for r in tr)


def test_critical_path_fused_spans_no_double_count():
    """Fused members share one unit envelope but each keeps its own
    record: the critical path must count each member's span exactly
    once (length bounded by makespan), and members stamped at the
    same instant (t_dispatch == t_ready) must not produce negative
    queue waits."""
    cfg = RuntimeConfig(executor="threads", max_workers=2, fusion=True)
    with Runtime(config=cfg) as rt:
        futs = rt.submit_many([_add.defer(i, i) for i in range(3)])
        for _ in range(4):
            futs = rt.submit_many([_inc.defer(f) for f in futs])
        wait_on(futs)
        rt.shutdown()
        trace = rt.trace()
        assert rt.stats()["scheduler"]["fused_tasks"] == 15
    fused = [r for r in trace if r.fused_id is not None]
    assert len(fused) == 15
    assert all(r.queue_wait >= 0.0 for r in trace)
    cp = obs.critical_path(trace)
    assert cp.length <= trace.makespan * (1 + 1e-6)
    assert len(cp.records) >= 5  # the 5-deep chain survives fusion
    # one terminal record per member — nothing double-recorded
    assert len(trace) == 15
    summary = obs.summarize_trace(trace)
    assert summary["queue_wait"] >= 0.0
    assert summary["work"] <= trace.makespan * cfg.max_workers + 1e-6


def test_summarize_and_format():
    summary = obs.summarize_trace(_diamond_trace())
    assert summary["n_records"] == 4
    assert summary["makespan"] == pytest.approx(4.0)
    assert summary["critical_path"] == pytest.approx(4.0)
    assert summary["parallelism"] == pytest.approx(4.5 / 4.0)
    assert list(summary["by_name"])[0] == "slow"  # sorted by total time
    text = obs.format_summary(summary)
    assert "critical path" in text and "slow" in text
    cp_text = obs.format_critical_path(obs.critical_path(_diamond_trace()))
    assert "100% of makespan" in cp_text
    assert "#1" in cp_text


def test_reconcile_on_disabled_runtime_reports():
    with Runtime(executor="sequential") as rt:
        wait_on(_add(1, 1))
        assert obs.reconcile(rt) == ["metrics are not enabled on this runtime"]
