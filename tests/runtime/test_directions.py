"""INOUT/OUT direction semantics: version chains through mutation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import INOUT, OUT, Runtime, task, wait_on
from repro.runtime.directions import Direction, coerce_direction
from repro.runtime.exceptions import TaskDefinitionError
from repro.runtime.registry import DataRegistry


@task(acc=INOUT)
def accumulate(acc, value):
    acc += value  # in-place on a numpy array


@task(returns=1)
def read_sum(arr):
    return float(arr.sum())


@task(buf=OUT)
def overwrite(buf, value):
    buf[:] = value


def test_inout_creates_write_chain(seq_runtime):
    acc = np.zeros(4)
    accumulate(acc, 1.0)
    accumulate(acc, 2.0)
    total = read_sum(acc)
    assert wait_on(total) == pytest.approx(12.0)
    # three tasks, chained: acc v1 -> v2 -> read
    g = seq_runtime.graph.snapshot()
    assert g.number_of_nodes() == 3
    assert g.number_of_edges() == 2


def test_inout_chain_correct_under_threads():
    with Runtime(executor="threads", max_workers=4):
        acc = np.zeros(8)
        for i in range(10):
            accumulate(acc, float(i))
        total = wait_on(read_sum(acc))
    assert total == pytest.approx(8 * sum(range(10)))


def test_out_serialises_after_previous_writer(seq_runtime):
    buf = np.zeros(3)
    accumulate(buf, 5.0)
    overwrite(buf, 1.0)
    total = wait_on(read_sum(buf))
    assert total == pytest.approx(3.0)
    g = seq_runtime.graph.snapshot()
    assert g.number_of_edges() == 2  # write -> overwrite -> read


def test_reader_does_not_become_writer(seq_runtime):
    data = np.ones(3)
    read_sum(data)
    read_sum(data)
    g = seq_runtime.graph.snapshot()
    assert g.number_of_edges() == 0  # two independent readers


def test_direction_string_aliases():
    assert coerce_direction("inout") is Direction.INOUT
    assert coerce_direction("IN".lower()) is Direction.IN
    assert coerce_direction(Direction.OUT) is Direction.OUT


def test_direction_bad_value():
    with pytest.raises(TaskDefinitionError):
        coerce_direction("sideways")


def test_registry_versions():
    reg = DataRegistry()
    obj = np.zeros(2)
    assert reg.last_writer(obj) is None
    assert reg.version(obj) == 0
    assert reg.record_write(obj, 7) == 1
    assert reg.record_write(obj, 9) == 2
    assert reg.last_writer(obj) == 9
    assert len(reg) == 1
    reg.clear()
    assert len(reg) == 0


def test_mutation_via_list_element(seq_runtime):
    """Objects inside list arguments carry version chains too."""

    @task(blocks=INOUT)
    def bump(blocks):
        for b in blocks:
            b += 1

    a, b = np.zeros(2), np.zeros(2)
    bump([a, b])
    s = wait_on(read_sum(a))
    assert s == pytest.approx(2.0)
    g = seq_runtime.graph.snapshot()
    assert g.number_of_edges() == 1
