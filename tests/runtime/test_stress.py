"""The concurrency stress harness, exercised as part of the unit
suite: a few small seeds covering every scenario family.  ``make
stress`` runs the full 20-seed sweep with larger schedules."""

from __future__ import annotations

import pytest

from repro.runtime.stress import MODES, StressReport, run_seed, run_suite


def test_every_scenario_family_is_reachable():
    assert {MODES[s % len(MODES)] for s in range(len(MODES))} == {
        "mixed",
        "abort",
        "kill",
        "shutdown",
    }


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 5, 6])
def test_stress_seed_passes(seed):
    report = run_seed(seed, n_ops=60, workers=4, timeout=30.0)
    assert isinstance(report, StressReport)
    assert report.mode == MODES[seed % len(MODES)]
    assert report.ok, "seed {} failed:\n{}".format(
        seed, "\n".join(report.problems)
    )
    assert report.n_tasks > 0


def test_run_suite_reports_every_seed():
    reports = run_suite([0, 3], n_ops=40, workers=2, timeout=30.0, verbose=False)
    assert [r.seed for r in reports] == [0, 3]
    assert all(r.ok for r in reports), [r.problems for r in reports]


@pytest.mark.parametrize("seed", [0, 3])
def test_stress_store_mode_passes(seed):
    """Store-mode seeds mix shared-memory array traffic into the
    schedule and verify results bit-exactly."""
    report = run_seed(seed, n_ops=40, workers=2, timeout=60.0, store=True)
    assert report.ok, "\n".join(report.problems)


def test_stress_store_mode_reconciles_on_processes():
    """A mixed-mode seed on the process backend drains cleanly and the
    store byte accounting reconciles against the trace."""
    report = run_seed(
        0, n_ops=40, workers=2, timeout=120.0, backend="processes", store=True
    )
    assert report.ok, "\n".join(report.problems)


def test_same_seed_same_schedule():
    """The generated schedule is a pure function of the seed: two runs
    submit the same task graph (thread interleaving varies, outcomes
    must not)."""
    a = run_seed(4, n_ops=50, workers=4, timeout=30.0)
    b = run_seed(4, n_ops=50, workers=4, timeout=30.0)
    assert a.ok and b.ok, (a.problems, b.problems)
    assert a.n_tasks == b.n_tasks
