"""Fault-injection harness: determinism and runtime recovery."""

from __future__ import annotations

import pytest

from repro.runtime import (
    FaultInjectedError,
    Runtime,
    TaskExecutionError,
    faults,
    task,
    wait_on,
)


def test_injected_failures_recovered_by_retries():
    """Acceptance: the injector fails the task twice; the runtime's
    third attempt succeeds and all three attempts are in the trace."""

    @task(returns=1, max_retries=3)
    def train(x):
        return x * 2

    with faults.inject(faults.fail_nth("train", 1, 2)) as injector:
        with Runtime(executor="threads") as rt:
            assert wait_on(train(21)) == 42
            trace = rt.trace()
    records = sorted(trace.records(name="train"), key=lambda r: r.attempt)
    assert [r.attempt for r in records] == [0, 1, 2]
    assert [r.status for r in records] == ["failed", "failed", "done"]
    # the trace links the attempt chain
    chain = trace.attempts_of(records[0].task_id)
    assert [r.task_id for r in chain] == [r.task_id for r in records]
    assert injector.log == [("train", 1, "fail"), ("train", 2, "fail")]


def test_fail_nth_counts_per_task_name():
    @task(returns=1)
    def a(x):
        return x

    @task(returns=1)
    def b(x):
        return x

    with faults.inject(faults.fail_nth("a", 2)):
        with Runtime(executor="sequential"):
            assert wait_on(a(1)) == 1  # execution 1 passes
            assert wait_on(b(1)) == 1  # other names unaffected
            f = a(2)  # execution 2 of "a" fails
            with pytest.raises(TaskExecutionError) as exc_info:
                wait_on(f)
    assert isinstance(exc_info.value.__cause__, FaultInjectedError)


def test_injection_scope_is_the_context_manager():
    @task(returns=1)
    def t(x):
        return x

    with faults.inject(faults.fail_nth("t", 1)):
        with Runtime(executor="sequential"):
            f = t(0)
            with pytest.raises(TaskExecutionError):
                wait_on(f)
    # outside the with-block the task is healthy again
    with Runtime(executor="sequential"):
        assert wait_on(t(3)) == 3


def test_random_failures_deterministic_under_fixed_seed():
    def run(seed):
        @task(returns=1, max_retries=50)
        def flaky(i):
            return i

        with faults.inject(faults.random_failures("flaky", 0.4), seed=seed) as inj:
            with Runtime(executor="sequential"):
                for i in range(10):
                    wait_on(flaky(i))
        return list(inj.log)

    assert run(7) == run(7)
    assert run(7) != run(8)
    assert run(7)  # probability 0.4 over >= 10 draws must fire


def test_delay_injection_slows_named_execution():
    @task(returns=1)
    def quick(x):
        return x

    with faults.inject(faults.delay_nth("quick", 1, seconds=0.05)) as inj:
        with Runtime(executor="sequential") as rt:
            wait_on(quick(1))
            (rec,) = rt.trace().records(name="quick")
    assert rec.duration >= 0.045
    assert inj.log == [("quick", 1, "delay 0.05s")]


def test_nested_injectors_compose():
    @task(returns=1, max_retries=4)
    def t(x):
        return x

    with faults.inject(faults.fail_nth("t", 1)) as outer:
        with faults.inject(faults.fail_nth("t", 2)) as inner:
            with Runtime(executor="sequential") as rt:
                assert wait_on(t(9)) == 9
                assert rt.stats()["retries"] == 2
    assert outer.log == [("t", 1, "fail")]
    assert inner.log == [("t", 2, "fail")]
