"""Differential tests: the ``threads`` and ``processes`` backends must
be observationally identical.

The same seeds, schedules and workflows run under both backends; any
divergence — values, checkpoint signatures, stats invariants, failure
handling — is a backend bug by definition.  Values are compared
bit-exactly: the process boundary (pickle round trip, out-of-band NumPy
buffers) must not perturb a single bit.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.dsarray as ds
from repro.ecg import ECGConfig
from repro.ml import PCA, RandomForestClassifier, StandardScaler, cross_validate
from repro.runtime import Runtime, RuntimeConfig, task, wait_on
from repro.runtime.stress import MODES, run_seed
from repro.workflows import PipelineConfig, extract_features, prepare_dataset

BACKENDS = ("threads", "processes")


# ----------------------------------------------------------------------
# module-level (worker-importable, dispatchable) task vocabulary
# ----------------------------------------------------------------------
@task(returns=1)
def _scale(block, factor):
    return np.asarray(block) * factor


@task(returns=1)
def _offset(block, delta):
    return np.asarray(block) + delta


@task(returns=1)
def _checksum(block):
    return float(np.asarray(block).sum())


def _chain_workflow():
    """A small diamond of NumPy tasks; returns the final scalar."""
    base = np.arange(48.0).reshape(6, 8)
    left = _scale(base, 3.0)
    right = _offset(base, -1.5)
    merged = _offset(_scale(left, 0.5), 2.0)
    return wait_on([_checksum(merged), _checksum(right)])


# ----------------------------------------------------------------------
# stress scenario families
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_stress_family_passes_under_both_backends(seed):
    """Every scenario family (mixed/abort/kill/shutdown) holds its
    reference-value and invariant guarantees on either backend.

    Task *counts* need not match exactly: a nested task whose parent
    was dispatched to a worker runs as a plain call inside that worker
    (no runtime there), so the process backend's DAG can only be equal
    or smaller — never larger — while every checked value stays
    identical."""
    by_backend = {}
    for backend in BACKENDS:
        report = run_seed(seed, n_ops=40, workers=3, timeout=60.0, backend=backend)
        assert report.mode == MODES[seed % len(MODES)]
        assert report.ok, "{} backend, seed {}:\n{}".format(
            backend, seed, "\n".join(report.problems)
        )
        by_backend[backend] = report
    assert 0 < by_backend["processes"].n_tasks <= by_backend["threads"].n_tasks


# ----------------------------------------------------------------------
# AF-pipeline smoke workflow
# ----------------------------------------------------------------------
_SMOKE_CFG = PipelineConfig(
    scale=0.004,
    seed=2,
    block_size=(16, 64),
    n_splits=2,
    decimate=8,
    stft_batch=8,
    ecg=ECGConfig(noise_std=0.1),
)


def _run_af_smoke(backend: str) -> dict:
    dataset = prepare_dataset(_SMOKE_CFG)
    with Runtime(config=RuntimeConfig(backend=backend, max_workers=3)):
        feats, labels = extract_features(dataset, _SMOKE_CFG)
        dx = ds.array(feats, _SMOKE_CFG.block_size)
        dy = ds.array(labels.reshape(-1, 1), (_SMOKE_CFG.block_size[0], 1))
        reduced = PCA(n_components=4).fit_transform(
            dx, block_size=_SMOKE_CFG.block_size
        )
        scaled = StandardScaler().fit_transform(reduced)
        cv = cross_validate(
            lambda: RandomForestClassifier(n_estimators=4, random_state=0),
            scaled,
            dy,
            n_splits=_SMOKE_CFG.n_splits,
        )
        collected = scaled.collect()
    return {
        "features": feats,
        "labels": labels,
        "scaled": collected,
        "accuracy": cv.mean_accuracy,
        "fold_accuracies": tuple(cv.fold_accuracies),
    }


def test_af_pipeline_smoke_bit_identical():
    """The end-to-end ECG → STFT → PCA → scaler → forest pipeline
    computes *bit-identical* features, projections and fold accuracies
    on both backends."""
    threads = _run_af_smoke("threads")
    processes = _run_af_smoke("processes")
    assert np.array_equal(threads["features"], processes["features"])
    assert np.array_equal(threads["labels"], processes["labels"])
    assert np.array_equal(threads["scaled"], processes["scaled"])
    assert threads["fold_accuracies"] == processes["fold_accuracies"]
    assert threads["accuracy"] == processes["accuracy"]


def test_chain_values_identical():
    results = {}
    for backend in BACKENDS:
        with Runtime(config=RuntimeConfig(backend=backend, max_workers=2)):
            results[backend] = _chain_workflow()
    assert results["threads"] == results["processes"]


# ----------------------------------------------------------------------
# checkpoint signatures across backends
# ----------------------------------------------------------------------
def test_checkpoint_signatures_identical_across_backends(tmp_path):
    """Task signatures are lineage-based (function identity + argument
    fingerprints), never process-dependent: the same workflow writes
    entries under the same keys whichever backend ran the bodies."""
    keys = {}
    values = {}
    for backend in BACKENDS:
        ckpt_dir = tmp_path / backend
        cfg = RuntimeConfig(backend=backend, max_workers=2, checkpoint_dir=str(ckpt_dir))
        with Runtime(config=cfg) as rt:
            values[backend] = _chain_workflow()
            store = rt.checkpoint_store
        # read after shutdown: checkpoint writes land *after* the result
        # futures resolve, so entries() inside the block could race the
        # final put
        keys[backend] = sorted(entry.key for entry in store.entries())
    assert values["threads"] == values["processes"]
    assert keys["threads"] == keys["processes"]
    assert len(keys["threads"]) > 0


def test_cross_backend_resume(tmp_path):
    """A checkpoint store written under one backend resumes a run under
    the other: every task restores, nothing re-executes."""
    ckpt_dir = str(tmp_path / "store")
    with Runtime(config=RuntimeConfig(backend="threads", checkpoint_dir=ckpt_dir)):
        first = _chain_workflow()

    cfg = RuntimeConfig(backend="processes", max_workers=2, checkpoint_dir=ckpt_dir)
    with Runtime(config=cfg) as rt:
        second = _chain_workflow()
        stats = rt.stats()
        trace = rt.trace()
    assert second == first
    assert stats["restored"] == stats["n_tasks"] > 0
    assert all(r.status == "restored" for r in trace.records())
    # nothing was dispatched to a worker — the bodies never ran
    assert stats["backend_stats"]["dispatched"] == 0


# ----------------------------------------------------------------------
# stats invariants & pid telemetry
# ----------------------------------------------------------------------
def test_thread_backend_records_coordinator_pid():
    with Runtime(config=RuntimeConfig(backend="threads", max_workers=2)) as rt:
        _chain_workflow()
        trace = rt.trace()
        stats = rt.stats()
    pids = {r.pid for r in trace.records()}
    assert pids == {os.getpid()}
    assert stats["backend"] == "threads"
    assert stats["backend_stats"]["tasks_run"] == stats["n_tasks"]


def test_process_backend_records_worker_pids():
    with Runtime(config=RuntimeConfig(backend="processes", max_workers=2)) as rt:
        _chain_workflow()
        trace = rt.trace()
        stats = rt.stats()
    pids = {r.pid for r in trace.records()}
    assert pids and None not in pids
    assert all(p != os.getpid() for p in pids), "no task was dispatched"
    backend_stats = stats["backend_stats"]
    assert backend_stats["backend"] == "processes"
    assert backend_stats["dispatched"] == stats["n_tasks"]
    assert backend_stats["worker_crashes"] == 0


def test_local_tasks_fall_back_inline():
    """Tasks defined in a local scope cannot be imported by a worker;
    the backend runs them inline (coordinator pid) with full
    semantics."""

    @task(returns=1)
    def local_double(x):
        return x * 2

    with Runtime(config=RuntimeConfig(backend="processes", max_workers=2)) as rt:
        assert wait_on(local_double(21)) == 42
        trace = rt.trace()
        stats = rt.stats()
    assert {r.pid for r in trace.records()} == {os.getpid()}
    assert stats["backend_stats"]["inline"] == 1


def test_unpicklable_arguments_fall_back_inline():
    import threading

    lock = threading.Lock()
    with Runtime(config=RuntimeConfig(backend="processes", max_workers=2)) as rt:
        # a lock cannot cross the pipe: dispatch falls back inline,
        # the task still runs with identical semantics
        fut = _passthrough_type(lock)
        assert wait_on(fut) is type(lock)
        stats = rt.stats()
    assert stats["backend_stats"]["serialization_fallbacks"] == 1


@task(returns=1)
def _passthrough_type(obj):
    return type(obj)
