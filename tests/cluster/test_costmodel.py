"""Unit tests of :mod:`repro.cluster.costmodel`."""

from __future__ import annotations

from repro.cluster.costmodel import IDENTITY, CostModel, name_mean_smoother
from repro.runtime.tracing import TaskRecord


def _record(name="fit", duration=2.0, gpus=0, task_id=1):
    return TaskRecord(
        task_id=task_id,
        name=name,
        deps=(),
        t_start=10.0,
        t_end=10.0 + duration,
        gpus=gpus,
    )


def test_identity_returns_recorded_duration():
    assert IDENTITY.duration(_record(duration=2.5)) == 2.5


def test_global_scale():
    assert CostModel(scale=3.0).duration(_record(duration=2.0)) == 6.0


def test_per_name_scale_applies_only_to_named_tasks():
    model = CostModel(per_name_scale={"fit": 40.0})
    assert model.duration(_record(name="fit", duration=1.0)) == 40.0
    assert model.duration(_record(name="merge", duration=1.0)) == 1.0


def test_scales_compose():
    model = CostModel(scale=2.0, per_name_scale={"fit": 5.0})
    assert model.duration(_record(name="fit", duration=1.5)) == 15.0


def test_gpu_sync_overhead_per_extra_gpu():
    model = CostModel(gpu_sync_overhead=0.25)
    assert model.duration(_record(duration=1.0, gpus=0)) == 1.0
    assert model.duration(_record(duration=1.0, gpus=1)) == 1.0
    # 4 GPUs -> 3 extra, overhead added after scaling
    assert model.duration(_record(duration=1.0, gpus=4)) == 1.75


def test_node_speed_divides_everything():
    model = CostModel(scale=2.0, gpu_sync_overhead=0.5)
    slow = model.duration(_record(duration=1.0, gpus=2), node_speed=0.5)
    fast = model.duration(_record(duration=1.0, gpus=2), node_speed=2.0)
    assert slow == 2 * (2.0 + 0.5)
    assert fast == (2.0 + 0.5) / 2


def test_base_duration_replaces_recorded_before_scaling():
    model = CostModel(scale=10.0, base_duration=lambda r: 0.3)
    assert model.duration(_record(duration=99.0)) == 3.0


def test_base_duration_none_keeps_recorded():
    model = CostModel(scale=2.0, base_duration=lambda r: None)
    assert model.duration(_record(duration=4.0)) == 8.0


def test_override_wins_and_skips_scaling():
    model = CostModel(
        scale=100.0,
        per_name_scale={"fit": 7.0},
        base_duration=lambda r: 42.0,
        override=lambda r: 1.5,
    )
    assert model.duration(_record(name="fit", duration=9.0)) == 1.5
    # node speed still applies to forced durations
    assert model.duration(_record(name="fit"), node_speed=3.0) == 0.5


def test_override_none_falls_through_to_scaling():
    model = CostModel(scale=2.0, override=lambda r: None)
    assert model.duration(_record(duration=3.0)) == 6.0


def test_name_mean_smoother_averages_across_traces():
    trace_a = [_record("fit", 1.0, task_id=1), _record("fit", 3.0, task_id=2)]
    trace_b = [_record("fit", 5.0, task_id=3), _record("merge", 10.0, task_id=4)]
    hook = name_mean_smoother(trace_a, trace_b)
    assert hook(_record("fit")) == 3.0  # mean of 1, 3, 5
    assert hook(_record("merge")) == 10.0
    assert hook(_record("unknown")) is None


def test_name_mean_smoother_as_base_duration():
    trace = [_record("fit", 2.0, task_id=1), _record("fit", 4.0, task_id=2)]
    model = CostModel(scale=2.0, base_duration=name_mean_smoother(trace))
    # noisy recorded durations both collapse to the 3.0 mean
    assert model.duration(_record("fit", duration=2.0)) == 6.0
    assert model.duration(_record("fit", duration=4.0)) == 6.0
    # unknown name: hook returns None, recorded duration survives
    assert model.duration(_record("other", duration=1.0)) == 2.0
