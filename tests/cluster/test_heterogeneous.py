"""Heterogeneous fleets: per-node speeds and straggler behaviour."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec, NodeSpec, simulate
from repro.runtime.tracing import TaskRecord, Trace


def rec(tid, name="t", deps=(), dur=1.0):
    return TaskRecord(task_id=tid, name=name, deps=tuple(deps), t_start=0.0, t_end=dur)


def test_speed_validation():
    with pytest.raises(ValueError):
        ClusterSpec(node=NodeSpec(cores=1), n_nodes=2, node_speeds=(1.0,))
    with pytest.raises(ValueError):
        ClusterSpec(node=NodeSpec(cores=1), n_nodes=2, node_speeds=(1.0, 0.0))


def test_speed_of_defaults_to_node_speed():
    spec = ClusterSpec(node=NodeSpec(cores=1, speed=2.0), n_nodes=2)
    assert spec.speed_of(0) == 2.0
    spec2 = ClusterSpec(node=NodeSpec(cores=1), n_nodes=2, node_speeds=(1.0, 4.0))
    assert spec2.speed_of(1) == 4.0


def test_single_task_runs_on_fastest_node():
    tr = Trace([rec(0, dur=8.0)])
    cluster = ClusterSpec(node=NodeSpec(cores=1), n_nodes=3, node_speeds=(1.0, 4.0, 2.0))
    res = simulate(tr, cluster)
    assert res.placements[0].node == 1
    assert res.makespan == pytest.approx(2.0)


def test_uniform_speedup_scales_all_durations():
    tr = Trace([rec(i, dur=2.0, deps=[i - 1] if i else []) for i in range(4)])
    slow = simulate(tr, ClusterSpec(node=NodeSpec(cores=1), n_nodes=1, node_speeds=(1.0,)))
    fast = simulate(tr, ClusterSpec(node=NodeSpec(cores=1), n_nodes=1, node_speeds=(2.0,)))
    assert slow.makespan == pytest.approx(2 * fast.makespan)


def test_straggler_dominates_barrier_workload():
    """FedAvg-like round: N parallel updates + an aggregation that
    needs them all.  One slow device bounds the round time."""
    updates = [rec(i, "update", dur=1.0) for i in range(4)]
    agg = rec(4, "agg", deps=[0, 1, 2, 3], dur=0.1)
    tr = Trace(updates + [agg])
    uniform = ClusterSpec(node=NodeSpec(cores=1), n_nodes=4, node_speeds=(1.0,) * 4)
    straggler = ClusterSpec(
        node=NodeSpec(cores=1), n_nodes=4, node_speeds=(1.0, 1.0, 1.0, 0.25)
    )
    t_uniform = simulate(tr, uniform).makespan
    t_straggler = simulate(tr, straggler).makespan
    assert t_uniform == pytest.approx(1.1, abs=0.01)
    # scheduler load-balances: the slow node gets one update (4s) OR
    # the fast nodes absorb it (2 sequential updates = 2s + agg)
    assert t_straggler > t_uniform
    assert t_straggler <= 4.1 + 1e-6


def test_scheduler_avoids_straggler_when_possible():
    """With fewer tasks than fast nodes, nothing lands on the slow one."""
    tr = Trace([rec(i, dur=1.0) for i in range(3)])
    cluster = ClusterSpec(
        node=NodeSpec(cores=1), n_nodes=4, node_speeds=(1.0, 1.0, 1.0, 0.01)
    )
    res = simulate(tr, cluster)
    assert all(p.node != 3 for p in res.placements.values())
    assert res.makespan == pytest.approx(1.0)
