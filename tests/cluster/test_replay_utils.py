"""Replay utilities: barrier-order reconstruction and strategy tables."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterSpec,
    NodeSpec,
    compare_strategies,
    impose_barrier_order,
    simulate,
)
from repro.runtime.tracing import TaskRecord, Trace


def rec(tid, name, t0, t1, deps=()):
    return TaskRecord(
        task_id=tid, name=name, deps=tuple(deps), t_start=t0, t_end=t1
    )


def test_barrier_edges_added():
    """Tasks recorded after a barrier's end gain a dependency on it."""
    tr = Trace(
        [
            rec(0, "train", 0.0, 1.0),
            rec(1, "train", 0.0, 1.0),
            rec(2, "merge", 1.0, 1.2, deps=[0, 1]),
            # next epoch, submitted after wait_on(merge)
            rec(3, "train", 1.3, 2.3),
            rec(4, "train", 1.3, 2.3),
        ]
    )
    out = impose_barrier_order(tr, "merge")
    assert 2 in out[3].deps
    assert 2 in out[4].deps
    # tasks before the barrier untouched
    assert out[0].deps == ()
    assert out[2].deps == (0, 1)


def test_barrier_order_affects_simulation():
    """Without the barrier edges, two epoch groups run concurrently on
    a wide machine; with them, they serialise."""
    tr = Trace(
        [
            rec(0, "train", 0.0, 1.0),
            rec(1, "merge", 1.0, 1.1, deps=[0]),
            rec(2, "train", 1.2, 2.2),
            rec(3, "merge", 2.2, 2.3, deps=[2]),
        ]
    )
    wide = ClusterSpec(node=NodeSpec(cores=16), n_nodes=1)
    free = simulate(tr, wide).makespan
    ordered = simulate(impose_barrier_order(tr, "merge"), wide).makespan
    assert ordered > free


def test_latest_barrier_wins():
    tr = Trace(
        [
            rec(0, "merge", 0.0, 1.0),
            rec(1, "merge", 1.5, 2.0),
            rec(2, "train", 3.0, 4.0),
        ]
    )
    out = impose_barrier_order(tr, "merge")
    assert 1 in out[2].deps
    assert 0 not in out[2].deps


def test_no_barriers_noop():
    tr = Trace([rec(0, "a", 0.0, 1.0), rec(1, "b", 1.0, 2.0, deps=[0])])
    out = impose_barrier_order(tr, "merge")
    assert out[1].deps == (0,)


def test_compare_strategies():
    from repro.cluster.simulator import SimResult

    cluster = ClusterSpec(node=NodeSpec(cores=1), n_nodes=1)
    results = {
        "a": SimResult(cluster, {}, 10.0),
        "b": SimResult(cluster, {}, 5.0),
    }
    sp = compare_strategies(results, baseline="a")
    assert sp["a"] == pytest.approx(1.0)
    assert sp["b"] == pytest.approx(2.0)
