"""Chrome Trace Event Format exports."""

from __future__ import annotations

import json

from repro.cluster import (
    ClusterSpec,
    NodeSpec,
    schedule_to_chrome,
    simulate,
    trace_to_chrome,
)
from repro.cluster.chrometrace import validate_chrome_json
from repro.runtime import Runtime, task, wait_on
from repro.runtime.tracing import TaskRecord, Trace


@task(returns=1)
def _leaf(x):
    return x + 1


@task(returns=1)
def _parent(x):
    return wait_on(_leaf(x))


def test_runtime_trace_export():
    with Runtime(executor="sequential") as rt:
        wait_on(_leaf(5))      # task 0: ensures the parent id is non-zero
        wait_on(_parent(1))
        text = trace_to_chrome(rt.trace())
    events = validate_chrome_json(text)
    xs = [e for e in events if e["ph"] == "X"]
    assert len(xs) == 3
    for e in xs:
        assert e["dur"] >= 0
        assert "deps" in e["args"]
        assert e["args"]["status"] == "done"
    # the sequential executor runs everything on one thread: every
    # attempt lands on the same worker lane of the same process row
    assert len({(e["pid"], e["tid"]) for e in xs}) == 1
    # each lane is named after its worker thread via metadata
    names = [e for e in events if e.get("name") == "thread_name"]
    assert len(names) == 1


def test_trace_export_flow_events_follow_deps():
    @task(returns=1)
    def chain(x):
        return x + 1

    with Runtime(executor="sequential") as rt:
        f = chain(0)
        f = chain(f)
        wait_on(f)
        trace = rt.trace()
        text = trace_to_chrome(trace)
    events = validate_chrome_json(text)
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert len(starts) == 1 and len(finishes) == 1
    assert starts[0]["id"] == finishes[0]["id"]
    assert finishes[0]["bp"] == "e"
    # the arrow leaves the producer at its end and lands at (or after)
    # the consumer's start
    producer = trace[0]
    assert starts[0]["ts"] == producer.t_end * 1e6
    assert finishes[0]["ts"] >= starts[0]["ts"]


def test_trace_export_retry_and_failure_instants():
    tr = Trace(
        [
            TaskRecord(task_id=0, name="a", deps=(), t_start=0.0, t_end=1.0,
                       status="failed", error="boom"),
            TaskRecord(task_id=1, name="a", deps=(0,), t_start=1.0, t_end=2.0,
                       attempt=1, retry_of=0),
            TaskRecord(task_id=2, name="b", deps=(), t_start=0.0, t_end=0.0,
                       status="restored"),
        ]
    )
    events = validate_chrome_json(trace_to_chrome(tr))
    instants = [e for e in events if e["ph"] == "i"]
    cats = sorted(e["cat"] for e in instants)
    assert cats == ["checkpoint", "failure", "retry"]
    retry_ev = next(e for e in instants if e["cat"] == "retry")
    assert retry_ev["args"] == {"retry_of": 0, "attempt": 1}


def test_trace_export_per_worker_and_per_pid_lanes():
    tr = Trace(
        [
            TaskRecord(task_id=0, name="a", deps=(), t_start=0.0, t_end=1.0,
                       pid=100, worker="w-0"),
            TaskRecord(task_id=1, name="b", deps=(), t_start=0.0, t_end=1.0,
                       pid=100, worker="w-1"),
            TaskRecord(task_id=2, name="c", deps=(), t_start=0.0, t_end=1.0,
                       pid=200, worker="w-0"),
        ]
    )
    events = validate_chrome_json(trace_to_chrome(tr))
    xs = {e["name"].split("#")[0]: (e["pid"], e["tid"]) for e in events if e["ph"] == "X"}
    # distinct workers get distinct lanes; distinct pids distinct rows
    assert xs["a"][0] == xs["b"][0] == 100
    assert xs["a"][1] != xs["b"][1]
    assert xs["c"][0] == 200
    process_names = [e for e in events if e.get("name") == "process_name"]
    assert len(process_names) == 2


def test_trace_export_data_plane_counter_lane():
    tr = Trace(
        [
            TaskRecord(task_id=0, name="a", deps=(), t_start=0.0, t_end=1.0,
                       bytes_moved=100, bytes_saved=400),
            TaskRecord(task_id=1, name="b", deps=(0,), t_start=1.0, t_end=2.0,
                       bytes_moved=50, bytes_saved=200),
        ]
    )
    events = validate_chrome_json(trace_to_chrome(tr))
    counters = [e for e in events if e["ph"] == "C"]
    assert len(counters) == 2
    # the series is cumulative and ordered by task end time
    assert counters[0]["args"] == {"moved": 100, "saved": 400}
    assert counters[1]["args"] == {"moved": 150, "saved": 600}
    assert counters[0]["ts"] <= counters[1]["ts"]
    # per-task byte accounting also lands on the span args
    xs = {e["name"].split("#")[0]: e for e in events if e["ph"] == "X"}
    assert xs["a"]["args"]["bytes_moved"] == 100
    assert xs["b"]["args"]["bytes_saved"] == 200


def test_trace_export_without_data_plane_has_no_counter_lane():
    tr = Trace([TaskRecord(task_id=0, name="a", deps=(), t_start=0.0, t_end=1.0)])
    events = validate_chrome_json(trace_to_chrome(tr))
    assert not [e for e in events if e["ph"] == "C"]


def test_validate_chrome_json_rejects_malformed():
    import pytest

    with pytest.raises(ValueError):
        validate_chrome_json(json.dumps({"traceEvents": [{"ph": "X", "pid": 1}]}))
    with pytest.raises(ValueError):
        validate_chrome_json(json.dumps({"no": "events"}))
    with pytest.raises(ValueError):
        validate_chrome_json(
            json.dumps(
                {"traceEvents": [{"ph": "s", "id": 7, "pid": 1, "tid": 0, "ts": 0}]}
            )
        )


def test_schedule_export():
    tr = Trace(
        [
            TaskRecord(task_id=0, name="a", deps=(), t_start=0, t_end=1),
            TaskRecord(task_id=1, name="b", deps=(0,), t_start=0, t_end=2),
        ]
    )
    res = simulate(tr, ClusterSpec(node=NodeSpec(cores=2), n_nodes=2))
    blob = json.loads(schedule_to_chrome(res))
    xs = [e for e in blob["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == 2
    names = [e for e in blob["traceEvents"] if e.get("name") == "thread_name"]
    assert len(names) == 2


def test_empty_trace_valid_json():
    blob = json.loads(trace_to_chrome(Trace()))
    assert blob["traceEvents"][0]["ph"] == "M"
