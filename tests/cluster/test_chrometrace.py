"""Chrome Trace Event Format exports."""

from __future__ import annotations

import json

from repro.cluster import (
    ClusterSpec,
    NodeSpec,
    schedule_to_chrome,
    simulate,
    trace_to_chrome,
)
from repro.runtime import Runtime, task, wait_on
from repro.runtime.tracing import TaskRecord, Trace


@task(returns=1)
def _leaf(x):
    return x + 1


@task(returns=1)
def _parent(x):
    return wait_on(_leaf(x))


def test_runtime_trace_export():
    with Runtime(executor="sequential") as rt:
        wait_on(_leaf(5))      # task 0: ensures the parent id is non-zero
        wait_on(_parent(1))
        text = trace_to_chrome(rt.trace())
    blob = json.loads(text)
    events = blob["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    assert len(xs) == 3
    for e in xs:
        assert e["dur"] >= 0
        assert "deps" in e["args"]
    # nested leaf shares its parent's lane
    parent_ev = next(e for e in xs if e["name"].startswith("_parent"))
    parent_id = int(parent_ev["name"].split("#")[1])
    child_ev = next(
        e for e in xs if e["name"].startswith("_leaf") and e["tid"] == parent_id
    )
    assert child_ev["tid"] == parent_id


def test_schedule_export():
    tr = Trace(
        [
            TaskRecord(task_id=0, name="a", deps=(), t_start=0, t_end=1),
            TaskRecord(task_id=1, name="b", deps=(0,), t_start=0, t_end=2),
        ]
    )
    res = simulate(tr, ClusterSpec(node=NodeSpec(cores=2), n_nodes=2))
    blob = json.loads(schedule_to_chrome(res))
    xs = [e for e in blob["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == 2
    names = [e for e in blob["traceEvents"] if e.get("name") == "thread_name"]
    assert len(names) == 2


def test_empty_trace_valid_json():
    blob = json.loads(trace_to_chrome(Trace()))
    assert blob["traceEvents"][0]["ph"] == "M"
