"""Node-failure events in the discrete-event simulator."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterSpec,
    DeadClusterError,
    NodeFailure,
    NodeSpec,
    failure_report,
    simulate,
)
from repro.runtime.tracing import TaskRecord, Trace


def synthetic_trace(n_work=8, work_s=1.0, reduce_s=0.5):
    """n_work independent unit tasks plus one reduction over them all —
    controlled durations make failure timing exact."""
    trace = Trace()
    for i in range(n_work):
        trace.add(TaskRecord(task_id=i, name="work", deps=(), t_start=0.0, t_end=work_s))
    trace.add(
        TaskRecord(
            task_id=n_work,
            name="reduce",
            deps=tuple(range(n_work)),
            t_start=work_s,
            t_end=work_s + reduce_s,
        )
    )
    return trace


def two_nodes():
    return ClusterSpec(n_nodes=2, node=NodeSpec(cores=4, name="unit"))


def test_failure_reexecutes_inflight_tasks():
    trace = synthetic_trace()
    cluster = two_nodes()
    base = simulate(trace, cluster)
    assert base.makespan == pytest.approx(1.5)
    result = simulate(
        trace,
        cluster,
        failures=[NodeFailure(node=0, at=0.5)],  # permanent
    )
    # every task still completes exactly once in the final schedule
    assert set(result.placements) == set(base.placements)
    # the four tasks in flight on node 0 were killed at t=0.5
    assert len(result.failed_placements) == 4
    for p in result.failed_placements:
        assert p.node == 0
        assert p.t_end == pytest.approx(0.5)
        # the re-execution ran on the surviving node
        assert result.placements[p.task_id].node == 1
    # node 1 redoes the work after its own wave: 1.0 + 1.0 + 0.5
    assert result.makespan == pytest.approx(2.5)


def test_lost_time_accounting():
    trace = synthetic_trace()
    cluster = two_nodes()
    result = simulate(trace, cluster, failures=[NodeFailure(node=0, at=0.5)])
    assert result.lost_task_time == pytest.approx(4 * 0.5)
    assert result.lost_core_time == pytest.approx(4 * 0.5)  # 1 core per task
    assert result.node_failures == (NodeFailure(node=0, at=0.5),)


def test_permanent_failure_of_all_nodes_raises():
    trace = synthetic_trace()
    with pytest.raises(DeadClusterError):
        simulate(
            trace,
            two_nodes(),
            failures=[NodeFailure(node=0, at=0.5), NodeFailure(node=1, at=0.5)],
        )


def test_node_revival_allows_reuse():
    trace = synthetic_trace()
    # single node: it must come back for the workflow to finish
    cluster = ClusterSpec(n_nodes=1, node=NodeSpec(cores=4, name="unit"))
    base = simulate(trace, cluster)
    assert base.makespan == pytest.approx(2.5)  # two waves + reduce
    result = simulate(
        trace,
        cluster,
        failures=[NodeFailure(node=0, at=1.25, down_for=0.25)],
    )
    # wave 2 killed at 1.25, node back at 1.5, redo [1.5, 2.5], reduce
    assert set(result.placements) == set(base.placements)
    assert result.makespan == pytest.approx(3.0)
    assert len(result.failed_placements) == 4
    assert result.lost_task_time == pytest.approx(4 * 0.25)


def test_task_finishing_exactly_at_failure_survives():
    trace = synthetic_trace()
    cluster = two_nodes()
    result = simulate(trace, cluster, failures=[NodeFailure(node=0, at=1.0)])
    # completions at t=1.0 are processed before the failure event, so
    # no work-task progress is lost; only the just-placed reduce (zero
    # seconds in) can be killed and re-placed on the surviving node
    assert all(p.name != "work" for p in result.failed_placements)
    assert result.lost_task_time == pytest.approx(0.0)
    assert result.makespan == pytest.approx(1.5)


def test_no_failures_matches_baseline():
    trace = synthetic_trace()
    cluster = two_nodes()
    assert simulate(trace, cluster).placements == simulate(
        trace, cluster, failures=[]
    ).placements


def test_failure_out_of_range_rejected():
    with pytest.raises(ValueError):
        simulate(synthetic_trace(), two_nodes(), failures=[NodeFailure(node=9, at=1.0)])


def test_node_failure_validation():
    with pytest.raises(ValueError):
        NodeFailure(node=-1, at=0.0)
    with pytest.raises(ValueError):
        NodeFailure(node=0, at=-1.0)
    with pytest.raises(ValueError):
        NodeFailure(node=0, at=0.0, down_for=0.0)


def test_failure_report_mentions_losses():
    trace = synthetic_trace()
    cluster = two_nodes()
    base = simulate(trace, cluster)
    result = simulate(trace, cluster, failures=[NodeFailure(node=0, at=0.5)])
    report = failure_report(result, baseline_makespan=base.makespan)
    assert "node failure" in report
    assert "lost task time" in report
    assert "recovery overhead" in report
