"""Checkpoint pricing in the cluster simulator."""

from __future__ import annotations

import pytest

from repro.cluster import (
    CheckpointSpec,
    ClusterSpec,
    NodeFailure,
    NodeSpec,
    failure_report,
    simulate,
)
from repro.cluster.chrometrace import schedule_to_chrome
from repro.runtime.tracing import TaskRecord, Trace


def chain_trace(n=4, dur=1.0):
    """A strict chain of n unit tasks — placement order is the chain order."""
    trace = Trace()
    for i in range(n):
        trace.add(
            TaskRecord(
                task_id=i,
                name="step",
                deps=() if i == 0 else (i - 1,),
                t_start=i * dur,
                t_end=(i + 1) * dur,
            )
        )
    return trace


def one_node():
    return ClusterSpec(n_nodes=1, node=NodeSpec(cores=4, name="unit"))


class TestCheckpointSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointSpec(every=0)
        with pytest.raises(ValueError):
            CheckpointSpec(write_cost=-1.0)

    def test_defaults(self):
        spec = CheckpointSpec()
        assert spec.every == 1 and spec.write_cost == 0.0


class TestSimulation:
    def test_every_task_pays_the_write(self):
        trace = chain_trace(n=4)
        base = simulate(trace, one_node())
        ck = simulate(
            trace, one_node(), checkpoint=CheckpointSpec(every=1, write_cost=0.25)
        )
        assert base.makespan == pytest.approx(4.0)
        assert ck.makespan == pytest.approx(5.0)  # 4 tasks + 4 writes
        assert len(ck.checkpoint_writes) == 4
        assert ck.checkpoint_overhead == pytest.approx(1.0)

    def test_every_n_writes_fewer(self):
        trace = chain_trace(n=4)
        ck = simulate(
            trace, one_node(), checkpoint=CheckpointSpec(every=2, write_cost=0.25)
        )
        assert len(ck.checkpoint_writes) == 2
        assert ck.makespan == pytest.approx(4.5)

    def test_write_window_sits_at_the_task_tail(self):
        trace = chain_trace(n=2)
        ck = simulate(
            trace, one_node(), checkpoint=CheckpointSpec(every=1, write_cost=0.5)
        )
        w0 = ck.checkpoint_writes[0]
        assert w0.t_start == pytest.approx(1.0)
        assert w0.t_end == pytest.approx(1.5)
        assert w0.duration == pytest.approx(0.5)

    def test_no_spec_means_no_writes(self):
        result = simulate(chain_trace(), one_node())
        assert result.checkpoint_writes == []
        assert result.checkpoint_spec is None
        assert result.checkpoint_overhead == 0.0

    def test_killed_task_records_no_write(self):
        """A node failure voids the in-flight task's checkpoint write."""
        trace = Trace()
        for i in range(4):
            trace.add(
                TaskRecord(task_id=i, name="work", deps=(), t_start=0.0, t_end=1.0)
            )
        cluster = ClusterSpec(n_nodes=2, node=NodeSpec(cores=2, name="unit"))
        spec = CheckpointSpec(every=1, write_cost=0.25)
        clean = simulate(trace, cluster, checkpoint=spec)
        assert len(clean.checkpoint_writes) == 4

        failed = simulate(
            trace,
            cluster,
            checkpoint=spec,
            failures=[NodeFailure(node=0, at=0.5)],
        )
        # 4 final completions still write; the 2 killed attempts do not
        assert len(failed.checkpoint_writes) == 4
        assert len(failed.failed_placements) == 2
        assert all(w.node == 1 for w in failed.checkpoint_writes)

    def test_empty_trace_keeps_the_spec(self):
        spec = CheckpointSpec(every=3, write_cost=0.1)
        result = simulate(Trace(), one_node(), checkpoint=spec)
        assert result.checkpoint_spec == spec
        assert result.checkpoint_writes == []


class TestReporting:
    def test_failure_report_prices_the_policy(self):
        trace = chain_trace(n=4)
        result = simulate(
            trace, one_node(), checkpoint=CheckpointSpec(every=2, write_cost=0.25)
        )
        report = failure_report(result)
        assert "checkpoint policy  : every 2 task(s), 0.250s per write" in report
        assert "checkpoint writes  : 2 (0.500s overhead)" in report

    def test_failure_report_verdict(self):
        trace = Trace()
        for i in range(4):
            trace.add(
                TaskRecord(task_id=i, name="work", deps=(), t_start=0.0, t_end=1.0)
            )
        cluster = ClusterSpec(n_nodes=2, node=NodeSpec(cores=2, name="unit"))
        cheap = simulate(
            trace,
            cluster,
            checkpoint=CheckpointSpec(every=1, write_cost=0.01),
            failures=[NodeFailure(node=0, at=0.5)],
        )
        assert "pays for itself" in failure_report(cheap)
        dear = simulate(
            trace,
            cluster,
            checkpoint=CheckpointSpec(every=1, write_cost=10.0),
            failures=[NodeFailure(node=0, at=0.5)],
        )
        assert "costs more than it saves" in failure_report(dear)

    def test_chrome_trace_emits_checkpoint_events(self):
        import json

        trace = chain_trace(n=3)
        result = simulate(
            trace, one_node(), checkpoint=CheckpointSpec(every=1, write_cost=0.25)
        )
        events = json.loads(schedule_to_chrome(result))["traceEvents"]
        ck_events = [e for e in events if e.get("cat") == "checkpoint"]
        assert len(ck_events) == 3
        assert all(e["name"].startswith("ckpt#") for e in ck_events)
