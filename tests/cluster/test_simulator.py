"""Simulator correctness: placement, resource limits, transfers, sweeps."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterSpec,
    CostModel,
    NodeSpec,
    OversubscribedTaskError,
    core_sweep,
    cte_power,
    flatten_nested,
    laptop,
    marenostrum4,
    simulate,
    speedups,
    format_sweep,
)
from repro.runtime.tracing import TaskRecord, Trace


def rec(tid, name="t", deps=(), dur=1.0, cores=1, gpus=0, out_bytes=0, parent=None):
    return TaskRecord(
        task_id=tid,
        name=name,
        deps=tuple(deps),
        t_start=0.0,
        t_end=dur,
        computing_units=cores,
        gpus=gpus,
        out_bytes=out_bytes,
        parent_id=parent,
    )


def one_node(cores=4, gpus=0):
    return ClusterSpec(node=NodeSpec(cores=cores, gpus=gpus), n_nodes=1)


def test_empty_trace():
    res = simulate(Trace(), one_node())
    assert res.makespan == 0.0
    assert res.n_tasks == 0


def test_single_task():
    res = simulate(Trace([rec(0, dur=2.5)]), one_node())
    assert res.makespan == pytest.approx(2.5)


def test_serial_chain_sums_durations():
    tr = Trace([rec(0, dur=1.0), rec(1, deps=[0], dur=2.0), rec(2, deps=[1], dur=3.0)])
    res = simulate(tr, one_node())
    assert res.makespan == pytest.approx(6.0)


def test_independent_tasks_run_in_parallel():
    tr = Trace([rec(i, dur=1.0) for i in range(4)])
    res = simulate(tr, one_node(cores=4))
    assert res.makespan == pytest.approx(1.0)


def test_core_limit_serialises():
    tr = Trace([rec(i, dur=1.0) for i in range(4)])
    res = simulate(tr, one_node(cores=2))
    assert res.makespan == pytest.approx(2.0)


def test_multicore_tasks_respect_capacity():
    tr = Trace([rec(i, dur=1.0, cores=3) for i in range(2)])
    res = simulate(tr, one_node(cores=4))
    # only one 3-core task fits at a time on a 4-core node
    assert res.makespan == pytest.approx(2.0)


def test_two_nodes_double_throughput():
    tr = Trace([rec(i, dur=1.0, cores=4) for i in range(4)])
    res1 = simulate(tr, ClusterSpec(node=NodeSpec(cores=4), n_nodes=1))
    res2 = simulate(tr, ClusterSpec(node=NodeSpec(cores=4), n_nodes=2))
    assert res1.makespan == pytest.approx(4.0)
    assert res2.makespan == pytest.approx(2.0)


def test_oversubscribed_task_rejected():
    tr = Trace([rec(0, cores=64)])
    with pytest.raises(OversubscribedTaskError):
        simulate(tr, marenostrum4(1))


def test_gpu_oversubscription_rejected():
    tr = Trace([rec(0, gpus=8)])
    with pytest.raises(OversubscribedTaskError):
        simulate(tr, cte_power(1))


def test_gpu_capacity():
    tr = Trace([rec(i, dur=1.0, gpus=4) for i in range(2)])
    res = simulate(tr, cte_power(1))
    assert res.makespan == pytest.approx(2.0)
    res2 = simulate(tr, cte_power(2))
    assert res2.makespan == pytest.approx(1.0)


def test_transfer_penalty_applied_across_nodes():
    """A consumer placed on a different node pays bytes/bandwidth."""
    big = 1_000_000_000  # 1 GB -> 0.08 s at 12.5 GB/s
    tr = Trace(
        [
            rec(0, dur=1.0, out_bytes=big),
            rec(1, deps=[0], dur=1.0),
        ]
    )
    # one node: no transfer
    res_local = simulate(tr, ClusterSpec(node=NodeSpec(cores=1), n_nodes=1))
    assert res_local.makespan == pytest.approx(2.0, abs=1e-6)
    # The locality-aware scheduler places the child on the parent's node
    # when possible, so use a sweep where it must cross nodes:
    # parent node is saturated by a long blocker started at t=0.
    tr2 = Trace(
        [
            rec(0, name="prod", dur=1.0, out_bytes=big),
            rec(1, name="blocker", dur=10.0),
            rec(2, name="cons", deps=[0], dur=1.0),
        ]
    )
    res = simulate(tr2, ClusterSpec(node=NodeSpec(cores=1), n_nodes=2, bandwidth=12.5e9))
    cons = [p for p in res.placements.values() if p.name == "cons"][0]
    prod = [p for p in res.placements.values() if p.name == "prod"][0]
    if cons.node != prod.node:
        assert cons.t_start >= 1.0 + 1_000_000_000 / 12.5e9 - 1e-9


def test_locality_preferred():
    tr = Trace(
        [
            rec(0, dur=1.0, out_bytes=10_000_000),
            rec(1, deps=[0], dur=1.0),
        ]
    )
    res = simulate(tr, ClusterSpec(node=NodeSpec(cores=2), n_nodes=2))
    p0, p1 = res.placements[0], res.placements[1]
    assert p0.node == p1.node  # child follows its data


def test_cost_model_scaling():
    tr = Trace([rec(0, dur=2.0)])
    res = simulate(tr, one_node(), cost_model=CostModel(scale=3.0))
    assert res.makespan == pytest.approx(6.0)


def test_cost_model_per_name_and_override():
    tr = Trace([rec(0, name="fit", dur=2.0), rec(1, name="other", dur=2.0)])
    cm = CostModel(per_name_scale={"fit": 5.0}, override=lambda r: 1.0 if r.name == "other" else None)
    res = simulate(tr, one_node(cores=2), cost_model=cm)
    ends = {p.name: p.t_end for p in res.placements.values()}
    assert ends["fit"] == pytest.approx(10.0)
    assert ends["other"] == pytest.approx(1.0)


def test_cost_model_gpu_sync_overhead():
    cm = CostModel(gpu_sync_overhead=0.5)
    r1 = rec(0, dur=1.0, gpus=1)
    r4 = rec(1, dur=1.0, gpus=4)
    assert cm.duration(r1) == pytest.approx(1.0)
    assert cm.duration(r4) == pytest.approx(1.0 + 1.5)


def test_cores_per_task_override():
    tr = Trace([rec(i, name="fit", dur=1.0) for i in range(6)])
    res = simulate(tr, marenostrum4(1), cores_per_task={"fit": 8})
    # 48 cores / 8 per task = 6 concurrently
    assert res.makespan == pytest.approx(1.0)
    res2 = simulate(tr, marenostrum4(1), cores_per_task={"fit": 24})
    assert res2.makespan == pytest.approx(3.0)


def test_utilization_and_node_busy():
    tr = Trace([rec(i, dur=1.0) for i in range(4)])
    res = simulate(tr, one_node(cores=4))
    assert res.utilization() == pytest.approx(1.0)
    assert sum(res.node_busy_time()) == pytest.approx(4.0)


def test_core_sweep_monotone_for_parallel_workload():
    tr = Trace([rec(i, dur=1.0, cores=8, name="fit") for i in range(24)])
    points = core_sweep(tr, NodeSpec(cores=48), [1, 2, 3, 4])
    times = [p.makespan for p in points]
    assert times[0] >= times[1] >= times[2] >= times[3]
    sp = speedups(points)
    assert sp[48] == pytest.approx(1.0)
    assert sp[192] > 1.5


def test_format_sweep_table():
    tr = Trace([rec(i, dur=1.0) for i in range(8)])
    points = core_sweep(tr, NodeSpec(cores=4), [1, 2])
    table = format_sweep(points, "demo")
    assert "demo" in table
    assert "cores" in table
    assert len(table.splitlines()) == 4


def test_laptop_cluster():
    spec = laptop()
    assert spec.n_nodes == 1
    assert spec.total_cores >= 1


def test_resource_validation():
    with pytest.raises(ValueError):
        NodeSpec(cores=0)
    with pytest.raises(ValueError):
        NodeSpec(cores=1, gpus=-1)
    with pytest.raises(ValueError):
        NodeSpec(cores=1, speed=0)
    with pytest.raises(ValueError):
        ClusterSpec(node=NodeSpec(cores=1), n_nodes=0)
    with pytest.raises(ValueError):
        ClusterSpec(node=NodeSpec(cores=1), n_nodes=1, bandwidth=-1)


def test_transfer_time():
    spec = ClusterSpec(node=NodeSpec(cores=1), n_nodes=2, bandwidth=1e9, latency=1e-6)
    assert spec.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)


class TestFlattenNested:
    def test_flat_trace_unchanged(self):
        tr = Trace([rec(0), rec(1, deps=[0])])
        flat = flatten_nested(tr)
        assert len(flat) == 2
        assert flat[1].deps == (0,)

    def test_parent_dropped_children_inherit_deps(self):
        tr = Trace(
            [
                rec(0, name="pre"),
                rec(1, name="fold", deps=[0]),  # parent
                rec(2, name="train", parent=1),
                rec(3, name="train", deps=[2], parent=1),
                rec(4, name="post", deps=[1]),
            ]
        )
        flat = flatten_nested(tr)
        ids = {r.task_id for r in flat}
        assert ids == {0, 2, 3, 4}
        assert flat[2].deps == (0,)  # inherited from parent
        assert flat[3].deps == (0, 2)
        # post now depends on the parent's leaves
        assert set(flat[4].deps) == {2, 3}

    def test_two_level_nesting(self):
        tr = Trace(
            [
                rec(0, name="outer"),  # parent of 1
                rec(1, name="mid", parent=0),  # parent of 2
                rec(2, name="leaf", parent=1),
                rec(3, name="after", deps=[0]),
            ]
        )
        flat = flatten_nested(tr)
        ids = {r.task_id for r in flat}
        assert ids == {2, 3}
        assert set(flat[3].deps) == {2}

    def test_simulating_flattened_nested_trace(self):
        # 2 folds, each with a chain of 2 epochs of 1s -> 2 nodes: 2s
        tr = Trace(
            [
                rec(0, name="fold"),
                rec(1, name="fold"),
                rec(2, name="train", dur=1.0, parent=0),
                rec(3, name="train", dur=1.0, deps=[2], parent=0),
                rec(4, name="train", dur=1.0, parent=1),
                rec(5, name="train", dur=1.0, deps=[4], parent=1),
            ]
        )
        flat = flatten_nested(tr)
        res = simulate(flat, ClusterSpec(node=NodeSpec(cores=1), n_nodes=2))
        assert res.makespan == pytest.approx(2.0)
        res1 = simulate(flat, ClusterSpec(node=NodeSpec(cores=1), n_nodes=1))
        assert res1.makespan == pytest.approx(4.0)
