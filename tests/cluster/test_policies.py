"""Scheduler placement policies."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec, NodeSpec, simulate
from repro.runtime.tracing import TaskRecord, Trace


def rec(tid, name="t", deps=(), dur=1.0, out_bytes=0):
    return TaskRecord(
        task_id=tid, name=name, deps=tuple(deps), t_start=0.0, t_end=dur,
        out_bytes=out_bytes,
    )


def chain_with_big_data():
    """One producer with a heavy output and a fan of consumers:
    waiting for a local core beats paying the transfer."""
    records = [rec(0, "produce", dur=1.0, out_bytes=2_000_000_000)]
    for i in range(6):
        records.append(rec(i + 1, "consume", deps=[0], dur=1.0))
    return Trace(records)


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        simulate(Trace(), ClusterSpec(node=NodeSpec(cores=1), n_nodes=1), policy="static")


def test_round_robin_spreads_tasks():
    tr = Trace([rec(i, dur=1.0) for i in range(8)])
    cluster = ClusterSpec(node=NodeSpec(cores=8), n_nodes=4)
    res = simulate(tr, cluster, policy="round_robin")
    used = {p.node for p in res.placements.values()}
    assert len(used) == 4


def test_locality_beats_round_robin_with_transfers():
    """With slow interconnect and heavy payloads, the locality policy
    avoids the transfers round-robin pays."""
    tr = chain_with_big_data()
    cluster = ClusterSpec(
        node=NodeSpec(cores=2), n_nodes=4, bandwidth=0.5e9  # -> 4 s/transfer
    )
    local = simulate(tr, cluster, policy="locality")
    rr = simulate(tr, cluster, policy="round_robin")
    assert local.makespan < rr.makespan


def test_policies_agree_without_data():
    tr = Trace([rec(i, dur=1.0) for i in range(16)])
    cluster = ClusterSpec(node=NodeSpec(cores=4), n_nodes=4)
    a = simulate(tr, cluster, policy="locality").makespan
    b = simulate(tr, cluster, policy="round_robin").makespan
    assert a == pytest.approx(b)
