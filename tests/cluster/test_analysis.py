"""Trace/schedule analyses: critical path, breakdowns, Gantt."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec, NodeSpec, simulate
from repro.cluster.analysis import (
    bottleneck_report,
    critical_path,
    gantt_text,
    idle_fraction,
    time_breakdown,
)
from repro.runtime.tracing import TaskRecord, Trace


def rec(tid, name="t", deps=(), dur=1.0):
    return TaskRecord(
        task_id=tid, name=name, deps=tuple(deps), t_start=0.0, t_end=dur
    )


def test_critical_path_simple_chain():
    tr = Trace([rec(0, dur=1.0), rec(1, deps=[0], dur=2.0), rec(2, deps=[1], dur=3.0)])
    path, length = critical_path(tr)
    assert path == [0, 1, 2]
    assert length == pytest.approx(6.0)


def test_critical_path_picks_heavier_branch():
    tr = Trace(
        [
            rec(0, dur=1.0),
            rec(1, deps=[0], dur=5.0),
            rec(2, deps=[0], dur=1.0),
            rec(3, deps=[1, 2], dur=1.0),
        ]
    )
    path, length = critical_path(tr)
    assert path == [0, 1, 3]
    assert length == pytest.approx(7.0)


def test_critical_path_empty():
    assert critical_path(Trace()) == ([], 0.0)


def test_critical_path_lower_bounds_makespan():
    tr = Trace([rec(i, dur=1.0, deps=[i - 1] if i else []) for i in range(5)])
    _, cp = critical_path(tr)
    res = simulate(tr, ClusterSpec(node=NodeSpec(cores=64), n_nodes=4))
    assert res.makespan >= cp - 1e-9


def test_time_breakdown_shares_sum_to_one():
    tr = Trace([rec(0, "a", dur=1.0), rec(1, "b", dur=3.0)])
    bd = time_breakdown(tr)
    assert bd["a"]["share"] + bd["b"]["share"] == pytest.approx(1.0)
    assert bd["b"]["total_s"] == pytest.approx(3.0)
    assert bd["a"]["count"] == 1


def test_gantt_text_renders_all_nodes():
    tr = Trace([rec(0, "alpha", dur=1.0), rec(1, "beta", dur=1.0)])
    res = simulate(tr, ClusterSpec(node=NodeSpec(cores=1), n_nodes=2))
    text = gantt_text(res, width=40)
    assert "node   0" in text and "node   1" in text
    assert "a" in text or "b" in text


def test_gantt_empty():
    res = simulate(Trace(), ClusterSpec(node=NodeSpec(cores=1), n_nodes=1))
    assert gantt_text(res) == "(empty schedule)"


def test_idle_fraction_bounds():
    tr = Trace([rec(0, dur=1.0)])
    res = simulate(tr, ClusterSpec(node=NodeSpec(cores=4), n_nodes=1))
    frac = idle_fraction(res)
    assert 0.0 <= frac <= 1.0
    assert frac == pytest.approx(0.75)


def test_bottleneck_report_mentions_everything():
    tr = Trace(
        [rec(0, "load", dur=0.5), rec(1, "fit", deps=[0], dur=2.0), rec(2, "fit", deps=[0], dur=2.0)]
    )
    res = simulate(tr, ClusterSpec(node=NodeSpec(cores=2), n_nodes=1))
    report = bottleneck_report(tr, res)
    assert "makespan" in report
    assert "critical path" in report
    assert "fit" in report
