"""ds-array semantics, with and without a runtime."""

from __future__ import annotations

import numpy as np
import pytest

import repro.dsarray as ds
from repro.runtime import Runtime


@pytest.fixture(params=["none", "sequential", "threads"])
def runtime_mode(request):
    """Every test runs eagerly, sequentially-tasked, and threaded."""
    if request.param == "none":
        yield None
    else:
        workers = 4 if request.param == "threads" else None
        with Runtime(executor=request.param, max_workers=workers) as rt:
            yield rt


def test_partition_and_collect(runtime_mode, rng):
    x = rng.standard_normal((53, 31))
    a = ds.array(x, block_size=(10, 8))
    assert a.shape == (53, 31)
    assert a.n_blocks == (6, 4)
    np.testing.assert_allclose(a.collect(), x)


def test_1d_input_becomes_column(runtime_mode):
    a = ds.array(np.arange(7.0), block_size=(3, 1))
    assert a.shape == (7, 1)
    np.testing.assert_allclose(a.collect().ravel(), np.arange(7.0))


def test_3d_input_rejected():
    with pytest.raises(ValueError):
        ds.array(np.zeros((2, 2, 2)), block_size=(1, 1))


def test_bad_block_size():
    with pytest.raises(ValueError):
        ds.array(np.zeros((4, 4)), block_size=(0, 2))


def test_block_grid_geometry():
    a = ds.zeros((10, 10), block_size=(4, 4))
    assert a.n_blocks == (3, 3)
    assert a.row_ranges() == [(0, 4), (4, 8), (8, 10)]


def test_exact_division_geometry():
    a = ds.zeros((8, 8), block_size=(4, 4))
    assert a.n_blocks == (2, 2)


def test_creation_task_count():
    """Partitioning creates one task per block (paper: 631 load tasks)."""
    with Runtime(executor="sequential") as rt:
        ds.array(np.zeros((100, 100)), block_size=(10, 10))
        assert rt.graph.count_by_name()["slice_block"] == 100


def test_zeros_ones_full(runtime_mode):
    z = ds.zeros((5, 5), (2, 2)).collect()
    o = ds.ones((5, 5), (2, 2)).collect()
    f = ds.full((5, 5), (2, 2), 3.5).collect()
    assert z.sum() == 0 and o.sum() == 25 and f[0, 0] == 3.5


def test_random_array_reproducible(runtime_mode):
    a = ds.random_array((20, 10), (6, 4), random_state=7).collect()
    b = ds.random_array((20, 10), (6, 4), random_state=7).collect()
    np.testing.assert_array_equal(a, b)
    assert a.min() >= 0 and a.max() < 1


def test_transpose(runtime_mode, rng):
    x = rng.standard_normal((13, 7))
    a = ds.array(x, (5, 3))
    np.testing.assert_allclose(a.T.collect(), x.T)
    assert a.T.shape == (7, 13)
    assert a.T.block_size == (3, 5)


def test_elementwise_scalar(runtime_mode, rng):
    x = rng.standard_normal((9, 9))
    a = ds.array(x, (4, 4))
    np.testing.assert_allclose((a + 1).collect(), x + 1)
    np.testing.assert_allclose((a - 2).collect(), x - 2)
    np.testing.assert_allclose((a * 3).collect(), x * 3)
    np.testing.assert_allclose((a / 4).collect(), x / 4)
    np.testing.assert_allclose((a**2).collect(), x**2)


def test_elementwise_array(runtime_mode, rng):
    x = rng.standard_normal((9, 6))
    y = rng.standard_normal((9, 6))
    a, b = ds.array(x, (4, 4)), ds.array(y, (4, 4))
    np.testing.assert_allclose((a + b).collect(), x + y)
    np.testing.assert_allclose((a * b).collect(), x * y)


def test_elementwise_shape_mismatch():
    a = ds.zeros((4, 4), (2, 2))
    b = ds.zeros((4, 5), (2, 2))
    with pytest.raises(ValueError):
        a + b


def test_matmul(runtime_mode, rng):
    x = rng.standard_normal((12, 9))
    y = rng.standard_normal((9, 7))
    a = ds.array(x, (5, 4))
    b = ds.array(y, (4, 3))
    c = a @ b
    assert c.shape == (12, 7)
    np.testing.assert_allclose(c.collect(), x @ y, rtol=1e-10)


def test_matmul_single_inner_block(runtime_mode, rng):
    x = rng.standard_normal((6, 4))
    y = rng.standard_normal((4, 5))
    c = ds.array(x, (3, 4)) @ ds.array(y, (4, 2))
    np.testing.assert_allclose(c.collect(), x @ y, rtol=1e-10)


def test_matmul_mismatch():
    a = ds.zeros((4, 4), (2, 2))
    b = ds.zeros((5, 4), (2, 2))
    with pytest.raises(ValueError):
        a @ b
    c = ds.zeros((4, 4), (3, 2))
    with pytest.raises(ValueError):
        a @ c


def test_sum_mean(runtime_mode, rng):
    x = rng.standard_normal((15, 8))
    a = ds.array(x, (4, 3))
    np.testing.assert_allclose(a.sum(axis=0), x.sum(axis=0), rtol=1e-10)
    np.testing.assert_allclose(a.sum(axis=1), x.sum(axis=1), rtol=1e-10)
    np.testing.assert_allclose(a.mean(axis=0), x.mean(axis=0), rtol=1e-10)
    np.testing.assert_allclose(a.mean(axis=1), x.mean(axis=1), rtol=1e-10)


def test_reduce_bad_axis():
    a = ds.zeros((4, 4), (2, 2))
    with pytest.raises(ValueError):
        a.sum(axis=2)


def test_map_blocks(runtime_mode, rng):
    x = rng.standard_normal((10, 10))
    a = ds.array(x, (3, 3))
    np.testing.assert_allclose(a.map_blocks(np.abs).collect(), np.abs(x))


def test_take_rows(runtime_mode, rng):
    x = rng.standard_normal((20, 6))
    a = ds.array(x, (7, 3))
    idx = [0, 5, 19, 3, 3]
    sub = a.take_rows(idx)
    assert sub.shape == (5, 6)
    np.testing.assert_allclose(sub.collect(), x[idx])


def test_take_rows_out_of_range():
    a = ds.zeros((5, 3), (2, 2))
    with pytest.raises(IndexError):
        a.take_rows([7])


def test_getitem_row_slice(runtime_mode, rng):
    x = rng.standard_normal((20, 6))
    a = ds.array(x, (7, 3))
    np.testing.assert_allclose(a[2:11].collect(), x[2:11])
    np.testing.assert_allclose(a[5].collect(), x[5:6])


def test_getitem_row_and_col(runtime_mode, rng):
    x = rng.standard_normal((20, 10))
    a = ds.array(x, (7, 4))
    np.testing.assert_allclose(a[2:11, 3:9].collect(), x[2:11, 3:9])
    np.testing.assert_allclose(a[:, 1:5].collect(), x[:, 1:5])


def test_getitem_errors():
    a = ds.zeros((5, 5), (2, 2))
    with pytest.raises(TypeError):
        a["bad"]
    with pytest.raises(TypeError):
        a[1:2, [1, 2]]
    with pytest.raises(ValueError):
        a[:, ::2]


def test_persist_moves_blocks_into_store(rng):
    from repro.runtime import RuntimeConfig, is_ref

    x = rng.standard_normal((12, 8))
    cfg = RuntimeConfig(executor="threads", store_threshold_bytes=64)
    with Runtime(config=cfg) as rt:
        a = ds.array(x, (5, 4)).persist()
        assert all(is_ref(b) for row in a.blocks for b in row)
        assert rt.store.n_objects == 6
        np.testing.assert_allclose(a.collect(), x)
        doubled = a.map_blocks(lambda b: b * 2)
        np.testing.assert_allclose(doubled.collect(), x * 2)


def test_persist_is_noop_outside_runtime(rng):
    x = rng.standard_normal((4, 4))
    a = ds.array(x, (2, 2)).persist()
    assert all(isinstance(b, np.ndarray) for row in a.blocks for b in row)
    np.testing.assert_allclose(a.collect(), x)


def test_stripe_access(runtime_mode, rng):
    x = rng.standard_normal((10, 6))
    a = ds.array(x, (4, 2))
    stripes = a.stripe_futures()
    from repro.runtime import wait_on

    merged = wait_on(stripes)
    assert [m.shape for m in merged] == [(4, 6), (4, 6), (2, 6)]
    np.testing.assert_allclose(np.vstack(merged), x)
    assert a.stripe_offsets() == [0, 4, 8]
