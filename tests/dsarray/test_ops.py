"""ds-array functional ops: stacking, norms, persistence."""

from __future__ import annotations

import numpy as np
import pytest

import repro.dsarray as ds
from repro.dsarray.ops import frobenius_norm, load_npz, save_npz, vstack
from repro.runtime import Runtime


def test_vstack_aligned(rng):
    x = rng.standard_normal((8, 6))
    y = rng.standard_normal((12, 6))
    a = ds.array(x, (4, 3))
    b = ds.array(y, (4, 3))
    out = vstack([a, b])
    assert out.shape == (20, 6)
    np.testing.assert_allclose(out.collect(), np.vstack([x, y]))


def test_vstack_ragged(rng):
    x = rng.standard_normal((7, 6))  # ragged trailing stripe
    y = rng.standard_normal((9, 6))
    out = vstack([ds.array(x, (4, 3)), ds.array(y, (4, 3))])
    assert out.shape == (16, 6)
    np.testing.assert_allclose(out.collect(), np.vstack([x, y]))
    # blocks are regular after the re-blocking path
    assert out.n_blocks == (4, 2)


def test_vstack_under_threads(rng):
    x = rng.standard_normal((7, 4))
    y = rng.standard_normal((6, 4))
    with Runtime(executor="threads", max_workers=4):
        out = vstack([ds.array(x, (3, 2)), ds.array(y, (3, 2))]).collect()
    np.testing.assert_allclose(out, np.vstack([x, y]))


def test_vstack_validation(rng):
    a = ds.array(rng.standard_normal((4, 4)), (2, 2))
    b = ds.array(rng.standard_normal((4, 5)), (2, 2))
    with pytest.raises(ValueError):
        vstack([a, b])
    c = ds.array(rng.standard_normal((4, 4)), (2, 4))
    with pytest.raises(ValueError):
        vstack([a, c])
    with pytest.raises(ValueError):
        vstack([])


def test_frobenius_norm(rng):
    x = rng.standard_normal((9, 7))
    a = ds.array(x, (4, 3))
    assert frobenius_norm(a) == pytest.approx(np.linalg.norm(x))


def test_npz_roundtrip(rng, tmp_path):
    x = rng.standard_normal((10, 6))
    a = ds.array(x, (4, 3))
    path = tmp_path / "arr.npz"
    save_npz(a, path)
    back = load_npz(path)
    assert back.shape == a.shape
    assert back.block_size == a.block_size
    np.testing.assert_allclose(back.collect(), x)


def test_lazy_module_attr():
    assert callable(ds.vstack)
    with pytest.raises(AttributeError):
        ds.does_not_exist
