"""The tutorial's ridge-regression walkthrough must actually work
(docs/tutorial.md is executable documentation)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.dsarray as ds
from repro.cluster import NodeSpec, core_sweep
from repro.ml.base import BaseEstimator, validate_xy
from repro.runtime import Runtime, task, wait_on


@task(returns=1)
def partial_normal_eq(xblocks, yblocks):
    x = np.hstack(xblocks) if len(xblocks) > 1 else np.asarray(xblocks[0])
    y = np.asarray(yblocks[0]).ravel()
    return x.T @ x, x.T @ y


@task(returns=1)
def solve_ridge(partials, lam):
    xtx = sum(p[0] for p in partials)
    xty = sum(p[1] for p in partials)
    return np.linalg.solve(xtx + lam * np.eye(len(xtx)), xty)


class RidgeRegression(BaseEstimator):
    def __init__(self, lam: float = 1.0):
        self.lam = lam

    def fit(self, x: ds.Array, y: ds.Array):
        validate_xy(x, y)
        partials = [
            partial_normal_eq(xs, ys)
            for xs, ys in zip(x.iter_row_stripes(), y.iter_row_stripes())
        ]
        self.coef_ = wait_on(solve_ridge(partials, self.lam))
        return self

    def predict(self, x: ds.Array):
        return x.collect() @ self.coef_


@pytest.fixture()
def regression_data(rng):
    x = rng.standard_normal((1000, 10))
    w_true = rng.standard_normal(10)
    y = (x @ w_true + 0.01 * rng.standard_normal(1000)).reshape(-1, 1)
    return x, y, w_true


def test_eager_recovers_weights(regression_data):
    x, y, w_true = regression_data
    dx, dy = ds.array(x, (100, 10)), ds.array(y, (100, 1))
    model = RidgeRegression(1e-6).fit(dx, dy)
    np.testing.assert_allclose(model.coef_, w_true, atol=1e-2)


def test_threaded_same_answer(regression_data):
    x, y, w_true = regression_data
    with Runtime(executor="threads", max_workers=4) as rt:
        dx, dy = ds.array(x, (100, 10)), ds.array(y, (100, 1))
        model = RidgeRegression(1e-6).fit(dx, dy)
        counts = rt.graph.count_by_name()
    np.testing.assert_allclose(model.coef_, w_true, atol=1e-2)
    assert counts["partial_normal_eq"] == 10
    assert counts["solve_ridge"] == 1


def test_trace_replay_path(regression_data):
    x, y, _ = regression_data
    with Runtime(executor="threads", max_workers=4) as rt:
        dx, dy = ds.array(x, (100, 10)), ds.array(y, (100, 1))
        RidgeRegression(1e-6).fit(dx, dy)
        rt.barrier()
        trace = rt.trace()
    points = core_sweep(trace, NodeSpec(cores=48), [1, 2, 4])
    assert points[-1].makespan <= points[0].makespan * 1.01


def test_clone_and_params_work():
    model = RidgeRegression(lam=2.5)
    clone = model.clone()
    assert clone.lam == 2.5 and clone is not model


@task(returns=1)
def normalize(block):
    return (block - block.mean()) / block.std()


def test_data_plane_walkthrough():
    """Section 6: put/refs/submit_many/release on the process backend."""
    from repro.runtime import RuntimeConfig

    cfg = RuntimeConfig(
        backend="processes", max_workers=2, store_threshold_bytes=1024
    )
    with Runtime(config=cfg) as rt:
        x = np.random.default_rng(0).normal(size=(256, 16))
        ref = rt.put(x)
        futs = [normalize(ref) for _ in range(3)]
        futs += rt.submit_many([normalize.defer(ref) for _ in range(3)])
        results = wait_on(futs)
        rt.release(ref)
        stats = rt.stats()["backend_stats"]
    expected = (x - x.mean()) / x.std()
    for got in results:
        np.testing.assert_array_equal(got, expected)
    assert stats["store_bytes_saved"] > 0
