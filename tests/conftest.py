"""Shared fixtures.

Most tests that need a runtime use the ``sequential`` executor for
determinism; concurrency-specific tests build their own ``threads``
runtime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import Runtime


@pytest.fixture()
def seq_runtime():
    with Runtime(executor="sequential") as rt:
        yield rt


@pytest.fixture()
def thread_runtime():
    with Runtime(executor="threads", max_workers=4) as rt:
        yield rt


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
