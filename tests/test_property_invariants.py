"""Cross-cutting property-based invariants.

These tie the subsystems together: random DAGs must execute identically
on both executors, and the simulator must respect the two classical
scheduling lower bounds on any machine.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, NodeSpec, simulate
from repro.cluster.analysis import critical_path
from repro.runtime import INOUT, Runtime, task, wait_on
from repro.runtime.tracing import TaskRecord, Trace


# ----------------------------------------------------------------------
# random DAG generation
# ----------------------------------------------------------------------
@st.composite
def random_dag(draw):
    """A random DAG as (n_tasks, list of dep-sets over earlier ids)."""
    n = draw(st.integers(1, 20))
    deps = []
    for i in range(n):
        if i == 0:
            deps.append(frozenset())
        else:
            k = draw(st.integers(0, min(i, 3)))
            deps.append(frozenset(draw(st.sets(st.integers(0, i - 1), min_size=k, max_size=k))))
    return n, deps


@st.composite
def random_trace(draw):
    n, deps = draw(random_dag())
    durations = [draw(st.floats(0.01, 5.0)) for _ in range(n)]
    cores = [draw(st.integers(1, 4)) for _ in range(n)]
    records = [
        TaskRecord(
            task_id=i,
            name=f"t{i % 3}",
            deps=tuple(sorted(deps[i])),
            t_start=0.0,
            t_end=durations[i],
            computing_units=cores[i],
        )
        for i in range(n)
    ]
    return Trace(records)


# ----------------------------------------------------------------------
# simulator invariants
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(random_trace(), st.integers(1, 4), st.integers(4, 16))
def test_simulator_lower_bounds(trace, n_nodes, cores):
    """makespan >= critical path and makespan >= work / capacity."""
    cluster = ClusterSpec(node=NodeSpec(cores=cores), n_nodes=n_nodes)
    res = simulate(trace, cluster)
    _, cp = critical_path(trace)
    assert res.makespan >= cp - 1e-9
    total_work = sum(r.duration * r.computing_units for r in trace)
    assert res.makespan >= total_work / cluster.total_cores - 1e-9
    # all tasks placed exactly once, inside the horizon
    assert res.n_tasks == len(trace)
    for p in res.placements.values():
        assert 0.0 <= p.t_start <= p.t_end <= res.makespan + 1e-9


@settings(max_examples=40, deadline=None)
@given(random_trace())
def test_simulator_dependencies_respected(trace):
    cluster = ClusterSpec(node=NodeSpec(cores=8), n_nodes=2)
    res = simulate(trace, cluster)
    for rec in trace:
        for dep in rec.deps:
            assert (
                res.placements[dep].t_end <= res.placements[rec.task_id].t_start + 1e-9
            )


@settings(max_examples=30, deadline=None)
@given(random_trace(), st.integers(1, 3))
def test_more_nodes_never_hurt_much(trace, n_nodes):
    """Greedy list scheduling is not strictly monotone, but within the
    classic 2x Graham bound a bigger machine must not catastrophically
    regress."""
    small = simulate(trace, ClusterSpec(node=NodeSpec(cores=8), n_nodes=n_nodes))
    big = simulate(trace, ClusterSpec(node=NodeSpec(cores=8), n_nodes=n_nodes + 2))
    assert big.makespan <= small.makespan * 2.0 + 1e-9


# ----------------------------------------------------------------------
# executor equivalence on random DAGs
# ----------------------------------------------------------------------
@task(returns=1)
def _combine(deps_values, salt):
    return float(sum(deps_values) + salt)


def _run_dag(executor: str, n: int, deps: list[frozenset]) -> list[float]:
    with Runtime(executor=executor, max_workers=4):
        futures: list = []
        for i in range(n):
            inputs = [futures[d] for d in sorted(deps[i])]
            futures.append(_combine(inputs, i + 1))
        return wait_on(futures)


@settings(max_examples=25, deadline=None)
@given(random_dag())
def test_executors_agree(dag):
    n, deps = dag
    seq = _run_dag("sequential", n, deps)
    thr = _run_dag("threads", n, deps)
    assert seq == thr


@task(acc=INOUT)
def _bump(acc, v):
    acc += v


@task(returns=1)
def _total(acc):
    return float(np.sum(acc))


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(-5, 5), min_size=1, max_size=15), st.sampled_from(["sequential", "threads"]))
def test_inout_chain_order_preserved(values, executor):
    """Property: INOUT version chains serialise correctly under both
    executors — the final accumulator equals the plain Python sum."""
    with Runtime(executor=executor, max_workers=3):
        acc = np.zeros(3)
        for v in values:
            _bump(acc, v)
        result = wait_on(_total(acc))
    assert result == pytest.approx(3 * sum(values), abs=1e-9)


@st.composite
def random_matrix_pair(draw):
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    n = draw(st.integers(2, 12))
    k = draw(st.integers(2, 12))
    m = draw(st.integers(2, 12))
    bs = draw(st.integers(1, 6))
    return rng.standard_normal((n, k)), rng.standard_normal((k, m)), bs


@settings(max_examples=25, deadline=None)
@given(random_matrix_pair())
def test_dsarray_matmul_transpose_identity(pair):
    """(A @ B)ᵀ == Bᵀ @ Aᵀ through block operations, any block size."""
    import repro.dsarray as ds

    a_np, b_np, bs = pair
    a = ds.array(a_np, (bs, bs))
    b = ds.array(b_np, (bs, bs))
    left = (a @ b).T.collect()
    right = (b.T @ a.T).collect()
    np.testing.assert_allclose(left, right, rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(left, (a_np @ b_np).T, rtol=1e-9, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(random_dag())
def test_graph_matches_submission(dag):
    n, deps = dag
    with Runtime(executor="sequential") as rt:
        futures: list = []
        for i in range(n):
            inputs = [futures[d] for d in sorted(deps[i])]
            futures.append(_combine(inputs, i))
        wait_on(futures)
        g = rt.graph.snapshot()
    assert g.number_of_nodes() == n
    expected_edges = sum(len(d) for d in deps)
    assert g.number_of_edges() == expected_edges
