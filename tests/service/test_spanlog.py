"""Tests of :mod:`repro.service.spanlog`: the append-only durable span
log, its crash-tolerant reader, and the merged service OTLP export."""

from __future__ import annotations

import json

from repro.runtime.otlp import iter_spans, span_attributes
from repro.runtime.tracectx import new_trace
from repro.service.spanlog import (
    SPANS_FILE,
    TRACES_DIR,
    SpanLog,
    export_service_otlp,
    read_span_rows,
)


def test_start_end_rows_roundtrip(tmp_path):
    log = SpanLog(tmp_path)
    ctx = new_trace().child()
    log.start(ctx, "deliver", task_id=4, pid=99, skipped=None)
    log.end(ctx, status="ok", worker="w0")
    rows = list(read_span_rows(tmp_path))
    assert [r["event"] for r in rows] == ["start", "end"]
    start, end = rows
    assert start["trace_id"] == ctx.trace_id
    assert start["span_id"] == ctx.span_id
    assert start["parent_id"] == ctx.parent_id
    assert start["attributes"] == {"task_id": 4, "pid": 99}  # None dropped
    assert end["span_id"] == ctx.span_id
    assert end["status"] == "ok"
    assert end["attributes"] == {"worker": "w0"}


def test_point_is_an_instantaneous_span(tmp_path):
    log = SpanLog(tmp_path)
    ctx = new_trace()
    log.point(ctx, "submit", task_id=1)
    start, end = list(read_span_rows(tmp_path))
    assert start["t_start"] == end["t_end"]


def test_reader_tolerates_garbage_and_truncation(tmp_path):
    log = SpanLog(tmp_path)
    ctx = new_trace()
    log.start(ctx, "deliver")
    path = tmp_path / SPANS_FILE
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("\n")  # blank line
        fh.write('{"event": "end", "span_id": "tru')  # died mid-append
    rows = list(read_span_rows(tmp_path))
    assert len(rows) == 1
    assert rows[0]["span_id"] == ctx.span_id


def test_reader_on_missing_file_is_empty(tmp_path):
    assert list(read_span_rows(tmp_path)) == []


def test_export_merges_span_log_and_saved_runtime_traces(tmp_path):
    from repro.runtime import Runtime, task, wait_on

    @task(returns=1)
    def _x(v):
        return v

    # durable service spans: one completed, one interrupted
    log = SpanLog(tmp_path)
    done, dead = new_trace(), new_trace()
    log.start(done, "deliver", server="a")
    log.end(done, status="ok")
    log.start(dead, "deliver", server="b")  # crash: no end row

    # one saved incarnation trace (the wrapper drain() writes)
    with Runtime(executor="threads") as rt:
        wait_on(_x(1))
        trace = rt.trace()
    traces_dir = tmp_path / TRACES_DIR
    traces_dir.mkdir()
    (traces_dir / "trace-a.json").write_text(
        json.dumps(
            {
                "server_id": "a",
                "pid": 1234,
                "wall_t0": 5000.0,
                "records": json.loads(trace.to_json()),
            }
        )
    )

    doc = export_service_otlp(tmp_path)
    spans = list(iter_spans(doc))
    names = sorted(s["name"] for s in spans)
    assert names == ["_x", "deliver", "deliver"]
    interrupted = [
        s for s in spans if span_attributes(s).get("repro.interrupted")
    ]
    assert len(interrupted) == 1
    assert interrupted[0]["traceId"] == dead.trace_id
    runtime_span = next(s for s in spans if s["name"] == "_x")
    assert int(runtime_span["startTimeUnixNano"]) >= int(5000.0 * 1e9)
    resources = [
        {
            a["key"]: a["value"]["stringValue"]
            for a in group["resource"]["attributes"]
        }
        for group in doc["resourceSpans"]
    ]
    assert any(r.get("service.name") == "repro-service" for r in resources)
    assert any(
        r.get("service.name") == "repro-service-runtime"
        and r.get("repro.server_id") == "a"
        for r in resources
    )


def test_export_tolerates_corrupt_trace_file(tmp_path):
    log = SpanLog(tmp_path)
    ctx = new_trace()
    log.start(ctx, "deliver")
    log.end(ctx)
    traces_dir = tmp_path / TRACES_DIR
    traces_dir.mkdir()
    (traces_dir / "trace-bad.json").write_text("{not json")
    doc = export_service_otlp(tmp_path)
    assert len(list(iter_spans(doc))) == 1
