"""The acceptance chaos tests (ISSUE acceptance criterion).

Under a seeded schedule that kills a worker, ``kill -9``s the server
mid-workload, and expires a lease, a restarted service completes the
workload with **zero lost tasks** and **zero duplicate side-effecting
executions** — verified from the signature-deduplicated results table
and the provenance log by the shared harness in
:mod:`repro.service.chaos` (also run by ``check.sh service``).
"""

from __future__ import annotations

import pytest

from repro.service.chaos import (
    run_crash_recovery_scenario,
    run_lease_expiry_scenario,
    run_traced_recovery_scenario,
)


@pytest.mark.slow
def test_kill9_crash_recovery_completes_workload(tmp_path):
    report = run_crash_recovery_scenario(tmp_path, seed=0)
    assert report.ok, "\n" + report.line()
    counters = report.details["counters"]
    assert counters["recoveries"] >= 1  # kill -9 left leases to recover
    assert counters["redeliveries"] >= 1  # the injected worker kill
    assert counters["completions"] == report.n_tasks
    assert "recovered" in report.details["events"]


@pytest.mark.slow
def test_kill9_keeps_one_trace_id_across_incarnations(tmp_path):
    """PR 10 acceptance: a submission's trace id survives ``kill -9``.

    Walks the exported OTLP/JSON document: the client submit span, the
    killed incarnation's interrupted delivery, the recovered
    incarnation's completed delivery, and the embedded runtime's task
    span (with its executing pid) all share one trace id and are
    parented in causal order."""
    from repro.runtime.otlp import iter_spans, span_attributes

    report = run_traced_recovery_scenario(tmp_path, seed=0, lease_timeout=1.0)
    assert report.ok, "\n" + report.line()

    document = report.details["otlp"]
    trace_id = report.details["trace_id"]
    spans = [s for s in iter_spans(document) if s["traceId"] == trace_id]

    submit = [s for s in spans if s["name"] == "submit"]
    deliveries = [s for s in spans if s["name"] == "deliver"]
    interrupted = [s for s in deliveries if span_attributes(s).get("repro.interrupted")]
    completed = [s for s in deliveries if not span_attributes(s).get("repro.interrupted")]
    assert len(submit) == 1
    assert interrupted and completed  # both incarnations in one trace
    assert len({span_attributes(s)["server"] for s in deliveries}) == 2
    # causal parenting: submit -> deliver -> runtime task span (with pid)
    assert all(s["parentSpanId"] == submit[0]["spanId"] for s in deliveries)
    delivery_ids = {s["spanId"] for s in deliveries}
    task_spans = [
        s
        for s in spans
        if s["name"] not in ("submit", "deliver")
        and span_attributes(s).get("repro.pid") is not None
    ]
    assert any(s.get("parentSpanId") in delivery_ids for s in task_spans)


@pytest.mark.slow
def test_lease_expiry_redelivers_and_deduplicates(tmp_path):
    report = run_lease_expiry_scenario(tmp_path, seed=0)
    assert report.ok, "\n" + report.line()
    counters = report.details["counters"]
    assert counters["lease_expirations"] >= 1
    assert counters.get("dedup_skips", 0) + counters.get("duplicates_discarded", 0) >= 1
    assert "lease_expired" in report.details["events"]
