"""The acceptance chaos tests (ISSUE acceptance criterion).

Under a seeded schedule that kills a worker, ``kill -9``s the server
mid-workload, and expires a lease, a restarted service completes the
workload with **zero lost tasks** and **zero duplicate side-effecting
executions** — verified from the signature-deduplicated results table
and the provenance log by the shared harness in
:mod:`repro.service.chaos` (also run by ``check.sh service``).
"""

from __future__ import annotations

import pytest

from repro.service.chaos import run_crash_recovery_scenario, run_lease_expiry_scenario


@pytest.mark.slow
def test_kill9_crash_recovery_completes_workload(tmp_path):
    report = run_crash_recovery_scenario(tmp_path, seed=0)
    assert report.ok, "\n" + report.line()
    counters = report.details["counters"]
    assert counters["recoveries"] >= 1  # kill -9 left leases to recover
    assert counters["redeliveries"] >= 1  # the injected worker kill
    assert counters["completions"] == report.n_tasks
    assert "recovered" in report.details["events"]


@pytest.mark.slow
def test_lease_expiry_redelivers_and_deduplicates(tmp_path):
    report = run_lease_expiry_scenario(tmp_path, seed=0)
    assert report.ok, "\n" + report.line()
    counters = report.details["counters"]
    assert counters["lease_expirations"] >= 1
    assert counters.get("dedup_skips", 0) + counters.get("duplicates_discarded", 0) >= 1
    assert "lease_expired" in report.details["events"]
