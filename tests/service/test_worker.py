"""Tests of the service worker pool: execution through the embedded
runtime, attempt propagation, failure reporting, the dedup fast path,
heartbeating, drain."""

from __future__ import annotations

import pickle
import time

import pytest

from repro.runtime import Runtime, RuntimeConfig
from repro.service.db import Database
from repro.service.queue import DurableQueue
from repro.service.worker import ServiceWorkerPool, _encode_result

DEMO = "repro.service.demo"


@pytest.fixture()
def queue(tmp_path):
    db = Database(tmp_path / "queue.db")
    q = DurableQueue(db, retry_backoff=0.01, retry_backoff_cap=0.05)
    yield q
    db.close()


@pytest.fixture()
def runtime():
    with Runtime(config=RuntimeConfig(executor="threads", max_workers=2)) as rt:
        yield rt


@pytest.fixture()
def pool(queue, runtime):
    p = ServiceWorkerPool(
        queue,
        runtime,
        server_id="t",
        n_workers=2,
        lease_timeout=5.0,
        poll_interval=0.01,
    )
    yield p
    p.drain(timeout=10)


def submit(queue, qualname, *args, i=0, name=None, max_retries=2, **kwargs):
    return queue.submit(
        tenant="default",
        name=name or qualname,
        module=DEMO,
        qualname=qualname,
        payload=pickle.dumps((args, kwargs)),
        signature=f"sig-{qualname}-{i}",
        max_retries=max_retries,
    )


def wait_done(queue, task_id, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        row = queue.task(task_id)
        if row["state"] in ("done", "failed", "cancelled"):
            return row
        time.sleep(0.01)
    raise TimeoutError(f"task {task_id} still {queue.task(task_id)['state']}")


def test_pool_executes_and_records_result(queue, pool):
    task_id = submit(queue, "add", 2, 3)
    pool.start()
    row = wait_done(queue, task_id)
    assert row["state"] == "done"
    result = queue.lookup_result(row["signature"])
    assert result["status"] == "ok"
    assert pickle.loads(result["payload"]) == 5


def test_body_failure_reported_and_redelivered_to_success(queue, pool):
    """flaky demo task: attempt 0 raises, the redelivery (attempt 1,
    visible to the body via current_attempt) succeeds."""
    task_id = submit(queue, "flaky_add", 1, 2, fail_attempts=1)
    pool.start()
    row = wait_done(queue, task_id)
    assert row["state"] == "done"
    assert row["attempt"] == 1
    counters = queue.stats()["counters"]
    assert counters["redeliveries"] == 1
    assert pickle.loads(queue.lookup_result(row["signature"])["payload"]) == 3


def test_exhausted_retries_bury_with_body_error(queue, pool):
    task_id = submit(queue, "flaky_add", 1, 2, fail_attempts=99, max_retries=1)
    pool.start()
    row = wait_done(queue, task_id)
    assert row["state"] == "failed"
    result = queue.lookup_result(row["signature"])
    assert result["status"] == "error"
    assert b"RuntimeError" in result["payload"]  # unwrapped body error


def test_unknown_function_fails_cleanly(queue, pool):
    task_id = submit(queue, "no_such_function", max_retries=0)
    pool.start()
    row = wait_done(queue, task_id)
    assert row["state"] == "failed"
    result = queue.lookup_result(row["signature"])
    assert result["status"] == "error"


def test_dedup_fast_path_skips_execution(queue, runtime, tmp_path):
    """A claim whose signature already has a result is resolved
    without running the body: the effect file stays untouched."""
    effects = tmp_path / "effects.txt"
    task_id = submit(queue, "append_line", str(effects), "once")
    # a presumed-dead twin's result lands between this delivery's claim
    # and execution — inject the result row the race would leave behind
    signature = queue.task(task_id)["signature"]
    with queue.db.transaction() as conn:
        conn.execute(
            "INSERT INTO results (signature, task_id, status, payload, worker, "
            "attempt, recorded_at) VALUES (?, ?, 'ok', ?, 'twin', 0, 0)",
            (signature, task_id, pickle.dumps("once")),
        )
    pool = ServiceWorkerPool(
        queue, runtime, server_id="t", n_workers=1, poll_interval=0.01
    )
    pool.start()
    try:
        row = wait_done(queue, task_id)
    finally:
        pool.drain(timeout=10)
    assert row["state"] == "done"
    assert not effects.exists()  # never executed again
    assert queue.stats()["counters"]["dedup_skips"] == 1


def test_heartbeats_keep_long_task_leased(queue, runtime):
    pool = ServiceWorkerPool(
        queue, runtime, server_id="t", n_workers=1,
        lease_timeout=0.3, poll_interval=0.01,
    )
    task_id = submit(queue, "sleep_ms", 900)
    pool.start()
    try:
        # the lease outlives several timeouts thanks to heartbeats
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if queue.task(task_id)["state"] == "done":
                break
            assert queue.expire_leases() == []
            time.sleep(0.05)
        assert queue.task(task_id)["state"] == "done"
        assert queue.stats()["counters"]["heartbeats"] >= 2
    finally:
        pool.drain(timeout=10)
    assert queue.task(task_id)["attempt"] == 0  # never went dark


def test_drain_finishes_in_flight_then_stops_claiming(queue, pool):
    first = submit(queue, "sleep_ms", 300, i=0)
    pool.start()
    deadline = time.monotonic() + 5.0
    while queue.task(first)["state"] == "queued" and time.monotonic() < deadline:
        time.sleep(0.01)
    assert pool.drain(timeout=10.0) is True
    assert queue.task(first)["state"] == "done"  # in-flight work finished
    late = submit(queue, "add", 1, 1, i=1)
    time.sleep(0.1)
    assert queue.task(late)["state"] == "queued"  # no claims after drain


def test_pool_validates_parameters(queue, runtime):
    with pytest.raises(ValueError):
        ServiceWorkerPool(queue, runtime, server_id="t", n_workers=0)
    with pytest.raises(ValueError):
        ServiceWorkerPool(queue, runtime, server_id="t", lease_timeout=0.0)


def test_encode_result_degrades_unpicklable():
    value = _encode_result(lambda: None)  # lambdas do not pickle
    assert b"unpicklable" in value
    assert pickle.loads(value).startswith("<unpicklable result:")
