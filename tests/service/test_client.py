"""Tests of the service client: task references, lineage signatures,
submission semantics, result retrieval and error surfaces."""

from __future__ import annotations

import pytest

from repro.runtime import task
from repro.service.client import (
    ServiceClient,
    ServiceTaskError,
    submission_signature,
    task_reference,
)
from repro.service.demo import add
from repro.service.server import QueueService, ServiceConfig

DEMO = "repro.service.demo"


@pytest.fixture()
def client(tmp_path):
    with ServiceClient(tmp_path / "data") as c:
        yield c


@pytest.fixture()
def service(tmp_path):
    svc = QueueService(
        ServiceConfig(
            data_dir=str(tmp_path / "data"), workers=2,
            lease_timeout=3.0, poll_interval=0.01,
        )
    ).start()
    yield svc
    svc.drain(timeout=10)


# ----------------------------------------------------------------------
# references and signatures
# ----------------------------------------------------------------------
def test_task_reference_from_string():
    assert task_reference(f"{DEMO}:add") == (DEMO, "add", "add")


def test_task_reference_from_callable():
    assert task_reference(add) == (DEMO, "add", "add")


def test_task_reference_unwraps_task_decorator():
    @task(returns=1)
    def decorated(x):
        return x

    # the @task wrapper carries .spec.func; module-level requirement
    # still applies, so expect a rejection for this <locals> function
    with pytest.raises(ValueError):
        task_reference(decorated)


def test_task_reference_rejects_malformed():
    for bad in ("no-colon", ":x", "m:", lambda x: x):
        with pytest.raises(ValueError):
            task_reference(bad)


def test_signature_depends_on_arguments_and_tenant():
    base = submission_signature(add, (1, 2), {}, tenant="t")
    assert submission_signature(add, (1, 2), {}, tenant="t") == base
    assert submission_signature(add, (1, 3), {}, tenant="t") != base
    assert submission_signature(add, (1, 2), {}, tenant="u") != base


def test_signature_key_overrides_arguments():
    a = submission_signature(add, (1, 2), {}, tenant="t", key="run-1")
    b = submission_signature(add, (9, 9), {}, tenant="t", key="run-1")
    c = submission_signature(add, (1, 2), {}, tenant="t", key="run-2")
    assert a == b != c


def test_unfingerprintable_arguments_get_nonce():
    fn = f"{DEMO}:add"
    a = submission_signature(fn, (lambda: 0,), {}, tenant="t")
    b = submission_signature(fn, (lambda: 0,), {}, tenant="t")
    assert a != b  # each submission distinct, never silently merged


# ----------------------------------------------------------------------
# offline submission semantics (no server needed)
# ----------------------------------------------------------------------
def test_submit_is_idempotent_for_same_call(client):
    first = client.submit(f"{DEMO}:add", 1, 2)
    second = client.submit(f"{DEMO}:add", 1, 2)
    third = client.submit(f"{DEMO}:add", 1, 3)
    assert first == second != third


def test_submit_key_distinguishes_identical_calls(client):
    a = client.submit(f"{DEMO}:add", 1, 2, key="first")
    b = client.submit(f"{DEMO}:add", 1, 2, key="second")
    assert a != b


def test_cancel_and_list(client):
    task_id = client.submit(f"{DEMO}:add", 5, 5)
    assert client.cancel(task_id) == "cancelled"
    assert client.list_tasks(state="cancelled")[0]["id"] == task_id
    with pytest.raises(ServiceTaskError) as err:
        client.result(task_id, timeout=1)
    assert err.value.state == "cancelled"


def test_reprioritize_via_client(client):
    task_id = client.submit(f"{DEMO}:sleep_ms", 1)
    assert client.reprioritize(task_id, 7) is True
    assert client.status(task_id)["priority"] == 7


def test_result_timeout(client):
    task_id = client.submit(f"{DEMO}:add", 1, 1)  # no server running
    with pytest.raises(TimeoutError):
        client.result(task_id, timeout=0.2)


def test_result_unknown_task(client):
    with pytest.raises(ServiceTaskError) as err:
        client.result(12345, timeout=0.2)
    assert err.value.state == "unknown"


# ----------------------------------------------------------------------
# against a live server
# ----------------------------------------------------------------------
def test_roundtrip_with_kwargs_and_callable(service, tmp_path):
    with ServiceClient(tmp_path / "data") as client:
        task_id = client.submit(add, 40, b=2)
        assert client.result(task_id, timeout=20) == 42


def test_failed_task_raises_with_body_error(service, tmp_path):
    with ServiceClient(tmp_path / "data") as client:
        task_id = client.submit(
            f"{DEMO}:flaky_add", 1, 2, fail_attempts=99, max_retries=0
        )
        with pytest.raises(ServiceTaskError) as err:
            client.result(task_id, timeout=20)
        assert err.value.state == "failed"
        assert "RuntimeError" in err.value.detail


def test_wait_all_mixed_outcomes(service, tmp_path):
    with ServiceClient(tmp_path / "data") as client:
        good = client.submit(f"{DEMO}:add", 2, 2)
        bad = client.submit(
            f"{DEMO}:flaky_add", 1, 1, fail_attempts=99, max_retries=0
        )
        values = client.wait_all([good, bad], timeout=30)
    assert values == {good: 4}
