"""Tests of the durable queue's state machine: submission idempotency,
fair-share + priority claiming, leases and expiry, idempotent result
recording, redelivery attempt accounting, cancellation, steering."""

from __future__ import annotations

import pytest

from repro.service.db import Database
from repro.service.queue import DEFAULT_TENANT, DurableQueue


class FakeClock:
    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def queue(tmp_path, clock):
    db = Database(tmp_path / "queue.db")
    q = DurableQueue(db, clock=clock, retry_backoff=0.1, retry_backoff_cap=1.0)
    yield q
    db.close()


def submit(queue, i=0, tenant=DEFAULT_TENANT, **kw):
    kw.setdefault("signature", f"sig-{tenant}-{i}")
    return queue.submit(
        tenant=tenant,
        name=kw.pop("name", "noop"),
        module="repro.service.demo",
        qualname="add",
        payload=b"payload",
        **kw,
    )


def claim(queue, worker="s/w0", lease=10.0):
    return queue.claim(worker=worker, server="s", lease_timeout=lease)


# ----------------------------------------------------------------------
# submission
# ----------------------------------------------------------------------
def test_submit_and_task_roundtrip(queue):
    task_id = submit(queue, priority=3)
    row = queue.task(task_id)
    assert row["state"] == "queued"
    assert row["priority"] == 3
    assert row["attempt"] == 0
    assert queue.outstanding() == 1


def test_submit_is_idempotent_per_signature(queue):
    first = submit(queue, signature="same")
    second = submit(queue, signature="same")
    assert first == second
    assert queue.outstanding() == 1
    assert queue.stats()["counters"]["duplicate_submissions"] == 1


def test_submit_autocreates_tenant(queue):
    submit(queue, tenant="newcomer")
    assert queue.tenants()["newcomer"] == {"quota": None, "weight": 1.0}


def test_submit_rejects_negative_retries(queue):
    with pytest.raises(ValueError):
        submit(queue, max_retries=-1)


def test_delayed_submission_not_deliverable_until_due(queue, clock):
    submit(queue, delay=5.0)
    assert claim(queue) is None
    clock.advance(5.1)
    assert claim(queue) is not None


# ----------------------------------------------------------------------
# claiming: priority, FIFO, fair share, quotas
# ----------------------------------------------------------------------
def test_claim_orders_by_priority_then_fifo(queue):
    low = submit(queue, 0, priority=0)
    high = submit(queue, 1, priority=5)
    mid_a = submit(queue, 2, priority=3)
    mid_b = submit(queue, 3, priority=3)
    order = [claim(queue).id for _ in range(4)]
    assert order == [high, mid_a, mid_b, low]


def test_claim_returns_none_on_empty_queue(queue):
    assert claim(queue) is None


def test_claim_is_exclusive(queue):
    submit(queue)
    assert claim(queue, worker="s/w0") is not None
    assert claim(queue, worker="s/w1") is None  # single task, already leased


def test_fair_share_prefers_least_loaded_tenant(queue):
    queue.ensure_tenant("a", weight=1.0)
    queue.ensure_tenant("b", weight=1.0)
    for i in range(3):
        submit(queue, i, tenant="a")
        submit(queue, i, tenant="b")
    tenants = [claim(queue, worker=f"s/w{i}").tenant for i in range(4)]
    # strict alternation: each claim goes to the tenant with fewer
    # active leases
    assert tenants in (["a", "b", "a", "b"], ["b", "a", "b", "a"])


def test_fair_share_weight_skews_shares(queue):
    queue.ensure_tenant("heavy", weight=4.0)
    queue.ensure_tenant("light", weight=1.0)
    for i in range(8):
        submit(queue, i, tenant="heavy")
        submit(queue, i, tenant="light")
    got = [claim(queue, worker=f"s/w{i}").tenant for i in range(5)]
    # shares: heavy 0/4 < light 0/1 tie-broken by active count; after
    # one each, heavy (1/4) stays below light (1/1) until 4:1.
    assert got.count("heavy") == 4
    assert got.count("light") == 1


def test_quota_caps_concurrent_leases(queue):
    queue.ensure_tenant("capped", quota=1)
    submit(queue, 0, tenant="capped")
    submit(queue, 1, tenant="capped")
    first = claim(queue, worker="s/w0")
    assert first is not None
    assert claim(queue, worker="s/w1") is None  # at quota
    queue.complete(
        first.id, first.signature, payload=b"", worker="s/w0", attempt=0
    )
    assert claim(queue, worker="s/w1") is not None  # headroom back


def test_quota_of_one_tenant_does_not_starve_others(queue):
    queue.ensure_tenant("capped", quota=1)
    submit(queue, 0, tenant="capped")
    submit(queue, 1, tenant="capped")
    submit(queue, 0, tenant="free")
    assert claim(queue, worker="s/w0").tenant == "capped"
    assert claim(queue, worker="s/w1").tenant == "free"


# ----------------------------------------------------------------------
# leases: heartbeat, expiry
# ----------------------------------------------------------------------
def test_heartbeat_extends_lease(queue, clock):
    submit(queue)
    claimed = claim(queue, lease=10.0)
    clock.advance(8.0)
    assert queue.heartbeat(claimed.id, "s/w0", 10.0) is True
    clock.advance(8.0)  # 16s after claim, but 8s after heartbeat
    assert queue.expire_leases() == []


def test_heartbeat_from_wrong_worker_rejected(queue):
    submit(queue)
    claimed = claim(queue, worker="s/w0")
    assert queue.heartbeat(claimed.id, "s/w1", 10.0) is False


def test_expired_lease_redelivers_with_charged_attempt(queue, clock):
    task_id = submit(queue)
    claim(queue, lease=5.0)
    clock.advance(5.1)
    assert queue.expire_leases() == [task_id]
    row = queue.task(task_id)
    assert row["state"] == "queued"
    assert row["attempt"] == 1  # going dark charges the retry budget
    assert row["not_before"] > clock()  # backoff before redelivery
    counters = queue.stats()["counters"]
    assert counters["lease_expirations"] == 1
    assert counters["redeliveries"] == 1


def test_expiry_exhausting_retries_buries_task(queue, clock):
    task_id = submit(queue, max_retries=0)
    claimed = claim(queue, lease=1.0)
    clock.advance(1.1)
    queue.expire_leases()
    row = queue.task(task_id)
    assert row["state"] == "failed"
    result = queue.lookup_result(claimed.signature)
    assert result["status"] == "error"
    assert b"lease expired" in result["payload"]


# ----------------------------------------------------------------------
# completion: idempotent results
# ----------------------------------------------------------------------
def test_complete_records_result_and_frees_lease(queue):
    task_id = submit(queue)
    claimed = claim(queue)
    outcome = queue.complete(
        claimed.id, claimed.signature, payload=b"42", worker="s/w0", attempt=0
    )
    assert outcome == "recorded"
    assert queue.task(task_id)["state"] == "done"
    assert queue.lookup_result(claimed.signature)["payload"] == b"42"
    assert queue.outstanding() == 0


def test_duplicate_completion_discarded_not_double_recorded(queue):
    submit(queue)
    claimed = claim(queue)
    assert (
        queue.complete(claimed.id, claimed.signature, payload=b"1", worker="s/w0", attempt=0)
        == "recorded"
    )
    # a presumed-dead twin reports after the fact
    assert (
        queue.complete(claimed.id, claimed.signature, payload=b"2", worker="s/w9", attempt=1)
        == "duplicate"
    )
    assert queue.lookup_result(claimed.signature)["payload"] == b"1"
    assert queue.stats()["counters"]["duplicates_discarded"] == 1


def test_resolve_deduplicated_finishes_without_rerun(queue, clock):
    """A redelivered task whose first delivery's result landed is
    closed out by the dedup fast path."""
    task_id = submit(queue)
    first = claim(queue, worker="s/w0", lease=1.0)
    clock.advance(1.1)
    queue.expire_leases()
    # the dark first delivery still completes (late but successful)
    queue.complete(first.id, first.signature, payload=b"v", worker="s/w0", attempt=0)
    redelivery = claim(queue, worker="s/w1", lease=10.0)
    assert redelivery is None or redelivery.id == task_id
    if redelivery is not None:  # not_before backoff may defer it
        queue.resolve_deduplicated(redelivery.id, "s/w1")
    assert queue.task(task_id)["state"] == "done"


def test_complete_rejects_bad_status(queue):
    submit(queue)
    claimed = claim(queue)
    with pytest.raises(ValueError):
        queue.complete(
            claimed.id, claimed.signature, payload=b"", worker="s/w0",
            attempt=0, status="maybe",
        )


# ----------------------------------------------------------------------
# failure reporting and redelivery
# ----------------------------------------------------------------------
def test_fail_attempt_requeues_with_backoff(queue, clock):
    task_id = submit(queue)
    claim(queue)
    assert queue.fail_attempt(task_id, "s/w0", "boom") == "requeued"
    row = queue.task(task_id)
    assert row["state"] == "queued"
    assert row["attempt"] == 1
    assert row["not_before"] > clock()


def test_fail_attempt_exhausted_buries_with_error_result(queue):
    task_id = submit(queue, max_retries=1)
    for expected in ("requeued", "failed"):
        # clear the backoff so the redelivery is claimable immediately
        queue._clock.advance(10.0)
        claimed = claim(queue)
        assert claimed is not None
        assert queue.fail_attempt(task_id, "s/w0", "kaput") == expected
    row = queue.task(task_id)
    assert row["state"] == "failed"
    result = queue.lookup_result(row["signature"])
    assert result["status"] == "error"
    assert result["payload"] == b"kaput"


def test_fail_attempt_from_stale_worker_ignored(queue, clock):
    task_id = submit(queue)
    claim(queue, worker="s/w0", lease=1.0)
    clock.advance(1.1)
    queue.expire_leases()
    clock.advance(10.0)
    fresh = claim(queue, worker="s/w1")
    assert fresh is not None
    # the dark original reports a failure it no longer owns
    assert queue.fail_attempt(task_id, "s/w0", "late boom") == "stale"
    assert queue.task(task_id)["state"] == "leased"  # w1's delivery unharmed
    assert queue.stats()["counters"]["stale_reports"] == 1


def test_redelivery_backoff_grows_with_attempts(queue, clock):
    task_id = submit(queue, max_retries=5)
    delays = []
    for _ in range(3):
        clock.advance(100.0)
        claim(queue)
        queue.fail_attempt(task_id, "s/w0", "again")
        delays.append(queue.task(task_id)["not_before"] - clock())
    assert delays[0] < delays[1] < delays[2]  # exponential (jitter < growth)


# ----------------------------------------------------------------------
# cold-start recovery
# ----------------------------------------------------------------------
def test_recover_requeues_leased_without_charging(queue):
    task_id = submit(queue)
    claim(queue)
    recovered = queue.recover("server-2")
    assert recovered == [task_id]
    row = queue.task(task_id)
    assert row["state"] == "queued"
    assert row["attempt"] == 0  # the crash was not the task's fault
    assert row["not_before"] <= queue._clock()  # immediately deliverable
    assert queue.stats()["counters"]["recoveries"] == 1


def test_recover_handles_leased_state_without_lease_row(queue):
    """A crash between the state flip and the lease insert cannot
    happen (one transaction) — but recovery tolerates the shape."""
    task_id = submit(queue)
    claim(queue)
    with queue.db.transaction() as conn:
        conn.execute("DELETE FROM leases WHERE task_id = ?", (task_id,))
    assert queue.recover("server-2") == [task_id]
    assert queue.task(task_id)["state"] == "queued"


# ----------------------------------------------------------------------
# control plane: cancel, reprioritize
# ----------------------------------------------------------------------
def test_cancel_queued_is_immediate(queue):
    task_id = submit(queue)
    assert queue.cancel(task_id) == "cancelled"
    assert queue.task(task_id)["state"] == "cancelled"
    assert claim(queue) is None


def test_cancel_leased_finalizes_on_redelivery_path(queue, clock):
    task_id = submit(queue)
    claim(queue, lease=1.0)
    assert queue.cancel(task_id) == "cancel_requested"
    assert queue.task(task_id)["state"] == "leased"  # in-flight continues
    clock.advance(1.1)
    queue.expire_leases()  # would redeliver, but cancellation wins
    assert queue.task(task_id)["state"] == "cancelled"


def test_cancel_terminal_and_unknown(queue):
    task_id = submit(queue)
    claimed = claim(queue)
    queue.complete(claimed.id, claimed.signature, payload=b"", worker="s/w0", attempt=0)
    assert queue.cancel(task_id) == "noop"
    assert queue.cancel(9999) == "unknown"


def test_reprioritize_moves_queued_task_ahead(queue):
    first = submit(queue, 0, priority=0)
    second = submit(queue, 1, priority=0)
    assert queue.reprioritize(second, 9) is True
    assert claim(queue).id == second
    assert claim(queue, worker="s/w1").id == first


def test_reprioritize_terminal_task_refused(queue):
    task_id = submit(queue)
    claimed = claim(queue)
    queue.complete(claimed.id, claimed.signature, payload=b"", worker="s/w0", attempt=0)
    assert queue.reprioritize(task_id, 5) is False


def test_reprioritize_leased_task_survives_lease_expiry(tmp_path, clock):
    """Chaos regression for the leased-task steering path: boost a
    task *while leased*, let the lease go dark and expire, and assert
    the redelivered task outranks older queued work at the next claim.
    Priority lives only in the ``tasks`` row — the redelivery path
    must not reset it and the claim query must read it live."""
    db = Database(tmp_path / "steer.db")
    q = DurableQueue(db, clock=clock, retry_backoff=0.0)
    try:
        boosted = submit(q, 0, priority=0)
        rival = submit(q, 1, priority=5)
        claimed = claim(q, lease=1.0)
        assert claimed.id == rival  # rival outranks pre-boost
        q.complete(claimed.id, claimed.signature, payload=b"", worker="s/w0", attempt=0)
        claimed = claim(q, lease=1.0)
        assert claimed.id == boosted
        assert q.reprioritize(boosted, 9) is True  # steer while leased
        older = submit(q, 2, priority=8)
        clock.advance(1.1)
        assert q.expire_leases() == [boosted]
        # retry_backoff=0: redelivery is immediately claimable, and the
        # boosted priority (9) set mid-lease beats the queued 8.
        redelivered = claim(q, worker="s/w1")
        assert redelivered.id == boosted
        assert redelivered.priority == 9
        assert redelivered.attempt == 1  # expiry charged an attempt
        assert claim(q, worker="s/w2").id == older
    finally:
        db.close()


# ----------------------------------------------------------------------
# observability surfaces
# ----------------------------------------------------------------------
def test_stats_shape(queue):
    queue.ensure_tenant("idle")
    submit(queue, 0, tenant="busy")
    claim(queue)
    stats = queue.stats()
    assert stats["tenants"]["busy"] == {"leased": 1}
    assert stats["tenants"]["idle"] == {}  # seeded even with no tasks
    assert stats["counters"]["submissions"] == 1
    assert stats["counters"]["claims"] == 1


def test_provenance_trail_covers_lifecycle(queue):
    task_id = submit(queue)
    claimed = claim(queue)
    queue.complete(claimed.id, claimed.signature, payload=b"", worker="s/w0", attempt=0)
    events = [p["event"] for p in queue.provenance(task_id)]
    assert events == ["submitted", "leased", "completed"]


def test_list_tasks_filters(queue):
    submit(queue, 0, tenant="a")
    submit(queue, 1, tenant="b")
    claim(queue)
    assert {t["tenant"] for t in queue.list_tasks()} == {"a", "b"}
    assert all(t["tenant"] == "a" for t in queue.list_tasks(tenant="a"))
    assert all(t["state"] == "queued" for t in queue.list_tasks(state="queued"))


def test_ensure_tenant_validates(queue):
    with pytest.raises(ValueError):
        queue.ensure_tenant("bad", weight=0.0)
    with pytest.raises(ValueError):
        queue.ensure_tenant("bad", quota=0)
