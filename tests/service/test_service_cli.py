"""Tests of the ``repro serve`` / ``submit`` / ``queue`` CLI surface
(in-process via ``cli.main``; the cross-process server path is covered
by the chaos suite)."""

from __future__ import annotations

import threading

import pytest

from repro.cli import _parse_fault_spec, main

DEMO = "repro.service.demo"


def test_submit_then_serve_until_idle_then_queue_views(tmp_path, capsys):
    data = str(tmp_path / "data")
    assert main(["submit", "--data-dir", data, f"{DEMO}:add", "19", "23"]) == 0
    out = capsys.readouterr().out
    assert "task 1" in out

    assert main([
        "serve", "--data-dir", data, "--workers", "2",
        "--lease-timeout", "3", "--poll-interval", "0.01", "--until-idle",
    ]) == 0
    out = capsys.readouterr().out
    assert "serving" in out and "drained cleanly" in out

    assert main(["submit", "--data-dir", data, f"{DEMO}:add", "19", "23",
                 "--wait", "--timeout", "5"]) == 0
    out = capsys.readouterr().out
    assert "result: 42" in out  # idempotent resubmit found the result

    assert main(["queue", "status", "--data-dir", data]) == 0
    out = capsys.readouterr().out
    assert "done=1" in out and "completions" in out

    assert main(["queue", "list", "--data-dir", data]) == 0
    out = capsys.readouterr().out
    assert "done" in out and "add" in out

    assert main(["queue", "provenance", "--data-dir", data]) == 0
    out = capsys.readouterr().out
    assert "submitted" in out and "completed" in out


def test_submit_json_arguments_and_kwargs(tmp_path, capsys):
    data = str(tmp_path / "data")
    assert main([
        "submit", "--data-dir", data, f"{DEMO}:mul",
        "[1, 2]", "--kwarg", "b=3",
    ]) == 0
    capsys.readouterr()
    done = threading.Thread(
        target=main,
        args=([
            "serve", "--data-dir", data, "--poll-interval", "0.01",
            "--lease-timeout", "3", "--until-idle",
        ],),
    )
    done.start()
    done.join(timeout=30)
    assert not done.is_alive()
    assert main(["submit", "--data-dir", data, f"{DEMO}:mul",
                 "[1, 2]", "--kwarg", "b=3", "--wait", "--timeout", "5"]) == 0
    out = capsys.readouterr().out
    assert "result: [1, 2, 1, 2, 1, 2]" in out  # [1,2] * 3


def test_queue_cancel_and_reprioritize(tmp_path, capsys):
    data = str(tmp_path / "data")
    main(["submit", "--data-dir", data, f"{DEMO}:add", "1", "1"])
    main(["submit", "--data-dir", data, f"{DEMO}:add", "2", "2"])
    capsys.readouterr()
    assert main(["queue", "reprioritize", "2", "--data-dir", data,
                 "--priority", "9"]) == 0
    assert main(["queue", "cancel", "1", "--data-dir", data]) == 0
    assert main(["queue", "cancel", "99", "--data-dir", data]) == 1
    out = capsys.readouterr().out
    assert "priority set" in out and "cancelled" in out and "unknown" in out


def test_queue_tenant_upsert(tmp_path, capsys):
    data = str(tmp_path / "data")
    assert main(["queue", "tenant", "--data-dir", data, "--name", "alpha",
                 "--quota", "2", "--weight", "2.5"]) == 0
    out = capsys.readouterr().out
    assert "tenant alpha" in out
    assert main(["queue", "tenant", "--data-dir", data]) == 2  # no --name


def test_submit_rejects_bad_reference(tmp_path, capsys):
    assert main(["submit", "--data-dir", str(tmp_path / "d"), "not-a-ref"]) == 2
    assert "submit failed" in capsys.readouterr().err


def test_submit_rejects_bad_kwarg(tmp_path, capsys):
    assert main(["submit", "--data-dir", str(tmp_path / "d"),
                 f"{DEMO}:add", "--kwarg", "nonsense"]) == 2
    assert "NAME=JSON" in capsys.readouterr().err


def test_parse_fault_spec():
    rule = _parse_fault_spec("kill_worker:append_line:3")
    assert rule.task == "append_line" and rule.kind == "kill_worker"
    assert rule.executions == frozenset({3})
    assert _parse_fault_spec("fail:foo:1").kind == "fail"
    delay = _parse_fault_spec("delay:foo:2:0.5")
    assert delay.kind == "delay" and delay.delay == 0.5
    import argparse

    for bad in ("nope:foo:1", "kill_worker:foo", "kill_worker:foo:x"):
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_fault_spec(bad)


def test_trace_service_exports_otlp(tmp_path, capsys):
    import json

    data = str(tmp_path / "data")
    assert main(["submit", "--data-dir", data, f"{DEMO}:add", "1", "2"]) == 0
    capsys.readouterr()
    assert main([
        "serve", "--data-dir", data, "--poll-interval", "0.01",
        "--lease-timeout", "3", "--until-idle",
    ]) == 0
    capsys.readouterr()

    assert main(["trace", "--service", data]) == 0
    document = json.loads(capsys.readouterr().out)
    from repro.runtime.otlp import iter_spans

    names = {s["name"] for s in iter_spans(document)}
    assert "submit" in names and "deliver" in names and "add" in names

    out_file = tmp_path / "trace.otlp.json"
    assert main(["trace", "--service", data, "--output", str(out_file)]) == 0
    assert "spans" in capsys.readouterr().out
    assert json.loads(out_file.read_text())["resourceSpans"]


def test_trace_service_chrome_merges_incarnations(tmp_path, capsys):
    import json

    data = str(tmp_path / "data")
    assert main(["submit", "--data-dir", data, f"{DEMO}:add", "1", "2"]) == 0
    capsys.readouterr()
    assert main([
        "serve", "--data-dir", data, "--poll-interval", "0.01",
        "--lease-timeout", "3", "--until-idle",
    ]) == 0
    capsys.readouterr()

    out_file = tmp_path / "service.chrome.json"
    assert main([
        "trace", "chrome", "--service", data, "--output", str(out_file),
    ]) == 0
    assert "merged chrome trace" in capsys.readouterr().out
    chrome = json.loads(out_file.read_text())
    events = chrome["traceEvents"]
    names = {e["name"] for e in events if e["ph"] in ("X", "i")}
    assert "submit" in names and "deliver" in names and "add" in names
    # every resource (client log, server, worker runtime) got a row
    rows = [e for e in events if e["ph"] == "M" and e["name"] == "process_name"]
    assert len(rows) >= 2
    assert all(e["ts"] >= 0 for e in events if e["ph"] in ("X", "i"))


def test_trace_service_empty_dir_fails(tmp_path, capsys):
    assert main(["trace", "--service", str(tmp_path)]) == 1
    assert "no spans" in capsys.readouterr().err


def test_trace_without_file_or_service_is_an_error(capsys):
    assert main(["trace", "summarize"]) == 2
    assert "wants a FILE" in capsys.readouterr().err


def test_logs_renders_service_dir_and_span_file(tmp_path, capsys):
    data = str(tmp_path / "data")
    assert main(["submit", "--data-dir", data, f"{DEMO}:add", "1", "2"]) == 0
    capsys.readouterr()
    assert main(["logs", data]) == 0
    out = capsys.readouterr().out
    assert "span log" in out and "submit" in out

    assert main(["logs", str(tmp_path / "data" / "spans.jsonl"), "--limit", "1"]) == 0
    assert "trace=" in capsys.readouterr().out


def test_logs_renders_flightrec_dump(tmp_path, capsys):
    from repro.runtime.flightrec import FlightRecorder
    from repro.runtime.observability import TaskEvent

    rec = FlightRecorder(name="cli", dump_dir=tmp_path)
    rec.record(TaskEvent(kind="submitted", t=0.5, task_id=1, root_id=1, name="add"))
    path = rec.dump(reason="cli test")
    rec.close()
    assert main(["logs", path]) == 0
    out = capsys.readouterr().out
    assert "cli test" in out and "submitted" in out

    assert main(["logs", str(tmp_path / "missing.json")]) == 1
    assert "no such file" in capsys.readouterr().err
