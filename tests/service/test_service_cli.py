"""Tests of the ``repro serve`` / ``submit`` / ``queue`` CLI surface
(in-process via ``cli.main``; the cross-process server path is covered
by the chaos suite)."""

from __future__ import annotations

import threading

import pytest

from repro.cli import _parse_fault_spec, main

DEMO = "repro.service.demo"


def test_submit_then_serve_until_idle_then_queue_views(tmp_path, capsys):
    data = str(tmp_path / "data")
    assert main(["submit", "--data-dir", data, f"{DEMO}:add", "19", "23"]) == 0
    out = capsys.readouterr().out
    assert "task 1" in out

    assert main([
        "serve", "--data-dir", data, "--workers", "2",
        "--lease-timeout", "3", "--poll-interval", "0.01", "--until-idle",
    ]) == 0
    out = capsys.readouterr().out
    assert "serving" in out and "drained cleanly" in out

    assert main(["submit", "--data-dir", data, f"{DEMO}:add", "19", "23",
                 "--wait", "--timeout", "5"]) == 0
    out = capsys.readouterr().out
    assert "result: 42" in out  # idempotent resubmit found the result

    assert main(["queue", "status", "--data-dir", data]) == 0
    out = capsys.readouterr().out
    assert "done=1" in out and "completions" in out

    assert main(["queue", "list", "--data-dir", data]) == 0
    out = capsys.readouterr().out
    assert "done" in out and "add" in out

    assert main(["queue", "provenance", "--data-dir", data]) == 0
    out = capsys.readouterr().out
    assert "submitted" in out and "completed" in out


def test_submit_json_arguments_and_kwargs(tmp_path, capsys):
    data = str(tmp_path / "data")
    assert main([
        "submit", "--data-dir", data, f"{DEMO}:mul",
        "[1, 2]", "--kwarg", "b=3",
    ]) == 0
    capsys.readouterr()
    done = threading.Thread(
        target=main,
        args=([
            "serve", "--data-dir", data, "--poll-interval", "0.01",
            "--lease-timeout", "3", "--until-idle",
        ],),
    )
    done.start()
    done.join(timeout=30)
    assert not done.is_alive()
    assert main(["submit", "--data-dir", data, f"{DEMO}:mul",
                 "[1, 2]", "--kwarg", "b=3", "--wait", "--timeout", "5"]) == 0
    out = capsys.readouterr().out
    assert "result: [1, 2, 1, 2, 1, 2]" in out  # [1,2] * 3


def test_queue_cancel_and_reprioritize(tmp_path, capsys):
    data = str(tmp_path / "data")
    main(["submit", "--data-dir", data, f"{DEMO}:add", "1", "1"])
    main(["submit", "--data-dir", data, f"{DEMO}:add", "2", "2"])
    capsys.readouterr()
    assert main(["queue", "reprioritize", "2", "--data-dir", data,
                 "--priority", "9"]) == 0
    assert main(["queue", "cancel", "1", "--data-dir", data]) == 0
    assert main(["queue", "cancel", "99", "--data-dir", data]) == 1
    out = capsys.readouterr().out
    assert "priority set" in out and "cancelled" in out and "unknown" in out


def test_queue_tenant_upsert(tmp_path, capsys):
    data = str(tmp_path / "data")
    assert main(["queue", "tenant", "--data-dir", data, "--name", "alpha",
                 "--quota", "2", "--weight", "2.5"]) == 0
    out = capsys.readouterr().out
    assert "tenant alpha" in out
    assert main(["queue", "tenant", "--data-dir", data]) == 2  # no --name


def test_submit_rejects_bad_reference(tmp_path, capsys):
    assert main(["submit", "--data-dir", str(tmp_path / "d"), "not-a-ref"]) == 2
    assert "submit failed" in capsys.readouterr().err


def test_submit_rejects_bad_kwarg(tmp_path, capsys):
    assert main(["submit", "--data-dir", str(tmp_path / "d"),
                 f"{DEMO}:add", "--kwarg", "nonsense"]) == 2
    assert "NAME=JSON" in capsys.readouterr().err


def test_parse_fault_spec():
    rule = _parse_fault_spec("kill_worker:append_line:3")
    assert rule.task == "append_line" and rule.kind == "kill_worker"
    assert rule.executions == frozenset({3})
    assert _parse_fault_spec("fail:foo:1").kind == "fail"
    delay = _parse_fault_spec("delay:foo:2:0.5")
    assert delay.kind == "delay" and delay.delay == 0.5
    import argparse

    for bad in ("nope:foo:1", "kill_worker:foo", "kill_worker:foo:x"):
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_fault_spec(bad)
