"""Tests of the service database layer: WAL durability settings,
transactional discipline, per-thread connections, reopen semantics."""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.service.db import SCHEMA_VERSION, Database


@pytest.fixture()
def db(tmp_path):
    database = Database(tmp_path / "queue.db")
    yield database
    database.close()


def test_schema_applied_with_version(db):
    rows = db.query("SELECT value FROM meta WHERE key = 'schema_version'")
    assert rows and int(rows[0]["value"]) == SCHEMA_VERSION
    tables = {
        row["name"]
        for row in db.query("SELECT name FROM sqlite_master WHERE type = 'table'")
    }
    assert {
        "meta", "tenants", "tasks", "leases", "results",
        "provenance", "counters", "store_prefixes",
    } <= tables


def test_wal_mode_and_synchronous_normal(db):
    assert db.query("PRAGMA journal_mode")[0][0] == "wal"
    assert db.query("PRAGMA synchronous")[0][0] == 1  # NORMAL


def test_transaction_commits(db):
    with db.transaction() as conn:
        conn.execute("INSERT INTO counters (name, value) VALUES ('x', 1)")
    assert db.query("SELECT value FROM counters WHERE name = 'x'")[0]["value"] == 1


def test_transaction_rolls_back_on_error(db):
    with pytest.raises(RuntimeError):
        with db.transaction() as conn:
            conn.execute("INSERT INTO counters (name, value) VALUES ('x', 1)")
            raise RuntimeError("abort")
    assert db.query("SELECT value FROM counters WHERE name = 'x'") == []


def test_transaction_is_atomic_across_statements(db):
    """A multi-statement transition aborts as a unit: no partial edge."""
    with db.transaction() as conn:
        conn.execute(
            "INSERT INTO tenants (name, quota, weight, created_at) "
            "VALUES ('t', NULL, 1.0, 0)"
        )
        conn.execute(
            "INSERT INTO tasks (tenant, name, module, qualname, payload, signature, "
            "priority, state, attempt, max_retries, not_before, submitted_at, "
            "updated_at) VALUES ('t', 'n', 'm', 'q', X'', 'sig-a', 0, 'queued', 0, "
            "2, 0, 0, 0)"
        )
    with pytest.raises(sqlite3.IntegrityError):
        with db.transaction() as conn:
            conn.execute("UPDATE tasks SET state = 'leased' WHERE signature = 'sig-a'")
            # duplicate signature violates the UNIQUE constraint
            conn.execute(
                "INSERT INTO tasks (tenant, name, module, qualname, payload, "
                "signature, priority, state, attempt, max_retries, not_before, "
                "submitted_at, updated_at) VALUES ('t', 'n', 'm', 'q', X'', 'sig-a', "
                "0, 'queued', 0, 2, 0, 0, 0)"
            )
    row = db.query("SELECT state FROM tasks WHERE signature = 'sig-a'")[0]
    assert row["state"] == "queued"  # the UPDATE rolled back too


def test_per_thread_connections(db):
    conns = {}

    def grab(key):
        conns[key] = db.connect()

    main = db.connect()
    thread = threading.Thread(target=grab, args=("other",))
    thread.start()
    thread.join()
    assert conns["other"] is not main
    assert db.connect() is main  # same thread, same connection


def test_reopen_preserves_data(tmp_path):
    first = Database(tmp_path / "queue.db")
    with first.transaction() as conn:
        conn.execute("INSERT INTO counters (name, value) VALUES ('persist', 7)")
    first.close()
    # Reopening re-applies the idempotent schema and sees the data.
    second = Database(tmp_path / "queue.db")
    try:
        assert (
            second.query("SELECT value FROM counters WHERE name = 'persist'")[0]["value"]
            == 7
        )
        assert (
            int(second.query("SELECT value FROM meta WHERE key = 'schema_version'")[0]["value"])
            == SCHEMA_VERSION
        )
    finally:
        second.close()


def test_checkpoint_truncates_wal(db, tmp_path):
    with db.transaction() as conn:
        for i in range(50):
            conn.execute(
                "INSERT INTO counters (name, value) VALUES (?, ?)", (f"c{i}", i)
            )
    wal = tmp_path / "queue.db-wal"
    assert wal.exists() and wal.stat().st_size > 0
    db.checkpoint(truncate=True)
    assert wal.stat().st_size == 0


def test_concurrent_writers_serialize(db):
    """BEGIN IMMEDIATE + busy_timeout: concurrent transactions from
    many threads all land, none lost, none deadlocked."""
    n_threads, per_thread = 4, 25
    errors = []

    def hammer(k):
        try:
            for _ in range(per_thread):
                with db.transaction() as conn:
                    conn.execute(
                        "INSERT INTO counters (name, value) VALUES ('hits', 1) "
                        "ON CONFLICT(name) DO UPDATE SET value = value + 1"
                    )
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(k,)) for k in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert (
        db.query("SELECT value FROM counters WHERE name = 'hits'")[0]["value"]
        == n_threads * per_thread
    )
