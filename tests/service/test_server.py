"""Tests of the queue server lifecycle: cold-start recovery, store
prefix hygiene across concurrent services, drain, sweeper, metrics."""

from __future__ import annotations

import pickle
import time
from pathlib import Path

import numpy as np
import pytest

from repro.service.client import ServiceClient
from repro.service.db import Database
from repro.service.queue import DurableQueue
from repro.service.server import QueueService, ServiceConfig, _pid_alive

DEMO = "repro.service.demo"


def make_service(data_dir, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("lease_timeout", 3.0)
    kw.setdefault("poll_interval", 0.01)
    return QueueService(ServiceConfig(data_dir=str(data_dir), **kw))


def test_config_validates():
    with pytest.raises(ValueError):
        ServiceConfig(data_dir="x", workers=0)
    with pytest.raises(ValueError):
        ServiceConfig(data_dir="x", lease_timeout=0.0)
    with pytest.raises(ValueError):
        ServiceConfig(data_dir="x", poll_interval=0.0)


def test_serve_submit_result_roundtrip(tmp_path):
    service = make_service(tmp_path / "data").start()
    try:
        with ServiceClient(tmp_path / "data") as client:
            task_id = client.submit(f"{DEMO}:add", 20, 22)
            assert client.result(task_id, timeout=20) == 42
    finally:
        service.drain(timeout=10)


def test_until_idle_serves_backlog_then_exits(tmp_path):
    with ServiceClient(tmp_path / "data") as client:
        ids = [client.submit(f"{DEMO}:add", i, i, key=f"k{i}") for i in range(4)]
    service = make_service(tmp_path / "data").start()
    t0 = time.monotonic()
    service.serve_forever(until_idle=True, tick=0.02)
    assert time.monotonic() - t0 < 30
    with ServiceClient(tmp_path / "data") as client:
        assert client.wait_all(ids, timeout=5) == {
            task_id: 2 * i for i, task_id in enumerate(ids)
        }


def test_cold_start_recovery_requeues_leased(tmp_path):
    """Leases left behind by a dead incarnation (simulated: claimed
    but never served) are requeued before the new server leases."""
    data = tmp_path / "data"
    data.mkdir()
    db = Database(data / "queue.db")
    queue = DurableQueue(db)
    task_id = queue.submit(
        tenant="default", name="add", module=DEMO, qualname="add",
        payload=pickle.dumps(((1, 2), {})), signature="sig-dead",
    )
    queue.claim(worker="dead/w0", server="dead", lease_timeout=3600.0)
    db.close()

    service = make_service(data).start()
    try:
        assert service.recovery["requeued_tasks"] == [task_id]
        with ServiceClient(data) as client:
            assert client.result(task_id, timeout=20) == 3
            assert client.status(task_id)["attempt"] == 0  # crash not charged
    finally:
        service.drain(timeout=10)


def test_clean_drain_unregisters_prefix_and_flushes_wal(tmp_path):
    data = tmp_path / "data"
    service = make_service(data).start()
    prefix = service.runtime.store.prefix
    rows = service.db.query("SELECT prefix, pid FROM store_prefixes")
    assert [r["prefix"] for r in rows] == [prefix]
    service.drain(timeout=10)
    db = Database(data / "queue.db")
    try:
        assert db.query("SELECT prefix FROM store_prefixes") == []
    finally:
        db.close()
    assert not list(Path("/dev/shm").glob(f"{prefix}*"))


def test_dead_prefix_swept_on_cold_start(tmp_path):
    """A prefix registered by a dead pid is swept — shm and spill —
    on the next start."""
    data = tmp_path / "data"
    data.mkdir()
    (data / "spill").mkdir()
    from multiprocessing import shared_memory

    dead_prefix = "rsdeadbeef"
    seg = shared_memory.SharedMemory(
        create=True, size=1024, name=f"{dead_prefix}s0"
    )
    seg.buf[:4] = b"left"
    seg.close()
    spill = data / "spill" / f"repro-store-{dead_prefix}"
    spill.mkdir()
    (spill / "orphan.bin").write_bytes(b"x" * 64)

    db = Database(data / "queue.db")
    with db.transaction() as conn:
        # pid 2**22+5 is above linux's default pid_max: guaranteed dead
        conn.execute(
            "INSERT INTO store_prefixes (prefix, pid, server, registered_at) "
            "VALUES (?, ?, 'dead', 0)",
            (dead_prefix, 2**22 + 5),
        )
    db.close()

    service = make_service(data).start()
    try:
        assert dead_prefix in service.recovery["swept_prefixes"]
        assert service.recovery["swept_segment_files"] >= 2
        assert not list(Path("/dev/shm").glob(f"{dead_prefix}*"))
        assert not spill.exists()
        assert service.db.query(
            "SELECT prefix FROM store_prefixes WHERE prefix = ?", (dead_prefix,)
        ) == []
    finally:
        service.drain(timeout=10)


def test_concurrent_services_do_not_sweep_each_other(tmp_path):
    """Two live services over the same data directory (same queue.db,
    same spill root): each one's cold start sees the other's prefix
    registration with a live pid and leaves it alone."""
    data = tmp_path / "data"
    a = make_service(data).start()
    try:
        a_prefix = a.runtime.store.prefix
        # put something in A's store so a wrongful sweep would bite
        ref = a.runtime.put(np.ones(1024))
        b = make_service(data).start()
        try:
            assert a_prefix not in b.recovery["swept_prefixes"]
            assert b.recovery["swept_segment_files"] == 0
            # A's segments and data are untouched
            assert np.array_equal(a.runtime.get(ref), np.ones(1024))
            prefixes = {
                r["prefix"] for r in b.db.query("SELECT prefix FROM store_prefixes")
            }
            assert {a_prefix, b.runtime.store.prefix} <= prefixes
        finally:
            b.drain(timeout=10)
        # B's clean exit removed only its own registration
        rows = a.db.query("SELECT prefix FROM store_prefixes")
        assert [r["prefix"] for r in rows] == [a_prefix]
        assert np.array_equal(a.runtime.get(ref), np.ones(1024))
    finally:
        a.drain(timeout=10)


def test_sweeper_expires_dark_leases(tmp_path):
    """The background sweeper redelivers a lease whose worker went
    dark (heartbeats suppressed)."""
    data = tmp_path / "data"
    service = make_service(
        data, lease_timeout=0.3, sweep_interval=0.05, workers=1
    ).start()
    try:
        service.pool.suspend_heartbeats = True
        release_path = tmp_path / "marker"
        with ServiceClient(data) as client:
            task_id = client.submit(
                f"{DEMO}:wait_for_marker_then_append",
                str(tmp_path / "effects.txt"),
                "line",
                str(release_path),
            )
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if client.counts()["counters"].get("lease_expirations"):
                    break
                time.sleep(0.02)
            assert client.counts()["counters"].get("lease_expirations", 0) >= 1
            service.pool.suspend_heartbeats = False
            release_path.touch()
            assert client.result(task_id, timeout=30) == "line"
    finally:
        service.drain(timeout=10)


def test_metrics_merge_exposes_tenant_gauges(tmp_path):
    data = tmp_path / "data"
    service = make_service(data).start()
    try:
        with ServiceClient(data) as client:
            client.ensure_tenant("alpha")
            task_id = client.submit(f"{DEMO}:add", 1, 1, tenant="alpha")
            client.result(task_id, timeout=20)
        snapshot = service.metrics()
        assert "service" in snapshot
        assert snapshot["service"]["counters"]["completions"] >= 1
        text = service.metrics_text()
        assert 'repro_service_queue_depth{tenant="alpha"} 0' in text
        assert "repro_service_completions_total" in text
        status = service.status()
        assert status["outstanding"] == 0
        assert status["counters"]["submissions"] == 1
    finally:
        service.drain(timeout=10)


def test_pid_alive_probe():
    import os

    assert _pid_alive(os.getpid()) is True
    assert _pid_alive(2**22 + 5) is False


def test_double_start_and_double_drain_are_idempotent(tmp_path):
    service = make_service(tmp_path / "data")
    assert service.start() is service.start()
    assert service.drain(timeout=10) is True
    assert service.drain(timeout=10) is True
