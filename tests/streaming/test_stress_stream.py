"""The streaming stress harness's own regression tests: every scenario
family must pass for a fixed seed block, with zero leaked slots."""

from __future__ import annotations

import pytest

from repro.streaming import stress


@pytest.mark.parametrize("seed", range(4))
def test_each_scenario_family_passes(seed):
    report = stress.run_stream_scenario(seed, workers=2, timeout=60.0)
    assert report.mode == stress.MODES[seed % 4]
    assert report.ok, report.problems


def test_fusion_mode_passes():
    reports = stress.run_suite(
        range(4), workers=2, timeout=60.0, fusion=True, verbose=False
    )
    bad = [r for r in reports if not r.ok]
    assert not bad, [r.problems for r in bad]


def test_runtime_abort_variant_is_exercised():
    # seeds 14/18 take the workflow-abort branch of the abort family
    # (they submit the failing DAG task); keep them pinned so the
    # interrupt-driven unwind path never silently loses coverage.
    report = stress.run_stream_scenario(14, workers=2, timeout=60.0)
    assert report.mode == "abort"
    assert report.ok, report.problems
    assert report.n_tasks >= 1  # the _boom task really ran


def test_reference_windows_helper():
    assert stress._windows_of([1, 2, 3, 4, 5], 2) == [3, 7, 5]
    assert stress._windows_of([], 3) == []


def test_cli_entry(capsys):
    rc = stress.main(["--seeds", "2", "--workers", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "2/2 seeds passed" in out
