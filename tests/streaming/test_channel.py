"""Stream channel semantics: credits, blocking, EOS, poison."""

from __future__ import annotations

import threading
import time

import pytest

from repro.runtime import Runtime
from repro.runtime.config import RuntimeConfig
from repro.runtime.exceptions import WorkflowAbortedError
from repro.streaming import EOS, Record, Stream, StreamClosed, Watermark


def test_put_get_fifo_and_accounting():
    s = Stream(capacity=8, name="t")
    for i in range(5):
        s.put(i, ts=float(i))
    assert s.depth() == 5
    assert s.credits() == 3
    got = [s.get() for _ in range(5)]
    assert [r.value for r in got] == [0, 1, 2, 3, 4]
    assert [r.ts for r in got] == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert s.credits() == 8
    assert s.slots_leaked() == 0
    st = s.stats()
    assert st["puts"] == 5 and st["gets"] == 5 and st["high_water"] == 5


def test_capacity_blocks_producer_until_consumed():
    s = Stream(capacity=2, name="t")
    s.put(1)
    s.put(2)
    done = threading.Event()

    def producer():
        s.put(3)  # must block until a get frees a credit
        done.set()

    t = threading.Thread(target=producer, daemon=True)
    t.start()
    time.sleep(0.05)
    assert not done.is_set()
    assert s.get().value == 1
    assert done.wait(2.0)
    t.join(2.0)
    assert [s.get().value for _ in range(2)] == [2, 3]
    assert s.stats()["put_waits"] >= 1


def test_close_drains_then_eos_and_rejects_puts():
    s = Stream(capacity=4, name="t")
    s.put(1)
    s.put(2)
    s.close()
    assert s.get().value == 1
    assert s.get().value == 2
    assert s.get() is EOS
    assert s.get() is EOS  # idempotent
    with pytest.raises(StreamClosed):
        s.put(3)


def test_iter_yields_records_and_watermarks_until_eos():
    s = Stream(capacity=8, name="t")
    s.put(1)
    s.put_item(Watermark(5.0))
    s.put(2)
    s.close()
    items = list(s)
    assert [type(i).__name__ for i in items] == ["Record", "Watermark", "Record"]


def test_poison_drops_restores_credits_and_raises_everywhere():
    s = Stream(capacity=4, name="t")
    s.put(1)
    s.put(2)
    err = RuntimeError("boom")
    dropped = s.poison(err)
    assert dropped == 2
    assert s.credits() == 4
    assert s.slots_leaked() == 0
    with pytest.raises(RuntimeError, match="boom"):
        s.get()
    with pytest.raises(RuntimeError, match="boom"):
        s.put(3)
    # first error wins
    s.poison(ValueError("later"))
    with pytest.raises(RuntimeError, match="boom"):
        s.get()


def test_poison_wakes_blocked_consumer():
    s = Stream(capacity=2, name="t")
    caught: list = []

    def consumer():
        try:
            s.get()
        except RuntimeError as exc:
            caught.append(exc)

    t = threading.Thread(target=consumer, daemon=True)
    t.start()
    time.sleep(0.05)
    s.poison(RuntimeError("boom"))
    t.join(2.0)
    assert not t.is_alive()
    assert caught and str(caught[0]) == "boom"


def test_runtime_abort_interrupts_parked_consumer():
    cfg = RuntimeConfig(executor="threads", max_workers=2)
    rt = Runtime(config=cfg)
    try:
        s = Stream(capacity=2, name="t", runtime=rt)
        caught: list = []

        def consumer():
            try:
                s.get()
            except BaseException as exc:  # noqa: BLE001 - relay to the test
                caught.append(exc)

        t = threading.Thread(target=consumer, daemon=True)
        t.start()
        time.sleep(0.05)
        rt._abort(RuntimeError("workflow died"))
        t.join(2.0)
        assert not t.is_alive()
        assert caught and isinstance(caught[0], WorkflowAbortedError)
    finally:
        rt.shutdown()


def test_record_replace_preserves_metadata():
    r = Record(1, ts=2.0, key="k", ingest=3.0)
    r2 = r.replace(10)
    assert (r2.value, r2.ts, r2.key, r2.ingest) == (10, 2.0, "k", 3.0)


def test_capacity_validation():
    with pytest.raises(ValueError):
        Stream(capacity=0)
