"""Window semantics: count/time, tumbling/sliding, keys, watermarks."""

from __future__ import annotations

import pytest

from repro.streaming import (
    Record,
    SlidingCountWindow,
    SlidingTimeWindow,
    TumblingCountWindow,
    TumblingTimeWindow,
    Watermark,
    run_windowed,
)


def recs(values, ts=None, key=None):
    return [
        Record(v, ts=float(i) if ts is None else ts[i], key=key)
        for i, v in enumerate(values)
    ]


def test_tumbling_count_exact_windows():
    out = run_windowed(TumblingCountWindow(3), recs(range(9)), fn=list)
    assert [r.value for r in out] == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]


def test_tumbling_count_flushes_partial_at_eos():
    out = run_windowed(TumblingCountWindow(4), recs(range(10)), fn=list)
    assert [r.value for r in out] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]


def test_sliding_count_overlap_and_no_partial_flush():
    out = run_windowed(SlidingCountWindow(3, 2), recs(range(8)), fn=list)
    # windows close on arrivals 3, 5, 7 (n=3 then every step=2)
    assert [r.value for r in out] == [[0, 1, 2], [2, 3, 4], [4, 5, 6]]


def test_sliding_count_step_larger_than_n_samples():
    out = run_windowed(SlidingCountWindow(2, 4), recs(range(10)), fn=list)
    assert [r.value for r in out] == [[0, 1], [4, 5], [8, 9]]


def test_count_windows_are_keyed_independently():
    elements = [
        Record(v, ts=float(i), key=v % 2) for i, v in enumerate(range(8))
    ]
    out = run_windowed(TumblingCountWindow(2), elements, fn=list)
    assert [(r.key, r.value) for r in out] == [
        (0, [0, 2]),
        (1, [1, 3]),
        (0, [4, 6]),
        (1, [5, 7]),
    ]


def test_time_window_closes_only_on_watermark():
    elements = recs(range(6))  # ts 0..5
    out = run_windowed(TumblingTimeWindow(2.0), elements, fn=list)
    # no watermark: everything flushes at EOS, in window order
    assert [r.value for r in out] == [[0, 1], [2, 3], [4, 5]]

    elements = recs(range(6)) + [Watermark(4.0)]
    windower_out = run_windowed(TumblingTimeWindow(2.0), elements, fn=list)
    # watermark 4.0 closes [0,2) and [2,4); EOS flushes [4,6)
    assert [r.value for r in windower_out] == [[0, 1], [2, 3], [4, 5]]
    assert [r.ts for r in windower_out] == [2.0, 4.0, 6.0]


def test_mid_stream_watermark_emits_before_later_records():
    elements = [
        Record(0, ts=0.0),
        Record(1, ts=1.0),
        Watermark(2.0),
        Record(2, ts=2.0),
        Record(3, ts=3.0),
    ]
    out = run_windowed(TumblingTimeWindow(2.0), elements, fn=list)
    assert [r.value for r in out] == [[0, 1], [2, 3]]


def test_sliding_time_window_overlaps():
    elements = recs(range(6)) + [Watermark(100.0)]
    out = run_windowed(SlidingTimeWindow(4.0, 2.0), elements, fn=sum)
    # windows [-2,2)=0+1, [0,4)=0..3, [2,6)=2..5, [4,8)=4+5
    assert [(r.ts, r.value) for r in out] == [
        (2.0, 1),
        (4.0, 6),
        (6.0, 14),
        (8.0, 9),
    ]


def test_time_window_requires_timestamps():
    with pytest.raises(ValueError, match="ts=None"):
        run_windowed(TumblingTimeWindow(1.0), [Record(1, ts=None)])


def test_late_record_opens_new_window_after_close():
    # A record older than the watermark lands in a fresh (re-opened)
    # window slot and flushes at EOS — data is never silently dropped.
    elements = [
        Record(0, ts=0.0),
        Watermark(2.0),
        Record(1, ts=0.5),  # late
    ]
    out = run_windowed(TumblingTimeWindow(2.0), elements, fn=list)
    assert [r.value for r in out] == [[0], [1]]


def test_window_metadata_propagates_ingest():
    elements = [
        Record(0, ts=0.0, ingest=10.0),
        Record(1, ts=1.0, ingest=12.0),
    ]
    out = run_windowed(TumblingCountWindow(2), elements, fn=list)
    assert out[0].ingest == 12.0  # max ingest of members


def test_spec_validation():
    with pytest.raises(ValueError):
        TumblingCountWindow(0)
    with pytest.raises(ValueError):
        SlidingCountWindow(2, 0)
    with pytest.raises(ValueError):
        TumblingTimeWindow(0.0)
    with pytest.raises(ValueError):
        SlidingTimeWindow(1.0, -1.0)
