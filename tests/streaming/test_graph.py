"""StreamGraph wiring: multi-stage pipelines, failure policies,
task-interop in both directions, lifecycle errors."""

from __future__ import annotations

import threading
import time

import pytest

from repro.runtime import Runtime, task, wait_on
from repro.runtime.config import RuntimeConfig
from repro.streaming import (
    StreamFailure,
    StreamGraph,
    TumblingCountWindow,
    TumblingTimeWindow,
)


@task(returns=1)
def _triple(x):
    return 3 * x


@task(returns=1)
def _total(values):
    return sum(values)


def runtime(**kw):
    kw.setdefault("executor", "threads")
    kw.setdefault("max_workers", 2)
    kw.setdefault("debug_invariants", True)
    return Runtime(config=RuntimeConfig(**kw))


@pytest.fixture(params=["threads", "sequential"])
def rt(request):
    with runtime(executor=request.param) as r:
        yield r


def reference(n, w):
    vals = [v * 2 for v in range(n) if (v * 2) % 3 != 0]
    return [sum(vals[i : i + w]) for i in range(0, len(vals), w)]


def test_multi_stage_pipeline_matches_reference(rt):
    g = StreamGraph(rt, name="g", capacity=4)
    src = g.source(range(40), name="src")
    m = g.map(src, lambda v: v * 2)
    f = g.filter(m, lambda v: v % 3 != 0)
    w = g.window(f, TumblingCountWindow(4), fn=sum)
    sink = g.sink(w)
    g.start()
    stats = g.join()
    assert sink.collected == reference(40, 4)
    assert g.slots_leaked() == 0
    assert stats["src"].n_out == 40
    assert g.error is None


def test_flat_map_and_batch(rt):
    g = StreamGraph(rt, name="g")
    src = g.source(range(6), name="src")
    fm = g.flat_map(src, lambda v: [v, v])
    b = g.batch(fm, 5)
    sink = g.sink(b)
    g.start()
    g.join()
    assert sink.collected == [[0, 0, 1, 1, 2], [2, 3, 3, 4, 4], [5, 5]]


def test_key_by_routes_windows_per_key(rt):
    g = StreamGraph(rt, name="g")
    src = g.source(range(8), name="src")
    k = g.key_by(src, lambda v: v % 2)
    w = g.window(k, TumblingCountWindow(2), fn=list)
    sink = g.sink(w)
    g.start()
    g.join()
    assert sink.collected == [[0, 2], [1, 3], [4, 6], [5, 7]]


def test_event_time_windows_close_on_watermarks(rt):
    g = StreamGraph(rt, name="g")
    src = g.source(range(10), name="src", watermark_interval=4)
    w = g.window(src, TumblingTimeWindow(2.0), fn=list)
    sink = g.sink(w)
    g.start()
    g.join()
    assert sink.collected == [[0, 1], [2, 3], [4, 5], [6, 7], [8, 9]]


def test_stream_stage_submits_tasks_and_waits(rt):
    # Interop direction 1: a stage body is task-runtime territory.
    g = StreamGraph(rt, name="g")
    src = g.source(range(10), name="src")

    def via_task(v):
        return wait_on(_triple(v))

    m = g.map(src, via_task)
    sink = g.sink(m)
    g.start()
    g.join()
    assert sink.collected == [3 * v for v in range(10)]


def test_dag_task_consumes_stream_results(rt):
    # Interop direction 2: graph output feeds an ordinary task DAG.
    g = StreamGraph(rt, name="g")
    src = g.source(range(12), name="src")
    w = g.window(src, TumblingCountWindow(3), fn=sum)
    sink = g.sink(w)
    g.start()
    g.join()
    fut = _total(sink.collected)
    assert wait_on(fut) == sum(range(12))


def test_retry_policy_reapplies_operator(rt):
    attempts = {}

    def flaky(v):
        if v == 5 and attempts.setdefault(5, 0) < 2:
            attempts[5] += 1
            raise ValueError("transient")
        return v

    g = StreamGraph(rt, name="g")
    src = g.source(range(10), name="src")
    m = g.map(src, flaky, name="m", on_failure="RETRY", max_retries=2)
    sink = g.sink(m)
    g.start()
    stats = g.join()
    assert sink.collected == list(range(10))
    assert stats["m"].retries == 2


def test_ignore_policy_drops_element(rt):
    def bad(v):
        if v % 4 == 0:
            raise ValueError("bad element")
        return v

    g = StreamGraph(rt, name="g")
    src = g.source(range(10), name="src")
    m = g.map(src, bad, name="m", on_failure="IGNORE")
    sink = g.sink(m)
    g.start()
    stats = g.join()
    assert sink.collected == [v for v in range(10) if v % 4 != 0]
    assert stats["m"].dropped == 3


def test_fail_policy_unwinds_graph_with_zero_leaks(rt):
    def bomb(v):
        if v == 7:
            raise RuntimeError("kaboom")
        return v

    g = StreamGraph(rt, name="g", capacity=2)
    src = g.source(range(100), name="src")
    m = g.map(src, bomb, name="m")
    sink = g.sink(m)
    g.start()
    with pytest.raises(StreamFailure) as ei:
        g.join(timeout=30.0)
    assert ei.value.stage == "m"
    assert isinstance(ei.value.__cause__, RuntimeError)
    assert g.slots_leaked() == 0
    assert len(sink.collected) < 100
    # the runtime itself is unharmed — graph failures are graph-local
    assert wait_on(_triple(2)) == 6


def test_abort_unwinds_promptly(rt):
    g = StreamGraph(rt, name="g", capacity=2)
    src = g.source(range(10_000), name="src")
    m = g.map(src, lambda v: (time.sleep(0.001), v)[1], name="m")
    sink = g.sink(m)
    g.start()
    time.sleep(0.03)
    g.abort()
    g.join(timeout=30.0, raise_on_error=False)
    assert g.error is not None
    assert g.slots_leaked() == 0
    assert len(sink.collected) < 10_000


def test_context_manager_joins_and_raises(rt):
    # context manager joins on exit
    g = StreamGraph(rt, name="g2")
    src = g.source(range(5), name="src")
    sink = g.sink(src)
    with g:
        pass
    assert sink.collected == [0, 1, 2, 3, 4]

    # a failing stage surfaces on exit
    g3 = StreamGraph(rt, name="g3")
    src = g3.source(range(5), name="src")
    bad = g3.map(src, lambda v: 1 / 0, name="bad")
    g3.sink(bad)
    with pytest.raises(StreamFailure):
        with g3:
            pass


def test_topology_validation(rt):
    g = StreamGraph(rt, name="g")
    src = g.source(range(3), name="src")
    with pytest.raises(RuntimeError, match="no consumer"):
        g.start()
    sink = g.sink(src)
    with pytest.raises(ValueError, match="single-consumer"):
        g.map(src, lambda v: v)
    with pytest.raises(ValueError, match="duplicate stage name"):
        g.source(range(3), name="src")
    g.start()
    with pytest.raises(RuntimeError, match="started"):
        g.source(range(3), name="late")
    g.join()
    assert sink.collected == [0, 1, 2]


def test_rate_controlled_source_paces_emission(rt):
    g = StreamGraph(rt, name="g")
    src = g.source(range(10), name="src", rate=200.0)
    sink = g.sink(src)
    g.start()
    t0 = time.monotonic()
    g.join()
    elapsed = time.monotonic() - t0
    assert sink.collected == list(range(10))
    assert elapsed >= 0.04  # 10 records at 200/s ≈ 50ms of pacing


def test_backpressure_bounds_queue_depth():
    with runtime() as rt:
        g = StreamGraph(rt, name="g", capacity=3)
        src = g.source(range(200), name="src")
        slow = g.map(src, lambda v: (time.sleep(0.0005), v)[1], name="slow")
        sink = g.sink(slow)
        g.start()
        g.join()
        assert sink.collected == list(range(200))
        for s in g.streams:
            assert s.stats()["high_water"] <= 3


def test_stage_stats_snapshot_shape(rt):
    g = StreamGraph(rt, name="g")
    src = g.source(range(20), name="src")
    m = g.map(src, lambda v: v, name="m")
    g.sink(m, name="out")
    g.start()
    stats = g.join()
    snap = stats["m"].snapshot()
    assert snap["n_in"] == snap["n_out"] == 20
    assert snap["p50_ms"] >= 0.0 and snap["p99_ms"] >= snap["p50_ms"] * 0.0
    meta = g.metrics_snapshot()
    assert set(meta["stages"]) == {"src", "m", "out"}
    assert all(v["closed"] for v in meta["streams"].values())
