"""Online AF serving: shapes, determinism, and the streamed-vs-batch
bit-identity differential (fusion on/off × threads/sequential)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import Runtime
from repro.runtime.config import RuntimeConfig
from repro.streaming import (
    ServeConfig,
    iter_feed,
    make_model,
    serve_batch,
    serve_stream,
)

CFG = ServeConfig(
    n_segments=6, patients=2, chunks_per_segment=4, chunk_seconds=0.5, batch_size=2
)


@pytest.fixture(scope="module")
def model():
    return make_model(CFG)


def runtime(**kw):
    kw.setdefault("executor", "threads")
    kw.setdefault("max_workers", 2)
    kw.setdefault("debug_invariants", True)
    return Runtime(config=RuntimeConfig(**kw))


def test_feed_is_deterministic_and_interleaved():
    feed1 = list(iter_feed(CFG))
    feed2 = list(iter_feed(CFG))
    assert len(feed1) == CFG.n_segments * CFG.chunks_per_segment
    for a, b in zip(feed1, feed2):
        assert a[:3] == b[:3] and a[4] == b[4]
        np.testing.assert_array_equal(a[3], b[3])
    # round-robin across patients: consecutive chunks alternate patient
    patients = [v[0] for v in feed1[: 2 * CFG.patients]]
    assert patients == [0, 1, 0, 1]
    # every chunk has the configured length
    assert all(len(v[3]) == CFG.chunk_len for v in feed1)


def test_serve_stream_produces_one_prediction_per_segment(model):
    with runtime() as rt:
        res = serve_stream(CFG, rt, model)
    assert len(res.predictions) == CFG.n_segments
    assert res.probs.shape == (CFG.n_segments, 2)
    np.testing.assert_allclose(res.probs.sum(axis=1), 1.0, atol=1e-9)
    segs = sorted(p["segment"] for p in res.predictions)
    assert segs == list(range(CFG.n_segments))
    for p in res.predictions:
        assert p["pred"] in (0, 1)
        assert 0.0 <= p["prob_af"] <= 1.0
        assert p["n_peaks"] >= 0
    # per-stage stats cover the whole topology
    assert set(res.stage_stats) == {
        "ecg",
        "key_by_patient",
        "segment",
        "features",
        "microbatch",
        "infer",
        "predictions",
    }
    assert res.stage_stats["ecg"]["n_out"] == len(list(iter_feed(CFG)))


@pytest.mark.parametrize("backend", ["threads", "sequential"])
@pytest.mark.parametrize("fusion", [False, True])
def test_differential_stream_vs_batch_bit_identical(model, backend, fusion):
    """The differential gate: the same bounded feed through the
    streaming pipeline and through the equivalent batch DAG must give
    byte-for-byte identical predictions."""
    with runtime(executor=backend, fusion=fusion) as rt:
        streamed = serve_stream(CFG, rt, model)
    with runtime(executor=backend, fusion=fusion) as rt:
        batch = serve_batch(CFG, rt, model)
    assert streamed.predictions == batch.predictions
    assert np.array_equal(streamed.probs, batch.probs)


def test_differential_across_backends(model):
    with runtime(executor="threads") as rt:
        a = serve_stream(CFG, rt, model)
    with runtime(executor="sequential") as rt:
        b = serve_stream(CFG, rt, model)
    assert a.predictions == b.predictions


def test_rate_limited_serving_still_exact(model):
    cfg = ServeConfig(
        n_segments=2,
        patients=1,
        chunks_per_segment=4,
        chunk_seconds=0.5,
        batch_size=2,
        rate=400.0,
    )
    with runtime() as rt:
        paced = serve_stream(cfg, rt, model=None)
        full = serve_batch(cfg, rt, model=None)
    assert paced.predictions == full.predictions
    assert paced.elapsed_s >= 8 / 400.0 * 0.5  # pacing actually happened


def test_serving_metrics_flow_into_registry(model):
    with runtime(observability="metrics") as rt:
        res = serve_stream(CFG, rt, model)
        registry = rt.metrics_registry
        assert registry is not None
        snap = registry.snapshot()
    names = {c["name"] for c in snap["counters"]}
    assert "repro_stream_records_total" in names
    hists = {h["name"] for h in snap["histograms"]}
    assert "repro_stream_stage_seconds" in hists
    assert "repro_stream_e2e_seconds" in hists
    gauges = {g["name"] for g in snap["gauges"]}
    assert "repro_stream_queue_depth" in gauges
    assert "repro_stream_stage_rps" in gauges
    # and the text exposition renders them
    from repro.runtime.observability import to_prometheus

    text = to_prometheus(snap)
    assert "repro_stream_queue_depth" in text
    assert res.metrics is not None and "stages" in res.metrics
