"""Shared data generators for the ML test suite."""

from __future__ import annotations

import numpy as np
import pytest

import repro.dsarray as ds


def make_blobs(n=200, d=5, sep=2.0, seed=0, labels=(0.0, 1.0)):
    """Two separable gaussian blobs, shuffled."""
    rng = np.random.default_rng(seed)
    half = n // 2
    x = np.vstack(
        [rng.normal(-sep / 2, 1.0, (half, d)), rng.normal(sep / 2, 1.0, (n - half, d))]
    )
    y = np.array([labels[0]] * half + [labels[1]] * (n - half))
    perm = rng.permutation(n)
    return x[perm], y[perm]


def as_ds(x, y, row_block=40, col_block=3):
    dx = ds.array(x, (row_block, col_block))
    dy = ds.array(y.reshape(-1, 1), (row_block, 1))
    return dx, dy


@pytest.fixture()
def blobs():
    return make_blobs()


@pytest.fixture()
def ds_blobs(blobs):
    x, y = blobs
    return as_ds(x, y)
