"""Candidate-level resume in GridSearchCV."""

from __future__ import annotations

import numpy as np

from repro.ml import GridSearchCV, KNeighborsClassifier
from tests.ml.conftest import as_ds, make_blobs


class CountingFactory:
    """Estimator factory that counts how many estimators it built."""

    def __init__(self):
        self.calls = 0

    def __call__(self, **params):
        self.calls += 1
        return KNeighborsClassifier(**params)


def test_completed_candidates_are_skipped_on_refit(tmp_path):
    x, y = make_blobs(n=120, d=4, sep=2.0, seed=2)
    dx, dy = as_ds(x, y)
    grid = {"n_neighbors": [1, 5, 15]}

    first = CountingFactory()
    gs1 = GridSearchCV(first, grid, n_splits=3, checkpoint_dir=tmp_path).fit(dx, dy)
    # 3 candidates x 3 folds + 1 refit
    assert first.calls == 10

    second = CountingFactory()
    gs2 = GridSearchCV(second, grid, n_splits=3, checkpoint_dir=tmp_path).fit(dx, dy)
    # every candidate score replayed from the store; only the refit runs
    assert second.calls == 1
    assert gs2.best_params_ == gs1.best_params_
    assert gs2.best_score_ == gs1.best_score_
    assert [r.fold_accuracies for r in gs2.results_] == [
        r.fold_accuracies for r in gs1.results_
    ]


def test_partial_store_evaluates_only_the_remaining_grid(tmp_path):
    x, y = make_blobs(n=120, d=4, sep=2.0, seed=2)
    dx, dy = as_ds(x, y)

    narrow = CountingFactory()
    GridSearchCV(narrow, {"n_neighbors": [1, 5]}, n_splits=3, checkpoint_dir=tmp_path).fit(
        dx, dy
    )
    assert narrow.calls == 7  # 2 x 3 folds + refit

    widened = CountingFactory()
    GridSearchCV(
        widened, {"n_neighbors": [1, 5, 15]}, n_splits=3, checkpoint_dir=tmp_path
    ).fit(dx, dy)
    # the two scored candidates replay; only n_neighbors=15 evaluates
    assert widened.calls == 4  # 1 x 3 folds + refit


def test_key_distinguishes_search_settings(tmp_path):
    """Changing K-fold settings or the data shape invalidates reuse."""
    x, y = make_blobs(n=120, d=4, sep=2.0, seed=2)
    dx, dy = as_ds(x, y)
    grid = {"n_neighbors": [3]}

    GridSearchCV(CountingFactory(), grid, n_splits=3, checkpoint_dir=tmp_path).fit(dx, dy)

    other_splits = CountingFactory()
    GridSearchCV(other_splits, grid, n_splits=4, checkpoint_dir=tmp_path).fit(dx, dy)
    assert other_splits.calls == 5  # 4 folds + refit, no reuse

    x2, y2 = make_blobs(n=80, d=4, sep=2.0, seed=2)
    dx2, dy2 = as_ds(x2, y2)
    other_data = CountingFactory()
    GridSearchCV(other_data, grid, n_splits=3, checkpoint_dir=tmp_path).fit(dx2, dy2)
    assert other_data.calls == 4  # 3 folds + refit, no reuse


def test_scores_are_exact_across_resume(tmp_path):
    x, y = make_blobs(n=100, d=3, sep=2.5, seed=7)
    dx, dy = as_ds(x, y)
    grid = {"n_neighbors": [1, 7]}
    gs1 = GridSearchCV(
        lambda **p: KNeighborsClassifier(**p), grid, n_splits=3, checkpoint_dir=tmp_path
    ).fit(dx, dy)
    gs2 = GridSearchCV(
        lambda **p: KNeighborsClassifier(**p), grid, n_splits=3, checkpoint_dir=tmp_path
    ).fit(dx, dy)
    for r1, r2 in zip(gs1.results_, gs2.results_):
        assert r1.params == r2.params
        assert r1.mean_accuracy == r2.mean_accuracy
        assert np.allclose(r1.fold_accuracies, r2.fold_accuracies)
