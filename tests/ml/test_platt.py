"""Platt-scaled probabilities for the SVC."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.svm import SVC
from tests.ml.conftest import make_blobs


def test_calibrated_probabilities_valid():
    x, y = make_blobs(n=200, d=4, sep=2.0, seed=1)
    clf = SVC().fit(x[:150], y[:150]).calibrate(x[150:], y[150:])
    p = clf.predict_proba(x)
    assert p.shape == (200, 2)
    np.testing.assert_allclose(p.sum(axis=1), 1.0)
    assert ((p >= 0) & (p <= 1)).all()


def test_probabilities_track_labels():
    x, y = make_blobs(n=300, d=4, sep=3.0, seed=2)
    clf = SVC().fit(x[:200], y[:200]).calibrate(x[200:], y[200:])
    p1 = clf.predict_proba(x)[:, 1]
    assert p1[y == 1].mean() > 0.8
    assert p1[y == 0].mean() < 0.2


def test_monotone_in_decision_score():
    x, y = make_blobs(n=150, d=3, sep=2.0, seed=3)
    clf = SVC().fit(x, y).calibrate(x, y)
    scores = clf.decision_function(x)
    probs = clf.predict_proba(x)[:, 1]
    order = np.argsort(scores)
    assert (np.diff(probs[order]) >= -1e-12).all()


def test_predict_proba_requires_calibration():
    x, y = make_blobs(n=60, d=3, sep=2.0)
    clf = SVC().fit(x, y)
    with pytest.raises(RuntimeError):
        clf.predict_proba(x)


def test_threshold_tuning_trades_recall_for_precision():
    """The paper's §V point: in stroke care prefer false positives, so
    lower the AF threshold to raise recall."""
    from repro.ml.metrics import precision_score, recall_score

    x, y = make_blobs(n=400, d=4, sep=1.5, seed=4)
    clf = SVC().fit(x[:300], y[:300]).calibrate(x[:300], y[:300])
    p_af = clf.predict_proba(x[300:])[:, 1]
    y_te = y[300:]
    pred_default = np.where(p_af >= 0.5, 1.0, 0.0)
    pred_recall = np.where(p_af >= 0.2, 1.0, 0.0)
    assert recall_score(y_te, pred_recall, 1.0) >= recall_score(y_te, pred_default, 1.0)
    assert precision_score(y_te, pred_recall, 1.0) <= precision_score(
        y_te, pred_default, 1.0
    ) + 1e-9
