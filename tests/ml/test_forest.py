"""Random forest: accuracy, distributed structure, distr_depth task shape."""

from __future__ import annotations

import numpy as np
import pytest

import repro.dsarray as ds
from repro.ml import RandomForestClassifier
from repro.ml.base import NotFittedError
from repro.runtime import Runtime
from tests.ml.conftest import as_ds, make_blobs


def test_fits_blobs_eager(ds_blobs):
    dx, dy = ds_blobs
    clf = RandomForestClassifier(n_estimators=10, random_state=0).fit(dx, dy)
    assert clf.score(dx, dy) > 0.95


def test_fits_under_threads():
    x, y = make_blobs(n=200, d=4, sep=2.5, seed=6)
    with Runtime(executor="threads", max_workers=4):
        dx, dy = as_ds(x, y)
        clf = RandomForestClassifier(n_estimators=12, distr_depth=2, random_state=1).fit(dx, dy)
        acc = clf.score(dx, dy)
    assert acc > 0.9


def test_predict_proba_shape_and_normalisation(ds_blobs):
    dx, dy = ds_blobs
    clf = RandomForestClassifier(n_estimators=5, random_state=0).fit(dx, dy)
    probs = clf.predict_proba(dx)
    assert probs.shape == (dx.shape[0], 2)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-9)


def test_generalisation():
    x, y = make_blobs(n=400, d=5, sep=2.0, seed=8)
    dx_tr, dy_tr = as_ds(x[:300], y[:300])
    dx_te, dy_te = as_ds(x[300:], y[300:])
    clf = RandomForestClassifier(n_estimators=20, random_state=0).fit(dx_tr, dy_tr)
    assert clf.score(dx_te, dy_te) > 0.85


def test_more_estimators_not_worse():
    x, y = make_blobs(n=300, d=5, sep=1.2, seed=10)
    dx_tr, dy_tr = as_ds(x[:200], y[:200])
    dx_te, dy_te = as_ds(x[200:], y[200:])
    acc1 = RandomForestClassifier(n_estimators=1, random_state=0).fit(dx_tr, dy_tr).score(dx_te, dy_te)
    acc20 = RandomForestClassifier(n_estimators=25, random_state=0).fit(dx_tr, dy_tr).score(dx_te, dy_te)
    assert acc20 >= acc1 - 0.05


def test_task_count_independent_of_block_size():
    """The paper's key RF property: block size does not change the
    number of tasks (unlike CSVM/KNN)."""
    x, y = make_blobs(n=120, d=3)

    def count_tasks(row_block):
        with Runtime(executor="sequential") as rt:
            dx, dy = as_ds(x, y, row_block=row_block)
            RandomForestClassifier(n_estimators=4, distr_depth=1, random_state=0).fit(dx, dy)
            counts = rt.graph.count_by_name()
        return {
            k: v
            for k, v in counts.items()
            if k in ("_bootstrap", "_node_split", "_build_subtree", "_join_node")
        }

    assert count_tasks(row_block=20) == count_tasks(row_block=60)


def test_task_count_scales_with_distr_depth():
    x, y = make_blobs(n=120, d=3)

    def split_tasks(distr_depth):
        with Runtime(executor="sequential") as rt:
            dx, dy = as_ds(x, y)
            RandomForestClassifier(
                n_estimators=2, distr_depth=distr_depth, random_state=0
            ).fit(dx, dy)
            return rt.graph.count_by_name().get("_node_split", 0)

    assert split_tasks(0) == 0
    assert split_tasks(1) == 2  # one root split per estimator
    assert split_tasks(2) == 2 * 3  # root + 2 children per estimator


def test_distr_depth_zero_single_task_per_tree():
    x, y = make_blobs(n=100, d=3)
    with Runtime(executor="sequential") as rt:
        dx, dy = as_ds(x, y)
        RandomForestClassifier(n_estimators=3, distr_depth=0, random_state=0).fit(dx, dy)
        counts = rt.graph.count_by_name()
    assert counts["_build_subtree"] == 3
    assert "_node_split" not in counts


def test_max_depth_respected():
    from repro.ml.trees.tree import tree_depth

    x, y = make_blobs(n=200, sep=0.8, seed=3)
    dx, dy = as_ds(x, y)
    clf = RandomForestClassifier(
        n_estimators=4, distr_depth=1, max_depth=3, random_state=0
    ).fit(dx, dy)
    from repro.runtime import wait_on

    for t in wait_on(clf._trees):
        assert tree_depth(t) <= 3


def test_deterministic_given_seed(ds_blobs):
    dx, dy = ds_blobs
    a = RandomForestClassifier(n_estimators=6, random_state=7).fit(dx, dy).predict(dx)
    b = RandomForestClassifier(n_estimators=6, random_state=7).fit(dx, dy).predict(dx)
    np.testing.assert_array_equal(a, b)


def test_invalid_params():
    with pytest.raises(ValueError):
        RandomForestClassifier(n_estimators=0)
    with pytest.raises(ValueError):
        RandomForestClassifier(distr_depth=-1)


def test_not_fitted(ds_blobs):
    dx, _ = ds_blobs
    with pytest.raises(NotFittedError):
        RandomForestClassifier().predict(dx)


def test_string_labels():
    x, y = make_blobs(n=80, sep=3.0, labels=("N", "AF"))
    dx, dy = as_ds(x, y.astype(object))
    clf = RandomForestClassifier(n_estimators=5, random_state=0).fit(dx, dy)
    assert set(clf.predict(dx)) <= {"N", "AF"}
