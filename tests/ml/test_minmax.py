"""MinMaxScaler."""

from __future__ import annotations

import numpy as np
import pytest

import repro.dsarray as ds
from repro.ml import MinMaxScaler
from repro.ml.base import NotFittedError
from repro.runtime import Runtime


def test_scales_to_unit_range(rng):
    x = rng.normal(5, 3, (60, 5))
    out = MinMaxScaler().fit_transform(ds.array(x, (20, 3))).collect()
    np.testing.assert_allclose(out.min(axis=0), 0.0, atol=1e-12)
    np.testing.assert_allclose(out.max(axis=0), 1.0, atol=1e-12)


def test_custom_range(rng):
    x = rng.standard_normal((30, 3))
    out = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(ds.array(x, (10, 3))).collect()
    np.testing.assert_allclose(out.min(axis=0), -1.0, atol=1e-12)
    np.testing.assert_allclose(out.max(axis=0), 1.0, atol=1e-12)


def test_matches_manual(rng):
    x = rng.standard_normal((40, 4)) * [1, 10, 0.1, 5]
    sc = MinMaxScaler().fit(ds.array(x, (15, 2)))
    np.testing.assert_allclose(sc.data_min_, x.min(axis=0))
    np.testing.assert_allclose(sc.data_max_, x.max(axis=0))
    out = sc.transform(ds.array(x, (15, 2))).collect()
    ref = (x - x.min(0)) / (x.max(0) - x.min(0))
    np.testing.assert_allclose(out, ref, rtol=1e-12)


def test_constant_feature_maps_to_lower_bound(rng):
    x = np.column_stack([rng.standard_normal(20), np.full(20, 7.0)])
    out = MinMaxScaler().fit_transform(ds.array(x, (10, 2))).collect()
    np.testing.assert_allclose(out[:, 1], 0.0)


def test_transform_new_data_can_exceed_range(rng):
    x = rng.uniform(0, 1, (30, 2))
    q = np.array([[2.0, -1.0]])
    sc = MinMaxScaler().fit(ds.array(x, (10, 2)))
    out = sc.transform(ds.array(q, (1, 2))).collect()
    assert out[0, 0] > 1.0 and out[0, 1] < 0.0


def test_under_threads(rng):
    x = rng.standard_normal((50, 4))
    with Runtime(executor="threads", max_workers=4):
        out = MinMaxScaler().fit_transform(ds.array(x, (10, 2))).collect()
    np.testing.assert_allclose(out.min(axis=0), 0.0, atol=1e-12)


def test_validation(rng):
    with pytest.raises(ValueError):
        MinMaxScaler(feature_range=(1.0, 0.0))
    with pytest.raises(TypeError):
        MinMaxScaler().fit(np.zeros((4, 2)))
    with pytest.raises(NotFittedError):
        MinMaxScaler().transform(ds.array(rng.standard_normal((4, 2)), (2, 2)))
