"""K-fold splitting and cross-validation tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.dsarray as ds
from repro.ml import KFold, KNeighborsClassifier, cross_validate
from tests.ml.conftest import as_ds, make_blobs


class TestKFold:
    def test_partition_properties(self):
        kf = KFold(n_splits=5, shuffle=False)
        seen = []
        for train, test in kf.split(53):
            assert len(np.intersect1d(train, test)) == 0
            assert len(train) + len(test) == 53
            seen.append(test)
        all_test = np.sort(np.concatenate(seen))
        np.testing.assert_array_equal(all_test, np.arange(53))

    def test_shuffle_changes_order_but_not_coverage(self):
        kf = KFold(n_splits=4, shuffle=True, random_state=1)
        tests = np.sort(np.concatenate([t for _, t in kf.split(40)]))
        np.testing.assert_array_equal(tests, np.arange(40))

    def test_deterministic_given_seed(self):
        a = list(KFold(5, shuffle=True, random_state=3).split(30))
        b = list(KFold(5, shuffle=True, random_state=3).split(30))
        for (tr_a, te_a), (tr_b, te_b) in zip(a, b):
            np.testing.assert_array_equal(te_a, te_b)

    def test_fold_sizes_balanced(self):
        sizes = [len(t) for _, t in KFold(5, shuffle=False).split(52)]
        assert sorted(sizes) == [10, 10, 10, 11, 11]

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(3))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_split_arrays(self, rng):
        x = rng.standard_normal((30, 4))
        y = rng.integers(0, 2, 30).astype(float)
        dx, dy = as_ds(x, y, row_block=10)
        folds = list(KFold(3, shuffle=False).split_arrays(dx, dy))
        assert len(folds) == 3
        x_tr, y_tr, x_te, y_te = folds[0]
        assert x_tr.shape == (20, 4)
        assert x_te.shape == (10, 4)
        assert y_tr.shape == (20, 1)
        # contents are actual rows of the original data
        collected = x_te.collect()
        for row in collected:
            assert any(np.allclose(row, orig) for orig in x)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(10, 200), st.integers(2, 8))
    def test_property_exact_cover(self, n, k):
        if n < k:
            return
        tests = [t for _, t in KFold(k, shuffle=True, random_state=0).split(n)]
        np.testing.assert_array_equal(np.sort(np.concatenate(tests)), np.arange(n))
        assert max(len(t) for t in tests) - min(len(t) for t in tests) <= 1


class TestCrossValidate:
    def test_knn_cv(self):
        x, y = make_blobs(n=150, d=4, sep=3.0, seed=2)
        dx, dy = as_ds(x, y)
        res = cross_validate(lambda: KNeighborsClassifier(3), dx, dy, n_splits=5)
        assert len(res.fold_accuracies) == 5
        assert res.mean_accuracy > 0.9
        assert res.mean_confusion.shape == (2, 2)
        assert res.mean_confusion.sum() == pytest.approx(1.0)

    def test_cv_confusion_matrices_normalised(self):
        x, y = make_blobs(n=100, d=3, sep=2.0, seed=4)
        dx, dy = as_ds(x, y)
        res = cross_validate(lambda: KNeighborsClassifier(5), dx, dy, n_splits=4)
        for cm in res.confusion_matrices:
            assert cm.sum() == pytest.approx(1.0)

    def test_cv_with_csvm(self):
        from repro.ml import CascadeSVM

        x, y = make_blobs(n=120, d=3, sep=3.0, seed=5)
        dx, dy = as_ds(x, y)
        res = cross_validate(lambda: CascadeSVM(max_iter=2), dx, dy, n_splits=3)
        assert res.mean_accuracy > 0.85

    def test_fresh_estimator_per_fold(self):
        created = []

        class Recorder(KNeighborsClassifier):
            def __init__(self):
                super().__init__(n_neighbors=1)
                created.append(self)

        x, y = make_blobs(n=60, d=3)
        dx, dy = as_ds(x, y)
        cross_validate(Recorder, dx, dy, n_splits=3)
        assert len(created) == 3
