"""Decision-tree tests: split search, growth controls, prediction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import DecisionTreeClassifier
from repro.ml.base import NotFittedError
from repro.ml.trees.tree import (
    Leaf,
    Split,
    _gini,
    best_split,
    build_tree,
    tree_depth,
    tree_n_leaves,
    tree_predict_proba,
)
from tests.ml.conftest import make_blobs


class TestGini:
    def test_pure(self):
        assert _gini(np.array([5.0, 0.0])) == 0.0

    def test_uniform_binary(self):
        assert _gini(np.array([5.0, 5.0])) == pytest.approx(0.5)

    def test_empty(self):
        assert _gini(np.array([0.0, 0.0])) == 0.0


class TestBestSplit:
    def test_perfect_split(self):
        x = np.array([[0.0], [1.0], [10.0], [11.0]])
        codes = np.array([0, 0, 1, 1])
        found = best_split(x, codes, 2, np.array([0]))
        assert found is not None
        f, thr, gain = found
        assert f == 0
        assert 1.0 < thr < 10.0
        assert gain == pytest.approx(0.5)

    def test_no_split_on_constant_feature(self):
        x = np.ones((6, 1))
        codes = np.array([0, 1, 0, 1, 0, 1])
        assert best_split(x, codes, 2, np.array([0])) is None

    def test_min_samples_leaf_respected(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        codes = np.array([0, 1, 1, 1])
        found = best_split(x, codes, 2, np.array([0]), min_samples_leaf=2)
        if found is not None:
            f, thr, _ = found
            left = (x[:, 0] <= thr).sum()
            assert left >= 2 and (4 - left) >= 2

    def test_picks_informative_feature(self, rng):
        n = 100
        informative = np.concatenate([np.zeros(n // 2), np.ones(n // 2)])
        noise = rng.standard_normal(n)
        x = np.column_stack([noise, informative])
        codes = informative.astype(int)
        f, thr, gain = best_split(x, codes, 2, np.array([0, 1]))
        assert f == 1


class TestDecisionTree:
    def test_fits_blobs(self):
        x, y = make_blobs(n=200, sep=3.0)
        clf = DecisionTreeClassifier(random_state=0).fit(x, y)
        assert clf.score(x, y) == 1.0  # unrestricted tree memorises

    def test_max_depth_limits(self):
        x, y = make_blobs(n=200, sep=1.0, seed=4)
        clf = DecisionTreeClassifier(max_depth=2, random_state=0).fit(x, y)
        assert clf.depth <= 2

    def test_max_depth_zero_like(self):
        x, y = make_blobs(n=50)
        clf = DecisionTreeClassifier(max_depth=0).fit(x, y)
        assert clf.depth == 0
        assert clf.n_leaves == 1

    def test_min_samples_split(self):
        x, y = make_blobs(n=100, sep=0.5, seed=2)
        big = DecisionTreeClassifier(min_samples_split=50, random_state=0).fit(x, y)
        small = DecisionTreeClassifier(min_samples_split=2, random_state=0).fit(x, y)
        assert big.n_leaves <= small.n_leaves

    def test_predict_proba_sums_to_one(self):
        x, y = make_blobs(n=150, sep=2.0)
        clf = DecisionTreeClassifier(max_depth=3, random_state=0).fit(x, y)
        probs = clf.predict_proba(x)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_max_features_sqrt(self):
        x, y = make_blobs(n=100, d=9, sep=3.0)
        clf = DecisionTreeClassifier(max_features="sqrt", random_state=0).fit(x, y)
        assert clf.score(x, y) > 0.9

    def test_max_features_int_and_log2(self):
        x, y = make_blobs(n=80, d=8, sep=3.0)
        assert DecisionTreeClassifier(max_features=2, random_state=0).fit(x, y)
        assert DecisionTreeClassifier(max_features="log2", random_state=0).fit(x, y)

    def test_max_features_invalid(self):
        x, y = make_blobs(n=20)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=0).fit(x, y)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features="cube").fit(x, y)

    def test_empty_and_mismatch(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((3, 2)), np.zeros(2))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((2, 2)))

    def test_string_labels(self):
        x, y = make_blobs(n=60, sep=3.0, labels=("N", "AF"))
        clf = DecisionTreeClassifier(random_state=0).fit(x, y)
        assert set(clf.predict(x)) <= {"N", "AF"}

    def test_deterministic_given_seed(self):
        x, y = make_blobs(n=100, d=6, sep=1.0, seed=9)
        a = DecisionTreeClassifier(max_features="sqrt", random_state=42).fit(x, y)
        b = DecisionTreeClassifier(max_features="sqrt", random_state=42).fit(x, y)
        np.testing.assert_array_equal(a.predict(x), b.predict(x))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 6))
    def test_property_depth_bound(self, seed, depth):
        x, y = make_blobs(n=60, d=3, sep=1.0, seed=seed)
        clf = DecisionTreeClassifier(max_depth=depth, random_state=0).fit(x, y)
        assert clf.depth <= depth
        assert clf.n_leaves <= 2**depth


class TestTreeHelpers:
    def test_structure_utilities(self):
        leaf = Leaf(probs=np.array([1.0, 0.0]))
        tree = Split(feature=0, threshold=0.5, left=leaf, right=Leaf(probs=np.array([0.0, 1.0])))
        assert tree_depth(tree) == 1
        assert tree_n_leaves(tree) == 2
        out = tree_predict_proba(tree, np.array([[0.0], [1.0]]), 2)
        np.testing.assert_array_equal(out, [[1, 0], [0, 1]])

    def test_build_tree_pure_input(self):
        x = np.random.default_rng(0).standard_normal((10, 2))
        codes = np.zeros(10, dtype=int)
        node = build_tree(x, codes, 2, None, 2, 1, None, np.random.default_rng(0))
        assert node.is_leaf
        np.testing.assert_array_equal(node.probs, [1.0, 0.0])
