"""StandardScaler and PCA: numerical correctness vs. NumPy references,
map-reduce structure, and variance-preservation semantics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.dsarray as ds
from repro.ml import PCA, StandardScaler
from repro.ml.base import NotFittedError
from repro.runtime import Runtime


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        x = rng.normal(5.0, 3.0, (100, 7))
        dx = ds.array(x, (30, 4))
        out = StandardScaler().fit_transform(dx).collect()
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, rtol=1e-10)

    def test_matches_manual(self, rng):
        x = rng.standard_normal((40, 3)) * [1.0, 10.0, 0.1] + [0, 5, -3]
        dx = ds.array(x, (15, 2))
        sc = StandardScaler().fit(dx)
        np.testing.assert_allclose(sc.mean_, x.mean(axis=0), rtol=1e-10)
        np.testing.assert_allclose(sc.std_, x.std(axis=0), rtol=1e-8)
        out = sc.transform(dx).collect()
        np.testing.assert_allclose(out, (x - x.mean(0)) / x.std(0), rtol=1e-8)

    def test_constant_feature_passthrough(self, rng):
        x = np.column_stack([rng.standard_normal(20), np.full(20, 3.0)])
        dx = ds.array(x, (10, 2))
        out = StandardScaler().fit_transform(dx).collect()
        np.testing.assert_allclose(out[:, 1], 0.0)  # centered, not divided

    def test_transform_new_data(self, rng):
        x = rng.standard_normal((50, 4)) + 10
        q = rng.standard_normal((10, 4)) + 10
        sc = StandardScaler().fit(ds.array(x, (20, 4)))
        out = sc.transform(ds.array(q, (5, 4))).collect()
        np.testing.assert_allclose(out, (q - x.mean(0)) / x.std(0), rtol=1e-8)

    def test_under_threads(self, rng):
        x = rng.standard_normal((80, 5)) * 4 + 2
        with Runtime(executor="threads", max_workers=4):
            out = StandardScaler().fit_transform(ds.array(x, (16, 3))).collect()
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)

    def test_not_fitted(self, rng):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(ds.array(rng.standard_normal((4, 2)), (2, 2)))

    def test_type_validation(self):
        with pytest.raises(TypeError):
            StandardScaler().fit(np.zeros((4, 2)))

    def test_map_reduce_graph_shape(self, rng):
        """One partial-stats task per stripe + one reduce, plus one
        scale task per block (paper: parallelism based on row blocks)."""
        x = rng.standard_normal((100, 8))
        with Runtime(executor="sequential") as rt:
            dx = ds.array(x, (25, 4))  # 4x2 blocks
            StandardScaler().fit_transform(dx)
            counts = rt.graph.count_by_name()
        assert counts["_partial_stats"] == 4
        assert counts["_reduce_stats"] == 1
        assert counts["_scale_block"] == 8


class TestPCA:
    def test_matches_eigh_reference(self, rng):
        x = rng.standard_normal((60, 6)) @ rng.standard_normal((6, 6))
        dx = ds.array(x, (20, 3))
        pca = PCA().fit(dx)
        xc = x - x.mean(axis=0)
        cov = xc.T @ xc / (len(x) - 1)
        vals = np.sort(np.linalg.eigvalsh(cov))[::-1]
        np.testing.assert_allclose(pca.explained_variance_, vals, rtol=1e-8)

    def test_components_orthonormal(self, rng):
        x = rng.standard_normal((50, 5))
        pca = PCA().fit(ds.array(x, (17, 3)))
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(5), atol=1e-8)

    def test_transform_reduces_dimension(self, rng):
        x = rng.standard_normal((40, 8))
        pca = PCA(n_components=3).fit(ds.array(x, (10, 4)))
        z = pca.transform(ds.array(x, (10, 4)))
        assert z.shape == (40, 3)

    def test_variance_fraction_selection(self, rng):
        """The paper keeps 95% of variance; verify fractional selection."""
        # construct data with strongly decaying spectrum
        basis = np.linalg.qr(rng.standard_normal((10, 10)))[0]
        scales = np.array([10, 5, 2, 1, 0.5, 0.1, 0.05, 0.01, 0.005, 0.001])
        x = rng.standard_normal((200, 10)) * scales @ basis
        pca = PCA(n_components=0.95).fit(ds.array(x, (50, 5)))
        assert pca.n_components_ < 10
        assert pca.explained_variance_ratio_.sum() >= 0.95

    def test_full_reconstruction(self, rng):
        x = rng.standard_normal((30, 4))
        dx = ds.array(x, (10, 2))
        pca = PCA().fit(dx)
        z = pca.transform(dx)
        back = pca.inverse_transform(z).collect()
        np.testing.assert_allclose(back, x, rtol=1e-8, atol=1e-8)

    def test_lossy_reconstruction_error_decreases_with_k(self, rng):
        x = rng.standard_normal((60, 6)) @ rng.standard_normal((6, 6))
        dx = ds.array(x, (20, 3))
        errs = []
        for k in (1, 3, 6):
            pca = PCA(n_components=k).fit(dx)
            back = pca.inverse_transform(pca.transform(dx)).collect()
            errs.append(np.linalg.norm(back - x))
        assert errs[0] > errs[1] > errs[2] - 1e-9

    def test_single_eigh_task(self, rng):
        """Paper: the covariance matrix is processed by a single task."""
        x = rng.standard_normal((60, 6))
        with Runtime(executor="sequential") as rt:
            PCA().fit(ds.array(x, (15, 3)))
            counts = rt.graph.count_by_name()
        assert counts["_eigendecomposition"] == 1
        assert counts["_partial_sum"] == 4
        assert counts["_partial_cov"] == 4

    def test_invalid_n_components(self):
        with pytest.raises(ValueError):
            PCA(n_components=0)
        with pytest.raises(ValueError):
            PCA(n_components=1.5)
        with pytest.raises(ValueError):
            PCA(n_components=0.0)

    def test_feature_mismatch_on_transform(self, rng):
        pca = PCA().fit(ds.array(rng.standard_normal((20, 4)), (10, 2)))
        with pytest.raises(ValueError):
            pca.transform(ds.array(rng.standard_normal((5, 3)), (5, 3)))

    def test_too_few_samples(self, rng):
        with pytest.raises(ValueError):
            PCA().fit(ds.array(rng.standard_normal((1, 4)), (1, 2)))

    def test_not_fitted(self, rng):
        with pytest.raises(NotFittedError):
            PCA().transform(ds.array(rng.standard_normal((4, 2)), (2, 2)))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_variance_ratio_sums_to_one(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((30, 5))
        pca = PCA().fit(ds.array(x, (10, 3)))
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)
        assert (np.diff(pca.explained_variance_) <= 1e-9).all()  # sorted desc
