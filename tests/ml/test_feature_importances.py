"""Random-forest feature importances."""

from __future__ import annotations

import numpy as np
import pytest

import repro.dsarray as ds
from repro.ml import RandomForestClassifier
from repro.ml.base import NotFittedError


def test_importances_find_informative_feature(rng):
    n = 300
    informative = np.concatenate([np.zeros(n // 2), np.ones(n // 2)])
    x = np.column_stack([rng.standard_normal(n), informative, rng.standard_normal(n)])
    y = informative.astype(float)
    order = rng.permutation(n)
    dx = ds.array(x[order], (60, 3))
    dy = ds.array(y[order].reshape(-1, 1), (60, 1))
    rf = RandomForestClassifier(n_estimators=15, max_features=None, random_state=0).fit(dx, dy)
    imps = rf.feature_importances(3)
    assert imps.shape == (3,)
    assert imps.sum() == pytest.approx(1.0)
    assert np.argmax(imps) == 1


def test_importances_not_fitted():
    with pytest.raises(NotFittedError):
        RandomForestClassifier().feature_importances(3)


def test_importances_nonnegative(rng):
    x = rng.standard_normal((100, 5))
    y = (x[:, 0] > 0).astype(float)
    dx = ds.array(x, (25, 5))
    dy = ds.array(y.reshape(-1, 1), (25, 1))
    rf = RandomForestClassifier(n_estimators=8, random_state=1).fit(dx, dy)
    imps = rf.feature_importances(5)
    assert (imps >= 0).all()
