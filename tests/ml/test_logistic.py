"""Distributed logistic regression."""

from __future__ import annotations

import numpy as np
import pytest

import repro.dsarray as ds
from repro.ml import LogisticRegression
from repro.ml.base import NotFittedError
from repro.ml.linear.logistic import _sigmoid
from repro.runtime import Runtime
from tests.ml.conftest import as_ds, make_blobs


def test_sigmoid_stable_extremes():
    z = np.array([-800.0, 0.0, 800.0])
    out = _sigmoid(z)
    assert out[0] == pytest.approx(0.0)
    assert out[1] == pytest.approx(0.5)
    assert out[2] == pytest.approx(1.0)
    assert np.isfinite(out).all()


def test_fits_separable_blobs(ds_blobs):
    dx, dy = ds_blobs
    clf = LogisticRegression(lr=0.5, max_iter=300).fit(dx, dy)
    assert clf.score(dx, dy) > 0.9
    assert clf.coef_.shape == (dx.shape[1],)


def test_loss_decreases():
    x, y = make_blobs(n=120, d=4, sep=1.5, seed=2)
    dx, dy = as_ds(x, y)
    short = LogisticRegression(lr=0.3, max_iter=3, tol=0.0).fit(dx, dy)
    long = LogisticRegression(lr=0.3, max_iter=100, tol=0.0).fit(dx, dy)
    assert long.loss_ <= short.loss_


def test_under_threads_runtime():
    x, y = make_blobs(n=200, d=5, sep=2.0, seed=3)
    with Runtime(executor="threads", max_workers=4):
        dx, dy = as_ds(x, y)
        clf = LogisticRegression(max_iter=150).fit(dx, dy)
        acc = clf.score(dx, dy)
    assert acc > 0.9


def test_predict_proba_bounds(ds_blobs):
    dx, dy = ds_blobs
    clf = LogisticRegression(max_iter=100).fit(dx, dy)
    p = clf.predict_proba(dx)
    assert ((p >= 0) & (p <= 1)).all()


def test_regularisation_shrinks_weights():
    x, y = make_blobs(n=150, d=4, sep=3.0, seed=4)
    dx, dy = as_ds(x, y)
    free = LogisticRegression(max_iter=200, reg=0.0).fit(dx, dy)
    reg = LogisticRegression(max_iter=200, reg=1.0).fit(dx, dy)
    assert np.linalg.norm(reg.coef_) < np.linalg.norm(free.coef_)


def test_map_reduce_graph_shape():
    x, y = make_blobs(n=120, d=3, sep=2.0, seed=5)
    with Runtime(executor="sequential") as rt:
        dx, dy = as_ds(x, y, row_block=30)  # 4 stripes
        clf = LogisticRegression(max_iter=5, tol=0.0).fit(dx, dy)
        counts = rt.graph.count_by_name()
    assert counts["_partial_gradient"] == clf.n_iter_ * 4
    assert counts["_reduce_gradient"] == clf.n_iter_


def test_string_labels():
    x, y = make_blobs(n=80, sep=3.0, labels=("N", "AF"))
    dx, dy = as_ds(x, y.astype(object))
    clf = LogisticRegression(max_iter=100).fit(dx, dy)
    assert set(clf.predict(dx)) <= {"N", "AF"}


def test_validation():
    with pytest.raises(ValueError):
        LogisticRegression(lr=0)
    with pytest.raises(ValueError):
        LogisticRegression(max_iter=0)
    with pytest.raises(ValueError):
        LogisticRegression(reg=-1)
    x, y = make_blobs(n=30)
    dx, _ = as_ds(x, y)
    with pytest.raises(NotFittedError):
        LogisticRegression().predict(dx)
    # three classes rejected
    y3 = np.array([0.0, 1.0, 2.0] * 10)
    dx3, dy3 = as_ds(x, y3)
    with pytest.raises(ValueError):
        LogisticRegression().fit(dx3, dy3)
