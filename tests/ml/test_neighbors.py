"""Nearest-neighbour search and KNN classifier tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.dsarray as ds
from repro.ml import KNeighborsClassifier, NearestNeighbors
from repro.ml.base import NotFittedError
from repro.ml.neighbors.knn import _weights_for
from repro.runtime import Runtime
from tests.ml.conftest import as_ds, make_blobs


def brute_force_knn(x, q, k):
    d = np.sqrt(((q[:, None, :] - x[None, :, :]) ** 2).sum(-1))
    idx = np.argsort(d, axis=1)[:, :k]
    return np.take_along_axis(d, idx, axis=1), idx


class TestNearestNeighbors:
    def test_matches_brute_force(self, rng):
        x = rng.standard_normal((57, 4))
        q = rng.standard_normal((13, 4))
        dx = ds.array(x, (10, 4))
        dq = ds.array(q, (5, 4))
        nn = NearestNeighbors(n_neighbors=5).fit(dx)
        dists, inds = nn.kneighbors(dq)
        ref_d, ref_i = brute_force_knn(x, q, 5)
        np.testing.assert_allclose(dists, ref_d, rtol=1e-8, atol=1e-8)
        np.testing.assert_array_equal(inds, ref_i)

    def test_matches_brute_force_threaded(self, rng):
        x = rng.standard_normal((80, 3))
        q = rng.standard_normal((20, 3))
        with Runtime(executor="threads", max_workers=4):
            nn = NearestNeighbors(n_neighbors=3).fit(ds.array(x, (15, 3)))
            dists, inds = nn.kneighbors(ds.array(q, (7, 3)))
        ref_d, ref_i = brute_force_knn(x, q, 3)
        np.testing.assert_allclose(dists, ref_d, rtol=1e-8, atol=1e-8)
        np.testing.assert_array_equal(inds, ref_i)

    def test_self_query_returns_self_first(self, rng):
        x = rng.standard_normal((30, 3))
        dx = ds.array(x, (8, 3))
        nn = NearestNeighbors(n_neighbors=1).fit(dx)
        dists, inds = nn.kneighbors(dx)
        np.testing.assert_array_equal(inds.ravel(), np.arange(30))
        np.testing.assert_allclose(dists, 0.0, atol=1e-6)

    def test_k_exceeds_samples(self, rng):
        x = rng.standard_normal((5, 2))
        nn = NearestNeighbors(n_neighbors=10).fit(ds.array(x, (3, 2)))
        with pytest.raises(ValueError):
            nn.kneighbors(ds.array(x, (3, 2)))

    def test_kneighbors_override_k(self, rng):
        x = rng.standard_normal((20, 2))
        nn = NearestNeighbors(n_neighbors=2).fit(ds.array(x, (6, 2)))
        d, i = nn.kneighbors(ds.array(x[:4], (2, 2)), n_neighbors=7)
        assert d.shape == (4, 7)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            NearestNeighbors(n_neighbors=0)

    def test_not_fitted(self, rng):
        nn = NearestNeighbors()
        with pytest.raises(NotFittedError):
            nn.kneighbors(ds.array(rng.standard_normal((4, 2)), (2, 2)))

    def test_type_validation(self):
        with pytest.raises(TypeError):
            NearestNeighbors().fit(np.zeros((4, 2)))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 6))
    def test_property_sorted_distances(self, seed, k):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((25, 3))
        nn = NearestNeighbors(n_neighbors=k).fit(ds.array(x, (7, 3)))
        d, i = nn.kneighbors(ds.array(x[:6], (3, 3)))
        assert (np.diff(d, axis=1) >= -1e-12).all()
        assert ((0 <= i) & (i < 25)).all()


class TestWeights:
    def test_uniform(self):
        w = _weights_for(np.array([[1.0, 2.0]]), "uniform")
        np.testing.assert_array_equal(w, [[1.0, 1.0]])

    def test_distance(self):
        w = _weights_for(np.array([[1.0, 2.0]]), "distance")
        np.testing.assert_allclose(w, [[1.0, 0.5]])

    def test_distance_with_exact_match(self):
        w = _weights_for(np.array([[0.0, 2.0]]), "distance")
        np.testing.assert_allclose(w, [[1.0, 0.0]])

    def test_callable(self):
        w = _weights_for(np.array([[1.0, 4.0]]), lambda d: d * 2)
        np.testing.assert_allclose(w, [[2.0, 8.0]])

    def test_callable_bad_shape(self):
        with pytest.raises(ValueError):
            _weights_for(np.array([[1.0, 4.0]]), lambda d: d.ravel())

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            _weights_for(np.array([[1.0]]), "quadratic")


class TestKNeighborsClassifier:
    def test_blobs_accuracy(self, ds_blobs):
        dx, dy = ds_blobs
        clf = KNeighborsClassifier(n_neighbors=5).fit(dx, dy)
        assert clf.score(dx, dy) > 0.9

    def test_string_labels(self):
        x, y = make_blobs(n=100, sep=3.0, labels=("N", "AF"))
        dx, dy = as_ds(x, y.astype(object))
        clf = KNeighborsClassifier(3).fit(dx, dy)
        preds = clf.predict(dx)
        assert set(preds) <= {"N", "AF"}

    def test_distance_weights_beat_k1_degeneracy(self, ds_blobs):
        dx, dy = ds_blobs
        clf = KNeighborsClassifier(n_neighbors=7, weights="distance").fit(dx, dy)
        # with distance weights, self-queries are exact matches -> 100%
        assert clf.score(dx, dy) == 1.0

    def test_k1_memorises_training_set(self, ds_blobs):
        dx, dy = ds_blobs
        clf = KNeighborsClassifier(n_neighbors=1).fit(dx, dy)
        assert clf.score(dx, dy) == 1.0

    def test_not_fitted(self, ds_blobs):
        dx, _ = ds_blobs
        with pytest.raises(NotFittedError):
            KNeighborsClassifier().predict(dx)

    def test_generalisation(self):
        x, y = make_blobs(n=300, d=4, sep=2.5, seed=3)
        dx_tr, dy_tr = as_ds(x[:200], y[:200])
        dx_te, dy_te = as_ds(x[200:], y[200:])
        clf = KNeighborsClassifier(5).fit(dx_tr, dy_tr)
        assert clf.score(dx_te, dy_te) > 0.85

    def test_graph_shape(self):
        """fit creates a task per fitted stripe; predict a local task per
        (query stripe, fitted stripe) plus one merge per query stripe
        (paper Fig. 6)."""
        x, y = make_blobs(n=120, d=3)
        with Runtime(executor="sequential") as rt:
            dx, dy = as_ds(x, y, row_block=30)  # 4 stripes
            clf = KNeighborsClassifier(3).fit(dx, dy)
            clf.predict(dx)
            counts = rt.graph.count_by_name()
        assert counts["_fit_stripe"] == 4
        assert counts["_local_kneighbors"] == 16
        assert counts["_merge_kneighbors"] == 4
