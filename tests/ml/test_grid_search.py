"""GridSearchCV over ds-arrays."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import GridSearchCV, KNeighborsClassifier
from repro.ml.base import NotFittedError
from repro.ml.model_selection import parameter_grid
from repro.runtime import Runtime
from tests.ml.conftest import as_ds, make_blobs


def test_parameter_grid_expansion():
    grid = parameter_grid({"a": [1, 2], "b": ["x"]})
    assert grid == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]


def test_parameter_grid_empty():
    assert parameter_grid({}) == [{}]


def test_parameter_grid_validation():
    with pytest.raises(ValueError):
        parameter_grid({"a": []})
    with pytest.raises(ValueError):
        parameter_grid({"a": 5})


def test_grid_search_finds_reasonable_k():
    x, y = make_blobs(n=150, d=4, sep=2.0, seed=2)
    dx, dy = as_ds(x, y)
    gs = GridSearchCV(
        lambda **p: KNeighborsClassifier(**p),
        {"n_neighbors": [1, 5, 25]},
        n_splits=3,
    ).fit(dx, dy)
    assert gs.best_params_["n_neighbors"] in (1, 5, 25)
    assert gs.best_score_ > 0.8
    assert len(gs.results_) == 3
    # refit model predicts
    preds = gs.predict(dx)
    assert len(preds) == 150


def test_grid_search_under_threads():
    x, y = make_blobs(n=120, d=3, sep=2.5, seed=4)
    with Runtime(executor="threads", max_workers=4):
        dx, dy = as_ds(x, y)
        gs = GridSearchCV(
            lambda **p: KNeighborsClassifier(**p),
            {"n_neighbors": [1, 3], "weights": ["uniform", "distance"]},
            n_splits=3,
        ).fit(dx, dy)
    assert len(gs.results_) == 4


def test_grid_search_not_fitted():
    gs = GridSearchCV(lambda **p: KNeighborsClassifier(**p), {"n_neighbors": [1]})
    x, y = make_blobs(n=30)
    dx, _ = as_ds(x, y)
    with pytest.raises(NotFittedError):
        gs.predict(dx)


def test_grid_search_best_is_max():
    x, y = make_blobs(n=100, d=3, sep=2.0, seed=6)
    dx, dy = as_ds(x, y)
    gs = GridSearchCV(
        lambda **p: KNeighborsClassifier(**p),
        {"n_neighbors": [1, 3, 7]},
        n_splits=3,
    ).fit(dx, dy)
    assert gs.best_score_ == pytest.approx(
        max(r.mean_accuracy for r in gs.results_)
    )
