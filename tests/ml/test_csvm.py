"""CascadeSVM: correctness, cascade structure, graph shape (paper Fig. 4)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.dsarray as ds
from repro.ml import CascadeSVM
from repro.ml.base import NotFittedError
from repro.runtime import Runtime
from tests.ml.conftest import as_ds, make_blobs


def test_fit_predict_eager(ds_blobs):
    dx, dy = ds_blobs
    clf = CascadeSVM(max_iter=3).fit(dx, dy)
    acc = clf.score(dx, dy)
    assert acc > 0.9


def test_predict_returns_ds_array(ds_blobs):
    dx, dy = ds_blobs
    clf = CascadeSVM(max_iter=2).fit(dx, dy)
    pred = clf.predict(dx)
    assert isinstance(pred, ds.Array)
    assert pred.shape == (dx.shape[0], 1)
    labels = pred.collect().ravel()
    assert set(np.unique(labels)) <= {0.0, 1.0}


def test_accuracy_under_threads():
    x, y = make_blobs(n=240, d=4, sep=3.0, seed=5)
    with Runtime(executor="threads", max_workers=4):
        dx, dy = as_ds(x, y, row_block=40)
        clf = CascadeSVM(max_iter=3).fit(dx, dy)
        acc = clf.score(dx, dy)
    assert acc > 0.9


def test_convergence_flag(ds_blobs):
    dx, dy = ds_blobs
    clf = CascadeSVM(max_iter=10, tol=1e-2).fit(dx, dy)
    assert clf.converged_
    assert clf.n_iter_ <= 10


def test_no_convergence_check_runs_max_iter(ds_blobs):
    dx, dy = ds_blobs
    clf = CascadeSVM(max_iter=2, check_convergence=False).fit(dx, dy)
    assert clf.n_iter_ == 2
    assert clf.score(dx, dy) > 0.9


def test_cascade_arity_param(ds_blobs):
    dx, dy = ds_blobs
    clf = CascadeSVM(cascade_arity=4, max_iter=2).fit(dx, dy)
    assert clf.score(dx, dy) > 0.9


def test_invalid_params():
    with pytest.raises(ValueError):
        CascadeSVM(cascade_arity=1)
    with pytest.raises(ValueError):
        CascadeSVM(max_iter=0)


def test_not_fitted(ds_blobs):
    dx, dy = ds_blobs
    with pytest.raises(NotFittedError):
        CascadeSVM().predict(dx)
    with pytest.raises(NotFittedError):
        CascadeSVM().score(dx, dy)


def test_validation_mismatched_blocks():
    x, y = make_blobs(n=100)
    dx = ds.array(x, (40, 3))
    dy = ds.array(y.reshape(-1, 1), (25, 1))
    with pytest.raises(ValueError):
        CascadeSVM().fit(dx, dy)


def test_graph_structure_matches_cascade():
    """First layer has one task per stripe; reduction tree follows
    (paper Fig. 4): with 8 stripes and arity 2 -> 8 + 4 + 2 + 1 merges
    minus the final one being _final_model."""
    x, y = make_blobs(n=320, d=3, sep=3.0)
    with Runtime(executor="sequential") as rt:
        dx, dy = as_ds(x, y, row_block=40)
        CascadeSVM(max_iter=1, check_convergence=False).fit(dx, dy)
        counts = rt.graph.count_by_name()
    assert counts["_train_partition"] == 8
    assert counts["_merge_train"] == 4 + 2 + 1
    assert counts["_final_model"] == 1


def test_graph_depth_grows_with_lower_arity():
    x, y = make_blobs(n=320, d=3, sep=3.0)

    def depth_with_arity(arity):
        with Runtime(executor="sequential") as rt:
            dx, dy = as_ds(x, y, row_block=40)
            CascadeSVM(cascade_arity=arity, max_iter=1, check_convergence=False).fit(dx, dy)
            return rt.graph.depth()

    assert depth_with_arity(2) > depth_with_arity(8)


def test_multiple_iterations_feed_back_svs():
    """More iterations must not hurt accuracy on separable data."""
    x, y = make_blobs(n=160, d=3, sep=3.0, seed=11)
    dx, dy = as_ds(x, y)
    acc1 = CascadeSVM(max_iter=1, check_convergence=False).fit(dx, dy).score(dx, dy)
    acc3 = CascadeSVM(max_iter=3, check_convergence=False).fit(dx, dy).score(dx, dy)
    assert acc3 >= acc1 - 0.05


def test_decision_function_in_memory(ds_blobs, blobs):
    dx, dy = ds_blobs
    x, y = blobs
    clf = CascadeSVM(max_iter=2).fit(dx, dy)
    scores = clf.decision_function(x[:10])
    assert scores.shape == (10,)


def test_single_stripe_degenerates_to_svc():
    x, y = make_blobs(n=60, d=3, sep=3.0)
    dx = ds.array(x, (60, 3))
    dy = ds.array(y.reshape(-1, 1), (60, 1))
    clf = CascadeSVM(max_iter=1).fit(dx, dy)
    assert clf.score(dx, dy) > 0.9
