"""SMO solver and SVC estimator tests, including KKT invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.svm import SVC, smo_solve
from repro.ml.svm.kernels import (
    linear_kernel,
    make_kernel,
    poly_kernel,
    rbf_kernel,
    resolve_gamma,
)
from tests.ml.conftest import make_blobs


class TestKernels:
    def test_linear(self, rng):
        x = rng.standard_normal((5, 3))
        np.testing.assert_allclose(linear_kernel(x, x), x @ x.T)

    def test_rbf_diagonal_is_one(self, rng):
        x = rng.standard_normal((6, 4))
        K = rbf_kernel(x, x, gamma=0.5)
        np.testing.assert_allclose(np.diag(K), 1.0)
        assert (K > 0).all() and (K <= 1).all()

    def test_rbf_matches_naive(self, rng):
        x = rng.standard_normal((4, 3))
        z = rng.standard_normal((5, 3))
        K = rbf_kernel(x, z, gamma=0.7)
        naive = np.exp(
            -0.7 * np.array([[np.sum((a - b) ** 2) for b in z] for a in x])
        )
        np.testing.assert_allclose(K, naive, rtol=1e-10)

    def test_poly(self, rng):
        x = rng.standard_normal((3, 2))
        K = poly_kernel(x, x, gamma=1.0, degree=2, coef0=1.0)
        np.testing.assert_allclose(K, (x @ x.T + 1.0) ** 2)

    def test_resolve_gamma(self, rng):
        x = rng.standard_normal((10, 4))
        assert resolve_gamma("auto", x) == pytest.approx(0.25)
        assert resolve_gamma(0.3, x) == 0.3
        assert resolve_gamma("scale", x) == pytest.approx(1.0 / (4 * x.var()))
        with pytest.raises(ValueError):
            resolve_gamma(-1.0, x)
        with pytest.raises(ValueError):
            resolve_gamma("bad", x)

    def test_make_kernel_unknown(self):
        with pytest.raises(ValueError):
            make_kernel("sigmoid", 1.0)


class TestSMO:
    def test_separable_2d(self):
        """Hand-crafted separable problem with a known margin."""
        x = np.array([[0.0, 0.0], [0.0, 1.0], [2.0, 0.0], [2.0, 1.0]])
        y = np.array([-1.0, -1.0, 1.0, 1.0])
        K = x @ x.T
        res = smo_solve(K, y, C=10.0)
        assert res.converged
        # equality constraint holds
        assert float(y @ res.alpha) == pytest.approx(0.0, abs=1e-9)
        # decision separates the data
        coef = res.alpha * y
        scores = K @ coef + res.b
        assert (np.sign(scores) == y).all()

    def test_box_constraint_respected(self, rng):
        x, y01 = make_blobs(n=80, d=3, sep=0.5, seed=3)
        y = np.where(y01 > 0, 1.0, -1.0)
        K = rbf_kernel(x, x, 0.3)
        res = smo_solve(K, y, C=0.7)
        assert (res.alpha >= -1e-9).all()
        assert (res.alpha <= 0.7 + 1e-9).all()

    def test_objective_negative_or_zero(self, rng):
        x, y01 = make_blobs(n=60, d=3, seed=1)
        y = np.where(y01 > 0, 1.0, -1.0)
        res = smo_solve(x @ x.T, y, C=1.0)
        assert res.objective <= 1e-9

    def test_input_validation(self):
        with pytest.raises(ValueError):
            smo_solve(np.eye(3), np.array([1.0, -1.0]), C=1.0)
        with pytest.raises(ValueError):
            smo_solve(np.eye(2), np.array([1.0, 2.0]), C=1.0)
        with pytest.raises(ValueError):
            smo_solve(np.eye(2), np.array([1.0, -1.0]), C=0.0)

    def test_max_iter_cap(self):
        x, y01 = make_blobs(n=100, d=4, sep=0.1, seed=2)
        y = np.where(y01 > 0, 1.0, -1.0)
        res = smo_solve(rbf_kernel(x, x, 0.25), y, C=1.0, max_iter=3)
        assert res.n_iter <= 3

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_kkt_complementarity(self, seed):
        """Property: at the solution, free vectors satisfy |y f(x)-1|
        small, and the equality constraint holds."""
        x, y01 = make_blobs(n=50, d=3, sep=2.5, seed=seed)
        y = np.where(y01 > 0, 1.0, -1.0)
        K = rbf_kernel(x, x, 0.5)
        C = 1.0
        res = smo_solve(K, y, C=C, tol=1e-4)
        assert abs(float(y @ res.alpha)) < 1e-8
        f = K @ (res.alpha * y) + res.b
        free = (res.alpha > 1e-6) & (res.alpha < C - 1e-6)
        if free.any():
            assert np.abs(y[free] * f[free] - 1.0).max() < 5e-2


class TestSVC:
    def test_separable_blobs(self):
        x, y = make_blobs(n=120, d=4, sep=4.0)
        clf = SVC(kernel="rbf", gamma="auto").fit(x, y)
        assert clf.score(x, y) > 0.95

    def test_linear_kernel(self):
        x, y = make_blobs(n=120, d=4, sep=4.0)
        clf = SVC(kernel="linear").fit(x, y)
        assert clf.score(x, y) > 0.95

    def test_arbitrary_label_values(self):
        x, y = make_blobs(n=80, d=3, sep=4.0, labels=("N", "AF"))
        clf = SVC().fit(x, y)
        preds = clf.predict(x)
        assert set(np.unique(preds)) <= {"N", "AF"}
        assert clf.score(x, y) > 0.9

    def test_decision_function_sign_matches_predict(self):
        x, y = make_blobs(n=80, d=3, sep=3.0)
        clf = SVC().fit(x, y)
        scores = clf.decision_function(x)
        preds = clf.predict(x)
        np.testing.assert_array_equal(
            preds, np.where(scores >= 0, clf.classes_[1], clf.classes_[0])
        )

    def test_single_class_degenerate(self):
        x = np.random.default_rng(0).standard_normal((10, 3))
        y = np.ones(10)
        clf = SVC().fit(x, y)
        assert (clf.predict(x) == 1).all()
        assert clf.score(x, y) == 1.0

    def test_three_classes_rejected(self):
        x = np.zeros((6, 2))
        y = np.array([0, 0, 1, 1, 2, 2])
        with pytest.raises(ValueError):
            SVC().fit(x, y)

    def test_not_fitted(self):
        from repro.ml.base import NotFittedError

        with pytest.raises(NotFittedError):
            SVC().predict(np.zeros((2, 2)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SVC().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            SVC().fit(np.zeros((5, 2)), np.zeros(4))

    def test_support_vectors_subset_of_data(self):
        x, y = make_blobs(n=60, d=3, sep=2.0)
        clf = SVC().fit(x, y)
        assert clf.support_vectors_.shape[0] == len(clf.support_)
        np.testing.assert_allclose(clf.support_vectors_, x[clf.support_])

    def test_noisy_data_generalises(self):
        x, y = make_blobs(n=300, d=5, sep=2.5, seed=7)
        x_tr, y_tr, x_te, y_te = x[:200], y[:200], x[200:], y[200:]
        clf = SVC(c=1.0, kernel="rbf", gamma="scale").fit(x_tr, y_tr)
        assert clf.score(x_te, y_te) > 0.8

    def test_get_set_params_clone(self):
        clf = SVC(c=2.0, kernel="linear")
        params = clf.get_params()
        assert params["c"] == 2.0 and params["kernel"] == "linear"
        clone = clf.clone()
        assert clone is not clf and clone.get_params() == params
        clf.set_params(c=5.0)
        assert clf.c == 5.0
        with pytest.raises(ValueError):
            clf.set_params(unknown=1)
