"""One-vs-rest multiclass classification, including the 3-class ECG
task (N / AF / Other) the full CinC dataset poses."""

from __future__ import annotations

import numpy as np
import pytest

import repro.dsarray as ds
from repro.ml import CascadeSVM, OneVsRestClassifier
from repro.ml.base import NotFittedError
from repro.runtime import Runtime


def three_blobs(n_per=50, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0, 0], [5.0, 0.0, 0], [0.0, 5.0, 0]])
    x = np.vstack([rng.normal(c, 0.8, (n_per, 3)) for c in centers])
    y = np.repeat([0.0, 1.0, 2.0], n_per)
    order = rng.permutation(len(x))
    return x[order], y[order]


def make_ovr():
    return OneVsRestClassifier(lambda: CascadeSVM(max_iter=2, kernel="linear"))


def test_three_class_blobs():
    x, y = three_blobs()
    dx = ds.array(x, (30, 3))
    dy = ds.array(y.reshape(-1, 1), (30, 1))
    clf = make_ovr().fit(dx, dy)
    assert len(clf.estimators_) == 3
    assert clf.score(dx, dy) > 0.9
    assert set(clf.predict(dx)) <= {0.0, 1.0, 2.0}


def test_binary_degenerates_gracefully():
    x, y = three_blobs()
    mask = y < 2
    dx = ds.array(x[mask], (30, 3))
    dy = ds.array(y[mask].reshape(-1, 1), (30, 1))
    clf = make_ovr().fit(dx, dy)
    assert clf.score(dx, dy) > 0.9


def test_under_threads_runtime():
    x, y = three_blobs(seed=2)
    with Runtime(executor="threads", max_workers=4):
        dx = ds.array(x, (30, 3))
        dy = ds.array(y.reshape(-1, 1), (30, 1))
        acc = make_ovr().fit(dx, dy).score(dx, dy)
    assert acc > 0.9


def test_not_fitted():
    x, y = three_blobs()
    dx = ds.array(x, (30, 3))
    with pytest.raises(NotFittedError):
        make_ovr().predict(dx)


def test_single_class_rejected():
    x = np.zeros((10, 2))
    y = np.zeros((10, 1))
    with pytest.raises(ValueError):
        make_ovr().fit(ds.array(x, (5, 2)), ds.array(y, (5, 1)))


def test_three_class_ecg():
    """End-to-end 3-class rhythm classification on synthetic data: the
    task the full CinC dataset poses beyond the paper's binary one."""
    from repro.ecg import ECGConfig, generate_dataset, preprocess_signals
    from repro.ml import PCA

    dsd = generate_dataset(
        20, 20, n_other=20, seed=3,
        cfg=ECGConfig(noise_std=0.05),
        duration_range=(15.0, 20.0),
    )
    feats = preprocess_signals(
        [s[::4] for s in dsd.signals], fs=75.0, target_length=None, nperseg=128
    )
    label_map = {"N": 0.0, "AF": 1.0, "O": 2.0}
    y = np.array([label_map[l] for l in dsd.labels])
    dx = ds.array(feats, (15, 256))
    pca = PCA(n_components=0.95)
    reduced = pca.fit_transform(dx)
    dy = ds.array(y.reshape(-1, 1), (15, 1))
    clf = OneVsRestClassifier(lambda: CascadeSVM(max_iter=2)).fit(reduced, dy)
    acc = clf.score(reduced, dy)
    # three-way rhythm separation must beat chance by a wide margin
    assert acc > 0.6
