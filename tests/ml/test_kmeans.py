"""Distributed K-means."""

from __future__ import annotations

import numpy as np
import pytest

import repro.dsarray as ds
from repro.ml import KMeans
from repro.ml.base import NotFittedError
from repro.runtime import Runtime


def three_blobs(n_per=60, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [8.0, 0.0], [0.0, 8.0]])
    x = np.vstack([rng.normal(c, 0.6, (n_per, 2)) for c in centers])
    truth = np.repeat([0, 1, 2], n_per)
    order = rng.permutation(len(x))
    return x[order], truth[order], centers


def test_recovers_blob_centers():
    x, _, centers = three_blobs()
    km = KMeans(n_clusters=3, random_state=1).fit(ds.array(x, (60, 2)))
    found = km.cluster_centers_
    # each true center matched by some found center
    for c in centers:
        assert np.min(np.linalg.norm(found - c, axis=1)) < 0.5


def test_labels_consistent_with_truth():
    x, truth, _ = three_blobs()
    km = KMeans(n_clusters=3, random_state=1)
    labels = km.fit_predict(ds.array(x, (60, 2)))
    # cluster ids are arbitrary: check purity instead
    purity = 0
    for k in range(3):
        mask = labels == k
        if mask.any():
            purity += np.bincount(truth[mask]).max()
    assert purity / len(x) > 0.95


def test_under_threads_runtime():
    x, _, _ = three_blobs(seed=2)
    with Runtime(executor="threads", max_workers=4):
        km = KMeans(n_clusters=3, random_state=0).fit(ds.array(x, (40, 2)))
    assert km.inertia_ < 2.0 * len(x)


def test_inertia_decreases_with_more_clusters():
    x, _, _ = three_blobs(seed=3)
    dx = ds.array(x, (60, 2))
    i1 = KMeans(n_clusters=1, random_state=0).fit(dx).inertia_
    i3 = KMeans(n_clusters=3, random_state=0).fit(dx).inertia_
    assert i3 < i1


def test_convergence_iterations_bounded():
    x, _, _ = three_blobs(seed=4)
    km = KMeans(n_clusters=3, max_iter=100, tol=1e-6, random_state=0).fit(
        ds.array(x, (60, 2))
    )
    assert km.n_iter_ < 100  # converged before the cap


def test_map_reduce_graph_shape():
    x, _, _ = three_blobs(seed=5)
    with Runtime(executor="sequential") as rt:
        km = KMeans(n_clusters=3, max_iter=5, tol=0.0, random_state=0).fit(
            ds.array(x, (45, 2))  # 4 stripes
        )
        counts = rt.graph.count_by_name()
    assert counts["_partial_assign"] == km.n_iter_ * 4
    assert counts["_reduce_centers"] == km.n_iter_
    assert counts["_init_centers"] == 1


def test_validation():
    with pytest.raises(ValueError):
        KMeans(n_clusters=0)
    with pytest.raises(ValueError):
        KMeans(max_iter=0)
    with pytest.raises(TypeError):
        KMeans().fit(np.zeros((10, 2)))
    with pytest.raises(ValueError):
        KMeans(n_clusters=10).fit(ds.array(np.zeros((4, 2)), (2, 2)))
    with pytest.raises(NotFittedError):
        KMeans().predict(ds.array(np.zeros((4, 2)), (2, 2)))


def test_first_stripe_smaller_than_k():
    x = np.zeros((10, 2))
    with pytest.raises(ValueError):
        KMeans(n_clusters=5).fit(ds.array(x, (3, 2)))


def test_empty_cluster_keeps_old_center():
    """A centre with no assigned points keeps its position instead of
    collapsing to NaN."""
    rng = np.random.default_rng(0)
    x = rng.normal(0, 0.1, (30, 2))
    km = KMeans(n_clusters=3, max_iter=3, random_state=0).fit(ds.array(x, (30, 2)))
    assert np.isfinite(km.cluster_centers_).all()
