"""Metrics module tests, including property-based invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy_score,
    binary_counts,
    classification_report,
    confusion_matrix,
    f1_score,
    format_confusion,
    precision_score,
    recall_score,
)


def test_accuracy_perfect():
    assert accuracy_score([1, 0, 1], [1, 0, 1]) == 1.0


def test_accuracy_half():
    assert accuracy_score([1, 0, 1, 0], [1, 1, 0, 0]) == 0.5


def test_accuracy_length_mismatch():
    with pytest.raises(ValueError):
        accuracy_score([1], [1, 2])


def test_accuracy_empty():
    with pytest.raises(ValueError):
        accuracy_score([], [])


def test_confusion_matrix_counts():
    cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
    np.testing.assert_array_equal(cm, [[1, 1], [0, 2]])


def test_confusion_matrix_normalize_all():
    cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1], normalize="all")
    assert cm.sum() == pytest.approx(1.0)


def test_confusion_matrix_normalize_true():
    cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1], normalize="true")
    np.testing.assert_allclose(cm.sum(axis=1), [1.0, 1.0])


def test_confusion_matrix_explicit_labels():
    cm = confusion_matrix([0, 0], [0, 0], labels=[0, 1])
    assert cm.shape == (2, 2)
    assert cm[0, 0] == 2


def test_confusion_matrix_bad_normalize():
    with pytest.raises(ValueError):
        confusion_matrix([0], [0], normalize="rows")


def test_binary_counts_table1_shape():
    """Paper Table Ia-style check: counts map onto tp/fp/fn/tn."""
    y_true = ["AF"] * 3 + ["N"] * 3
    y_pred = ["AF", "AF", "N", "AF", "N", "N"]
    tp, fp, fn, tn = binary_counts(y_true, y_pred, positive="AF")
    assert (tp, fp, fn, tn) == (2, 1, 1, 2)


def test_precision_recall_f1():
    y_true = [1, 1, 1, 0, 0]
    y_pred = [1, 1, 0, 1, 0]
    assert precision_score(y_true, y_pred, 1) == pytest.approx(2 / 3)
    assert recall_score(y_true, y_pred, 1) == pytest.approx(2 / 3)
    assert f1_score(y_true, y_pred, 1) == pytest.approx(2 / 3)


def test_zero_division_guards():
    assert precision_score([0, 0], [0, 0], positive=1) == 0.0
    assert recall_score([0, 0], [0, 0], positive=1) == 0.0
    assert f1_score([0, 0], [0, 0], positive=1) == 0.0


def test_classification_report():
    rep = classification_report([0, 1, 1], [0, 1, 0])
    assert rep["accuracy"] == pytest.approx(2 / 3)
    assert rep["classes"][1]["support"] == 2
    assert 0 <= rep["classes"][0]["f1"] <= 1


def test_format_confusion():
    cm = confusion_matrix(["AF", "N"], ["AF", "N"], normalize="all")
    text = format_confusion(cm, ["AF", "N"])
    assert "AF" in text and "0.500" in text


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(0, 3), min_size=1, max_size=60),
    st.lists(st.integers(0, 3), min_size=1, max_size=60),
)
def test_confusion_total_equals_n(a, b):
    n = min(len(a), len(b))
    y_true, y_pred = a[:n], b[:n]
    cm = confusion_matrix(y_true, y_pred, labels=[0, 1, 2, 3])
    assert cm.sum() == n
    # diagonal mass equals accuracy * n
    assert np.trace(cm) == pytest.approx(accuracy_score(y_true, y_pred) * n)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.sampled_from([0, 1]), min_size=2, max_size=80))
def test_accuracy_bounds_and_self(y):
    y = np.array(y)
    assert accuracy_score(y, y) == 1.0
    flipped = 1 - y
    assert accuracy_score(y, flipped) == 0.0


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.sampled_from([0, 1]), min_size=4, max_size=60),
    st.lists(st.sampled_from([0, 1]), min_size=4, max_size=60),
)
def test_f1_is_harmonic_mean(a, b):
    n = min(len(a), len(b))
    y_true, y_pred = np.array(a[:n]), np.array(b[:n])
    p = precision_score(y_true, y_pred, 1)
    r = recall_score(y_true, y_pred, 1)
    f1 = f1_score(y_true, y_pred, 1)
    if p + r > 0:
        assert f1 == pytest.approx(2 * p * r / (p + r))
    else:
        assert f1 == 0.0
