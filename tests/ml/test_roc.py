"""ROC curve and AUC (the §V precision/recall trade-off machinery)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import roc_auc_score, roc_curve


def test_perfect_separation_auc_one():
    y = np.array([0, 0, 1, 1])
    scores = np.array([0.1, 0.2, 0.8, 0.9])
    assert roc_auc_score(y, scores, positive=1) == pytest.approx(1.0)


def test_inverted_scores_auc_zero():
    y = np.array([0, 0, 1, 1])
    scores = np.array([0.9, 0.8, 0.2, 0.1])
    assert roc_auc_score(y, scores, positive=1) == pytest.approx(0.0)


def test_random_scores_auc_half():
    rng = np.random.default_rng(0)
    y = rng.integers(0, 2, 4000)
    scores = rng.uniform(size=4000)
    assert roc_auc_score(y, scores, positive=1) == pytest.approx(0.5, abs=0.03)


def test_curve_endpoints_and_monotonicity():
    rng = np.random.default_rng(1)
    y = rng.integers(0, 2, 200)
    scores = rng.normal(size=200) + y
    fpr, tpr, thr = roc_curve(y, scores, positive=1)
    assert fpr[0] == 0.0 and tpr[0] == 0.0
    assert fpr[-1] == pytest.approx(1.0) and tpr[-1] == pytest.approx(1.0)
    assert (np.diff(fpr) >= -1e-12).all()
    assert (np.diff(tpr) >= -1e-12).all()
    assert thr[0] == np.inf


def test_ties_handled():
    y = np.array([1, 0, 1, 0])
    scores = np.array([0.5, 0.5, 0.5, 0.5])
    auc = roc_auc_score(y, scores, positive=1)
    assert auc == pytest.approx(0.5)


def test_validation():
    with pytest.raises(ValueError):
        roc_curve([1, 1], [0.5, 0.6], positive=1)  # one class only
    with pytest.raises(ValueError):
        roc_curve([0, 1], [0.5], positive=1)


def test_auc_matches_rank_statistic():
    """AUC equals the probability a positive outranks a negative
    (Mann-Whitney U)."""
    rng = np.random.default_rng(3)
    y = np.array([0] * 50 + [1] * 50)
    scores = rng.normal(size=100) + 0.8 * y
    auc = roc_auc_score(y, scores, positive=1)
    pos, neg = scores[y == 1], scores[y == 0]
    u = np.mean([(p > n) + 0.5 * (p == n) for p in pos for n in neg])
    assert auc == pytest.approx(u, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_property_auc_bounds(seed):
    rng = np.random.default_rng(seed)
    y = np.r_[np.zeros(10), np.ones(10)]
    scores = rng.normal(size=20)
    auc = roc_auc_score(y, scores, positive=1.0)
    assert 0.0 <= auc <= 1.0
    # label-flip symmetry: AUC(pos=1, s) + AUC(pos=0, s) == 1
    flipped = roc_auc_score(y, scores, positive=0.0)
    assert auc + flipped == pytest.approx(1.0, abs=1e-9)
