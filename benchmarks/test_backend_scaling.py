"""Threads-vs-processes backend comparison on NumPy-heavy workloads.

Not a paper figure — the perf ledger of the execution-backend layer.
Three workloads whose task bodies are dominated by NumPy work (blocked
matmul, K-means fit, cascade-SVM fit) run under both backends with the
same seeds; the benchmark records wall times *and asserts bit-identical
results*, then writes ``BENCH_backend.json`` at the repository root so
successive PRs can compare runs.

The headline question — do worker processes beat the GIL — is
hardware-gated: with a single CPU there is no parallelism for the
process pool to unlock, only serialization overhead, so the
"processes win somewhere" assertion applies from 2 cores up and the
JSON records ``cpu_count`` with every run.  Numerical identity is
asserted unconditionally on any hardware.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np
import pytest

import repro.dsarray as ds
from repro.ml import CascadeSVM, KMeans
from repro.runtime import Runtime, RuntimeConfig

from .conftest import make_blobs

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_backend.json"

BACKENDS = ("threads", "processes")
MAX_WORKERS = 2
REPEATS = 3

_metrics: dict[str, dict] = {}


@pytest.fixture(scope="session", autouse=True)
def _write_bench_file():
    """Persist every metric recorded this session to BENCH_backend.json."""
    yield
    if not _metrics:
        return
    from repro.runtime import atomic_write

    payload = {
        "bench": "backend_scaling",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cpu_count": os.cpu_count(),
        "params": {"max_workers": MAX_WORKERS, "repeats": REPEATS},
        "metrics": _metrics,
    }
    atomic_write(BENCH_FILE, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _multicore() -> bool:
    return (os.cpu_count() or 1) >= 2


def _run_both(workload) -> dict[str, dict]:
    """Run *workload(backend) -> ndarray* under each backend; return
    ``{backend: {"wall_s": best, "samples": [...], "result": ndarray}}``."""
    out: dict[str, dict] = {}
    for backend in BACKENDS:
        cfg = RuntimeConfig(backend=backend, max_workers=MAX_WORKERS)
        samples, result = [], None
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            with Runtime(config=cfg):
                result = workload()
            samples.append(time.perf_counter() - t0)
        out[backend] = {"wall_s": min(samples), "samples": samples, "result": result}
    return out


def _record(name: str, runs: dict[str, dict]) -> None:
    threads, processes = runs["threads"], runs["processes"]
    _metrics[name] = {
        "unit": "s (best of repeats)",
        "threads_wall_s": threads["wall_s"],
        "processes_wall_s": processes["wall_s"],
        "speedup_processes": threads["wall_s"] / processes["wall_s"],
        "threads_samples": threads["samples"],
        "processes_samples": processes["samples"],
        "identical": bool(
            np.array_equal(threads["result"], processes["result"])
        ),
    }


def _assert_identical(runs: dict[str, dict]) -> None:
    np.testing.assert_array_equal(
        runs["threads"]["result"], runs["processes"]["result"]
    )


def test_dsarray_matmul():
    a = np.random.default_rng(0).normal(size=(512, 512))
    b = np.random.default_rng(1).normal(size=(512, 512))

    def workload():
        da = ds.array(a, (128, 128))
        db = ds.array(b, (128, 128))
        return (da @ db).collect()

    runs = _run_both(workload)
    _record("dsarray_matmul_512", runs)
    _assert_identical(runs)


def test_kmeans_fit():
    x, _ = make_blobs(2000, 32, seed=3)

    def workload():
        dx = ds.array(x, (250, 32))
        model = KMeans(n_clusters=4, max_iter=5, random_state=0).fit(dx)
        return model.cluster_centers_

    runs = _run_both(workload)
    _record("kmeans_fit_2000x32", runs)
    _assert_identical(runs)


def test_csvm_fit():
    x, y = make_blobs(1200, 24, seed=5)

    def workload():
        dx = ds.array(x, (150, 24))
        dy = ds.array(y, (150, 1))
        model = CascadeSVM(max_iter=2, check_convergence=False).fit(dx, dy)
        return model.decision_function(x)

    runs = _run_both(workload)
    _record("csvm_fit_1200x24", runs)
    _assert_identical(runs)


def test_processes_win_somewhere_on_multicore():
    """With >= 2 cores the process pool must beat the GIL on at least
    one NumPy-heavy workload.  On a single-CPU machine there is nothing
    to win — dispatch is pure overhead — so the assertion is skipped
    (the JSON still records the measured ratios and the cpu_count)."""
    assert _metrics, "runs before this test populate the metrics"
    speedups = {k: v["speedup_processes"] for k, v in _metrics.items()}
    _metrics["summary"] = {
        "unit": "threads_wall / processes_wall",
        "speedups": speedups,
        "cpu_count": os.cpu_count(),
    }
    if not _multicore():
        pytest.skip(f"cpu_count={os.cpu_count()}: no parallelism to unlock")
    assert max(speedups.values()) > 1.0, (
        f"processes never beat threads on {os.cpu_count()} cores: {speedups}"
    )
