"""Ablation benches for the design choices DESIGN.md calls out:
cascade arity, block size, RF distr_depth, and the nesting feature.

These are not paper figures; they probe *why* the paper's curves look
the way they do by varying one structural knob at a time on the
simulated cluster."""

from __future__ import annotations

import numpy as np
import pytest

import repro.dsarray as ds
from repro.cluster import NodeSpec, core_sweep, simulate, marenostrum4
from repro.ml import CascadeSVM, RandomForestClassifier
from repro.runtime import Runtime
from benchmarks.conftest import make_blobs


def record_csvm(arity: int, row_block: int = 100):
    x, y = make_blobs(n=3200, d=48, sep=1.8, seed=7)
    with Runtime(executor="threads", max_workers=8) as rt:
        dx = ds.array(x, (row_block, 48))
        dy = ds.array(y, (row_block, 1))
        CascadeSVM(cascade_arity=arity, max_iter=1, check_convergence=False).fit(dx, dy)
        rt.barrier()
        return rt.trace()


CORES = {"_train_partition": 8, "_merge_train": 8, "_final_model": 8}


def test_ablation_cascade_arity(benchmark, write_result):
    """Higher arity shortens the reduction tree -> better scalability
    ceiling, at the price of heavier merge tasks."""

    def run():
        out = {}
        for arity in (2, 4, 8):
            trace = record_csvm(arity)
            res = simulate(trace, marenostrum4(4), cores_per_task=CORES)
            depth = max(
                len([1 for _ in trace if _.name == "_merge_train"]), 1
            )
            out[arity] = (res.makespan, depth)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: cascade arity (4 simulated MN4 nodes)"]
    lines += [f"arity={a}: makespan={m:.3f}s merge_tasks={d}" for a, (m, d) in out.items()]
    write_result("ablation_cascade_arity", "\n".join(lines))

    # fewer merge tasks with higher arity
    assert out[8][1] < out[4][1] < out[2][1]


def test_ablation_block_size(benchmark, write_result):
    """Smaller blocks -> more parallelism but more per-task overhead;
    the paper tunes 500x500 (CSVM) vs 250x250 (KNN)."""

    def run():
        out = {}
        for row_block in (50, 100, 400):
            trace = record_csvm(2, row_block=row_block)
            n_partitions = len([r for r in trace if r.name == "_train_partition"])
            res1 = simulate(trace, marenostrum4(1), cores_per_task=CORES)
            res4 = simulate(trace, marenostrum4(4), cores_per_task=CORES)
            out[row_block] = (n_partitions, res1.makespan, res4.makespan)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: row-block size (CSVM, 1 vs 4 nodes)"]
    for rb, (parts, m1, m4) in out.items():
        lines.append(
            f"rows/block={rb}: partitions={parts} t_1node={m1:.3f}s t_4nodes={m4:.3f}s "
            f"speedup={m1 / m4:.2f}x"
        )
    write_result("ablation_block_size", "\n".join(lines))

    # parallelism follows the number of row blocks
    assert out[50][0] > out[100][0] > out[400][0]
    # a single coarse partition cannot use 4 nodes
    coarse_speedup = out[400][1] / out[400][2]
    fine_speedup = out[100][1] / out[100][2]
    assert fine_speedup > coarse_speedup


def test_ablation_scheduler_locality(benchmark, write_result):
    """Quantify the locality-aware placement the runtime (like COMPSs)
    performs: on a slow interconnect, round-robin placement pays every
    transfer the locality policy avoids."""
    from repro.cluster import ClusterSpec, NodeSpec

    trace = record_csvm(2, row_block=100)
    # slow interconnect so transfers are visible in the makespan
    slow = ClusterSpec(
        node=NodeSpec(cores=48), n_nodes=4, bandwidth=0.2e9, latency=1e-4
    )

    def run():
        return {
            policy: simulate(trace, slow, cores_per_task=CORES, policy=policy).makespan
            for policy in ("locality", "round_robin")
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: scheduler placement policy (slow 0.2 GB/s interconnect)"]
    lines += [f"{p}: makespan={m:.3f}s" for p, m in out.items()]
    write_result("ablation_scheduler_locality", "\n".join(lines))
    assert out["locality"] <= out["round_robin"] * 1.01


def test_ablation_rf_distr_depth(benchmark, write_result):
    """The paper blames RF's scalability on its small task count;
    raising distr_depth multiplies the tasks per tree."""
    x, y = make_blobs(n=1500, d=32, sep=1.2, seed=8)

    def run():
        out = {}
        for depth in (0, 1, 3):
            with Runtime(executor="threads", max_workers=8) as rt:
                dx = ds.array(x, (250, 32))
                dy = ds.array(y, (250, 1))
                RandomForestClassifier(
                    n_estimators=16, distr_depth=depth, random_state=0
                ).fit(dx, dy)
                rt.barrier()
                trace = rt.trace()
            n_tasks = len(trace)
            res = simulate(trace, marenostrum4(4))
            out[depth] = (n_tasks, res.makespan)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: RF distr_depth (16 trees, 4 simulated nodes)"]
    lines += [f"distr_depth={d}: tasks={n} makespan={m:.3f}s" for d, (n, m) in out.items()]
    write_result("ablation_rf_distr_depth", "\n".join(lines))

    assert out[3][0] > out[1][0] > out[0][0]
