"""Figure 11b — StandardScaler + KNN time vs core count.

Paper setup: blocks of 250x250, up to 12 PyCOMPSs tasks per node with
4 cores each; the curve improves with cores, more gently than CSVM.
"""

from __future__ import annotations

import pytest

import repro.dsarray as ds
from repro.cluster import NodeSpec, core_sweep, format_sweep, speedups
from repro.ml import KNeighborsClassifier, StandardScaler
from repro.runtime import Runtime
from benchmarks.conftest import make_blobs

NODE = NodeSpec(cores=48, name="mn4")
KNN_TASKS = (
    "_partial_stats",
    "_reduce_stats",
    "_scale_block",
    "_fit_stripe",
    "_local_kneighbors",
    "_merge_kneighbors",
    "hstack_blocks",
)
CORES_PER_TASK = {name: 4 for name in KNN_TASKS}


@pytest.fixture(scope="module")
def knn_trace():
    """Record scaling + fitting + querying over 24 row stripes of
    250 rows (the paper's 250x250 blocking)."""
    x, y = make_blobs(n=6000, d=64, sep=2.0, seed=2)
    with Runtime(executor="threads", max_workers=8) as rt:
        dx = ds.array(x, block_size=(250, 64))
        dy = ds.array(y, block_size=(250, 1))
        scaled = StandardScaler().fit_transform(dx)
        clf = KNeighborsClassifier(n_neighbors=5).fit(scaled, dy)
        clf.predict(scaled)
        rt.barrier()
        return rt.trace()


def test_fig11b_knn_scaling(benchmark, knn_trace, write_result):
    points = benchmark.pedantic(
        core_sweep,
        args=(knn_trace, NODE, [1, 2, 3, 4]),
        kwargs={"cores_per_task": CORES_PER_TASK},
        rounds=1,
        iterations=1,
    )
    table = format_sweep(
        points, "Fig 11b: StandardScaler + KNN time (simulated MareNostrum IV)"
    )
    write_result("fig11b_knn_scaling", table)

    times = {p.total_cores: p.makespan for p in points}
    sp = speedups(points)
    benchmark.extra_info["speedup_192"] = sp[192]

    # Shape: clear improvement from 1 to 2 nodes, curve keeps
    # descending (or flattens) after.
    assert times[96] < times[48] * 0.95
    assert times[192] <= times[96] * 1.05
    assert sp[192] > 1.3


def test_fig11b_parallelism_follows_row_blocks(knn_trace):
    """dislib's documented property: KNN parallelism is based on the
    number of row blocks — 24 stripes here."""
    fits = [r for r in knn_trace if r.name == "_fit_stripe"]
    locals_ = [r for r in knn_trace if r.name == "_local_kneighbors"]
    merges = [r for r in knn_trace if r.name == "_merge_kneighbors"]
    assert len(fits) == 24
    assert len(locals_) == 24 * 24
    assert len(merges) == 24
