"""Durable-queue operation microbenchmarks.

The queue service's hot path is three sqlite transactions per task:
``submit`` (client), ``claim`` (worker lease acquisition, fair-share
selection), ``complete`` (result recording + lease release).  Each is
one fsync-bounded WAL commit, so per-op latency is dominated by the
durability the service exists to provide — these benchmarks pin the
cost down and fail loudly if an op regresses past a generous bound.

Results are written to ``BENCH_queue.json`` at the repository root so
successive PRs can compare runs (see CHANGES.md for the history).
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time

import pytest

from repro.service.db import Database
from repro.service.queue import DurableQueue

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_queue.json"

N_OPS = 200
WARMUP = 20
# Generous per-op ceiling: a single WAL commit on a loaded CI box.
# Steady state is well under a millisecond; this catches order-of-
# magnitude regressions (per-op table scans, lost indexes), not noise.
MAX_MEDIAN_MS = 20.0

_metrics: dict[str, dict] = {}


@pytest.fixture(scope="session", autouse=True)
def _write_bench_file():
    """Persist every metric recorded this session to BENCH_queue.json."""
    yield
    if not _metrics:
        return
    from repro.runtime import atomic_write

    payload = {
        "bench": "queue_ops",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "params": {
            "n_ops": N_OPS,
            "warmup_discarded": WARMUP,
            "max_median_ms": MAX_MEDIAN_MS,
        },
        "metrics": _metrics,
    }
    atomic_write(BENCH_FILE, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _record(name: str, samples_ms: list[float]) -> None:
    _metrics[name] = {
        "unit": "ms/op",
        "median": statistics.median(samples_ms),
        "p90": sorted(samples_ms)[int(len(samples_ms) * 0.9)],
        "min": min(samples_ms),
        "max": max(samples_ms),
        "n": len(samples_ms),
    }


@pytest.fixture()
def queue(tmp_path):
    db = Database(tmp_path / "queue.db")
    q = DurableQueue(db)
    yield q
    db.close()


def _submit(queue: DurableQueue, i: int, tenant: str = "bench") -> int:
    return queue.submit(
        tenant=tenant,
        name="noop",
        module="repro.service.demo",
        qualname="add",
        payload=b"x" * 64,
        signature=f"sig-{tenant}-{i}",
        priority=i % 5,
    )


def test_submit_latency(queue):
    samples = []
    for i in range(WARMUP + N_OPS):
        t0 = time.perf_counter()
        _submit(queue, i)
        if i >= WARMUP:
            samples.append((time.perf_counter() - t0) * 1e3)
    _record("submit", samples)
    assert statistics.median(samples) < MAX_MEDIAN_MS


def test_claim_latency(queue):
    # Spread the backlog over tenants so claim exercises the
    # fair-share selection it actually runs in production.
    for i in range(WARMUP + N_OPS):
        _submit(queue, i, tenant=f"t{i % 4}")
    samples = []
    for i in range(WARMUP + N_OPS):
        t0 = time.perf_counter()
        claim = queue.claim(worker="bench/w0", server="bench", lease_timeout=60.0)
        if i >= WARMUP:
            samples.append((time.perf_counter() - t0) * 1e3)
        assert claim is not None
    _record("claim", samples)
    assert statistics.median(samples) < MAX_MEDIAN_MS


def test_complete_latency(queue):
    claims = []
    for i in range(WARMUP + N_OPS):
        _submit(queue, i)
        claims.append(queue.claim(worker="bench/w0", server="bench", lease_timeout=60.0))
    samples = []
    for i, claim in enumerate(claims):
        t0 = time.perf_counter()
        outcome = queue.complete(
            claim.id,
            claim.signature,
            payload=b"r" * 64,
            worker="bench/w0",
            attempt=claim.attempt,
        )
        if i >= WARMUP:
            samples.append((time.perf_counter() - t0) * 1e3)
        assert outcome == "recorded"
    _record("complete", samples)
    assert statistics.median(samples) < MAX_MEDIAN_MS


def test_end_to_end_cycle(queue):
    """submit → claim → complete round-trips per second, one worker."""
    t0 = time.perf_counter()
    for i in range(N_OPS):
        task_id = _submit(queue, i, tenant="cycle")
        claim = queue.claim(worker="bench/w0", server="bench", lease_timeout=60.0)
        assert claim is not None and claim.id == task_id
        queue.complete(
            claim.id, claim.signature, payload=b"", worker="bench/w0", attempt=0
        )
    wall = time.perf_counter() - t0
    _metrics["cycle"] = {
        "unit": "ops/s",
        "ops_per_s": N_OPS / wall,
        "wall_s": wall,
        "n": N_OPS,
    }
