"""Figure 11a — CSVM training time vs core count.

Paper setup: MareNostrum IV nodes (48 cores), 6 tasks per node with 8
cores each; performance improves up to 192 cores (4 nodes), limited by
the cascade's reduction phase.

Method here: train the real CascadeSVM on a partitioned dataset under
the threads runtime (recording every task), then replay the recorded
DAG on 1-4 simulated 48-core nodes with the paper's 8-cores-per-task
constraint.
"""

from __future__ import annotations

import pytest

import repro.dsarray as ds
from repro.cluster import NodeSpec, core_sweep, format_sweep, speedups
from repro.ml import CascadeSVM
from repro.runtime import Runtime
from benchmarks.conftest import make_blobs

NODE = NodeSpec(cores=48, name="mn4")
CORES_PER_TASK = {"_train_partition": 8, "_merge_train": 8, "_final_model": 8, "slice_block": 1}


@pytest.fixture(scope="module")
def csvm_trace():
    """Record one cascade iteration over 48 partitions (paper's
    parallelism at 4 nodes x 6 tasks).  Partitions are large and well
    separated so first-layer training dominates the merge chain, as in
    the paper's full-size matrix."""
    x, y = make_blobs(n=12000, d=96, sep=3.0, seed=1)
    with Runtime(executor="threads", max_workers=8) as rt:
        dx = ds.array(x, block_size=(250, 96))
        dy = ds.array(y, block_size=(250, 1))
        CascadeSVM(max_iter=1, check_convergence=False, c=1.0, gamma="auto").fit(dx, dy)
        rt.barrier()
        return rt.trace()


def test_fig11a_csvm_scaling(benchmark, csvm_trace, write_result):
    points = benchmark.pedantic(
        core_sweep,
        args=(csvm_trace, NODE, [1, 2, 3, 4]),
        kwargs={"cores_per_task": CORES_PER_TASK},
        rounds=1,
        iterations=1,
    )
    table = format_sweep(points, "Fig 11a: CSVM training time (simulated MareNostrum IV)")
    write_result("fig11a_csvm_scaling", table)

    times = {p.total_cores: p.makespan for p in points}
    sp = speedups(points)
    benchmark.extra_info["speedup_192"] = sp[192]

    # Shape criteria from the paper: monotone improvement up to 192
    # cores, with diminishing returns (reduction phase ceiling).
    assert times[96] < times[48]
    assert times[192] <= times[96] * 1.02
    assert sp[192] > 1.5, f"CSVM should keep improving to 192 cores: {sp}"
    gain_low = times[48] / times[96]
    gain_high = times[144] / times[192] if times[192] else float("inf")
    assert gain_high < gain_low + 0.2, "diminishing returns expected at scale"


def test_fig11a_reduction_phase_limits_scaling(csvm_trace):
    """The paper attributes the ceiling to the cascade reduction: the
    merge chain depth bounds makespan regardless of cores."""
    from repro.cluster import ClusterSpec, simulate

    huge = ClusterSpec(node=NODE, n_nodes=64)
    res = simulate(csvm_trace, huge, cores_per_task=CORES_PER_TASK)
    merges = [p for p in res.placements.values() if p.name == "_merge_train"]
    # critical path >= sequential chain of log2(48) merge levels
    depth_bound = sum(
        sorted((m.duration for m in merges), reverse=True)[:6]
    ) * 0.5
    assert res.makespan > depth_bound
