"""Table I — accuracy and 5-fold confusion matrices of the four models.

Paper values (on real PhysioNet data): CSVM 74.9%, KNN 52%, RF 86.8%,
CNN 90%.  On the synthetic substrate, absolute accuracies differ, but
the qualitative findings the paper draws from the table are asserted:

* **KNN is by far the worst** and collapses towards predicting a
  single class (paper Table Ib: 0.498/0.490 in the AF column — almost
  everything predicted AF);
* **RF and CNN are the strong models** (paper: 86.8% / 90%);
* **CSVM sits in between**, with errors in both directions
  (paper Table Ia is symmetric: 0.125 / 0.125);
* every model's confusion matrix is normalised over all entries, as in
  the paper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecg import ECGConfig
from repro.runtime import Runtime
from repro.workflows import (
    PipelineConfig,
    prepare_dataset,
    run_classical,
    run_cnn,
    side_by_side,
    table1_block,
)

#: Generator configuration used for the Table I runs: noisier signals
#: with overlapping rhythm statistics so accuracies land in the
#: paper's range instead of saturating (see EXPERIMENTS.md).
TABLE1_ECG = ECGConfig(
    noise_std=0.25,
    fwave_amplitude=0.03,
    nsr_rr_std=0.10,
    af_rr_std=0.12,
)

CFG = PipelineConfig(
    scale=0.025,
    seed=0,
    block_size=(64, 128),
    n_splits=5,
    decimate=8,
    ecg=TABLE1_ECG,
)


@pytest.fixture(scope="module")
def dataset():
    return prepare_dataset(CFG)


def _compute_results(dataset):
    out = {}
    with Runtime(executor="threads", max_workers=8):
        for algo in ("csvm", "knn", "rf"):
            res = run_classical(algo, CFG, dataset)
            out[algo] = {
                "accuracy": res.accuracy,
                "confusion": res.confusion,
                "labels": res.cv.labels,
            }
        # The paper's cited CNN approach trains on STFT spectrograms
        # (Huang et al. [18]); 15 epochs of the paper's architecture.
        cnn = run_cnn(
            CFG, dataset, epochs=15, n_workers=4, nested=True, lr=0.05,
            input_mode="spectrogram",
        )
        out["cnn"] = {
            "accuracy": cnn["mean_accuracy"],
            "confusion": cnn["mean_confusion"],
            "labels": cnn["labels"],
        }
    return out


_cache: dict = {}


@pytest.fixture(scope="module")
def results(dataset):
    if "results" not in _cache:
        _cache["results"] = _compute_results(dataset)
    return _cache["results"]


def _label_names(labels):
    return ["N" if l in (0, 0.0) else "AF" for l in labels]


def test_table1_report(benchmark, dataset, write_result):
    """The headline benchmark: runs all four models' 5-fold CV and
    regenerates Table I.  Shape assertions included here so the
    ``--benchmark-only`` deliverable run checks them."""
    if "results" not in _cache:
        _cache["results"] = benchmark.pedantic(
            _compute_results, args=(dataset,), rounds=1, iterations=1
        )
    else:  # pragma: no cover - fixture already ran in plain mode
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    results = _cache["results"]

    paper = {"csvm": 0.749, "knn": 0.52, "rf": 0.868, "cnn": 0.90}
    blocks = [
        "Table I: accuracy and averaged 5-fold confusion matrices",
        f"{'model':>6} {'measured':>9} {'paper':>7}",
    ]
    for name in ("csvm", "knn", "rf", "cnn"):
        blocks.append(
            f"{name:>6} {results[name]['accuracy'] * 100:>8.1f}% {paper[name] * 100:>6.1f}%"
        )
    blocks.append("")
    for name in ("csvm", "knn", "rf", "cnn"):
        r = results[name]
        blocks.append(
            table1_block(name.upper(), r["accuracy"], r["confusion"], _label_names(r["labels"]))
        )
    write_result("table1_accuracy", side_by_side(blocks))

    benchmark.extra_info.update(
        {name: round(results[name]["accuracy"], 3) for name in results}
    )
    # The paper's robust findings (see module docstring):
    assert results["knn"]["accuracy"] < min(
        results["csvm"]["accuracy"],
        results["rf"]["accuracy"],
        results["cnn"]["accuracy"],
    )
    assert results["rf"]["accuracy"] > 0.8
    assert results["cnn"]["accuracy"] > 0.85
    # the paper's winner: the CNN at least matches the best classical
    assert results["cnn"]["accuracy"] >= results["rf"]["accuracy"] - 0.05
    assert 0.6 < results["csvm"]["accuracy"] < 0.97


def test_csvm_mid_range_with_two_sided_errors(results):
    """Paper Table Ia: CSVM at 74.9% with symmetric errors."""
    r = results["csvm"]
    assert 0.6 < r["accuracy"] < 0.97
    cm = r["confusion"]
    # both error cells populated (no single-class collapse)
    assert cm[0, 1] > 0.01 or cm[1, 0] > 0.01


def test_knn_worst_and_degenerate(results):
    """Paper Table Ib: KNN at 52%, predicting nearly everything as one
    class despite the StandardScaler."""
    r = results["knn"]
    assert r["accuracy"] < min(
        results["csvm"]["accuracy"],
        results["rf"]["accuracy"],
        results["cnn"]["accuracy"],
    ), "KNN must be the worst model, as in the paper"
    cm = r["confusion"]
    # collapse indicator: one predicted-class column carries most mass
    col_mass = cm.sum(axis=0)
    assert col_mass.max() > 0.65


def test_rf_among_best_classical(results):
    """Paper Table Ic: RF is the best classical algorithm (86.8%)."""
    assert results["rf"]["accuracy"] > 0.8
    assert results["rf"]["accuracy"] >= results["csvm"]["accuracy"] - 0.02
    assert results["rf"]["accuracy"] > results["knn"]["accuracy"] + 0.1


def test_cnn_strong(results):
    """Paper Table Id: the CNN reaches the best accuracy (90%)."""
    assert results["cnn"]["accuracy"] > 0.85
    assert results["cnn"]["accuracy"] > results["knn"]["accuracy"] + 0.1
    assert results["cnn"]["accuracy"] >= results["rf"]["accuracy"] - 0.05


def test_confusion_matrices_normalised(results):
    for name, r in results.items():
        assert np.asarray(r["confusion"]).sum() == pytest.approx(1.0), name
