"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables or figures:
it runs the real workload locally (recording a task trace where the
experiment is about scalability), replays it on the simulated testbed
where needed, asserts the paper's qualitative *shape*, and writes the
resulting table/series to ``benchmarks/results/`` so EXPERIMENTS.md
can reference concrete artefacts.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    from repro.runtime import atomic_write

    def _write(name: str, text: str) -> None:
        atomic_write(results_dir / f"{name}.txt", text + "\n")

    return _write


def make_blobs(n, d, sep=2.0, seed=0):
    rng = np.random.default_rng(seed)
    half = n // 2
    x = np.vstack(
        [rng.normal(-sep / 2, 1.0, (half, d)), rng.normal(sep / 2, 1.0, (n - half, d))]
    )
    y = np.array([0.0] * half + [1.0] * (n - half)).reshape(-1, 1)
    order = rng.permutation(n)
    return x[order], y[order]
