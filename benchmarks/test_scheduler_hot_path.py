"""Scheduler hot-path microbenchmarks.

Not a paper figure — the perf trajectory of the runtime itself.  The
paper's scalability claims (Figs. 11a-c) assume per-task runtime
overhead is small relative to task work; these benchmarks pin down
that overhead for the local executors and fail loudly if the
scheduling hot path regresses:

* **submit latency** — cost of one task submission (dependency
  detection + enqueue), with the pool draining concurrently;
* **many-small-tasks throughput** — end-to-end tasks/second for a
  flood of no-op tasks, the fine-grained-task regime the event-driven
  scheduler is built for;
* **dependency-chain latency** — per-edge cost when every task gates
  the next (scheduler wake-up path, no parallelism to hide it);
* **wakeup discipline** — scheduler counters of the same runs:
  parked-thread wakeups must scale with completions, never with time
  (the no-poll invariant).

Results are written to ``BENCH_scheduler.json`` at the repository root
so successive PRs can compare runs (see CHANGES.md for the history).
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time

import pytest

from repro.runtime import Runtime, task, wait_on
from repro.runtime.config import RuntimeConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_scheduler.json"

N_FLOOD = 2000
N_CHAIN = 400
REPEATS = 5
# Discarded warm-up iterations before the timed repeats.  The first
# run or two of each shape pays one-time costs (bytecode warm-up,
# allocator growth, thread-pool spin-up) that showed up as 69/148 µs
# outliers against a 44-48 µs steady state and distorted medians.
WARMUP = 2

_metrics: dict[str, dict] = {}


@pytest.fixture(scope="session", autouse=True)
def _write_bench_file():
    """Persist every metric recorded this session to BENCH_scheduler.json."""
    yield
    if not _metrics:
        return
    from repro.runtime import atomic_write

    payload = {
        "bench": "scheduler_hot_path",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "params": {
            "n_flood": N_FLOOD,
            "n_chain": N_CHAIN,
            "repeats": REPEATS,
            "warmup_discarded": WARMUP,
        },
        "metrics": _metrics,
    }
    atomic_write(BENCH_FILE, json.dumps(payload, indent=2, sort_keys=True) + "\n")


@task(returns=1)
def _noop(x):
    return x


def _timed(fn, repeats: int = REPEATS, warmup: int = WARMUP) -> list[float]:
    """Time *repeats* runs of *fn*, discarding *warmup* runs first."""
    samples = []
    for i in range(warmup + repeats):
        t0 = time.perf_counter()
        fn()
        if i >= warmup:
            samples.append(time.perf_counter() - t0)
    return samples


def _record(name: str, **fields) -> None:
    fields.setdefault("warmup_discarded", WARMUP)
    _metrics[name] = fields


def test_submit_latency_threads():
    """Per-submission cost under the threads executor, pool draining
    concurrently with the submitting thread."""
    per_submit_us = []
    for i in range(WARMUP + REPEATS):
        with Runtime(executor="threads", max_workers=4):
            t0 = time.perf_counter()
            futs = [_noop(i) for i in range(N_FLOOD)]
            t1 = time.perf_counter()
            out = wait_on(futs)
        assert out == list(range(N_FLOOD))
        if i >= WARMUP:
            per_submit_us.append((t1 - t0) / N_FLOOD * 1e6)
    _record(
        "submit_latency_threads",
        unit="us/task",
        median=statistics.median(per_submit_us),
        min=min(per_submit_us),
        samples=per_submit_us,
    )


def test_many_small_tasks_throughput():
    """End-to-end submit+schedule+drain throughput for a flood of
    no-op tasks — the fine-grained-task regime."""
    stats = {}

    def run():
        with Runtime(executor="threads", max_workers=4) as rt:
            out = wait_on([_noop(i) for i in range(N_FLOOD)])
            stats.update(rt.stats())
        assert len(out) == N_FLOOD

    samples = _timed(run)
    best = min(samples)
    sched = stats.get("scheduler", {})
    _record(
        "many_small_tasks",
        unit="tasks/s",
        tasks_per_s=N_FLOOD / best,
        wall_s=best,
        idle_wakeups=stats.get("idle_wakeups"),
        worker_parks=sched.get("worker_parks"),
        samples=[N_FLOOD / s for s in samples],
    )
    # The no-poll invariant: wakeups are caused by events (completions,
    # enqueues), never by timers, so they are bounded by task count and
    # can never scale with wall-clock time.
    assert stats.get("idle_wakeups", 0) <= N_FLOOD


def test_submit_latency_sequential():
    """Per-task cost of the sequential executor (submission == run)."""
    per_task_us = []
    for i in range(WARMUP + REPEATS):
        with Runtime(executor="sequential"):
            t0 = time.perf_counter()
            out = wait_on([_noop(i) for i in range(N_FLOOD)])
            dt = time.perf_counter() - t0
        assert len(out) == N_FLOOD
        if i >= WARMUP:
            per_task_us.append(dt / N_FLOOD * 1e6)
    _record(
        "submit_latency_sequential",
        unit="us/task",
        median=statistics.median(per_task_us),
        min=min(per_task_us),
        samples=per_task_us,
    )


def test_fused_flood_throughput():
    """Throughput of the same flood volume submitted as chained
    ``submit_many`` batches with task fusion on: 250 chains of 8 noop
    tasks collapse into 250 fused units, so 2000 tasks pay 250
    ready-queue round trips.  The asserted bar is a throughput ratio
    over ``many_small_tasks`` *from the same session* — an absolute
    floor would drift with the host box.

    On where the ratio lands: fusion removes the ready-queue round
    trip, the worker wake-up and the per-call dispatch lock (~6-8 us
    of a noop task's ~25 us), but every member still pays the shared
    per-task floor — instance + future construction, dependency scan,
    trace record, completion bookkeeping — which bounds the
    achievable ratio near 1.5x on a GIL-serialized noop flood.  The
    assertion is set well below the measured ~1.3-1.5x median because
    CI boxes show large run-to-run variance; ``speedup_vs_unfused``
    in BENCH_scheduler.json records the real measured ratio.

    Runs after ``test_many_small_tasks_throughput`` (file order) so the
    comparison metric is already recorded.
    """
    width = 250
    depth = N_FLOOD // width
    stats = {}

    def run():
        cfg = RuntimeConfig(executor="threads", max_workers=4, fusion=True)
        with Runtime(config=cfg) as rt:
            futs = rt.submit_many([_noop.defer(i) for i in range(width)])
            for _ in range(depth - 1):
                futs = rt.submit_many([_noop.defer(f) for f in futs])
            out = wait_on(futs)
            stats.update(rt.stats())
        assert out == list(range(width))

    samples = _timed(run)
    best = min(samples)
    sched = stats.get("scheduler", {})
    _record(
        "fused_flood",
        unit="tasks/s",
        tasks_per_s=N_FLOOD / best,
        wall_s=best,
        fused_units=sched.get("fused_units"),
        fused_tasks=sched.get("fused_tasks"),
        worker_parks=sched.get("worker_parks"),
        samples=[N_FLOOD / s for s in samples],
    )
    assert sched.get("fused_tasks", 0) == N_FLOOD, sched
    assert sched.get("fused_units", 0) == width, sched
    baseline = _metrics.get("many_small_tasks", {}).get("tasks_per_s")
    if baseline:
        ratio = (N_FLOOD / best) / baseline
        _metrics["fused_flood"]["speedup_vs_unfused"] = ratio
        assert ratio >= 1.1, (
            f"fused flood only {ratio:.2f}x over unfused flood "
            f"({N_FLOOD / best:.0f} vs {baseline:.0f} tasks/s)"
        )


def test_dependency_chain_latency():
    """Per-edge scheduling latency: a serial chain leaves no
    parallelism, so the wake-up path *is* the cost."""
    per_edge_us = []
    for i in range(WARMUP + REPEATS):
        with Runtime(executor="threads", max_workers=2):
            t0 = time.perf_counter()
            f = _noop(0)
            for _ in range(N_CHAIN):
                f = _noop(f)
            assert wait_on(f) == 0
            dt = time.perf_counter() - t0
        if i >= WARMUP:
            per_edge_us.append(dt / N_CHAIN * 1e6)
    _record(
        "dependency_chain",
        unit="us/edge",
        median=statistics.median(per_edge_us),
        min=min(per_edge_us),
        samples=per_edge_us,
    )
