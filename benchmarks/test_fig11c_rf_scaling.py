"""Figure 11c — Random Forest training time vs core count: the paper's
negative result.

The paper observes "very bad scalability" and attributes it to (1) the
small number of tasks the algorithm generates — independent of block
size — and (2) load imbalance between the per-tree tasks.  Both causes
are structural, so they reproduce in the replayed DAG: 40 estimators
yield ~200 single-core tasks, which one or two 48-core nodes already
saturate.
"""

from __future__ import annotations

import pytest

import repro.dsarray as ds
from repro.cluster import NodeSpec, core_sweep, format_sweep, speedups
from repro.ml import RandomForestClassifier
from repro.runtime import Runtime
from benchmarks.conftest import make_blobs

NODE = NodeSpec(cores=48, name="mn4")


@pytest.fixture(scope="module")
def rf_trace():
    x, y = make_blobs(n=3000, d=48, sep=1.2, seed=3)
    with Runtime(executor="threads", max_workers=8) as rt:
        dx = ds.array(x, block_size=(250, 48))
        dy = ds.array(y, block_size=(250, 1))
        RandomForestClassifier(n_estimators=40, distr_depth=1, random_state=0).fit(dx, dy)
        rt.barrier()
        return rt.trace()


def test_fig11c_rf_poor_scaling(benchmark, rf_trace, write_result):
    points = benchmark.pedantic(
        core_sweep,
        args=(rf_trace, NODE, [1, 2, 3, 4]),
        rounds=1,
        iterations=1,
    )
    table = format_sweep(points, "Fig 11c: Random Forest training time (simulated)")
    write_result("fig11c_rf_scaling", table)

    sp = speedups(points)
    benchmark.extra_info["speedup_192"] = sp[192]

    # Shape criteria: RF must NOT scale like CSVM/KNN.  Beyond 2 nodes
    # there is nothing left to parallelise (task count < cores).
    times = {p.total_cores: p.makespan for p in points}
    assert sp[192] < 2.0, f"RF should scale poorly, got {sp}"
    assert times[192] >= times[96] * 0.9, "no meaningful gain beyond 2 nodes"


def test_fig11c_task_count_small_and_block_independent():
    """Cause (1): the task count is small and does not grow with the
    number of blocks (unlike CSVM/KNN)."""
    x, y = make_blobs(n=1200, d=24, sep=1.2, seed=4)

    def rf_task_count(row_block):
        with Runtime(executor="sequential") as rt:
            dx = ds.array(x, block_size=(row_block, 24))
            dy = ds.array(y, block_size=(row_block, 1))
            RandomForestClassifier(n_estimators=10, distr_depth=1, random_state=0).fit(dx, dy)
            counts = rt.graph.count_by_name()
        return {
            k: v
            for k, v in counts.items()
            if k in ("_bootstrap", "_node_split", "_build_subtree", "_join_node")
        }

    assert rf_task_count(100) == rf_task_count(400)


def test_fig11c_load_imbalance_present(rf_trace):
    """Cause (2): per-tree build tasks have skewed durations."""
    import numpy as np

    builds = [r.duration for r in rf_trace if r.name == "_build_subtree"]
    assert len(builds) >= 40
    builds = np.array(builds)
    assert builds.max() > 1.5 * np.median(builds)
