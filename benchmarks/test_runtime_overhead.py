"""Runtime micro-benchmarks: per-task overhead of the two executors.

Not a paper figure — the performance artefact any runtime README needs.
The numbers bound how fine-grained tasks can usefully be (PyCOMPSs
documents the same trade-off: tasks should be >> the runtime's per-task
cost).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import Runtime, task, wait_on


@task(returns=1)
def _noop(x):
    return x


@task(returns=1)
def _sum_chunk(a):
    return float(np.sum(a))


N_TASKS = 200


def test_sequential_task_overhead(benchmark):
    def run():
        with Runtime(executor="sequential") as rt:
            out = wait_on([_noop(i) for i in range(N_TASKS)])
            wakeups = rt.stats()["idle_wakeups"]
        return out, wakeups

    out, wakeups = benchmark(run)
    assert out == list(range(N_TASKS))
    # Sequential execution is saturated by definition (every wait finds
    # its value already computed): a quiesced run must never have
    # parked a thread.  Any nonzero count is a scheduler regression.
    assert wakeups == 0


def test_threads_task_overhead(benchmark):
    def run():
        with Runtime(executor="threads", max_workers=4) as rt:
            out = wait_on([_noop(i) for i in range(N_TASKS)])
            wakeups = rt.stats()["idle_wakeups"]
        return out, wakeups

    out, wakeups = benchmark(run)
    assert out == list(range(N_TASKS))
    # Every park must be attributable to an event wait, never a poll:
    # bounded by the number of tasks, independent of wall-clock time.
    assert wakeups <= N_TASKS


def test_threads_amortise_numeric_work(benchmark):
    """With real NumPy work per task, the threaded executor beats the
    sequential one (GIL released inside the kernels)."""
    rng = np.random.default_rng(0)
    chunks = [rng.standard_normal(400_000) for _ in range(16)]
    expected = [float(np.sum(c)) for c in chunks]

    def run():
        with Runtime(executor="threads", max_workers=8):
            return wait_on([_sum_chunk(c) for c in chunks])

    out = benchmark(run)
    np.testing.assert_allclose(out, expected)


def test_dependency_chain_overhead(benchmark):
    """Per-edge cost: a serial chain of 100 tasks."""

    def run():
        with Runtime(executor="sequential"):
            f = _noop(0)
            for _ in range(100):
                f = _noop(f)
            return wait_on(f)

    assert benchmark(run) == 0
