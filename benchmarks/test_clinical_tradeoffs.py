"""E18 — the paper's §V clinical deployment discussion, quantified.

"More important than overall accuracy is choosing a model based on
clinical priorities, specifically whether it should have a precision
focus or a recall focus. [...] In the context of real-world stroke
intervention, it is preferable for a classifier to predict a normal
signal as AF (false positive) rather than predicting AF as a normal
signal (false negative)."

This bench produces the operating-point table that discussion implies:
for probability-producing models (RF and the CNN), sweep the AF
threshold and report the recall-focused operating point (recall ≥ 0.95
at maximum precision) next to the default 0.5 threshold.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.dsarray as ds
from repro.ecg import ECGConfig
from repro.ml import RandomForestClassifier
from repro.ml.metrics import precision_score, recall_score, roc_auc_score
from repro.runtime import Runtime
from repro.workflows import PipelineConfig, extract_features, prepare_dataset

CFG = PipelineConfig(
    scale=0.015,
    seed=3,
    block_size=(32, 128),
    decimate=8,
    ecg=ECGConfig(noise_std=0.25, fwave_amplitude=0.03, nsr_rr_std=0.10, af_rr_std=0.12),
)


def operating_points(y_true, p_af):
    """Default-threshold and recall-focused operating points."""
    default = (p_af >= 0.5).astype(float)
    out = {
        "auc": roc_auc_score(y_true, p_af, 1.0),
        "default": {
            "precision": precision_score(y_true, default, 1.0),
            "recall": recall_score(y_true, default, 1.0),
        },
    }
    # recall-focused: smallest threshold set that achieves recall>=0.95
    best = None
    for thr in np.unique(p_af):
        pred = (p_af >= thr).astype(float)
        rec = recall_score(y_true, pred, 1.0)
        if rec >= 0.95:
            prec = precision_score(y_true, pred, 1.0)
            if best is None or prec > best[1]:
                best = (float(thr), prec, rec)
    out["recall_focused"] = (
        {"threshold": best[0], "precision": best[1], "recall": best[2]}
        if best
        else None
    )
    return out


def test_e18_clinical_operating_points(benchmark, write_result):
    def run():
        dataset = prepare_dataset(CFG)
        feats, labels = extract_features(dataset, CFG)
        split = int(0.75 * len(feats))
        with Runtime(executor="threads", max_workers=8):
            dx_tr = ds.array(feats[:split], CFG.block_size)
            dy_tr = ds.array(labels[:split].reshape(-1, 1), (CFG.block_size[0], 1))
            dx_te = ds.array(feats[split:], CFG.block_size)
            rf = RandomForestClassifier(n_estimators=40, random_state=0).fit(dx_tr, dy_tr)
            p_af = rf.predict_proba(dx_te)[:, 1]
        return operating_points(labels[split:], p_af)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "E18: clinical operating points (RF on held-out data, AF positive)",
        f"AUC: {points['auc']:.3f}",
        f"default 0.5 threshold : precision={points['default']['precision']:.3f} "
        f"recall={points['default']['recall']:.3f}",
    ]
    rf_point = points["recall_focused"]
    assert rf_point is not None, "no threshold achieves recall >= 0.95"
    lines.append(
        f"recall-focused (>=0.95): threshold={rf_point['threshold']:.2f} "
        f"precision={rf_point['precision']:.3f} recall={rf_point['recall']:.3f}"
    )
    write_result("e18_clinical_tradeoffs", "\n".join(lines))
    benchmark.extra_info["auc"] = round(points["auc"], 3)

    # the paper's preference is implementable: a recall>=0.95 operating
    # point exists with usable precision
    assert points["auc"] > 0.85
    assert rf_point["recall"] >= 0.95
    assert rf_point["precision"] > 0.5
