"""Instrumentation overhead microbenchmark.

The telemetry layer sits on the scheduler hot path (every lifecycle
transition emits an event when anyone is listening), so the whole
design only holds if it is cheap.  Three measurements, recorded to
``BENCH_observability.json`` at the repository root:

* **submit latency** (the asserted contract, same shape as the
  ``BENCH_scheduler.json`` baseline): per-submission cost with
  telemetry off must be indistinguishable from an uninstrumented
  runtime (the falsy-bus fast path skips event construction
  entirely), and with metrics on it must pay less than 10%.  The
  submissions are gated behind a blocked dependency so the timed
  window measures what *submission* pays (the ``submitted`` event +
  one registry update) — on a single-core box an undammed flood would
  attribute the worker-side events to the submit window too via GIL
  crosstalk, which the end-to-end measurement below covers instead;
* **end-to-end flood** wall time, which additionally pays the
  ``ready``/``dispatched``/``running``/``done`` events per task
  against a ~50us no-op task — the worst case by construction (real
  task bodies dwarf it).  Recorded for trend tracking with a loose
  sanity bound;
* **per-event unit cost** of bus dispatch + registry update for the
  most expensive (terminal) event kind;
* **trace propagation** (PR 10): the distributed-tracing layer mints a
  span context per submission (``collect_trace=True``, the default) —
  its added per-submit cost must stay under 10% of the PR-3-shaped
  submit latency, same contract shape as the metrics bound.

The µs-scale sections disable the cyclic GC inside their timed
windows (a gen2 collection costs ~ms and would dominate the noise
floor); the collector is always re-enabled before draining.

Repeats interleave the on/off configurations so CPU-frequency drift
and cache state hit both arms equally; min-of-N is compared, the
standard trick for shaving scheduler noise off microbenchmarks.
"""

from __future__ import annotations

import gc
import json
import pathlib
import statistics
import threading
import time

import pytest

from repro.runtime import Runtime, RuntimeConfig, task, wait_on
from repro.runtime import observability as obs

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_observability.json"

N_FLOOD = 2000
REPEATS = 9
# Headroom over the "within noise" claim: single-core CI boxes jitter a
# few percent run to run even with interleaving + min-of-N.
OFF_BOUND = 1.05
ON_BOUND = 1.10
# The ratio bounds degenerate on fast boxes: the event cost is a fixed
# couple of µs while the submit path it is compared against scales with
# CPU speed (the seed box measured ~45 µs/submit, faster ones ~24 µs),
# so the same absolute cost can read as 5% or 10%.  The absolute floors
# keep the contract meaningful there: metrics may add up to 3.5 µs per
# submission (seed recorded 2.25 µs) and the off arm — which runs code
# identical to the baseline arm — may sit up to 2 µs of pure timer
# noise above it before either counts as a regression.
ON_ABS_FLOOR_S = 3.5e-6
OFF_ABS_FLOOR_S = 2.0e-6
FLOOD_SANITY_BOUND = 1.6

_metrics: dict[str, dict] = {}


@pytest.fixture(scope="session", autouse=True)
def _write_bench_file():
    """Persist every metric recorded this session to BENCH_observability.json."""
    yield
    if not _metrics:
        return
    from repro.runtime import atomic_write

    payload = {
        "bench": "observability_overhead",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "params": {
            "n_flood": N_FLOOD,
            "repeats": REPEATS,
            "off_bound": OFF_BOUND,
            "on_bound": ON_BOUND,
            "flood_sanity_bound": FLOOD_SANITY_BOUND,
        },
        "metrics": _metrics,
    }
    atomic_write(BENCH_FILE, json.dumps(payload, indent=2, sort_keys=True) + "\n")


_GATE = threading.Event()


@task(returns=1)
def _noop(x):
    return x


@task(returns=1)
def _gate():
    _GATE.wait()
    return 0


@task(returns=1)
def _gated_noop(gate, x):
    return x


def _gated_submit(observability: str, *, collect_trace: bool = True) -> float:
    """Per-submission seconds while every submitted task is dammed
    behind a blocked dependency (workers idle during the window)."""
    _GATE.clear()
    cfg = RuntimeConfig(
        executor="threads",
        max_workers=4,
        observability=observability,
        collect_trace=collect_trace,
    )
    with Runtime(config=cfg) as rt:
        gate = _gate()
        time.sleep(0.02)  # let the gate task occupy its worker
        # GC pauses landing inside the window would otherwise dominate
        # the noise floor (a gen2 collection costs ~ms); the collector
        # is re-enabled before the drain.
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            futs = [_gated_noop(gate, i) for i in range(N_FLOOD)]
            t1 = time.perf_counter()
        finally:
            gc.enable()
        _GATE.set()
        out = wait_on(futs)
        if observability:
            rt.shutdown()  # drain barrier: reconcile needs a quiesced bus
            assert obs.reconcile(rt) == []
    assert len(out) == N_FLOOD
    return (t1 - t0) / N_FLOOD


def _flood(observability: str) -> float:
    """End-to-end submit+schedule+drain seconds for a no-op flood."""
    cfg = RuntimeConfig(executor="threads", max_workers=4, observability=observability)
    with Runtime(config=cfg) as rt:
        t0 = time.perf_counter()
        out = wait_on([_noop(i) for i in range(N_FLOOD)])
        dt = time.perf_counter() - t0
        if observability:
            rt.shutdown()  # drain barrier: reconcile needs a quiesced bus
            assert obs.reconcile(rt) == []
    assert len(out) == N_FLOOD
    return dt


def _flood_submit_baseline() -> float:
    """Per-submission seconds in the exact shape of the PR-3
    ``submit_latency_threads`` benchmark (pool draining concurrently,
    telemetry off) — the denominator the <10% bound is stated
    against."""
    cfg = RuntimeConfig(executor="threads", max_workers=4)
    with Runtime(config=cfg):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            futs = [_noop(i) for i in range(N_FLOOD)]
            t1 = time.perf_counter()
        finally:
            gc.enable()
        out = wait_on(futs)
    assert len(out) == N_FLOOD
    return (t1 - t0) / N_FLOOD


def test_submit_latency_overhead_bounds():
    """The asserted contract: per-submit latency with telemetry off is
    indistinguishable from the baseline, and the absolute cost metrics
    on adds per submission (one ``submitted`` event + one registry
    counter bump, measured as a min-of-N delta in the gated window) is
    <10% of the PR-3-shaped submit-latency measurement."""
    arms: dict[str, list[float]] = {"baseline": [], "off": [], "on": []}
    _gated_submit("")  # warm up code paths outside the timed repeats
    _gated_submit("metrics")
    for _ in range(REPEATS):
        for name, flags in (("baseline", ""), ("off", ""), ("on", "metrics")):
            arms[name].append(_gated_submit(flags))
    pr3_submit = min(_flood_submit_baseline() for _ in range(5))

    base = min(arms["baseline"])
    off_ratio = min(arms["off"]) / base
    added = max(min(arms["on"]) - base, 0.0)
    on_ratio = 1.0 + added / pr3_submit
    _metrics["submit_latency_overhead"] = {
        "unit": "us/task (min of repeats)",
        "n_tasks": N_FLOOD,
        "gated_baseline_us": base * 1e6,
        "gated_metrics_off_us": min(arms["off"]) * 1e6,
        "gated_metrics_on_us": min(arms["on"]) * 1e6,
        "added_per_submit_us": added * 1e6,
        "pr3_submit_baseline_us": pr3_submit * 1e6,
        "off_ratio": off_ratio,
        "on_ratio": on_ratio,
        "samples_us": {k: [s * 1e6 for s in v] for k, v in arms.items()},
    }
    # metrics off IS the baseline configuration; both arms run the
    # identical code path, so this is a pure noise measurement that
    # keeps the bus-truthiness fast path honest.  Each bound passes on
    # either the ratio or the absolute floor (see ON_ABS_FLOOR_S).
    off_added = min(arms["off"]) - base
    assert off_ratio < OFF_BOUND or off_added < OFF_ABS_FLOOR_S, (
        f"metrics-off overhead {off_ratio:.3f} >= {OFF_BOUND} "
        f"and {off_added * 1e6:.2f}us >= {OFF_ABS_FLOOR_S * 1e6:.1f}us"
    )
    assert on_ratio < ON_BOUND or added < ON_ABS_FLOOR_S, (
        f"metrics-on overhead {on_ratio:.3f} >= {ON_BOUND} "
        f"and {added * 1e6:.2f}us >= {ON_ABS_FLOOR_S * 1e6:.1f}us"
    )


def test_trace_propagation_overhead_bound():
    """PR 10 contract: minting a span context per submission
    (``collect_trace=True``, the default) must add <10% to the
    PR-3-shaped submit latency.  Same gated-window / interleaved /
    min-of-N protocol as the metrics bound; telemetry stays off in
    both arms so the delta isolates the tracing layer."""
    arms: dict[str, list[float]] = {"off": [], "on": []}
    _gated_submit("", collect_trace=False)  # warm up outside the repeats
    _gated_submit("", collect_trace=True)
    for _ in range(REPEATS):
        arms["off"].append(_gated_submit("", collect_trace=False))
        arms["on"].append(_gated_submit("", collect_trace=True))
    pr3_submit = min(_flood_submit_baseline() for _ in range(5))

    base = min(arms["off"])
    added = max(min(arms["on"]) - base, 0.0)
    on_ratio = 1.0 + added / pr3_submit
    _metrics["trace_propagation"] = {
        "unit": "us/task (min of repeats)",
        "n_tasks": N_FLOOD,
        "gated_trace_off_us": base * 1e6,
        "gated_trace_on_us": min(arms["on"]) * 1e6,
        "added_per_submit_us": added * 1e6,
        "pr3_submit_baseline_us": pr3_submit * 1e6,
        "on_ratio": on_ratio,
        "samples_us": {k: [s * 1e6 for s in v] for k, v in arms.items()},
    }
    assert on_ratio < ON_BOUND, (
        f"tracing-on overhead {on_ratio:.3f} >= {ON_BOUND}"
    )


def test_flood_end_to_end_overhead():
    """Worst-case end-to-end cost: all five lifecycle events per task
    against a no-op body, workers and submitter sharing one core."""
    baseline: list[float] = []
    metrics_on: list[float] = []
    _flood("")
    _flood("metrics")
    for _ in range(5):
        baseline.append(_flood(""))
        metrics_on.append(_flood("metrics"))
    base, on = min(baseline), min(metrics_on)
    on_ratio = on / base
    _metrics["flood_end_to_end"] = {
        "unit": "s (min of repeats)",
        "n_tasks": N_FLOOD,
        "baseline_s": base,
        "metrics_on_s": on,
        "on_ratio": on_ratio,
        "per_task_cost_us": (on - base) / N_FLOOD * 1e6,
        "baseline_samples": baseline,
        "metrics_on_samples": metrics_on,
    }
    assert on_ratio < FLOOD_SANITY_BOUND, (
        f"end-to-end overhead {on_ratio:.3f} >= {FLOOD_SANITY_BOUND}"
    )


def test_event_emission_unit_cost():
    """Per-event cost of the bus + registry, measured directly (no
    scheduler around it) on the most expensive event kind (terminal,
    three histogram observes): the number that must stay small
    relative to the ~40us submit path."""
    reg = obs.MetricsRegistry(max_workers=4)
    bus = obs.EventBus()
    bus.subscribe(reg.handle)
    n = 20000
    events = [
        obs.TaskEvent(
            kind=obs.DONE, t=float(i), task_id=i, root_id=i, name="bench",
            state="done", ran=True, duration=1e-4, queue_wait=1e-5, overhead=1e-5,
            worker="w-0",
        )
        for i in range(n)
    ]
    samples = []
    gc.collect()
    gc.disable()
    try:
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            for ev in events:
                bus.emit(ev)
            samples.append((time.perf_counter() - t0) / n * 1e6)
    finally:
        gc.enable()
    _metrics["event_emission"] = {
        "unit": "us/event",
        "median": statistics.median(samples),
        "min": min(samples),
        "samples": samples,
    }
    assert min(samples) < 10.0
