"""E16 — federated learning (the paper's §V future work), quantified.

The paper sketches the setup: devices with local data train local
models whose outcomes are combined by a general model.  This bench
measures the property that makes the task-based formulation attractive:
client updates of one round are independent tasks, so round wall-clock
scales with the number of devices that can compute concurrently.

Method: run a real federation (8 clients x several rounds) under the
recording runtime, then replay the trace on simulated edge fleets of
1..8 single-core devices (plus an aggregation server).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, NodeSpec, simulate
from repro.cluster.costmodel import CostModel, name_mean_smoother
from repro.federated import ClientData, FederatedConfig, Federation, iid_partition
from repro.nn import Sequential
from repro.nn.layers import Dense, ReLU
from repro.runtime import Runtime

N_CLIENTS = 8
ROUNDS = 4


def make_federation_trace():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((800, 6))
    y = (x[:, :3].sum(axis=1) > 0).astype(int)
    parts = iid_partition(len(x), N_CLIENTS, rng)
    clients = [ClientData(x[p], y[p]) for p in parts]
    config = Sequential(
        [Dense(6, 24, rng), ReLU(), Dense(24, 2, rng)]
    ).config()
    cfg = FederatedConfig(rounds=ROUNDS, local_epochs=2, lr=0.05)
    with Runtime(executor="threads", max_workers=8) as rt:
        fed = Federation(config, clients, cfg)
        fed.fit()
        rt.barrier()
        return rt.trace()


@pytest.fixture(scope="module")
def federation_trace():
    return make_federation_trace()


def test_e16_round_time_scales_with_devices(benchmark, federation_trace, write_result):
    cm = CostModel(base_duration=name_mean_smoother(federation_trace))

    def run():
        out = {}
        for n_devices in (1, 2, 4, 8):
            fleet = ClusterSpec(
                node=NodeSpec(cores=1, name="edge-device"),
                n_nodes=n_devices,  # aggregation shares a device
                bandwidth=12.5e6,  # ~100 Mb/s uplink
                latency=20e-3,
            )
            res = simulate(federation_trace, fleet, cost_model=cm)
            out[n_devices] = res.makespan
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "E16: federated round scaling on a simulated edge fleet",
        f"{'devices':>8} {'total time(s)':>14} {'speedup':>8}",
    ]
    base = out[1]
    for n, t in out.items():
        lines.append(f"{n:>8} {t:>14.3f} {base / t:>8.2f}")
    write_result("e16_federated_scaling", "\n".join(lines))
    benchmark.extra_info.update({str(k): round(v, 3) for k, v in out.items()})

    # client updates are independent: near-linear until device count
    # matches clients, with the aggregation as the serial fraction
    assert out[2] < out[1] * 0.7
    assert out[8] < out[4]
    assert out[8] > base / (N_CLIENTS * 1.5)  # aggregation bounds it


def test_e16_straggler_effect(benchmark, federation_trace, write_result):
    """The synchronous-FedAvg weakness: one slow device bounds every
    round.  Replay the same federation on a uniform fleet vs one with a
    4x-slower straggler."""
    cm = CostModel(base_duration=name_mean_smoother(federation_trace))
    n = N_CLIENTS

    def run():
        uniform = ClusterSpec(
            node=NodeSpec(cores=1), n_nodes=n, bandwidth=12.5e6, latency=20e-3,
            node_speeds=(1.0,) * n,
        )
        straggled = ClusterSpec(
            node=NodeSpec(cores=1), n_nodes=n, bandwidth=12.5e6, latency=20e-3,
            node_speeds=(1.0,) * (n - 1) + (0.25,),
        )
        return {
            "uniform": simulate(federation_trace, uniform, cost_model=cm).makespan,
            "straggler": simulate(federation_trace, straggled, cost_model=cm).makespan,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "e16_straggler",
        "E16b: straggler effect on synchronous FedAvg rounds\n"
        + "\n".join(f"{k}: {v:.3f}s" for k, v in out.items()),
    )
    # a single slow device slows the whole synchronous federation...
    assert out["straggler"] > out["uniform"] * 1.05
    # ...but the scheduler's load-balancing keeps it below the naive 4x
    assert out["straggler"] < out["uniform"] * 4.0


def test_e16_round_structure(federation_trace):
    updates = [r for r in federation_trace if r.name == "client_update"]
    aggs = [r for r in federation_trace if r.name == "aggregate"]
    assert len(updates) == N_CLIENTS * ROUNDS
    assert len(aggs) == ROUNDS
    # every aggregate depends on that round's client updates
    update_ids = {r.task_id for r in updates}
    for agg in aggs:
        assert len(set(agg.deps) & update_ids) == N_CLIENTS
