"""Figure 12 — CNN training time under the three parallelisation
strategies, on the simulated CTE-Power GPU cluster.

Paper findings:

* 1 GPU per task beats 4 GPUs per task (~1.2x): the dataset is too
  small to fill 4 GPUs, so inter-GPU communication is pure overhead;
* nesting beats both (paper: 2.24x over the baseline) because the five
  folds' epoch loops run concurrently instead of serialising on the
  driver's per-epoch weight synchronisation.

Method: run all three strategies for real (threads runtime) on a small
CNN, recording traces.  The non-nested traces get their driver-side
barrier edges re-imposed (the DAG alone cannot express a ``wait_on``),
the nested trace is flattened, and each is replayed on the paper's
node counts: 4 nodes for 4-GPU-per-task, 1 node for 1-GPU-per-task,
5 nodes for nested.

One physical constant cannot be measured on CPU: the inter-GPU
synchronisation cost.  ``GPU_SYNC_FRACTION`` charges it as a fraction
of a training task's compute, reflecting the paper's observation that
communication dominates at this dataset size; given that constant,
both headline ratios *emerge* from the replayed DAG structure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    CostModel,
    compare_strategies,
    cte_power,
    flatten_nested,
    impose_barrier_order,
    simulate,
)
from repro.nn import Sequential, TrainerParams, cnn_cross_validation
from repro.nn.layers import Conv1D, Dense, Flatten, MaxPool1D, ReLU
from repro.runtime import Runtime

#: Inter-GPU weight-exchange cost as a fraction of one training task's
#: compute time (per extra GPU).  See module docstring.
GPU_SYNC_FRACTION = 0.32

N_FOLDS = 5
EPOCHS = 7


def small_cnn_config(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Conv1D(1, 8, 5, rng),
            ReLU(),
            MaxPool1D(4),
            Flatten(),
            Dense(8 * 31, 16, rng),
            ReLU(),
            Dense(16, 2, rng),
        ]
    ).config()


def make_signals(n=300, length=128, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    x = rng.standard_normal((n, 1, length)) * 0.3
    y = rng.integers(0, 2, n)
    x[y == 1] += np.sin(t / 2.0)
    x[y == 0] += np.sin(t / 8.0)
    return x, y


def record_strategy(nested: bool, gpus_per_worker: int):
    x, y = make_signals()
    cfg = small_cnn_config()
    params = TrainerParams(
        epochs=EPOCHS, n_workers=4, gpus_per_worker=gpus_per_worker,
        lr=0.02, batch_size=32,
    )
    with Runtime(executor="threads", max_workers=8) as rt:
        cnn_cross_validation(cfg, x, y, n_splits=N_FOLDS, params=params, nested=nested)
        rt.barrier()
        return rt.trace()


@pytest.fixture(scope="module")
def strategy_traces():
    return {
        "no_nesting_4gpu": record_strategy(nested=False, gpus_per_worker=4),
        "no_nesting_1gpu": record_strategy(nested=False, gpus_per_worker=1),
        "nesting_1gpu": record_strategy(nested=True, gpus_per_worker=1),
    }


def _cost_model(traces) -> CostModel:
    """4-GPU tasks: recorded CPU time covers the *total* compute of the
    4 replicas, so a real 4-GPU run does it in a quarter of the time
    plus the synchronisation overhead.  Same-named tasks do identical
    work (equal shards), so per-name mean smoothing strips the noise
    the loaded recording machine adds to individual timings.  Only the
    non-nested recordings feed the smoother: the nested run packs ~20
    concurrent tasks onto the recording machine's workers, inflating
    its raw timings with contention that would not exist on the
    simulated cluster."""
    from repro.cluster.costmodel import name_mean_smoother

    one_gpu_mean = np.mean(
        [r.duration for r in traces["no_nesting_1gpu"] if r.name == "train_epoch_1gpu"]
    )
    return CostModel(
        base_duration=name_mean_smoother(
            traces["no_nesting_4gpu"], traces["no_nesting_1gpu"]
        ),
        per_name_scale={"train_epoch_4gpu": 0.25},
        gpu_sync_overhead=GPU_SYNC_FRACTION * float(one_gpu_mean),
    )


def _replay_all(traces):
    cm = _cost_model(traces)
    results = {}
    # (i) non-nested, 4 GPUs/task -> 4 tasks need 16 GPUs = 4 nodes
    t = impose_barrier_order(traces["no_nesting_4gpu"], "merge_weights")
    results["no_nesting_4gpu"] = simulate(t, cte_power(4), cost_model=cm)
    # (ii) non-nested, 1 GPU/task -> 4 tasks fit one node
    t = impose_barrier_order(traces["no_nesting_1gpu"], "merge_weights")
    results["no_nesting_1gpu"] = simulate(t, cte_power(1), cost_model=cm)
    # nested: 5 folds x 4 tasks, one GPU each -> 5 nodes
    t = flatten_nested(traces["nesting_1gpu"])
    results["nesting_1gpu"] = simulate(t, cte_power(5), cost_model=cm)
    return results


def test_fig12_strategy_comparison(benchmark, strategy_traces, write_result):
    results = benchmark.pedantic(
        _replay_all, args=(strategy_traces,), rounds=1, iterations=1
    )
    sp = compare_strategies(results, baseline="no_nesting_4gpu")

    lines = ["Fig 12: CNN training strategies (simulated CTE-Power)"]
    lines.append(f"{'strategy':>20} {'nodes':>6} {'time(s)':>10} {'vs 4gpu':>9}")
    nodes = {"no_nesting_4gpu": 4, "no_nesting_1gpu": 1, "nesting_1gpu": 5}
    for name, res in results.items():
        lines.append(
            f"{name:>20} {nodes[name]:>6} {res.makespan:>10.2f} {sp[name]:>9.2f}"
        )
    write_result("fig12_cnn_strategies", "\n".join(lines))

    benchmark.extra_info.update({k: round(v, 3) for k, v in sp.items()})

    # Shape criteria (paper: 1.2x and 2.24x):
    # (a) one GPU per task beats four GPUs per task
    assert 1.05 < sp["no_nesting_1gpu"] < 1.8, sp
    # (b) nesting is the fastest strategy overall
    assert sp["nesting_1gpu"] > sp["no_nesting_1gpu"], sp
    assert sp["nesting_1gpu"] > 1.5, sp
    # (c) but is bounded by the K-fold parallelism times the 4-GPU
    # inefficiency; the paper's much lower 2.24x additionally pays a
    # heavy serial dataset-distribution prefix that our substrate makes
    # negligible (see EXPERIMENTS.md).
    assert sp["nesting_1gpu"] < N_FOLDS * 2.0, sp


def test_fig9_fig10_task_structure(strategy_traces):
    """The graph shapes behind the figure: non-nested runs have
    top-level epoch tasks; nested runs group them under fold tasks."""
    flat = strategy_traces["no_nesting_1gpu"]
    nested = strategy_traces["nesting_1gpu"]

    flat_trains = [r for r in flat if r.name == "train_epoch_1gpu"]
    assert len(flat_trains) == N_FOLDS * EPOCHS * 4
    assert all(r.parent_id is None for r in flat_trains)

    folds = [r for r in nested if r.name == "fold_train"]
    assert len(folds) == N_FOLDS
    nested_trains = [r for r in nested if r.name == "train_epoch_1gpu"]
    fold_ids = {r.task_id for r in folds}
    assert all(r.parent_id in fold_ids for r in nested_trains)


def test_fold_overlap_only_with_nesting(strategy_traces):
    """Nesting's entire point: fold executions overlap in wall-clock
    time; the non-nested driver's barriers mostly serialise them."""
    nested = strategy_traces["nesting_1gpu"]
    folds = sorted(
        (r for r in nested if r.name == "fold_train"), key=lambda r: r.t_start
    )
    overlaps = sum(
        1
        for a, b in zip(folds[:-1], folds[1:])
        if b.t_start < a.t_end - 1e-6
    )
    assert overlaps >= N_FOLDS - 2  # nearly all folds overlap
