"""Figures 4, 6, 8, 9, 10 — the PyCOMPSs execution graphs.

These figures are structural: coloured task nodes and dependency
edges.  Each benchmark regenerates the corresponding workflow, exports
the DOT rendering to ``benchmarks/results/``, and asserts the
structural properties the paper calls out (task types, first-layer
width, reduction shape, nesting)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.dsarray as ds
from repro.ml import CascadeSVM, KNeighborsClassifier, RandomForestClassifier
from repro.nn import Sequential, TrainerParams, cnn_cross_validation
from repro.nn.layers import Dense, ReLU
from repro.runtime import Runtime, graph_summary, to_dot
from benchmarks.conftest import make_blobs


def _run_and_export(fit_fn, title, write_result):
    with Runtime(executor="sequential") as rt:
        fit_fn()
        dot = to_dot(rt.graph, title=title)
        summary = graph_summary(rt.graph)
    write_result(title, dot)
    return summary


def test_fig4_csvm_graph(benchmark, write_result):
    """Fig 4: cascade — one task per partition, pairwise merge tree."""
    x, y = make_blobs(n=800, d=16, sep=2.5, seed=0)

    def run():
        dx = ds.array(x, (100, 16))
        dy = ds.array(y, (100, 1))
        CascadeSVM(max_iter=1, check_convergence=False).fit(dx, dy)

    summary = benchmark.pedantic(
        _run_and_export, args=(run, "fig4_csvm_graph", write_result), rounds=1, iterations=1
    )
    by_name = summary["by_name"]
    assert by_name["_train_partition"] == 8
    assert by_name["_merge_train"] == 7  # 4 + 2 + 1
    # depth: load -> train -> 3 merge levels -> final model
    assert summary["depth"] >= 5
    assert summary["max_width"] >= 8


def test_fig6_knn_graph(benchmark, write_result):
    """Fig 6: KNN — fit per row block, predict per block pair + merge."""
    x, y = make_blobs(n=400, d=8, sep=2.5, seed=1)

    def run():
        dx = ds.array(x, (100, 8))
        dy = ds.array(y, (100, 1))
        clf = KNeighborsClassifier(n_neighbors=5).fit(dx, dy)
        clf.predict(dx)

    summary = benchmark.pedantic(
        _run_and_export, args=(run, "fig6_knn_graph", write_result), rounds=1, iterations=1
    )
    by_name = summary["by_name"]
    assert by_name["_fit_stripe"] == 4
    assert by_name["_local_kneighbors"] == 16
    assert by_name["_merge_kneighbors"] == 4


def test_fig8_rf_graph(benchmark, write_result):
    """Fig 8: RF with 40 estimators — per-estimator task chains."""
    x, y = make_blobs(n=400, d=8, sep=1.5, seed=2)

    def run():
        dx = ds.array(x, (100, 8))
        dy = ds.array(y, (100, 1))
        RandomForestClassifier(n_estimators=40, distr_depth=1, random_state=0).fit(dx, dy)

    summary = benchmark.pedantic(
        _run_and_export, args=(run, "fig8_rf_graph", write_result), rounds=1, iterations=1
    )
    by_name = summary["by_name"]
    assert by_name["_bootstrap"] == 40
    assert by_name["_node_split"] == 40
    assert by_name["_build_subtree"] == 80
    assert by_name["_join_node"] == 40
    # the 40 estimators are independent: huge width, shallow depth
    assert summary["max_width"] >= 40


def _cnn_setup():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((60, 6))
    y = (x.sum(axis=1) > 0).astype(int)
    cfg = Sequential([Dense(6, 8, rng), ReLU(), Dense(8, 2, rng)]).config()
    params = TrainerParams(epochs=3, n_workers=4, lr=0.05)
    return cfg, x, y, params


def test_fig9_cnn_graph(benchmark, write_result):
    """Fig 9: without nesting, each epoch is 4 train tasks + a merge,
    and the driver synchronises between epochs."""
    cfg, x, y, params = _cnn_setup()

    def run():
        cnn_cross_validation(cfg, x, y, n_splits=2, params=params, nested=False)

    summary = benchmark.pedantic(
        _run_and_export, args=(run, "fig9_cnn_graph", write_result), rounds=1, iterations=1
    )
    by_name = summary["by_name"]
    assert by_name["train_epoch_1gpu"] == 2 * 3 * 4  # folds x epochs x workers
    assert by_name["merge_weights"] == 2 * 3
    assert by_name["evaluate_model"] == 2


def test_fig10_cnn_nested_graph(benchmark, write_result):
    """Fig 10: with nesting, the training tasks of each fold are
    grouped under one fold task."""
    cfg, x, y, params = _cnn_setup()

    def run():
        cnn_cross_validation(cfg, x, y, n_splits=2, params=params, nested=True)

    summary = benchmark.pedantic(
        _run_and_export, args=(run, "fig10_cnn_nested_graph", write_result), rounds=1, iterations=1
    )
    by_name = summary["by_name"]
    assert by_name["fold_train"] == 2
    assert by_name["train_epoch_1gpu"] == 2 * 3 * 4
