"""§III-B.4 and §III-C.1 side results:

* E14 — PCA keeps 95% of the variance while reducing the feature count
  drastically (paper: 18810 -> 3269); its cost is a fixed prefix shared
  by every algorithm (paper: ~850 s, excluded from the timings).
* E15 — blocking the input matrix generates one load task per block
  (paper: 631 tasks for the 500x500 blocking).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.dsarray as ds
from repro.ml import PCA
from repro.runtime import Runtime
from repro.workflows import PipelineConfig, extract_features, prepare_dataset

CFG = PipelineConfig(scale=0.01, seed=0, block_size=(32, 128), decimate=8, stft_batch=16)


@pytest.fixture(scope="module")
def features():
    dataset = prepare_dataset(CFG)
    feats, labels = extract_features(dataset, CFG)
    return feats


def test_e14_pca_variance_reduction(benchmark, features, write_result):
    dx = ds.array(features, CFG.block_size)

    def fit():
        return PCA(n_components=0.95).fit(dx)

    pca = benchmark.pedantic(fit, rounds=1, iterations=1)
    kept = pca.explained_variance_ratio_.sum()
    reduction = pca.n_components_ / features.shape[1]

    lines = [
        "E14: PCA variance retention (paper: 95% kept, 18810 -> 3269 features)",
        f"input features : {features.shape[1]}",
        f"components kept: {pca.n_components_}",
        f"variance kept  : {kept * 100:.1f}%",
        f"reduction      : {reduction * 100:.1f}% of original dimensionality",
    ]
    write_result("e14_pca_reduction", "\n".join(lines))

    assert kept >= 0.95
    # drastic reduction, as in the paper (they kept ~17%)
    assert reduction < 0.5


def test_e14_pca_runs_as_fixed_prefix(features):
    """PCA cost is independent of the downstream algorithm: same graph
    whatever comes after (the paper excludes it from timings)."""
    def pca_graph():
        with Runtime(executor="sequential") as rt:
            dx = ds.array(features, CFG.block_size)
            PCA(n_components=0.95).fit_transform(dx)
            return rt.graph.count_by_name()

    assert pca_graph() == pca_graph()


def test_e15_block_task_count(benchmark, write_result):
    """One load task per block.  The paper's full matrix (10308 x
    18810 at 500x500) gives 21 x 38 = 798 grid blocks; our scaled
    matrix reproduces the rule n_tasks = ceil(rows/b) * ceil(cols/b)."""
    rows, cols, b = 1030, 1881, 500

    def partition():
        with Runtime(executor="sequential") as rt:
            ds.array(np.zeros((rows, cols)), block_size=(b, b))
            return rt.graph.count_by_name()["slice_block"]

    n_tasks = benchmark.pedantic(partition, rounds=1, iterations=1)
    expected = -(-rows // b) * (-(-cols // b))
    write_result(
        "e15_task_counts",
        f"E15: {rows}x{cols} at {b}x{b} blocking -> {n_tasks} load tasks "
        f"(rule: ceil(r/b)*ceil(c/b) = {expected}; paper: 631 tasks for "
        "its 500x500 blocking)",
    )
    assert n_tasks == expected
