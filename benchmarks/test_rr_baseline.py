"""E17 — the paper's §II motivating claim.

"RR interval-based methods are limited when the ECG changes quickly
between rhythms or when AF takes place with regular ventricular rates
[...] Time-frequency domain techniques have been proposed in this
paper to overcome these limitations."

We implement the RR baseline (classic HRV features + random forest)
and compare it against the paper's STFT pipeline on two regimes:

* the **standard** regime (normal AF: irregular RR + f-waves), where
  the RR baseline is competitive — rhythm alone nearly suffices;
* the **hard** regime the paper describes: AF with (near-)regular
  ventricular rates, where the rhythm signal vanishes and only the
  time-frequency features (which still see the f-waves) keep working.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.dsarray as ds
from repro.ecg import ECGConfig, generate_dataset, rr_feature_matrix
from repro.ml import RandomForestClassifier, cross_validate
from repro.workflows import PipelineConfig, extract_features


def make_regime(regular_af: bool, n=80, seed=0):
    """Balanced dataset of short (9-12 s, AliveCor-strip-length)
    recordings; with ``regular_af`` the AF class keeps an almost
    regular ventricular response — the hard case of §II, where only
    the f-waves (a frequency-domain feature) distinguish the classes."""
    cfg = ECGConfig(
        noise_std=0.12,
        fwave_amplitude=0.05,
        af_rr_std=0.02 if regular_af else 0.18,
        af_rr_mean=0.8 if regular_af else 0.65,
        nsr_rr_std=0.02,
    )
    return generate_dataset(n // 2, n // 2, seed=seed, cfg=cfg,
                            duration_range=(9.0, 12.0))


def accuracy_rr(dataset) -> float:
    feats = rr_feature_matrix(dataset.signals)
    labels = np.where(dataset.labels == "AF", 1.0, 0.0)
    dx = ds.array(feats, (16, feats.shape[1]))
    dy = ds.array(labels.reshape(-1, 1), (16, 1))
    cv = cross_validate(
        lambda: RandomForestClassifier(n_estimators=20, random_state=0),
        dx, dy, n_splits=3,
    )
    return cv.mean_accuracy


def accuracy_stft(dataset) -> float:
    cfg = PipelineConfig(block_size=(16, 128), decimate=8, n_splits=3)
    feats, labels = extract_features(dataset, cfg)
    dx = ds.array(feats, cfg.block_size)
    dy = ds.array(labels.reshape(-1, 1), (16, 1))
    cv = cross_validate(
        lambda: RandomForestClassifier(n_estimators=20, random_state=0),
        dx, dy, n_splits=3,
    )
    return cv.mean_accuracy


def test_e17_rr_baseline_vs_time_frequency(benchmark, write_result):
    def run():
        out = {}
        for regime in ("standard", "regular_af"):
            dataset = make_regime(regular_af=regime == "regular_af")
            out[regime] = {
                "rr": accuracy_rr(dataset),
                "stft": accuracy_stft(dataset),
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "E17: RR-interval baseline vs time-frequency features (paper §II claim)",
        f"{'regime':>12} {'RR baseline':>12} {'STFT':>8}",
    ]
    for regime, accs in out.items():
        lines.append(f"{regime:>12} {accs['rr']:>12.3f} {accs['stft']:>8.3f}")
    write_result("e17_rr_baseline", "\n".join(lines))
    benchmark.extra_info.update(
        {f"{r}_{m}": round(v, 3) for r, d in out.items() for m, v in d.items()}
    )

    # Standard AF: both methods work (RR is a strong baseline).
    assert out["standard"]["rr"] > 0.9
    assert out["standard"]["stft"] > 0.85
    # Regular-rate AF on short strips: the RR baseline degrades while
    # the time-frequency features stay strong — the paper's motivation.
    assert out["regular_af"]["rr"] < out["standard"]["rr"] - 0.05
    assert out["regular_af"]["stft"] > out["regular_af"]["rr"] + 0.05
    assert out["regular_af"]["stft"] > 0.9
