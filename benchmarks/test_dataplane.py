"""Data-plane ledger: pickle-pipe traffic with the shared-memory
object store on vs off, plus store operation latency.

Not a paper figure — the perf ledger of the zero-copy data plane.  The
blocked-matmul workload (the paper's dominant communication pattern)
runs on the process backend twice: once with arguments and results
travelling by :class:`~repro.runtime.store.ObjectRef` through shared
memory, once with every block pickled over the worker pipes.  The
benchmark records the bytes that crossed the pipes each way, asserts a
>= 90% reduction with the store on *and* bit-identical results, and
appends store put/get latency micro-benchmarks.  Results land in
``BENCH_dataplane.json`` at the repository root so successive PRs can
compare runs.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np
import pytest

import repro.dsarray as ds
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.store import ObjectStore

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_dataplane.json"

MAX_WORKERS = 2
SIZE = 512
BLOCK = 128

_metrics: dict[str, dict] = {}


@pytest.fixture(scope="session", autouse=True)
def _write_bench_file():
    """Persist every metric recorded this session to BENCH_dataplane.json."""
    yield
    if not _metrics:
        return
    from repro.runtime import atomic_write

    payload = {
        "bench": "dataplane",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cpu_count": os.cpu_count(),
        "params": {
            "max_workers": MAX_WORKERS,
            "matmul_size": SIZE,
            "block": BLOCK,
        },
        "metrics": _metrics,
    }
    atomic_write(BENCH_FILE, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _matmul_run(store_mode: str) -> tuple[np.ndarray, dict]:
    """Blocked matmul on the process backend; returns (result, stats)."""
    a = np.random.default_rng(0).normal(size=(SIZE, SIZE))
    b = np.random.default_rng(1).normal(size=(SIZE, SIZE))
    cfg = RuntimeConfig(
        backend="processes", max_workers=MAX_WORKERS, store=store_mode
    )
    t0 = time.perf_counter()
    with Runtime(config=cfg) as rt:
        da = ds.array(a, (BLOCK, BLOCK))
        db = ds.array(b, (BLOCK, BLOCK))
        result = (da @ db).collect()
        stats = dict(rt.stats()["backend_stats"])
    stats["wall_s"] = time.perf_counter() - t0
    return result, stats


def test_matmul_pipe_bytes_store_on_vs_off():
    with_store, on_stats = _matmul_run("on")
    without, off_stats = _matmul_run("off")

    pipe_on = on_stats["pipe_bytes_sent"] + on_stats["pipe_bytes_recv"]
    pipe_off = off_stats["pipe_bytes_sent"] + off_stats["pipe_bytes_recv"]
    reduction = 1.0 - pipe_on / pipe_off
    _metrics["matmul_pipe_bytes"] = {
        "unit": "bytes over worker pipes (full workload)",
        "store_on": pipe_on,
        "store_off": pipe_off,
        "reduction": reduction,
        "store_on_wall_s": on_stats["wall_s"],
        "store_off_wall_s": off_stats["wall_s"],
        "store_bytes_moved": on_stats["store_bytes_moved"],
        "store_bytes_saved": on_stats["store_bytes_saved"],
        "store_hit_rate": on_stats["store_hit_rate"],
        "locality_hits": on_stats["locality_hits"],
        "locality_misses": on_stats["locality_misses"],
        "identical": bool(np.array_equal(with_store, without)),
    }

    assert on_stats["store_enabled"] and not off_stats["store_enabled"]
    # the acceptance bar: passing blocks by reference removes >= 90%
    # of the bytes pickled across worker pipes
    assert reduction >= 0.90, (
        f"store only cut pipe traffic by {reduction:.1%} "
        f"({pipe_off} -> {pipe_on} bytes)"
    )
    # and the answers are bit-identical
    np.testing.assert_array_equal(with_store, without)


def test_store_op_latency():
    block = np.random.default_rng(2).normal(size=(BLOCK, BLOCK))
    store = ObjectStore(capacity_bytes=64 << 20)
    try:
        put_samples, get_samples = [], []
        refs = []
        for _ in range(20):
            src = block.copy()  # distinct objects: no dedup short-circuit
            t0 = time.perf_counter()
            ref = store.put(src)
            put_samples.append(time.perf_counter() - t0)
            refs.append(ref)
        for ref in refs:
            t0 = time.perf_counter()
            view = store.get(ref)
            get_samples.append(time.perf_counter() - t0)
            assert view.shape == (BLOCK, BLOCK)
        _metrics["store_op_latency"] = {
            "unit": "s per op (median of 20)",
            "block_bytes": int(block.nbytes),
            "put_s": float(np.median(put_samples)),
            "get_s": float(np.median(get_samples)),
        }
        # zero-copy get must not scale with the block: it should be
        # far cheaper than the memcpy a put pays
        assert np.median(get_samples) < 5e-3
    finally:
        store.shutdown()
