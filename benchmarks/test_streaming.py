"""Streaming pipeline benchmarks: throughput and end-to-end latency.

Two scenarios over the :mod:`repro.streaming` stack:

* **sustained throughput** — an unpaced integer pipeline
  (map → filter → window → sink) across four stage threads; reports
  records/second through the full credit-backpressured path and fails
  if it drops below a deliberately loose floor (catches accidental
  per-element locking or busy-wait regressions, not machine noise);
* **latency under fixed ingest** — the same pipeline with a
  rate-controlled source well below capacity; reports the sink's
  p50/p99 end-to-end latency (source ``ingest`` stamp → sink) with a
  generous ceiling: at an ingest rate the pipeline can absorb, latency
  is queueing-free and must stay in the tens of milliseconds.

Results go to ``BENCH_streaming.json`` at the repository root so
successive PRs can compare runs.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.runtime import Runtime
from repro.runtime.config import RuntimeConfig
from repro.streaming import StreamGraph, TumblingCountWindow

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_streaming.json"

#: Unpaced feed size for the throughput scenario.
N_RECORDS = 30_000
#: Records/second floor for the throughput scenario (steady state on a
#: developer box is 10-50x this; the bound catches structural
#: regressions such as lock convoys or polling loops).
MIN_THROUGHPUT_RPS = 800.0
#: Paced scenario: ingest rate and feed size.
PACED_RATE = 500.0
PACED_RECORDS = 1_000
#: End-to-end latency ceilings for the paced scenario (generous: the
#: unloaded pipeline sits far below; queueing collapse blows past).
MAX_P50_MS = 50.0
MAX_P99_MS = 250.0

_metrics: dict[str, dict] = {}


@pytest.fixture(scope="session", autouse=True)
def _write_bench_file():
    """Persist every metric recorded this session to BENCH_streaming.json."""
    yield
    if not _metrics:
        return
    from repro.runtime import atomic_write

    payload = {
        "bench": "streaming",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "params": {
            "n_records": N_RECORDS,
            "min_throughput_rps": MIN_THROUGHPUT_RPS,
            "paced_rate_rps": PACED_RATE,
            "paced_records": PACED_RECORDS,
            "max_p50_ms": MAX_P50_MS,
            "max_p99_ms": MAX_P99_MS,
        },
        "metrics": _metrics,
    }
    atomic_write(BENCH_FILE, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _pipeline(rt: Runtime, n_or_items, rate=None, capacity=256):
    g = StreamGraph(rt, name="bench", capacity=capacity)
    items = range(n_or_items) if isinstance(n_or_items, int) else n_or_items
    src = g.source(items, name="src", rate=rate)
    m = g.map(src, lambda v: 3 * v + 1, name="m")
    f = g.filter(m, lambda v: v % 7 != 0, name="f")
    w = g.window(f, TumblingCountWindow(10), fn=sum, name="w")
    sink = g.sink(w, name="sink")
    return g, sink


def test_sustained_throughput():
    with Runtime(config=RuntimeConfig(executor="threads", max_workers=2)) as rt:
        g, sink = _pipeline(rt, N_RECORDS)
        t0 = time.perf_counter()
        g.start()
        stats = g.join(timeout=300.0)
        elapsed = time.perf_counter() - t0

    rps = N_RECORDS / elapsed
    kept = [3 * v + 1 for v in range(N_RECORDS) if (3 * v + 1) % 7 != 0]
    expected = [sum(kept[i : i + 10]) for i in range(0, len(kept), 10)]
    assert sink.collected == expected  # throughput without correctness is noise
    assert g.slots_leaked() == 0

    _metrics["sustained_throughput"] = {
        "n_records": N_RECORDS,
        "elapsed_s": round(elapsed, 4),
        "records_per_s": round(rps, 1),
        "windows_emitted": stats["sink"].n_out,
        "bound_rps": MIN_THROUGHPUT_RPS,
    }
    assert rps >= MIN_THROUGHPUT_RPS, (
        f"throughput {rps:.0f} rps fell below the {MIN_THROUGHPUT_RPS} floor"
    )


def test_e2e_latency_at_fixed_ingest_rate():
    with Runtime(config=RuntimeConfig(executor="threads", max_workers=2)) as rt:
        g, sink = _pipeline(rt, PACED_RECORDS, rate=PACED_RATE, capacity=64)
        t0 = time.perf_counter()
        g.start()
        g.join(timeout=300.0)
        elapsed = time.perf_counter() - t0

    snap = sink.stats.snapshot()
    p50, p99 = snap["p50_ms"], snap["p99_ms"]
    assert sink.stats.n_out > 0
    assert g.slots_leaked() == 0
    # the run must actually have been paced, not a burst
    assert elapsed >= PACED_RECORDS / PACED_RATE * 0.8

    _metrics["e2e_latency_paced"] = {
        "ingest_rate_rps": PACED_RATE,
        "n_records": PACED_RECORDS,
        "elapsed_s": round(elapsed, 4),
        "p50_ms": round(p50, 3),
        "p99_ms": round(p99, 3),
        "windows_emitted": sink.stats.n_out,
        "bound_p50_ms": MAX_P50_MS,
        "bound_p99_ms": MAX_P99_MS,
    }
    assert p50 <= MAX_P50_MS, f"p50 {p50:.1f}ms above the {MAX_P50_MS}ms ceiling"
    assert p99 <= MAX_P99_MS, f"p99 {p99:.1f}ms above the {MAX_P99_MS}ms ceiling"
