#!/usr/bin/env python
"""Distributed CNN training: nesting vs per-epoch synchronisation.

Run:  python examples/distributed_cnn.py

Reproduces the paper's §III-D experiment structure: a small CNN is
cross-validated with K=5 folds under two drivers —

* non-nested: the main program synchronises after every epoch to merge
  worker weights, which serialises the folds (Fig. 9);
* nested: each fold is itself a task encapsulating its epoch loop, so
  all folds train concurrently (Fig. 10).

On a multicore machine the nested driver finishes measurably faster
even though both run the same training tasks.
"""

import time

import numpy as np

from repro.nn import TrainerParams, af_cnn, cnn_cross_validation
from repro.runtime import Runtime


def make_data(n=400, length=128, seed=0):
    """Slow-vs-fast oscillation classification (an AF-like task)."""
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    x = rng.standard_normal((n, 1, length)) * 0.3
    y = rng.integers(0, 2, n)
    x[y == 1] += np.sin(t / 2.0)
    x[y == 0] += np.sin(t / 8.0)
    return x, y


def main():
    x, y = make_data()
    config = af_cnn(input_length=x.shape[2]).config()
    params = TrainerParams(epochs=4, n_workers=4, gpus_per_worker=1, lr=0.02, batch_size=32)

    results = {}
    for nested in (False, True):
        label = "nested" if nested else "non-nested"
        with Runtime(executor="threads", max_workers=8) as rt:
            t0 = time.perf_counter()
            res = cnn_cross_validation(
                config, x, y, n_splits=5, params=params, nested=nested
            )
            elapsed = time.perf_counter() - t0
            n_tasks = rt.n_tasks
        results[label] = elapsed
        print(
            f"{label:>11}: {elapsed:6.1f}s  accuracy={res['mean_accuracy']:.3f}  "
            f"tasks={n_tasks}"
        )

    speedup = results["non-nested"] / results["nested"]
    print(f"\nnesting speedup on this machine: {speedup:.2f}x")
    print("(the paper reports 2.24x on five 4-GPU nodes; the exact factor")
    print(" depends on how many folds the hardware can overlap)")


if __name__ == "__main__":
    main()
