#!/usr/bin/env python
"""Federated AF detection — the paper's future-work scenario (§V).

Run:  python examples/federated_af.py

Wearable devices each hold a private shard of ECG-derived data (no raw
data leaves a device); every federated round trains local models in
parallel as runtime tasks and FedAvg combines them into the general
model.  The shards are non-IID (Dirichlet label skew), as real patient
devices would be.
"""

import numpy as np

from repro.federated import (
    ClientData,
    FederatedConfig,
    Federation,
    dirichlet_partition,
    partition_stats,
)
from repro.nn import Sequential
from repro.nn.layers import Conv1D, Dense, Flatten, MaxPool1D, ReLU
from repro.runtime import Runtime


def make_ecg_windows(n=600, length=96, seed=0):
    """Short AF-vs-NSR signal windows, the kind a device would hold."""
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    x = rng.standard_normal((n, 1, length)) * 0.35
    y = rng.integers(0, 2, n)
    x[y == 1] += np.sin(t / 2.3)[None, :]   # fast irregular-ish
    x[y == 0] += np.sin(t / 7.0)[None, :]   # slow regular
    return x, y


def small_cnn(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Conv1D(1, 8, 5, rng),
            ReLU(),
            MaxPool1D(4),
            Flatten(),
            Dense(8 * 23, 16, rng),
            ReLU(),
            Dense(16, 2, rng),
        ]
    )


def main():
    x, y = make_ecg_windows()
    split = int(0.8 * len(x))
    x_train, y_train, x_test, y_test = x[:split], y[:split], x[split:], y[split:]

    n_devices = 6
    rng = np.random.default_rng(1)
    parts = dirichlet_partition(y_train, n_devices, alpha=0.4, rng=rng, min_per_client=10)
    stats = partition_stats(parts, y_train)
    print(f"{n_devices} devices, shard sizes {stats['sizes']}")
    for i, hist in enumerate(stats["label_histograms"]):
        print(f"  device {i}: {hist}")

    clients = [ClientData(x_train[p], y_train[p]) for p in parts]
    cfg = FederatedConfig(rounds=8, local_epochs=2, lr=0.03, client_fraction=1.0)

    with Runtime(executor="threads", max_workers=6) as rt:
        fed = Federation(small_cnn().config(), clients, cfg)
        print("\nfederated rounds (global accuracy on held-out test set):")
        for _ in range(cfg.rounds):
            metrics = fed.run_round(lambda m: m.evaluate(x_test, y_test))
            print(
                f"  round {metrics.round}: clients={metrics.selected_clients} "
                f"accuracy={metrics.global_accuracy:.3f}"
            )
        n_tasks = rt.n_tasks

    print(f"\nworkflow ran {n_tasks} tasks; no raw data ever left a device shard")


if __name__ == "__main__":
    main()
