#!/usr/bin/env python
"""The paper's headline workflow: AF detection from ECG recordings.

Run:  python examples/af_classification.py

Generates a CinC-2017-like dataset (imbalanced N vs AF), balances it
with the shuffling-based augmentation of Fig. 2, extracts STFT
features, reduces them with the covariance-method PCA (95% variance),
and cross-validates the three classical classifiers the paper compares
— printing a Table-I-style report.
"""

import time

from repro.runtime import Runtime
from repro.workflows import (
    PipelineConfig,
    prepare_dataset,
    run_classical,
    side_by_side,
    table1_block,
)


def main():
    cfg = PipelineConfig(
        scale=0.01,          # 52 N + 8 AF before augmentation
        seed=0,
        block_size=(32, 128),
        n_splits=5,
        decimate=8,
    )
    print("preparing dataset (synthetic PhysioNet substitute)...")
    t0 = time.perf_counter()
    dataset = prepare_dataset(cfg)
    counts = dataset.class_counts()
    print(
        f"  {counts['N']} Normal + {counts['AF']} AF recordings "
        f"(balanced by patch-shuffle augmentation) "
        f"in {time.perf_counter() - t0:.1f}s"
    )

    blocks = []
    with Runtime(executor="threads", max_workers=4):
        for algo, name in (("csvm", "CSVM"), ("knn", "KNN"), ("rf", "Random Forest")):
            t0 = time.perf_counter()
            res = run_classical(algo, cfg, dataset)
            elapsed = time.perf_counter() - t0
            print(
                f"{name}: accuracy {res.accuracy * 100:.1f}%  "
                f"({res.n_features_in} features -> {res.n_components} PCs, "
                f"{elapsed:.1f}s)"
            )
            blocks.append(
                table1_block(name, res.accuracy, res.confusion, ["N", "AF"])
            )

        # the paper's fourth model: the CNN on STFT spectrograms,
        # trained with the nested distributed driver
        from repro.workflows import run_cnn

        t0 = time.perf_counter()
        cnn = run_cnn(cfg, dataset, epochs=12, n_workers=4, nested=True, lr=0.05)
        print(
            f"CNN: accuracy {cnn['mean_accuracy'] * 100:.1f}%  "
            f"(spectrogram input, {time.perf_counter() - t0:.1f}s)"
        )
        blocks.append(
            table1_block("CNN", cnn["mean_accuracy"], cnn["mean_confusion"], ["N", "AF"])
        )
    print()
    print(side_by_side(blocks))


if __name__ == "__main__":
    main()
