#!/usr/bin/env python
"""Close the paper's Fig. 1 loop: train distributed, deploy at the edge.

Run:  python examples/edge_deployment.py

1. Train the AF CNN with the distributed (nested) trainer on synthetic
   ECG windows,
2. export the model to a self-contained bundle,
3. "ship" it to a simulated smartwatch,
4. stream a two-hour-equivalent recording through on-device inference,
   escalating only suspected-AF windows — and report the bandwidth and
   battery numbers that motivate edge inference in the first place.
"""

import numpy as np

from repro.edge import DeviceSpec, EdgeDevice, bandwidth_savings, bundle_nbytes, export_model
from repro.nn import Sequential, SGD
from repro.nn.layers import Conv1D, Dense, Flatten, MaxPool1D, ReLU
from repro.runtime import Runtime


WINDOW = 375  # 10 s at 300 Hz, downsampled x8


def make_training_windows(n=400, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(WINDOW)
    x = rng.standard_normal((n, 1, WINDOW)) * 0.3
    y = rng.integers(0, 2, n)
    for i in range(n):
        period = 2.0 if y[i] == 1 else 9.0
        x[i, 0] += np.sin(t / period + rng.uniform(0, 2 * np.pi))
    mu = x.mean(axis=2, keepdims=True)
    sd = x.std(axis=2, keepdims=True)
    return (x - mu) / sd, y


def make_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Conv1D(1, 6, 7, rng),
            ReLU(),
            MaxPool1D(4),
            Flatten(),
            Dense(6 * ((WINDOW - 6) // 4), 12, rng),
            ReLU(),
            Dense(12, 2, rng),
        ]
    )


def make_patient_stream(hours=0.1, af_burden=0.3, seed=3):
    """A continuous wearable recording with intermittent AF episodes."""
    rng = np.random.default_rng(seed)
    fs = 300.0
    n = int(hours * 3600 * fs)
    t = np.arange(n)
    sig = np.sin(t / (9.0 * 8)) + rng.standard_normal(n) * 0.3
    # sprinkle AF episodes
    episode = int(30 * fs)  # 30 s episodes
    n_episodes = int(af_burden * n / episode)
    for _ in range(n_episodes):
        start = int(rng.uniform(0, n - episode))
        seg = slice(start, start + episode)
        sig[seg] = np.sin(t[seg] / (2.0 * 8)) + rng.standard_normal(episode) * 0.3
    return sig


def main():
    # --- 1. distributed training ---------------------------------------
    x, y = make_training_windows()
    model = make_model()
    with Runtime(executor="threads", max_workers=4):
        from repro.nn import DistributedTrainer, TrainerParams

        params = TrainerParams(epochs=6, n_workers=4, lr=0.03, batch_size=32)
        weights = DistributedTrainer(model.config(), params).fit(x, y)
    model.set_weights(weights)
    print(f"trained model accuracy on training windows: {model.evaluate(x, y):.3f}")

    # --- 2-3. export and deploy -----------------------------------------
    bundle = export_model(model)
    print(f"model bundle: {bundle_nbytes(bundle) / 1e3:.1f} kB of weights")
    watch = EdgeDevice(bundle, DeviceSpec(name="smartwatch", speed=0.05))
    print(f"per-window inference latency on-device: {watch.window_latency() * 1000:.1f} ms")

    # --- 4. streaming monitoring ----------------------------------------
    stream = make_patient_stream()
    report = watch.monitor(stream, window_s=10.0, threshold=0.6)
    raw_mb = len(stream) * 4 / 1e6
    print(
        f"\nmonitored {report.n_windows} windows "
        f"({len(stream) / 300 / 60:.0f} minutes of ECG)"
    )
    print(f"escalated (suspected AF): {report.n_escalated} windows")
    print(f"raw stream size          : {raw_mb:.1f} MB")
    print(f"actually transmitted     : {report.transmitted_mb:.1f} MB")
    print(f"bandwidth saved          : {bandwidth_savings(report) * 100:.0f}%")
    print(f"energy used              : {report.energy_j:.1f} J "
          f"({report.battery_fraction_used * 100:.1f}% of battery)")


if __name__ == "__main__":
    main()
