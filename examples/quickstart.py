#!/usr/bin/env python
"""Quickstart: the task runtime and a distributed estimator in ~60 lines.

Run:  python examples/quickstart.py

Covers the basic programming model described in the paper (§II-A/B):
a plain Python function becomes a task with one decorator, ds-arrays
partition the data, estimators parallelise automatically, and the
execution graph can be exported for inspection.
"""

import numpy as np

import repro.dsarray as ds
from repro.ml import KFold, RandomForestClassifier
from repro.runtime import Runtime, graph_summary, task, to_dot, wait_on


# --- 1. tasks: decorate plain functions -------------------------------
@task(returns=1)
def square_sum(block):
    return float((block**2).sum())


@task(returns=1)
def total(parts):
    return sum(parts)


def main():
    rng = np.random.default_rng(0)

    with Runtime(executor="threads", max_workers=4) as rt:
        # futures chain into a reduction without any explicit wiring
        parts = [square_sum(rng.standard_normal((100, 100))) for _ in range(8)]
        print("sum of squares:", round(wait_on(total(parts)), 1))

        # --- 2. ds-arrays: block-partitioned data ----------------------
        x = np.vstack(
            [rng.normal(-1, 1, (150, 8)), rng.normal(1, 1, (150, 8))]
        )
        y = np.array([0.0] * 150 + [1.0] * 150).reshape(-1, 1)
        order = rng.permutation(300)
        dx = ds.array(x[order], block_size=(50, 8))
        dy = ds.array(y[order], block_size=(50, 1))

        # --- 3. estimators: scikit-learn-style fit/predict -------------
        train_idx, test_idx = next(KFold(n_splits=5).split(300))
        clf = RandomForestClassifier(n_estimators=10, distr_depth=1, random_state=0)
        clf.fit(dx.take_rows(train_idx), dy.take_rows(train_idx))
        acc = clf.score(dx.take_rows(test_idx), dy.take_rows(test_idx))
        print(f"random forest held-out accuracy: {acc:.3f}")

        # --- 4. the execution graph ------------------------------------
        summary = graph_summary(rt.graph)
        print(
            f"workflow ran {summary['n_tasks']} tasks "
            f"({summary['n_edges']} dependencies, depth {summary['depth']}, "
            f"peak parallelism {summary['max_width']})"
        )
        dot = to_dot(rt.graph, title="quickstart")
        print(f"DOT export: {len(dot.splitlines())} lines (render with graphviz)")


if __name__ == "__main__":
    main()
