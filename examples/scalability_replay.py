#!/usr/bin/env python
"""Record a workflow trace locally, replay it at supercomputer scale.

Run:  python examples/scalability_replay.py

This is the mechanism behind the Fig. 11 reproductions: the CascadeSVM
training runs locally (threads) while the runtime records every task's
duration, dependencies and data sizes; the discrete-event simulator
then re-schedules the identical DAG on 1-4 MareNostrum-IV-like nodes
(48 cores each, 8 cores per task as in the paper) and reports the
training-time curve.
"""

import numpy as np

import repro.dsarray as ds
from repro.cluster import (
    NodeSpec,
    bottleneck_report,
    core_sweep,
    format_sweep,
    marenostrum4,
    simulate,
    speedups,
)
from repro.ml import CascadeSVM
from repro.runtime import Runtime


def main():
    rng = np.random.default_rng(0)
    n, d = 960, 64
    x = np.vstack(
        [rng.normal(-0.6, 1, (n // 2, d)), rng.normal(0.6, 1, (n // 2, d))]
    )
    y = np.array([0.0] * (n // 2) + [1.0] * (n // 2)).reshape(-1, 1)
    order = rng.permutation(n)

    print("recording trace of a CascadeSVM training (24 partitions)...")
    with Runtime(executor="threads", max_workers=8) as rt:
        dx = ds.array(x[order], block_size=(40, d))
        dy = ds.array(y[order], block_size=(40, 1))
        CascadeSVM(max_iter=1, check_convergence=False).fit(dx, dy)
        rt.barrier()
        trace = rt.trace()
    print(f"  {len(trace)} tasks, {trace.total_task_time:.2f}s total task time")

    points = core_sweep(
        trace,
        NodeSpec(cores=48, name="mn4"),
        node_counts=[1, 2, 3, 4],
        cores_per_task={"_train_partition": 8, "_merge_train": 8},
    )
    print()
    print(format_sweep(points, "CascadeSVM training time on simulated MareNostrum IV"))
    sp = speedups(points)
    print(f"\nspeedup at 192 cores vs 48: {sp[192]:.2f}x")

    # explain the ceiling (the paper: "scalability limited by the
    # reduction phase of the cascade")
    print("\nwhy it stops scaling (4-node schedule):")
    res = simulate(
        trace,
        marenostrum4(4),
        cores_per_task={"_train_partition": 8, "_merge_train": 8},
    )
    print(bottleneck_report(trace, res))


if __name__ == "__main__":
    main()
