"""Post-mortem analyses of traces and simulated schedules.

Paraver-style views in plain text: per-node Gantt charts, the critical
path through a trace, and time breakdowns per task type — the tools
one uses to explain *why* a curve in Fig. 11 flattens.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.simulator import SimResult
from repro.runtime.tracing import Trace


def critical_path(trace: Trace) -> tuple[list[int], float]:
    """Longest duration-weighted dependency chain.

    Returns (task ids along the path, total seconds).  This lower-bounds
    the makespan on any machine — if a sweep's makespan approaches it,
    adding cores cannot help (the paper's CSVM reduction-phase ceiling).
    """
    records = {r.task_id: r for r in trace}
    best: dict[int, float] = {}
    choice: dict[int, int | None] = {}

    def longest_to(tid: int) -> float:
        stack = [(tid, False)]
        while stack:
            node, ready = stack.pop()
            if node in best:
                continue
            rec = records[node]
            deps = [d for d in rec.deps if d in records]
            if not ready:
                stack.append((node, True))
                stack.extend((d, False) for d in deps if d not in best)
            else:
                if deps:
                    prev = max(deps, key=lambda d: best[d])
                    best[node] = best[prev] + rec.duration
                    choice[node] = prev
                else:
                    best[node] = rec.duration
                    choice[node] = None
        return best[tid]

    if len(trace) == 0:
        return [], 0.0
    end = max((r.task_id for r in trace), key=lambda t: longest_to(t))
    path = []
    cur: int | None = end
    while cur is not None:
        path.append(cur)
        cur = choice[cur]
    return list(reversed(path)), best[end]


def time_breakdown(trace: Trace) -> dict[str, dict[str, float]]:
    """Total/mean/share of task time per task type."""
    total = trace.total_task_time or 1.0
    out: dict[str, dict[str, float]] = {}
    for name, records in trace.by_name().items():
        durations = np.array([r.duration for r in records])
        out[name] = {
            "count": float(len(records)),
            "total_s": float(durations.sum()),
            "mean_s": float(durations.mean()),
            "share": float(durations.sum() / total),
        }
    return out


def gantt_text(result: SimResult, width: int = 72) -> str:
    """ASCII Gantt chart of a simulated schedule, one row per node."""
    if not result.placements:
        return "(empty schedule)"
    span = result.makespan or 1.0
    rows = []
    for node in range(result.cluster.n_nodes):
        cells = [" "] * width
        for p in result.placements.values():
            if p.node != node:
                continue
            lo = int(p.t_start / span * (width - 1))
            hi = max(lo + 1, int(p.t_end / span * (width - 1)))
            mark = p.name[0] if p.name else "#"
            for i in range(lo, min(hi, width)):
                cells[i] = "#" if cells[i] != " " else mark
        rows.append(f"node {node:>3} |{''.join(cells)}|")
    rows.append(f"          0s{' ' * (width - 12)}{span:.2f}s")
    return "\n".join(rows)


def idle_fraction(result: SimResult) -> float:
    """Fraction of core-time spent idle over the schedule span."""
    if result.makespan <= 0:
        return 0.0
    return 1.0 - result.utilization()


def failure_report(result: SimResult, baseline_makespan: float | None = None) -> str:
    """Human-readable account of what node failures cost a schedule.

    Pass the makespan of the same simulation without failures as
    ``baseline_makespan`` to get the recovery overhead line.
    """
    lines = []
    if not result.node_failures:
        lines.append("node failures      : none")
    for f in result.node_failures:
        window = (
            f"down for {f.down_for:.2f}s" if f.down_for is not None else "permanent"
        )
        lines.append(f"node failure       : node {f.node} at {f.at:.2f}s ({window})")
    lines.append(f"killed attempts    : {len(result.failed_placements)}")
    lines.append(f"lost task time     : {result.lost_task_time:.3f}s")
    lines.append(f"lost core time     : {result.lost_core_time:.3f} core-s")
    by_name: dict[str, int] = {}
    for p in result.failed_placements:
        by_name[p.name] = by_name.get(p.name, 0) + 1
    for name in sorted(by_name):
        lines.append(f"  killed {name}: {by_name[name]}")
    if result.checkpoint_spec is not None:
        spec = result.checkpoint_spec
        overhead = result.checkpoint_overhead
        lines.append(
            f"checkpoint policy  : every {spec.every} task(s), "
            f"{spec.write_cost:.3f}s per write"
        )
        lines.append(
            f"checkpoint writes  : {len(result.checkpoint_writes)} "
            f"({overhead:.3f}s overhead)"
        )
        if result.failed_placements:
            saved = result.lost_task_time
            verdict = "pays for itself" if overhead <= saved else "costs more than it saves"
            lines.append(
                f"overhead vs lost   : {overhead:.3f}s written vs "
                f"{saved:.3f}s lost work ({verdict})"
            )
    lines.append(f"makespan           : {result.makespan:.3f}s")
    if baseline_makespan is not None and baseline_makespan > 0:
        delta = result.makespan - baseline_makespan
        lines.append(
            f"recovery overhead  : +{delta:.3f}s "
            f"({delta / baseline_makespan * 100:.0f}% over failure-free run)"
        )
    return "\n".join(lines)


def bottleneck_report(trace: Trace, result: SimResult) -> str:
    """Human-readable summary: critical path vs makespan, busiest task
    types, idle fraction — the paper-style scalability explanation."""
    path, cp_time = critical_path(trace)
    names = {r.task_id: r.name for r in trace}
    path_names: list[str] = []
    for tid in path:
        nm = names.get(tid, "?")
        if not path_names or path_names[-1].split(" x")[0] != nm:
            path_names.append(nm)
    breakdown = time_breakdown(trace)
    heaviest = sorted(breakdown.items(), key=lambda kv: -kv[1]["total_s"])[:4]
    lines = [
        f"makespan           : {result.makespan:.3f}s",
        f"critical path      : {cp_time:.3f}s "
        f"({cp_time / result.makespan * 100 if result.makespan else 0:.0f}% of makespan)",
        f"critical task chain: {' -> '.join(path_names)}",
        f"idle core fraction : {idle_fraction(result) * 100:.0f}%",
        "heaviest task types:",
    ]
    for name, stats in heaviest:
        lines.append(
            f"  {name}: {stats['total_s']:.3f}s total over {int(stats['count'])} tasks "
            f"({stats['share'] * 100:.0f}%)"
        )
    return "\n".join(lines)
