"""Discrete-event cluster simulator — the testbed substitute.

Replays recorded task traces on parameterised clusters (MareNostrum IV
48-core nodes, CTE-Power 4-GPU nodes) to regenerate the paper's
scalability results without the hardware.
"""

from repro.cluster.analysis import (
    bottleneck_report,
    critical_path,
    failure_report,
    gantt_text,
    idle_fraction,
    time_breakdown,
)
from repro.cluster.chrometrace import (
    save_chrome_schedule,
    save_chrome_trace,
    schedule_to_chrome,
    trace_to_chrome,
)
from repro.cluster.costmodel import CostModel, IDENTITY, name_mean_smoother
from repro.cluster.replay import (
    SweepPoint,
    compare_strategies,
    core_sweep,
    format_sweep,
    impose_barrier_order,
    speedups,
)
from repro.cluster.resources import (
    ClusterSpec,
    NodeSpec,
    cte_power,
    laptop,
    marenostrum4,
)
from repro.cluster.simulator import (
    CheckpointSpec,
    CheckpointWrite,
    DeadClusterError,
    NodeFailure,
    OversubscribedTaskError,
    Placement,
    SimResult,
    flatten_nested,
    simulate,
)

__all__ = [
    "CostModel",
    "IDENTITY",
    "ClusterSpec",
    "NodeSpec",
    "marenostrum4",
    "cte_power",
    "laptop",
    "simulate",
    "SimResult",
    "Placement",
    "OversubscribedTaskError",
    "NodeFailure",
    "DeadClusterError",
    "CheckpointSpec",
    "CheckpointWrite",
    "failure_report",
    "flatten_nested",
    "core_sweep",
    "speedups",
    "format_sweep",
    "compare_strategies",
    "impose_barrier_order",
    "SweepPoint",
    "name_mean_smoother",
    "critical_path",
    "time_breakdown",
    "gantt_text",
    "idle_fraction",
    "bottleneck_report",
    "trace_to_chrome",
    "schedule_to_chrome",
    "save_chrome_trace",
    "save_chrome_schedule",
]
