"""Task cost models for the simulator.

A cost model answers: *how long does this recorded task take on the
simulated machine?*  The default uses the recorded duration scaled by
the node speed; overrides allow extrapolating small local runs to
paper-scale problem sizes (e.g. "the fit task would be 40x larger") and
modelling GPU collectives (the 4-GPU-per-task communication overhead
that makes the paper's 1-GPU variant 1.2x faster).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping

from repro.runtime.tracing import TaskRecord


@dataclasses.dataclass
class CostModel:
    """Computes simulated task durations.

    Parameters
    ----------
    scale:
        Global multiplier on recorded durations.
    per_name_scale:
        Extra multiplier per task name (workload extrapolation).
    gpu_sync_overhead:
        Added once per task and per extra GPU it occupies — models the
        intra-node gradient/weight exchange of multi-GPU data
        parallelism (EDDL's distributed training in the paper).
    base_duration:
        Optional ``f(record) -> seconds or None``: replaces the
        *recorded* duration before scaling (e.g. name-mean smoothing
        to strip recording noise); scaling and overheads still apply.
    override:
        Optional ``f(record) -> seconds or None``; wins outright when
        not None (no scaling applied).
    """

    scale: float = 1.0
    per_name_scale: Mapping[str, float] = dataclasses.field(default_factory=dict)
    gpu_sync_overhead: float = 0.0
    base_duration: Callable[[TaskRecord], float | None] | None = None
    override: Callable[[TaskRecord], float | None] | None = None

    def duration(self, record: TaskRecord, node_speed: float = 1.0) -> float:
        if self.override is not None:
            forced = self.override(record)
            if forced is not None:
                return forced / node_speed
        d = record.duration
        if self.base_duration is not None:
            base = self.base_duration(record)
            if base is not None:
                d = base
        d *= self.scale
        d *= self.per_name_scale.get(record.name, 1.0)
        if record.gpus > 1:
            d += self.gpu_sync_overhead * (record.gpus - 1)
        return d / node_speed


IDENTITY = CostModel()


def name_mean_smoother(*traces) -> Callable[[TaskRecord], float | None]:
    """A ``base_duration`` hook replacing each task's recorded duration
    with the mean over all same-named tasks in *traces*.

    Recording on a loaded multicore machine adds contention noise to
    individual task timings; for workloads whose same-named tasks do
    identical work (e.g. equal-shard training epochs), the per-name
    mean is the better estimate of the task's intrinsic cost.
    """
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for trace in traces:
        for rec in trace:
            totals[rec.name] = totals.get(rec.name, 0.0) + rec.duration
            counts[rec.name] = counts.get(rec.name, 0) + 1
    means = {name: totals[name] / counts[name] for name in totals}

    def hook(record: TaskRecord) -> float | None:
        return means.get(record.name)

    return hook
