"""High-level replay helpers: core sweeps and speedup tables.

These wrap :func:`repro.cluster.simulator.simulate` into the exact
experiments the paper plots: training-time versus total core count
(Fig. 11) and CNN strategy comparisons on a GPU cluster (Fig. 12).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.cluster.costmodel import CostModel, IDENTITY
from repro.cluster.resources import ClusterSpec, NodeSpec
from repro.cluster.simulator import SimResult, simulate
from repro.runtime.tracing import Trace


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One point of a scalability curve."""

    n_nodes: int
    total_cores: int
    makespan: float
    utilization: float


def core_sweep(
    trace: Trace,
    node: NodeSpec,
    node_counts: Sequence[int],
    cost_model: CostModel = IDENTITY,
    cores_per_task: Mapping[str, int] | None = None,
    gpus_per_task: Mapping[str, int] | None = None,
    bandwidth: float = 12.5e9,
    latency: float = 1.5e-6,
) -> list[SweepPoint]:
    """Simulate the same trace on 1..N nodes and collect makespans.

    This regenerates the x-axis of the paper's Fig. 11: total cores
    (= nodes x cores/node) against training time.
    """
    points: list[SweepPoint] = []
    for n in node_counts:
        cluster = ClusterSpec(
            node=node, n_nodes=n, bandwidth=bandwidth, latency=latency
        )
        res = simulate(
            trace,
            cluster,
            cost_model=cost_model,
            cores_per_task=cores_per_task,
            gpus_per_task=gpus_per_task,
        )
        points.append(
            SweepPoint(
                n_nodes=n,
                total_cores=cluster.total_cores,
                makespan=res.makespan,
                utilization=res.utilization(),
            )
        )
    return points


def speedups(points: Sequence[SweepPoint]) -> dict[int, float]:
    """Speedup relative to the smallest configuration in the sweep."""
    if not points:
        return {}
    base = points[0].makespan
    return {p.total_cores: (base / p.makespan if p.makespan else float("inf")) for p in points}


def format_sweep(points: Sequence[SweepPoint], title: str) -> str:
    """Fixed-width table matching the structure of the paper figures."""
    lines = [title, f"{'nodes':>6} {'cores':>7} {'time(s)':>12} {'speedup':>9} {'util':>6}"]
    base = points[0].makespan if points else 0.0
    for p in points:
        sp = base / p.makespan if p.makespan else float("inf")
        lines.append(
            f"{p.n_nodes:>6d} {p.total_cores:>7d} {p.makespan:>12.3f} "
            f"{sp:>9.2f} {p.utilization:>6.2f}"
        )
    return "\n".join(lines)


def impose_barrier_order(trace: Trace, barrier_name: str) -> Trace:
    """Add the driver-side synchronisation edges a recorded trace
    cannot express.

    When the application calls ``wait_on`` after every *barrier_name*
    task (the per-epoch weight merge of the paper's non-nested CNN
    driver), later tasks are only *submitted* after the barrier
    completes — an ordering that exists in the recorded timestamps but
    not in the data-dependency DAG.  This helper rebuilds it: every
    task whose recorded start is at or after a barrier's end gains a
    dependency on the latest such barrier, so a replay cannot schedule
    across the synchronisation.
    """
    import dataclasses as _dc

    records = sorted(trace, key=lambda r: r.t_start)
    barriers = sorted(
        (r for r in records if r.name == barrier_name), key=lambda r: r.t_end
    )
    out = Trace()
    for rec in records:
        latest = None
        for b in barriers:
            if b.t_end <= rec.t_start + 1e-9 and b.task_id != rec.task_id:
                latest = b
            else:
                break
        if latest is not None and latest.task_id not in rec.deps:
            rec = _dc.replace(rec, deps=tuple(rec.deps) + (latest.task_id,))
        out.add(rec)
    return out


def compare_strategies(
    results: Mapping[str, SimResult],
    baseline: str,
) -> dict[str, float]:
    """Speedup of each named strategy over *baseline* (paper Fig. 12
    reports nesting at ~2.24x over the 4-GPU-per-task variant)."""
    base = results[baseline].makespan
    return {name: base / r.makespan for name, r in results.items()}
