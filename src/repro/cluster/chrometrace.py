"""Chrome-tracing export of traces and simulated schedules.

Produces the Trace Event Format consumed by ``chrome://tracing`` /
Perfetto, giving an interactive timeline of a run — the lightweight
equivalent of the Paraver traces the paper's artifact uploads for its
kNN executions.

Real runtime traces (:func:`trace_to_chrome`) are laid out one lane per
worker: the ``tid`` is the worker thread the runtime dispatched the
attempt on, grouped into one process row per OS pid (the coordinator
under the threads backend; each pool worker under the processes
backend).  Dependency edges become flow events ("s"/"f" arrows in the
viewer), and retries/restores become instant markers, so a resilience
run reads directly off the timeline.
"""

from __future__ import annotations

import json

from repro.cluster.simulator import SimResult
from repro.runtime.tracing import Trace


def _metadata(pid: int, name: str) -> dict:
    return {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}}


def _thread_metadata(pid: int, tid: int, name: str) -> dict:
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def trace_to_chrome(trace: Trace, process_name: str = "repro-runtime") -> str:
    """Render a recorded runtime trace (monotonic timestamps).

    * One process row per executing OS pid (metadata "M" events name
      them), one thread lane per worker thread within it.
    * Task attempts are complete ("X") events.
    * Dependency edges are flow events ("s" start at the producer's
      end, "f" finish with ``bp: "e"`` at the consumer's start) so the
      viewer draws arrows along the DAG.
    * Retries and checkpoint restores are instant ("i") events.
    * Data-plane traffic becomes a counter ("C") lane on the
      coordinator row: cumulative ``bytes_moved`` (shared memory
      freshly mapped into workers) vs ``bytes_saved`` (pickle-pipe
      bytes avoided by passing references), sampled at each attempt's
      end.  The lane is only emitted when a run actually moved data
      through the store, so store-off traces stay unchanged.

    Traces recorded before the observability layer (no worker names)
    fall back to one lane per OS pid.
    """
    records = {rec.task_id: rec for rec in trace}
    events: list[dict] = []

    # -- lanes: (pid, worker) -> tid -----------------------------------
    main_pid = next((r.pid for r in trace if r.pid is not None), 0) or 0
    events.append(_metadata(main_pid, process_name))
    seen_pids = {main_pid}
    lanes: dict[tuple[int, str], int] = {}
    for rec in trace:
        pid = rec.pid if rec.pid is not None else main_pid
        worker = rec.worker or (f"pid-{pid}" if pid != main_pid else "main")
        key = (pid, worker)
        if key not in lanes:
            lanes[key] = len([k for k in lanes if k[0] == pid])
            if pid not in seen_pids:
                seen_pids.add(pid)
                events.append(_metadata(pid, f"{process_name} worker pid {pid}"))
            events.append(_thread_metadata(pid, lanes[key], worker))

    def lane_of(rec) -> tuple[int, int]:
        pid = rec.pid if rec.pid is not None else main_pid
        worker = rec.worker or (f"pid-{pid}" if pid != main_pid else "main")
        return pid, lanes[(pid, worker)]

    # -- fused-unit envelopes ------------------------------------------
    # Members of one fused unit executed back-to-back on a single
    # worker; a synthetic complete event spanning min(t_start) ..
    # max(t_end) on that lane makes the member spans nest visually
    # under the unit in the viewer.
    fused_groups: dict[int, list] = {}
    for rec in trace:
        if rec.fused_id is not None:
            fused_groups.setdefault(rec.fused_id, []).append(rec)
    for unit_id, members in sorted(fused_groups.items()):
        t0 = min(r.t_start for r in members)
        t1 = max(r.t_end for r in members)
        pid, tid = lane_of(members[0])
        events.append(
            {
                "name": f"fused[{len(members)}]#{unit_id}",
                "cat": "fused",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": t0 * 1e6,
                "dur": max(t1 - t0, 1e-9) * 1e6,
                "args": {
                    "unit_id": unit_id,
                    "members": [r.task_id for r in members],
                },
            }
        )

    # -- spans, flows, instants ----------------------------------------
    flow_id = 0
    for rec in trace:
        pid, tid = lane_of(rec)
        events.append(
            {
                "name": f"{rec.name}#{rec.task_id}",
                "cat": rec.name,
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": rec.t_start * 1e6,  # microseconds
                "dur": max(rec.duration, 1e-9) * 1e6,
                "args": {
                    "deps": list(rec.deps),
                    "cores": rec.computing_units,
                    "gpus": rec.gpus,
                    "status": rec.status,
                    "attempt": rec.attempt,
                    "queue_wait_us": rec.queue_wait * 1e6,
                    "overhead_us": rec.overhead * 1e6,
                    "bytes_moved": rec.bytes_moved,
                    "bytes_saved": rec.bytes_saved,
                },
            }
        )
        if rec.status == "restored":
            events.append(
                {
                    "name": f"restored {rec.name}#{rec.task_id}",
                    "cat": "checkpoint",
                    "ph": "i",
                    "s": "t",  # thread-scoped marker
                    "pid": pid,
                    "tid": tid,
                    "ts": rec.t_start * 1e6,
                    "args": {"task_id": rec.task_id},
                }
            )
        if rec.retry_of is not None:
            events.append(
                {
                    "name": f"retry of #{rec.retry_of} (attempt {rec.attempt})",
                    "cat": "retry",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tid,
                    "ts": rec.t_start * 1e6,
                    "args": {"retry_of": rec.retry_of, "attempt": rec.attempt},
                }
            )
        if rec.status == "failed":
            events.append(
                {
                    "name": f"failed {rec.name}#{rec.task_id}",
                    "cat": "failure",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tid,
                    "ts": rec.t_end * 1e6,
                    "args": {"error": rec.error},
                }
            )
        for dep in rec.deps:
            producer = records.get(dep)
            if producer is None:
                continue  # dep not recorded (e.g. trace collection off mid-run)
            ppid, ptid = lane_of(producer)
            flow_id += 1
            events.append(
                {
                    "name": "dep",
                    "cat": "dataflow",
                    "ph": "s",
                    "id": flow_id,
                    "pid": ppid,
                    "tid": ptid,
                    "ts": producer.t_end * 1e6,
                }
            )
            events.append(
                {
                    "name": "dep",
                    "cat": "dataflow",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "pid": pid,
                    "tid": tid,
                    "ts": max(rec.t_start, producer.t_end) * 1e6,
                }
            )

    # -- data-plane counter lane ---------------------------------------
    if any(rec.bytes_moved or rec.bytes_saved for rec in trace):
        moved = saved = 0
        for rec in sorted(trace, key=lambda r: r.t_end):
            moved += rec.bytes_moved
            saved += rec.bytes_saved
            events.append(
                {
                    "name": "data plane (bytes)",
                    "cat": "dataplane",
                    "ph": "C",
                    "pid": main_pid,
                    "tid": 0,
                    "ts": rec.t_end * 1e6,
                    "args": {"moved": moved, "saved": saved},
                }
            )
    return json.dumps({"traceEvents": events}, indent=1)


def schedule_to_chrome(result: SimResult, process_name: str = "simulated-cluster") -> str:
    """Render a simulated schedule: one thread lane per node."""
    events = [_metadata(1, process_name)]
    for node in range(result.cluster.n_nodes):
        events.append(
            _thread_metadata(1, node, f"node {node} ({result.cluster.node.cores} cores)")
        )
    for p in result.placements.values():
        events.append(
            {
                "name": f"{p.name}#{p.task_id}",
                "cat": p.name,
                "ph": "X",
                "pid": 1,
                "tid": p.node,
                "ts": p.t_start * 1e6,
                "dur": max(p.duration, 1e-9) * 1e6,
                "args": {"cores": p.cores, "gpus": p.gpus},
            }
        )
    for w in result.checkpoint_writes:
        events.append(
            {
                "name": f"ckpt#{w.task_id}",
                "cat": "checkpoint",
                "ph": "X",
                "pid": 1,
                "tid": w.node,
                "ts": w.t_start * 1e6,
                "dur": max(w.duration, 1e-9) * 1e6,
                "args": {"task_id": w.task_id},
            }
        )
    return json.dumps({"traceEvents": events}, indent=1)


def validate_chrome_json(text: str) -> list[dict]:
    """Validate the Trace Event Format shape of *text*; returns the
    event list or raises :class:`ValueError`.

    Checks what ``about:tracing`` requires to load the file: a
    ``traceEvents`` list, a known phase per event, pid/tid/ts fields on
    timeline events, a duration on complete events, and matched
    flow-event pairs."""
    doc = json.loads(text)
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError("chrome trace must be an object with a traceEvents list")
    events = doc["traceEvents"]
    flows: dict[tuple, set[str]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "M", "i", "s", "f", "B", "E", "C"):
            raise ValueError(f"event {i} has unknown phase {ph!r}")
        if ph == "M":
            continue
        for field in ("pid", "tid", "ts"):
            if not isinstance(ev.get(field), (int, float)):
                raise ValueError(f"event {i} ({ph}) lacks numeric {field!r}")
        if ev["ts"] < 0:
            raise ValueError(f"event {i} has negative timestamp")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            raise ValueError(f"complete event {i} lacks a duration")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            raise ValueError(f"counter event {i} lacks an args series dict")
        if ph in ("s", "f"):
            flows.setdefault(("flow", ev.get("id")), set()).add(ph)
    for (_, flow_id), phases in flows.items():
        if phases != {"s", "f"}:
            raise ValueError(f"flow {flow_id} is unmatched (phases {sorted(phases)})")
    return events


def save_chrome_trace(trace: Trace, path, process_name: str = "repro-runtime") -> None:
    """Render and write a runtime trace to *path*, atomically."""
    from repro.runtime.atomic_write import atomic_write

    atomic_write(path, trace_to_chrome(trace, process_name=process_name))


def save_chrome_schedule(
    result: SimResult, path, process_name: str = "simulated-cluster"
) -> None:
    """Render and write a simulated schedule to *path*, atomically."""
    from repro.runtime.atomic_write import atomic_write

    atomic_write(path, schedule_to_chrome(result, process_name=process_name))
