"""Chrome-tracing export of traces and simulated schedules.

Produces the Trace Event Format consumed by ``chrome://tracing`` /
Perfetto, giving an interactive timeline of a run — the lightweight
equivalent of the Paraver traces the paper's artifact uploads for its
kNN executions.
"""

from __future__ import annotations

import json

from repro.cluster.simulator import SimResult
from repro.runtime.tracing import Trace


def trace_to_chrome(trace: Trace, process_name: str = "repro-runtime") -> str:
    """Render a recorded runtime trace (wall-clock timestamps).

    Tasks are complete ("X") events; nested tasks appear on their
    parent's thread lane so fold groupings are visible.
    """
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    # lane per top-level task chain: parent id or own id
    for rec in trace:
        lane = rec.parent_id if rec.parent_id is not None else 0
        events.append(
            {
                "name": f"{rec.name}#{rec.task_id}",
                "cat": rec.name,
                "ph": "X",
                "pid": 1,
                "tid": lane,
                "ts": rec.t_start * 1e6,   # microseconds
                "dur": rec.duration * 1e6,
                "args": {
                    "deps": list(rec.deps),
                    "cores": rec.computing_units,
                    "gpus": rec.gpus,
                },
            }
        )
    return json.dumps({"traceEvents": events}, indent=1)


def schedule_to_chrome(result: SimResult, process_name: str = "simulated-cluster") -> str:
    """Render a simulated schedule: one thread lane per node."""
    events = [
        {"name": "process_name", "ph": "M", "pid": 1, "args": {"name": process_name}}
    ]
    for node in range(result.cluster.n_nodes):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": node,
                "args": {"name": f"node {node} ({result.cluster.node.cores} cores)"},
            }
        )
    for p in result.placements.values():
        events.append(
            {
                "name": f"{p.name}#{p.task_id}",
                "cat": p.name,
                "ph": "X",
                "pid": 1,
                "tid": p.node,
                "ts": p.t_start * 1e6,
                "dur": max(p.duration, 1e-9) * 1e6,
                "args": {"cores": p.cores, "gpus": p.gpus},
            }
        )
    for w in result.checkpoint_writes:
        events.append(
            {
                "name": f"ckpt#{w.task_id}",
                "cat": "checkpoint",
                "ph": "X",
                "pid": 1,
                "tid": w.node,
                "ts": w.t_start * 1e6,
                "dur": max(w.duration, 1e-9) * 1e6,
                "args": {"task_id": w.task_id},
            }
        )
    return json.dumps({"traceEvents": events}, indent=1)


def save_chrome_trace(trace: Trace, path, process_name: str = "repro-runtime") -> None:
    """Render and write a runtime trace to *path*, atomically."""
    from repro.runtime.atomic_write import atomic_write

    atomic_write(path, trace_to_chrome(trace, process_name=process_name))


def save_chrome_schedule(
    result: SimResult, path, process_name: str = "simulated-cluster"
) -> None:
    """Render and write a simulated schedule to *path*, atomically."""
    from repro.runtime.atomic_write import atomic_write

    atomic_write(path, schedule_to_chrome(result, process_name=process_name))
