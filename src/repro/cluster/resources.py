"""Cluster resource descriptions.

Models the paper's two testbeds:

* **MareNostrum IV** general-purpose partition — nodes with two 24-core
  Intel Xeon Platinum 8160 (48 cores) and 96 GB of memory.
* **CTE-Power** — nodes with two IBM Power9 CPUs, 512 GB of memory and
  4 NVIDIA V100 GPUs.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class NodeSpec:
    """One compute node."""

    cores: int
    gpus: int = 0
    name: str = "node"
    #: Relative CPU speed (1.0 = the machine the trace was recorded on).
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("a node needs at least one core")
        if self.gpus < 0:
            raise ValueError("gpus must be >= 0")
        if self.speed <= 0:
            raise ValueError("speed must be positive")


@dataclasses.dataclass(frozen=True)
class ClusterSpec:
    """A cluster of *n_nodes* copies of *node*.

    ``bandwidth`` (bytes/s) and ``latency`` (s) describe the
    interconnect and drive the data-transfer penalty applied when a
    task consumes data produced on a different node.

    ``node_speeds`` optionally makes the fleet heterogeneous: one
    relative speed per node (overriding ``node.speed``), e.g. a
    federated fleet with straggler devices.
    """

    node: NodeSpec
    n_nodes: int
    bandwidth: float = 12.5e9  # ~100 Gb/s Omni-Path, as on MareNostrum IV
    latency: float = 1.5e-6
    node_speeds: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("need at least one node")
        if self.bandwidth <= 0 or self.latency < 0:
            raise ValueError("bad interconnect parameters")
        if self.node_speeds is not None:
            if len(self.node_speeds) != self.n_nodes:
                raise ValueError("node_speeds must have one entry per node")
            if any(s <= 0 for s in self.node_speeds):
                raise ValueError("node speeds must be positive")

    def speed_of(self, node: int) -> float:
        if self.node_speeds is not None:
            return self.node_speeds[node]
        return self.node.speed

    @property
    def total_cores(self) -> int:
        return self.node.cores * self.n_nodes

    @property
    def total_gpus(self) -> int:
        return self.node.gpus * self.n_nodes

    def transfer_time(self, nbytes: int) -> float:
        """Time to move *nbytes* between two nodes."""
        return self.latency + nbytes / self.bandwidth


def marenostrum4(n_nodes: int) -> ClusterSpec:
    """The paper's MareNostrum IV general-purpose nodes (48 cores)."""
    return ClusterSpec(node=NodeSpec(cores=48, name="mn4"), n_nodes=n_nodes)


def cte_power(n_nodes: int) -> ClusterSpec:
    """The paper's CTE-Power GPU nodes (40 cores, 4 V100 GPUs)."""
    return ClusterSpec(
        node=NodeSpec(cores=40, gpus=4, name="power9"),
        n_nodes=n_nodes,
        bandwidth=12.5e9,
    )


def laptop() -> ClusterSpec:
    """A single-node stand-in for local runs."""
    import os

    return ClusterSpec(node=NodeSpec(cores=os.cpu_count() or 4), n_nodes=1)
