"""Discrete-event simulation of a task-graph execution on a cluster.

Replays a recorded :class:`~repro.runtime.tracing.Trace` on a
:class:`~repro.cluster.resources.ClusterSpec` using locality-aware list
scheduling: tasks become ready when their dependencies complete, are
prioritised by bottom level (longest downstream path), and are placed
on the node that lets them start earliest, charging an interconnect
transfer penalty when input data lives on another node.

This is how the paper-scale scalability figures are regenerated
without a supercomputer: the DAG shape and per-task durations come from
a real (local) execution, while node counts, cores-per-node and
cores-per-task follow the paper's testbed configuration.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Iterable, Mapping

from repro.cluster.costmodel import CostModel, IDENTITY
from repro.cluster.resources import ClusterSpec
from repro.runtime.tracing import TaskRecord, Trace


@dataclasses.dataclass(frozen=True)
class Placement:
    """Where and when one task ran in the simulation."""

    task_id: int
    name: str
    node: int
    t_start: float
    t_end: float
    cores: int
    gpus: int

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclasses.dataclass(frozen=True)
class NodeFailure:
    """A node-failure event injected into the simulation.

    The node goes down at time ``at``: every task in flight there is
    killed (its partial work is lost and it is re-executed elsewhere),
    and no new task is placed on the node while it is down.  With
    ``down_for=None`` the failure is permanent; otherwise the node
    rejoins after that many seconds with all cores free.
    """

    node: int
    at: float
    down_for: float | None = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("node must be >= 0")
        if self.at < 0:
            raise ValueError("at must be >= 0")
        if self.down_for is not None and self.down_for <= 0:
            raise ValueError("down_for must be positive (or None for permanent)")


class DeadClusterError(RuntimeError):
    """Tasks remain but every node is down with no revival scheduled."""


@dataclasses.dataclass(frozen=True)
class CheckpointSpec:
    """Periodic checkpoint writes in the simulation.

    Every ``every``-th task placement (counted globally, in scheduling
    order) pays ``write_cost`` extra seconds before its node frees up —
    the task's result being persisted to stable storage.  The writes
    appear in :attr:`SimResult.checkpoint_writes`, so
    :func:`~repro.cluster.analysis.failure_report` can price the
    checkpoint overhead against the lost work it would save on a node
    failure.
    """

    every: int = 1
    write_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("every must be >= 1")
        if self.write_cost < 0:
            raise ValueError("write_cost must be >= 0")


@dataclasses.dataclass(frozen=True)
class CheckpointWrite:
    """One simulated checkpoint write, at the tail of a task."""

    task_id: int
    node: int
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclasses.dataclass
class SimResult:
    """Outcome of one simulated execution."""

    cluster: ClusterSpec
    placements: dict[int, Placement]
    makespan: float
    #: Truncated placements of attempts killed by node failures; their
    #: duration is work the cluster performed and threw away.
    failed_placements: list[Placement] = dataclasses.field(default_factory=list)
    #: The failure events the simulation was run with.
    node_failures: tuple[NodeFailure, ...] = ()
    #: Checkpoint writes performed (empty without a checkpoint spec).
    checkpoint_writes: list[CheckpointWrite] = dataclasses.field(default_factory=list)
    #: The checkpoint policy the simulation was run with, if any.
    checkpoint_spec: CheckpointSpec | None = None

    @property
    def n_tasks(self) -> int:
        return len(self.placements)

    @property
    def checkpoint_overhead(self) -> float:
        """Seconds spent writing checkpoints (completed writes only)."""
        return sum(w.duration for w in self.checkpoint_writes)

    @property
    def lost_task_time(self) -> float:
        """Task-seconds of partial work destroyed by node failures."""
        return sum(p.duration for p in self.failed_placements)

    @property
    def lost_core_time(self) -> float:
        """Core-seconds of partial work destroyed by node failures."""
        return sum(p.duration * p.cores for p in self.failed_placements)

    def utilization(self) -> float:
        """Busy core-time over available core-time."""
        if self.makespan <= 0:
            return 0.0
        busy = sum(p.duration * p.cores for p in self.placements.values())
        return busy / (self.cluster.total_cores * self.makespan)

    def node_busy_time(self) -> list[float]:
        busy = [0.0] * self.cluster.n_nodes
        for p in self.placements.values():
            busy[p.node] += p.duration * p.cores
        return busy

    def per_name_span(self) -> dict[str, tuple[float, float]]:
        """(first start, last end) per task type."""
        out: dict[str, tuple[float, float]] = {}
        for p in self.placements.values():
            lo, hi = out.get(p.name, (float("inf"), 0.0))
            out[p.name] = (min(lo, p.t_start), max(hi, p.t_end))
        return out


class OversubscribedTaskError(ValueError):
    """A task requires more cores or GPUs than any node provides."""


def simulate(
    trace: Trace,
    cluster: ClusterSpec,
    cost_model: CostModel = IDENTITY,
    cores_per_task: Mapping[str, int] | None = None,
    gpus_per_task: Mapping[str, int] | None = None,
    policy: str = "locality",
    failures: Iterable[NodeFailure] = (),
    checkpoint: CheckpointSpec | None = None,
) -> SimResult:
    """Simulate executing *trace*'s DAG on *cluster*.

    ``cores_per_task`` / ``gpus_per_task`` override the recorded
    constraints per task name — the paper varies these between runs
    (e.g. 8 cores/task for CSVM, 4 for KNN, 1 or 4 GPUs per CNN task).

    ``policy`` selects node placement among feasible nodes:

    * ``"locality"`` (default, COMPSs-like): earliest data-ready start,
      i.e. prefer the node holding the task's inputs;
    * ``"round_robin"``: cycle nodes regardless of data placement —
      pays every transfer; useful to quantify locality's value.

    ``failures`` injects :class:`NodeFailure` events: tasks in flight on
    a failing node are killed and rescheduled (COMPSs task resubmission
    after a worker loss), their partial work accumulating in
    :attr:`SimResult.failed_placements`.  Data previously produced on
    the failed node stays readable — the model assumes results are
    replicated off-node (only in-flight work is lost), which keeps the
    lost-time accounting a lower bound.

    ``checkpoint`` prices a :class:`CheckpointSpec` into the schedule:
    every ``every``-th placed task runs ``write_cost`` seconds longer
    (its result being persisted), and the completed writes are recorded
    in :attr:`SimResult.checkpoint_writes`.  Tasks killed by a node
    failure never complete their write.
    """
    if policy not in ("locality", "round_robin"):
        raise ValueError(f"unknown scheduling policy {policy!r}")
    failures = tuple(failures)
    for f in failures:
        if f.node >= cluster.n_nodes:
            raise ValueError(
                f"failure targets node {f.node}, cluster has {cluster.n_nodes}"
            )
    records = list(trace)
    if not records:
        return SimResult(
            cluster, {}, 0.0, node_failures=failures, checkpoint_spec=checkpoint
        )
    ids = {r.task_id for r in records}

    def cores_of(r: TaskRecord) -> int:
        c = (cores_per_task or {}).get(r.name, r.computing_units)
        if c > cluster.node.cores:
            raise OversubscribedTaskError(
                f"task {r.name} needs {c} cores, node has {cluster.node.cores}"
            )
        return c

    def gpus_of(r: TaskRecord) -> int:
        g = (gpus_per_task or {}).get(r.name, r.gpus)
        if g > cluster.node.gpus:
            raise OversubscribedTaskError(
                f"task {r.name} needs {g} GPUs, node has {cluster.node.gpus}"
            )
        return g

    # Base durations under the cost model (speed applied per node).
    base_durations = {
        r.task_id: cost_model.duration(r, node_speed=1.0) for r in records
    }
    speeds = [cluster.speed_of(n) for n in range(cluster.n_nodes)]

    def dur_on(tid: int, node: int) -> float:
        return base_durations[tid] / speeds[node]

    # For priorities, use the fastest node's view of each task.
    max_speed = max(speeds)
    durations = {tid: d / max_speed for tid, d in base_durations.items()}
    # Dependencies restricted to tasks present in the trace.
    deps = {r.task_id: tuple(d for d in r.deps if d in ids) for r in records}
    children: dict[int, list[int]] = {r.task_id: [] for r in records}
    for r in records:
        for d in deps[r.task_id]:
            children[d].append(r.task_id)

    # Bottom level (critical-path priority): duration + max child level.
    bottom: dict[int, float] = {}

    def _bottom(tid: int) -> float:
        # iterative DFS to avoid recursion limits on deep cascades
        stack = [(tid, False)]
        while stack:
            node, processed = stack.pop()
            if node in bottom:
                continue
            if processed:
                kids = children[node]
                bottom[node] = durations[node] + max(
                    (bottom[k] for k in kids), default=0.0
                )
            else:
                stack.append((node, True))
                for k in children[node]:
                    if k not in bottom:
                        stack.append((k, False))
        return bottom[tid]

    for r in records:
        _bottom(r.task_id)

    by_id = {r.task_id: r for r in records}
    remaining = {r.task_id: len(deps[r.task_id]) for r in records}
    # ready heap: (-bottom_level, task_id)
    ready: list[tuple[float, int]] = [
        (-bottom[tid], tid) for tid, n in remaining.items() if n == 0
    ]
    heapq.heapify(ready)

    free_cores = [cluster.node.cores] * cluster.n_nodes
    free_gpus = [cluster.node.gpus] * cluster.n_nodes
    alive = [True] * cluster.n_nodes
    #: per-node running tasks keyed by event seq, as
    #: (task_id, cores, gpus, t_start, t_end) — consulted both for the
    #: deferral decision and to know what a node failure kills.
    running: list[dict[int, tuple[int, int, int, float, float]]] = [
        {} for _ in range(cluster.n_nodes)
    ]
    finish_time: dict[int, float] = {}
    location: dict[int, int] = {}
    placements: dict[int, Placement] = {}
    failed_placements: list[Placement] = []
    checkpoint_writes: list[CheckpointWrite] = []
    placed_count = 0
    # Event heap: (time, kind_rank, seq, payload).  Ranks order
    # same-instant events deterministically: completions (0) beat
    # failures (1) beat revivals (2) — a task ending exactly when its
    # node dies is counted as finished.
    _DONE, _FAIL, _REVIVE = 0, 1, 2
    events: list[tuple[float, int, int, object]] = []
    event_seq = 0
    #: seqs of completion events voided by a node failure.
    killed: set[int] = set()
    now = 0.0
    rr_counter = 0

    def push_event(t: float, kind: int, payload: object) -> int:
        nonlocal event_seq
        event_seq += 1
        heapq.heappush(events, (t, kind, event_seq, payload))
        return event_seq

    for f in failures:
        push_event(f.at, _FAIL, f)

    def earliest_hosting(node: int, c: int, g: int) -> float:
        """Earliest time *node* could have c cores and g GPUs free."""
        if not alive[node]:
            return float("inf")
        if free_cores[node] >= c and free_gpus[node] >= g:
            return now
        fc, fg = free_cores[node], free_gpus[node]
        for _tid, cc, gg, _t0, t_end in sorted(
            running[node].values(), key=lambda r: r[4]
        ):
            fc += cc
            fg += gg
            if fc >= c and fg >= g:
                return t_end
        return float("inf")

    def data_ready(tid: int, node: int) -> float:
        t = 0.0
        rec = by_id[tid]
        for d in deps[tid]:
            t_avail = finish_time[d]
            if location[d] != node:
                # charge the producer's output volume across the wire
                t_avail += cluster.transfer_time(by_id[d].out_bytes)
            t = max(t, t_avail)
        return max(t, 0.0) if deps[tid] else 0.0

    while ready or events:
        # Try to place every currently ready task.
        progressed = False
        still_ready: list[tuple[float, int]] = []
        while ready:
            prio, tid = heapq.heappop(ready)
            rec = by_id[tid]
            c, g = cores_of(rec), gpus_of(rec)
            best_node, best_start = -1, float("inf")
            best_finish = float("inf")
            if policy == "round_robin":
                order = [
                    (rr_counter + i) % cluster.n_nodes
                    for i in range(cluster.n_nodes)
                ]
                for node in order:
                    if alive[node] and free_cores[node] >= c and free_gpus[node] >= g:
                        best_node = node
                        best_start = max(now, data_ready(tid, node))
                        rr_counter += 1
                        break
            else:
                for node in range(cluster.n_nodes):
                    if alive[node] and free_cores[node] >= c and free_gpus[node] >= g:
                        start = max(now, data_ready(tid, node))
                        finish = start + dur_on(tid, node)
                        if finish < best_finish:
                            best_finish, best_start, best_node = finish, start, node
                if best_node >= 0:
                    # Deferral: if some busy node would let the task
                    # *finish* strictly earlier (typically its data's
                    # home node, or a faster node), wait for it instead
                    # of starting suboptimally now.
                    best_busy = min(
                        (
                            max(earliest_hosting(n, c, g), data_ready(tid, n))
                            + dur_on(tid, n)
                            for n in range(cluster.n_nodes)
                        ),
                        default=float("inf"),
                    )
                    if best_busy < best_finish - 1e-12:
                        still_ready.append((prio, tid))
                        continue
            if best_node < 0:
                still_ready.append((prio, tid))
                continue
            ck_cost = 0.0
            if checkpoint is not None:
                placed_count += 1
                if placed_count % checkpoint.every == 0:
                    ck_cost = checkpoint.write_cost
            t_end = best_start + dur_on(tid, best_node) + ck_cost
            free_cores[best_node] -= c
            free_gpus[best_node] -= g
            seq = push_event(t_end, _DONE, (tid, best_node, c, g, ck_cost))
            running[best_node][seq] = (tid, c, g, best_start, t_end)
            placements[tid] = Placement(
                task_id=tid,
                name=rec.name,
                node=best_node,
                t_start=best_start,
                t_end=t_end,
                cores=c,
                gpus=g,
            )
            progressed = True
        for item in still_ready:
            heapq.heappush(ready, item)

        if not events:
            if ready and not progressed:
                if not any(alive):
                    raise DeadClusterError(
                        "tasks remain but every node is down permanently"
                    )
                raise OversubscribedTaskError(
                    "ready tasks cannot be placed and no task is running"
                )
            continue

        # Advance to the next event.
        t_event, kind, seq, payload = heapq.heappop(events)

        if kind == _DONE:
            if seq in killed:
                # Voided by a node failure: the task never finished, so
                # the clock does not advance to its planned end time.
                killed.discard(seq)
                continue
            tid, node, c, g, ck_cost = payload
            now = max(now, t_event)
            free_cores[node] += c
            free_gpus[node] += g
            del running[node][seq]
            finish_time[tid] = t_event
            location[tid] = node
            if ck_cost > 0:
                # a task killed mid-flight never reaches this branch, so
                # only completed writes are recorded
                checkpoint_writes.append(
                    CheckpointWrite(tid, node, t_event - ck_cost, t_event)
                )
            for child in children[tid]:
                remaining[child] -= 1
                if remaining[child] == 0:
                    heapq.heappush(ready, (-bottom[child], child))

        elif kind == _FAIL:
            failure: NodeFailure = payload
            now = max(now, t_event)
            node = failure.node
            if alive[node]:
                alive[node] = False
                free_cores[node] = 0
                free_gpus[node] = 0
                # Kill every in-flight task: record the truncated
                # attempt as lost work and resubmit the task.
                for run_seq, (tid, c, g, t0, _planned_end) in sorted(
                    running[node].items()
                ):
                    killed.add(run_seq)
                    failed_placements.append(
                        Placement(
                            task_id=tid,
                            name=by_id[tid].name,
                            node=node,
                            t_start=t0,
                            # a task placed to start later (waiting on a
                            # transfer) dies with zero work performed
                            t_end=max(t0, t_event),
                            cores=c,
                            gpus=g,
                        )
                    )
                    placements.pop(tid, None)
                    heapq.heappush(ready, (-bottom[tid], tid))
                running[node].clear()
                if failure.down_for is not None:
                    push_event(t_event + failure.down_for, _REVIVE, node)

        else:  # _REVIVE
            node = payload
            now = max(now, t_event)
            if not alive[node]:
                alive[node] = True
                free_cores[node] = cluster.node.cores
                free_gpus[node] = cluster.node.gpus

    makespan = max((p.t_end for p in placements.values()), default=0.0)
    return SimResult(
        cluster,
        placements,
        makespan,
        failed_placements=failed_placements,
        node_failures=failures,
        checkpoint_writes=checkpoint_writes,
        checkpoint_spec=checkpoint,
    )


def flatten_nested(trace: Trace) -> Trace:
    """Lift nested tasks to a flat DAG for simulation.

    Parent tasks that spawned children are removed; their children
    inherit the parent's dependencies, and tasks that depended on the
    parent now depend on all of the parent's (transitively flattened)
    children.  The parent's own (orchestration) time is dropped — an
    approximation documented in DESIGN.md that errs towards optimism
    for *both* nested and non-nested variants equally.
    """
    records = list(trace)
    has_children = {r.parent_id for r in records if r.parent_id is not None}
    leaf_of: dict[int, list[int]] = {}

    def leaves(tid: int) -> list[int]:
        if tid not in has_children:
            return [tid]
        if tid in leaf_of:
            return leaf_of[tid]
        out: list[int] = []
        for r in records:
            if r.parent_id == tid:
                out.extend(leaves(r.task_id))
        leaf_of[tid] = out
        return out

    parent_deps: dict[int, tuple[int, ...]] = {
        r.task_id: r.deps for r in records
    }
    flat = Trace()
    for r in records:
        if r.task_id in has_children:
            continue  # drop parents
        new_deps: set[int] = set()
        frontier: Iterable[int] = r.deps
        if r.parent_id is not None:
            frontier = tuple(r.deps) + parent_deps.get(r.parent_id, ())
        for d in frontier:
            for leaf in leaves(d):
                if leaf != r.task_id:
                    new_deps.add(leaf)
        flat.add(dataclasses.replace(r, deps=tuple(sorted(new_deps)), parent_id=None))
    return flat
