"""Seeded streaming stress scenarios (``repro stress --stream``).

Four scenario families, selected by ``seed % 4`` like the scheduler
stress harness, each run under the shared hang watchdog and checked
against reference values computed in plain Python:

* ``backpressure`` — a fast producer against a tiny-capacity pipeline
  whose consumer stalls and then releases: every element must arrive
  exactly once, in order, with queue depth never exceeding capacity;
* ``retry`` — a mid-stream operator that fails transiently under
  ``on_failure="RETRY"`` (plus an ``IGNORE`` variant): output must
  match the reference with the expected retry/drop counts;
* ``abort`` — a terminal operator failure (``FAIL``) or a workflow
  abort from an ordinary DAG task mid-stream: the graph must unwind
  promptly, with zero leaked queue slots and the runtime's invariants
  intact;
* ``shutdown`` — ``Runtime.shutdown(wait=True)`` mid-flight: the drain
  hook stops the source, in-flight windows flush, and the delivered
  prefix must be consistent with the reference.

Every scenario ends with ``check_invariants(quiesced=True)`` (zero
leaked tasks) and a stream-slot audit (zero leaked queue credits).
"""

from __future__ import annotations

import random
import time

from repro.runtime import task
from repro.runtime.config import RuntimeConfig
from repro.runtime.engine import Runtime, pop_runtime, push_runtime
from repro.runtime.exceptions import RuntimeStateError, WorkflowAbortedError
from repro.runtime.failures import FAIL, IGNORE, RETRY
from repro.runtime.stress import StressReport, run_under_watchdog
from repro.streaming.graph import StreamFailure, StreamGraph
from repro.streaming.operators import TumblingCountWindow

MODES = ("backpressure", "retry", "abort", "shutdown")


@task(returns=1, name="stream_stress_boom", on_failure="FAIL")
def _boom() -> int:
    raise RuntimeError("injected workflow abort")


@task(returns=1, name="stream_stress_add")
def _add(a: int, b: int) -> int:
    return a + b


def _windows_of(values: list[int], w: int) -> list[int]:
    """Reference tumbling-count window sums (partial tail included —
    the EOS flush semantics of :class:`TumblingCountWindow`)."""
    return [sum(values[i : i + w]) for i in range(0, len(values), w)]


def _audit_streams(g: StreamGraph, problems: list[str], drained: bool) -> None:
    leaked = g.slots_leaked()
    if leaked:
        problems.append(f"{leaked} stream queue slot(s) leaked")
    if drained:
        for s in g.streams:
            st = s.stats()
            if st["depth"] != 0:
                problems.append(
                    f"stream {st['name']} still holds {st['depth']} element(s)"
                )
            if st["credits"] != st["capacity"]:
                problems.append(
                    f"stream {st['name']} ended with {st['credits']}/"
                    f"{st['capacity']} credits"
                )


def _pipeline(g: StreamGraph, n: int, w: int, map_fn, sink_fn, **map_opts):
    src = g.source(range(n), name="src")
    mapped = g.map(src, map_fn, name="triple", **map_opts)
    kept = g.filter(mapped, lambda v: v % 5 != 0, name="drop5")
    windows = g.window(kept, TumblingCountWindow(w), fn=sum, name="wsum")
    return g.sink(windows, fn=sink_fn, name="sink", collect=True)


def _scenario_backpressure(seed: int, rng: random.Random, rt: Runtime) -> list[str]:
    problems: list[str] = []
    n = 150 + rng.randrange(150)
    cap = 2 + rng.randrange(5)
    w = 2 + rng.randrange(6)
    stall = 5 + rng.randrange(10)

    g = StreamGraph(rt, name=f"bp{seed}", capacity=cap)
    seen = {"count": 0}

    def slow_then_fast(v: int) -> int:
        # The stall/release: the consumer drags for the first windows
        # (filling every upstream queue to capacity) then sprints.
        seen["count"] += 1
        if seen["count"] <= stall:
            time.sleep(0.002)
        return v

    sink = _pipeline(g, n, w, lambda v: 3 * v + 1, slow_then_fast)
    g.start()
    stats = g.join()

    filtered = [3 * v + 1 for v in range(n) if (3 * v + 1) % 5 != 0]
    expected = _windows_of(filtered, w)
    if sink.collected != expected:
        problems.append(
            f"backpressure: got {len(sink.collected)} window(s), "
            f"expected {len(expected)} (or values differ)"
        )
    for s in g.streams:
        st = s.stats()
        if st["high_water"] > st["capacity"]:
            problems.append(
                f"stream {st['name']} exceeded capacity: "
                f"high water {st['high_water']} > {st['capacity']}"
            )
    if stats["src"].n_out != n:
        problems.append(f"source emitted {stats['src'].n_out}, expected {n}")
    _audit_streams(g, problems, drained=True)
    return problems


def _scenario_retry(seed: int, rng: random.Random, rt: Runtime) -> list[str]:
    problems: list[str] = []
    n = 120 + rng.randrange(120)
    w = 2 + rng.randrange(5)
    fail_values = set(rng.sample(range(n), 8))
    ignore_mode = rng.random() < 0.4
    attempts: dict[int, int] = {}

    def flaky(v: int) -> int:
        # Fails the first attempt on the chosen elements; RETRY must
        # re-apply the operator, IGNORE must drop the element.
        if v in fail_values and attempts.get(v, 0) < 1:
            attempts[v] = attempts.get(v, 0) + 1
            raise ValueError(f"transient failure on {v}")
        return 3 * v + 1

    g = StreamGraph(rt, name=f"rt{seed}", capacity=8)
    policy = {"on_failure": IGNORE if ignore_mode else RETRY, "max_retries": 2}
    sink = _pipeline(g, n, w, flaky, None, **policy)
    g.start()
    stats = g.join()

    survivors = (
        [v for v in range(n) if v not in fail_values] if ignore_mode else range(n)
    )
    filtered = [3 * v + 1 for v in survivors if (3 * v + 1) % 5 != 0]
    expected = _windows_of(filtered, w)
    if sink.collected != expected:
        problems.append("retry: window sums differ from the reference")
    triple = stats["triple"]
    if ignore_mode:
        if triple.dropped != len(fail_values):
            problems.append(
                f"IGNORE dropped {triple.dropped}, expected {len(fail_values)}"
            )
    elif triple.retries != len(fail_values):
        problems.append(
            f"RETRY retried {triple.retries}, expected {len(fail_values)}"
        )
    _audit_streams(g, problems, drained=True)
    return problems


def _scenario_abort(seed: int, rng: random.Random, rt: Runtime) -> list[str]:
    problems: list[str] = []
    n = 2000
    runtime_abort = rng.random() < 0.5
    kill_at = 50 + rng.randrange(200)

    def paced(v: int) -> int:
        if v == kill_at and not runtime_abort:
            raise RuntimeError(f"injected operator failure at {v}")
        time.sleep(0.0005)
        return 3 * v + 1

    g = StreamGraph(rt, name=f"ab{seed}", capacity=8)
    sink = _pipeline(g, n, 4, paced, None, on_failure=FAIL)
    g.start()
    if runtime_abort:
        # Abort arrives from the task side: an ordinary DAG task with
        # on_failure="FAIL" kills the workflow; the stream stages must
        # observe it through the interrupt registry and unwind.
        time.sleep(0.05)
        _boom()
        try:
            rt.barrier()
        except WorkflowAbortedError:
            pass
    stats = g.join(timeout=60.0, raise_on_error=False)
    if g.error is None:
        problems.append("abort: graph finished cleanly, expected a failure")
    elif runtime_abort:
        cause = getattr(g.error, "__cause__", None) or g.error
        if not isinstance(cause, WorkflowAbortedError):
            problems.append(f"abort: unexpected error {g.error!r}")
    if sink.collected and len(sink.collected) >= len(
        _windows_of([3 * v + 1 for v in range(n) if (3 * v + 1) % 5 != 0], 4)
    ):
        problems.append("abort: sink received the full feed despite the abort")
    del stats
    _audit_streams(g, problems, drained=True)
    return problems


def _scenario_shutdown(seed: int, rng: random.Random, rt: Runtime) -> list[str]:
    problems: list[str] = []
    n = 5000
    w = 3 + rng.randrange(4)

    def paced(v: int) -> int:
        time.sleep(0.0005)
        return 3 * v + 1

    g = StreamGraph(rt, name=f"sd{seed}", capacity=8)
    sink = _pipeline(g, n, w, paced, None)
    g.start()
    time.sleep(0.05 + rng.random() * 0.1)
    rt.shutdown(wait=True)  # the drain hook stops the source and flushes
    g.join(timeout=60.0, raise_on_error=False)
    if g.error is not None and not isinstance(
        g.error if not isinstance(g.error, StreamFailure) else g.error.__cause__,
        RuntimeStateError,
    ):
        problems.append(f"shutdown: unexpected error {g.error!r}")

    # Prefix consistency: the delivered windows must be exactly the
    # reference windows over some prefix of the filtered feed.
    got = list(sink.collected)
    src_emitted = g.stages[0].stats.n_out
    filtered = [
        3 * v + 1 for v in range(src_emitted) if (3 * v + 1) % 5 != 0
    ]
    expected = _windows_of(filtered, w)
    if g.error is None and got != expected:
        problems.append(
            f"shutdown: drained {len(got)} window(s) inconsistent with the "
            f"{src_emitted}-element prefix ({len(expected)} expected)"
        )
    if src_emitted >= n:
        problems.append("shutdown: source ran to completion — drain never hit")
    _audit_streams(g, problems, drained=g.error is None)
    return problems


_SCENARIOS = {
    "backpressure": _scenario_backpressure,
    "retry": _scenario_retry,
    "abort": _scenario_abort,
    "shutdown": _scenario_shutdown,
}


def run_stream_scenario(
    seed: int,
    workers: int = 2,
    timeout: float = 60.0,
    fusion: bool = False,
    metrics: bool = False,
) -> StressReport:
    """One seeded scenario under the watchdog, with a full leak audit."""
    t0 = time.perf_counter()
    mode = MODES[seed % len(MODES)]
    rng = random.Random(seed)

    def body() -> tuple[list[str], int]:
        cfg = RuntimeConfig(
            executor="threads",
            max_workers=workers,
            debug_invariants=True,
            fusion=fusion,
            observability="metrics" if metrics else "",
            name=f"stream-stress-{seed}",
        )
        rt = Runtime(config=cfg)
        push_runtime(rt)
        problems: list[str] = []
        try:
            problems = _SCENARIOS[mode](seed, rng, rt)
        finally:
            try:
                rt.shutdown()
            except Exception as exc:  # noqa: BLE001 - audit below
                problems.append(f"shutdown raised {exc!r}")
            pop_runtime(rt)
        problems.extend(rt.check_invariants(quiesced=True))
        if mode != "abort":
            # A clean run must leave the runtime usable accounting:
            # abort scenarios legitimately end aborted.
            if rt.aborted is not None:
                problems.append("runtime unexpectedly aborted")
        return problems, rt.n_tasks

    outcome = run_under_watchdog(body, timeout, f"stream seed {seed} ({mode})")
    problems = list(outcome.get("problems", []))
    n_tasks = 0
    if outcome.get("ok"):
        scenario_problems, n_tasks = outcome["value"]
        problems.extend(scenario_problems)
    return StressReport(
        seed=seed,
        mode=mode,
        ok=not problems,
        n_tasks=n_tasks,
        duration=time.perf_counter() - t0,
        problems=problems,
    )


def run_suite(
    seeds,
    workers: int = 2,
    timeout: float = 60.0,
    fusion: bool = False,
    metrics: bool = False,
    verbose: bool = True,
) -> list[StressReport]:
    reports = []
    for seed in seeds:
        report = run_stream_scenario(
            seed, workers=workers, timeout=timeout, fusion=fusion, metrics=metrics
        )
        reports.append(report)
        if verbose:
            print(report.line(), flush=True)
    return reports


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="streaming stress harness")
    parser.add_argument("--seeds", type=int, default=8)
    parser.add_argument("--seed", type=int, action="append", default=None)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--fuse", action="store_true")
    parser.add_argument("--metrics", action="store_true")
    args = parser.parse_args(argv)
    seeds = args.seed if args.seed else range(args.seeds)
    reports = run_suite(
        seeds,
        workers=args.workers,
        timeout=args.timeout,
        fusion=args.fuse,
        metrics=args.metrics,
    )
    failed = [r for r in reports if not r.ok]
    print(f"stream stress: {len(reports) - len(failed)}/{len(reports)} seeds passed")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
