"""Bounded streams: the data plane of :mod:`repro.streaming`.

A :class:`Stream` is a bounded multi-producer/multi-consumer channel
with credit-based backpressure: the stream starts with ``capacity``
credits, every :meth:`put` consumes one (blocking while none are left)
and every :meth:`get` returns one.  ``credits + depth == capacity`` is
a hard invariant — :meth:`slots_leaked` is the stress harness's leak
detector.

Streams transport three element kinds:

* :class:`Record` — one data element, optionally carrying an
  event-time timestamp (``ts``), a routing ``key`` (set by ``key_by``)
  and the wall-clock ``ingest`` instant the source stamped for
  end-to-end latency measurement;
* :class:`Watermark` — a punctuation asserting that no record with a
  smaller event time will follow; time windows close on watermarks,
  never on the wall clock, which keeps replays deterministic;
* ``EOS`` — not an element at all: :meth:`close` flips a flag, readers
  drain whatever is queued and then observe end-of-stream, so no data
  is ever cut off by a graceful close.

Error propagation runs the other way: :meth:`poison` drops everything
queued, restores the credits, and makes every current and future
put/get raise the poisoning error — the mechanism stage failures and
aborts use to unwind a whole pipeline without a leaked slot.

A stream bound to a :class:`~repro.runtime.engine.Runtime` registers a
wakeup with the engine's interrupt registry, so a thread parked on a
full (or empty) stream still observes runtime kill/abort/shutdown
promptly and raises instead of sleeping forever.
"""

from __future__ import annotations

import collections
import threading
from typing import Any, Iterator


class StreamClosed(Exception):
    """``put()`` on a stream that has been closed."""


class _EndOfStream:
    """Singleton returned by :meth:`Stream.get` once a closed stream
    has drained.  Never travels through the queue."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "EOS"


EOS = _EndOfStream()


class Record:
    """One data element in flight.

    ``ts`` is the element's *event time* (seconds, source-defined);
    ``key`` is the routing key assigned by ``key_by`` (None = global);
    ``ingest`` is the wall-clock (monotonic) instant the source emitted
    it, carried through every operator so the sink can measure true
    end-to-end latency.
    """

    __slots__ = ("value", "ts", "key", "ingest")

    def __init__(
        self,
        value: Any,
        ts: float | None = None,
        key: Any = None,
        ingest: float | None = None,
    ):
        self.value = value
        self.ts = ts
        self.key = key
        self.ingest = ingest

    def replace(self, value: Any) -> "Record":
        """A new record carrying *value* with this record's metadata."""
        return Record(value, ts=self.ts, key=self.key, ingest=self.ingest)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Record({self.value!r}, ts={self.ts}, key={self.key!r})"


class Watermark:
    """Event-time punctuation: no later record will carry ``ts`` below
    this one.  Operators forward watermarks downstream after emitting
    whatever windows the watermark closed."""

    __slots__ = ("ts",)

    def __init__(self, ts: float):
        self.ts = ts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Watermark({self.ts})"


class Stream:
    """A bounded element channel with credit-based backpressure."""

    def __init__(
        self,
        capacity: int = 64,
        *,
        name: str = "stream",
        runtime: Any = None,
    ):
        if capacity < 1:
            raise ValueError("stream capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._queue: collections.deque = collections.deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._credits = capacity
        self._closed = False
        self._error: BaseException | None = None
        self._runtime = runtime
        # -- accounting (guarded by _lock) -----------------------------
        self._puts = 0
        self._gets = 0
        self._dropped = 0
        self._high_water = 0
        self._put_waits = 0
        self._get_waits = 0
        if runtime is not None:
            runtime.add_interrupt(self.notify_interrupt)

    # -- runtime integration -------------------------------------------
    def notify_interrupt(self) -> None:
        """Wake every parked producer/consumer so it re-checks the
        runtime's interruption state (registered with
        ``Runtime.add_interrupt``)."""
        with self._lock:
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def _interruption(self) -> BaseException | None:
        rt = self._runtime
        return rt.interruption() if rt is not None else None

    def _unregister(self) -> None:
        rt = self._runtime
        if rt is not None:
            rt.remove_interrupt(self.notify_interrupt)

    # -- producing ------------------------------------------------------
    def put(self, value: Any, ts: float | None = None) -> None:
        """Enqueue one value (wrapped in a :class:`Record`), blocking
        while no credit is available."""
        self.put_item(Record(value, ts=ts))

    def put_item(self, item: "Record | Watermark") -> None:
        """Enqueue a prepared :class:`Record` or :class:`Watermark`."""
        with self._lock:
            while True:
                if self._error is not None:
                    raise self._error
                if self._closed:
                    raise StreamClosed(f"stream {self.name!r} is closed")
                exc = self._interruption()
                if exc is not None:
                    raise exc
                if self._credits > 0:
                    break
                self._put_waits += 1
                self._not_full.wait()
            self._credits -= 1
            self._queue.append(item)
            self._puts += 1
            depth = len(self._queue)
            if depth > self._high_water:
                self._high_water = depth
            self._not_empty.notify()

    # -- consuming ------------------------------------------------------
    def get(self) -> Any:
        """Dequeue the next element, blocking while the stream is
        empty.  Returns :data:`EOS` once the stream is closed *and*
        drained; raises the poisoning error if the stream was
        poisoned, or the runtime's interruption while parked."""
        with self._lock:
            while True:
                if self._error is not None:
                    raise self._error
                if self._queue:
                    item = self._queue.popleft()
                    self._credits += 1
                    self._gets += 1
                    self._not_full.notify()
                    return item
                if self._closed:
                    return EOS
                exc = self._interruption()
                if exc is not None:
                    raise exc
                self._get_waits += 1
                self._not_empty.wait()

    def __iter__(self) -> Iterator["Record | Watermark"]:
        """Drain the stream: yields records and watermarks until EOS."""
        while True:
            item = self.get()
            if item is EOS:
                return
            yield item

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Graceful end-of-stream: queued elements still drain, then
        readers observe :data:`EOS`; further puts raise
        :class:`StreamClosed`.  Idempotent."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()
        self._unregister()

    def poison(self, error: BaseException) -> int:
        """Abortive close: drop everything queued (restoring the
        credits), record *error*, and wake every waiter — current and
        future puts/gets raise it.  Returns the number of elements
        dropped.  The first poisoning error wins."""
        with self._lock:
            dropped = len(self._queue)
            self._queue.clear()
            self._credits = self.capacity
            self._dropped += dropped
            self._closed = True
            if self._error is None:
                self._error = error
            self._not_full.notify_all()
            self._not_empty.notify_all()
        self._unregister()
        return dropped

    # -- inspection -----------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def error(self) -> BaseException | None:
        return self._error

    def depth(self) -> int:
        """Elements currently queued."""
        with self._lock:
            return len(self._queue)

    def credits(self) -> int:
        """Backpressure credits currently available to producers."""
        with self._lock:
            return self._credits

    def slots_leaked(self) -> int:
        """``(capacity - credits) - depth`` — nonzero means a credit
        was consumed without a matching queued element (or vice
        versa).  Always zero in a healthy stream; the stress harness
        fails any run where it is not."""
        with self._lock:
            return (self.capacity - self._credits) - len(self._queue)

    def stats(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "capacity": self.capacity,
                "depth": len(self._queue),
                "credits": self._credits,
                "puts": self._puts,
                "gets": self._gets,
                "dropped": self._dropped,
                "high_water": self._high_water,
                "put_waits": self._put_waits,
                "get_waits": self._get_waits,
                "closed": self._closed,
                "poisoned": self._error is not None,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Stream {self.name!r} depth={len(self._queue)}/"
            f"{self.capacity} closed={self._closed}>"
        )
