"""Hybrid task+dataflow streaming (:mod:`repro.streaming`).

The subsystem extends the task runtime with long-lived *stream stages*
wired by bounded, credit-backpressured channels — the hybrid
workflows model (Ramon-Cortes et al.) the source paper's group built
on COMPSs.  Stages are full task-runtime citizens: a stream stage can
``submit_many()`` micro-batched ``@task`` calls and ``wait_on`` the
futures, and ordinary DAG tasks can block on stream results.

Layering:

* :mod:`repro.streaming.channel` — :class:`Stream` (bounded,
  credit-based backpressure, poison/EOS), :class:`Record`,
  :class:`Watermark`;
* :mod:`repro.streaming.operators` — tumbling/sliding count and
  event-time windows, closed deterministically by arrival or
  watermark; :func:`run_windowed` replays the same windower offline;
* :mod:`repro.streaming.graph` — :class:`StreamGraph` stage wiring,
  per-element failure policies, runtime drain/interrupt integration,
  per-stage latency/throughput telemetry;
* :mod:`repro.streaming.serving` — the online AF inference pipeline
  (:func:`serve_stream`) and its batch-DAG twin (:func:`serve_batch`)
  that the differential suite holds bit-identical;
* :mod:`repro.streaming.stress` — seeded backpressure/retry/abort/
  shutdown scenarios behind ``repro stress --stream``.
"""

from repro.streaming.channel import (
    EOS,
    Record,
    Stream,
    StreamClosed,
    Watermark,
)
from repro.streaming.graph import StageStats, StreamFailure, StreamGraph
from repro.streaming.operators import (
    ClosedWindow,
    SlidingCountWindow,
    SlidingTimeWindow,
    TumblingCountWindow,
    TumblingTimeWindow,
    WindowSpec,
    run_windowed,
)
from repro.streaming.serving import (
    ServeConfig,
    ServingResult,
    iter_feed,
    make_model,
    serve_batch,
    serve_stream,
)

__all__ = [
    "EOS",
    "Record",
    "Stream",
    "StreamClosed",
    "Watermark",
    "StageStats",
    "StreamFailure",
    "StreamGraph",
    "ClosedWindow",
    "SlidingCountWindow",
    "SlidingTimeWindow",
    "TumblingCountWindow",
    "TumblingTimeWindow",
    "WindowSpec",
    "run_windowed",
    "ServeConfig",
    "ServingResult",
    "iter_feed",
    "make_model",
    "serve_batch",
    "serve_stream",
]
