"""Online AF inference serving: the flagship streaming workload.

A rate-controlled synthetic-ECG source feeds a multi-stage stream
graph that reproduces, online, exactly what the batch AF pipeline
(:mod:`repro.workflows.af_pipeline`) does offline:

``ecg source`` → ``key_by(patient)`` → ``tumbling count window``
(chunks → one segment per patient) → ``features`` (R-peak detection +
log-STFT spectrogram, the CNN's input representation) → ``microbatch``
→ ``infer`` (a ``submit_many()`` micro-batched task on the
:func:`repro.nn.af_cnn` model — the stream stage awaits the DAG
future) → ``predictions sink``.

Because every transformation is a shared pure function and windowing
runs through the same :class:`~repro.streaming.operators` windower,
:func:`serve_batch` can replay the identical bounded feed as an
ordinary task DAG — the differential suite requires the two paths to
be **bit-identical**, with fusion on or off and on both the threaded
and sequential executors.

Per-stage p50/p99 latency, throughput and queue-depth gauges flow
through the runtime's :class:`~repro.runtime.observability.MetricsRegistry`
(``repro_stream_*`` series in the Prometheus exposition); the
micro-batch inference tasks appear in ``repro trace`` like any other
task.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Iterator

import numpy as np

from repro.ecg import ECGConfig, generate_recording, pan_tompkins, rr_intervals
from repro.runtime import task, wait_on
from repro.runtime.engine import Runtime, active_runtime
from repro.streaming.channel import Record
from repro.streaming.graph import StreamGraph
from repro.streaming.operators import TumblingCountWindow, run_windowed


@dataclasses.dataclass
class ServeConfig:
    """Knobs of the serving scenario (defaults: a seconds-scale run)."""

    seed: int = 0
    fs: float = 300.0
    #: seconds of signal per stream chunk (the source's record unit).
    chunk_seconds: float = 0.5
    #: chunks per diagnostic segment — the tumbling window size.
    chunks_per_segment: int = 6
    #: total segments in the bounded feed (across all patients).
    n_segments: int = 12
    #: simulated concurrent patients; chunks interleave round-robin and
    #: ``key_by(patient)`` windows them independently.
    patients: int = 2
    #: micro-batch size for model inference.
    batch_size: int = 4
    #: source pacing in chunks/second (None = replay at full speed).
    rate: float | None = None
    nperseg: int = 64
    decimate: int = 2
    #: stream capacity (credits) between stages.
    capacity: int = 32
    label_cycle: tuple = ("N", "AF", "O")
    ecg: ECGConfig | None = None

    @property
    def chunk_len(self) -> int:
        return int(self.fs * self.chunk_seconds)


def iter_feed(cfg: ServeConfig) -> Iterator[tuple]:
    """The deterministic bounded ECG feed.

    Yields ``(patient, segment_index, chunk_index, chunk, label)``
    tuples: segments are generated whole (seeded per segment, so the
    feed is replayable bit-for-bit), split into chunks, and emitted
    round-robin across the patients of each round — the interleaving a
    real multi-patient ingest would show."""
    rounds = (cfg.n_segments + cfg.patients - 1) // cfg.patients
    for r in range(rounds):
        seg_ids = [
            r * cfg.patients + p
            for p in range(cfg.patients)
            if r * cfg.patients + p < cfg.n_segments
        ]
        chunks: dict[int, tuple[list, str]] = {}
        for seg in seg_ids:
            label = cfg.label_cycle[(seg // cfg.patients) % len(cfg.label_cycle)]
            rng = np.random.default_rng(cfg.seed * 100_003 + seg * 7_919 + 1)
            signal = generate_recording(
                label, cfg.chunks_per_segment * cfg.chunk_seconds, rng, cfg.ecg
            )
            n = cfg.chunk_len
            chunks[seg] = (
                [
                    signal[j * n : (j + 1) * n]
                    for j in range(cfg.chunks_per_segment)
                ],
                label,
            )
        for j in range(cfg.chunks_per_segment):
            for seg in seg_ids:
                seg_chunks, label = chunks[seg]
                yield (seg % cfg.patients, seg, j, seg_chunks[j], label)


def assemble_segment(values: list) -> dict:
    """Window aggregate: one patient's chunks → one contiguous segment."""
    patient, seg_index, _, _, label = values[0]
    signal = np.concatenate([v[3] for v in values])
    return {
        "patient": patient,
        "segment": seg_index,
        "label": label,
        "signal": signal,
    }


def segment_features(seg: dict, cfg: ServeConfig) -> dict:
    """R-peak + STFT feature extraction for one segment — the same
    representation :func:`repro.workflows.af_pipeline.run_cnn` trains
    on (decimate → spectrogram → log1p → per-record z-norm), plus the
    heart-rate statistics a live dashboard wants."""
    from scipy import signal as sp_signal

    sig = seg["signal"]
    dec = sig[:: cfg.decimate] if cfg.decimate > 1 else sig
    fs_eff = cfg.fs / max(cfg.decimate, 1)
    _, _, spec = sp_signal.spectrogram(dec, fs=fs_eff, nperseg=cfg.nperseg)
    x = np.log1p(spec)  # (freq_channels, time_frames)
    mu = x.mean()
    sd = x.std()
    if sd == 0:
        sd = 1.0
    x = (x - mu) / sd
    peaks = pan_tompkins(sig, cfg.fs)
    rr = rr_intervals(peaks, cfg.fs)
    hr = float(60.0 / rr.mean()) if rr.size else 0.0
    return {
        "patient": seg["patient"],
        "segment": seg["segment"],
        "label": seg["label"],
        "x": x,
        "n_peaks": int(len(peaks)),
        "hr_bpm": hr,
    }


@task(returns=1, name="stream_infer")
def _predict_batch(model, xb: np.ndarray) -> np.ndarray:
    """Micro-batched forward pass (class probabilities)."""
    return model.predict_proba(xb)


def make_model(cfg: ServeConfig):
    """The serving model: the paper's AF CNN shaped to this config's
    spectrogram, deterministically initialised from ``cfg.seed`` (the
    differential suite needs replayable weights, not accuracy; train
    with :mod:`repro.nn` and ``set_weights`` for a real deployment)."""
    from repro.nn import af_cnn

    probe = segment_features(
        assemble_segment(
            [v for v in iter_feed(cfg) if v[1] == 0][: cfg.chunks_per_segment]
        ),
        cfg,
    )
    channels, length = probe["x"].shape
    return af_cnn(input_length=length, in_channels=channels, seed=cfg.seed)


def _flatten_predictions(feats: list, probs: np.ndarray) -> list:
    out = []
    for k, f in enumerate(feats):
        out.append(
            {
                "patient": f["patient"],
                "segment": f["segment"],
                "label": f["label"],
                "pred": int(np.argmax(probs[k])),
                "prob_af": float(probs[k, 1]),
                "hr_bpm": f["hr_bpm"],
                "n_peaks": f["n_peaks"],
            }
        )
    return out


@dataclasses.dataclass
class ServingResult:
    """What a serving run (streamed or batch-replayed) produced."""

    predictions: list
    probs: np.ndarray
    elapsed_s: float
    stage_stats: dict | None = None
    metrics: dict | None = None

    @property
    def throughput_rps(self) -> float:
        n = len(self.predictions)
        return n / self.elapsed_s if self.elapsed_s > 0 else 0.0


def serve_stream(
    cfg: ServeConfig,
    runtime: Runtime | None = None,
    model=None,
    *,
    gauge_interval: float | None = None,
) -> ServingResult:
    """Run the online serving pipeline over the bounded feed.

    ``gauge_interval`` (seconds) republishes live queue-depth and
    latency gauges into the metrics registry while the graph runs —
    the ``repro serve-stream`` demo uses it."""
    rt = runtime if runtime is not None else active_runtime()
    if rt is None:
        raise RuntimeError("serve_stream needs an active Runtime")
    if model is None:
        model = make_model(cfg)

    def infer(batch: list) -> list:
        xb = np.stack([f["x"] for f in batch])
        fut = rt.submit_many([_predict_batch.defer(model, xb)])[0]
        probs = wait_on(fut)  # the stream stage awaits a DAG result
        return _flatten_predictions(batch, probs)

    t0 = time.monotonic()
    g = StreamGraph(rt, name="af-serving", capacity=cfg.capacity)
    src = g.source(
        lambda: iter_feed(cfg),
        name="ecg",
        rate=cfg.rate,
        watermark_interval=cfg.patients,
    )
    keyed = g.key_by(src, lambda v: v[0], name="key_by_patient")
    segments = g.window(
        keyed,
        TumblingCountWindow(cfg.chunks_per_segment),
        fn=assemble_segment,
        name="segment",
    )
    feats = g.map(segments, lambda s: segment_features(s, cfg), name="features")
    batches = g.batch(feats, cfg.batch_size, name="microbatch")
    preds = g.flat_map(batches, infer, name="infer")
    sink = g.sink(preds, name="predictions")

    g.start()
    if gauge_interval:
        while any(s.thread is not None and s.thread.is_alive() for s in g.stages):
            g.publish_gauges()
            time.sleep(gauge_interval)
    stats = g.join()
    elapsed = time.monotonic() - t0
    g.publish_gauges()

    predictions = list(sink.collected)
    probs = (
        np.vstack([[1.0 - p["prob_af"], p["prob_af"]] for p in predictions])
        if predictions
        else np.empty((0, 2))
    )
    return ServingResult(
        predictions=predictions,
        probs=probs,
        elapsed_s=elapsed,
        stage_stats={name: s.snapshot() for name, s in stats.items()},
        metrics=g.metrics_snapshot(),
    )


def serve_batch(
    cfg: ServeConfig, runtime: Runtime | None = None, model=None
) -> ServingResult:
    """The batch-DAG twin: replay the identical bounded feed through
    the same windowing, feature and micro-batch functions as one
    ordinary task graph (all micro-batches via one ``submit_many``).
    The differential gate diffs its output against
    :func:`serve_stream` bit-for-bit."""
    rt = runtime if runtime is not None else active_runtime()
    if rt is None:
        raise RuntimeError("serve_batch needs an active Runtime")
    if model is None:
        model = make_model(cfg)

    t0 = time.monotonic()
    records = [
        Record(v, ts=float(i), key=v[0]) for i, v in enumerate(iter_feed(cfg))
    ]
    segments = run_windowed(
        TumblingCountWindow(cfg.chunks_per_segment), records, fn=assemble_segment
    )
    feats = [segment_features(r.value, cfg) for r in segments]
    batches = [
        feats[s : s + cfg.batch_size]
        for s in range(0, len(feats), cfg.batch_size)
    ]
    calls = [
        _predict_batch.defer(model, np.stack([f["x"] for f in b]))
        for b in batches
    ]
    futures = rt.submit_many(calls)
    predictions: list = []
    for batch, fut in zip(batches, futures):
        predictions.extend(_flatten_predictions(batch, wait_on(fut)))
    elapsed = time.monotonic() - t0
    probs = (
        np.vstack([[1.0 - p["prob_af"], p["prob_af"]] for p in predictions])
        if predictions
        else np.empty((0, 2))
    )
    return ServingResult(predictions=predictions, probs=probs, elapsed_s=elapsed)
