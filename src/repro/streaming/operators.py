"""Windowed operators: how unbounded streams become finite work units.

Four window shapes, mirroring the hybrid-workflows programming model
(Ramon-Cortes et al.) the subsystem reproduces:

* :class:`TumblingCountWindow` — every ``n`` records, no overlap;
* :class:`SlidingCountWindow` — ``n`` records every ``step`` records;
* :class:`TumblingTimeWindow` — event-time buckets ``[k·size, (k+1)·size)``;
* :class:`SlidingTimeWindow` — event-time spans ``[k·step, k·step+size)``.

Count windows close by arrival alone.  Time windows close **only** on
watermarks (:class:`~repro.streaming.channel.Watermark`): a window
``[start, end)`` is emitted once a watermark with ``ts >= end``
arrives.  End-of-stream flushes every open window (tumbling-count
partials included, so a bounded feed loses nothing; sliding-count
partials are dropped — an incomplete overlap is not a window).

All windows are keyed: records carry an optional routing ``key`` (set
by ``key_by``) and each key gets independent window state; ``None`` is
the global key.  Emission order is deterministic — close events fire
in window order per key, keys in first-seen order — which is what lets
the differential suite demand bit-identical streamed vs. batch output.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable

from repro.streaming.channel import Record, Watermark


class WindowSpec:
    """Base class of the window shapes (marker + validation helpers)."""

    def make(self) -> "_Windower":
        raise NotImplementedError


class TumblingCountWindow(WindowSpec):
    def __init__(self, n: int):
        if n < 1:
            raise ValueError("tumbling count window needs n >= 1")
        self.n = n

    def make(self) -> "_Windower":
        return _CountWindower(self.n, self.n, flush_partial=True)

    def __repr__(self) -> str:  # pragma: no cover
        return f"TumblingCountWindow({self.n})"


class SlidingCountWindow(WindowSpec):
    def __init__(self, n: int, step: int):
        if n < 1 or step < 1:
            raise ValueError("sliding count window needs n >= 1 and step >= 1")
        self.n = n
        self.step = step

    def make(self) -> "_Windower":
        return _CountWindower(self.n, self.step, flush_partial=False)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SlidingCountWindow({self.n}, step={self.step})"


class TumblingTimeWindow(WindowSpec):
    def __init__(self, size: float):
        if size <= 0:
            raise ValueError("tumbling time window needs size > 0")
        self.size = float(size)

    def make(self) -> "_Windower":
        return _TimeWindower(self.size, self.size)

    def __repr__(self) -> str:  # pragma: no cover
        return f"TumblingTimeWindow({self.size})"


class SlidingTimeWindow(WindowSpec):
    def __init__(self, size: float, step: float):
        if size <= 0 or step <= 0:
            raise ValueError("sliding time window needs size > 0 and step > 0")
        self.size = float(size)
        self.step = float(step)

    def make(self) -> "_Windower":
        return _TimeWindower(self.size, self.step)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SlidingTimeWindow({self.size}, step={self.step})"


class ClosedWindow:
    """One emitted window: its ordered values plus the metadata a
    downstream record inherits."""

    __slots__ = ("key", "values", "end_ts", "ingest")

    def __init__(self, key: Any, values: list, end_ts: float | None, ingest: float | None):
        self.key = key
        self.values = values
        self.end_ts = end_ts
        self.ingest = ingest


class _Windower:
    """Per-operator window state: feed records and watermarks, collect
    closed windows."""

    def add(self, rec: Record) -> list[ClosedWindow]:
        raise NotImplementedError

    def advance(self, ts: float) -> list[ClosedWindow]:
        """Close every window whose end the watermark *ts* passed."""
        return []

    def flush(self) -> list[ClosedWindow]:
        """End-of-stream: close whatever remains open."""
        return []


def _merge_ingest(a: float | None, b: float | None) -> float | None:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


class _CountWindower(_Windower):
    """Count windows, per key.  Window ``i`` covers arrivals
    ``[i·step, i·step + n)``; with ``step == n`` that is tumbling.
    Because ``step <= n`` keeps the last ``n`` arrivals a superset of
    every open window, and ``step > n`` samples disjoint spans, the
    most recent ``n`` values per key are all the state needed."""

    def __init__(self, n: int, step: int, flush_partial: bool):
        self.n = n
        self.step = step
        self.flush_partial = flush_partial
        #: key -> (recent values bounded deque as list, arrivals seen)
        self._state: dict[Any, tuple[list, int]] = {}
        self._ingest: dict[Any, float | None] = {}
        self._last_ts: dict[Any, float | None] = {}

    def add(self, rec: Record) -> list[ClosedWindow]:
        values, count = self._state.get(rec.key, ([], 0))
        values.append(rec.value)
        if len(values) > self.n:
            del values[0]
        count += 1
        self._state[rec.key] = (values, count)
        self._ingest[rec.key] = _merge_ingest(self._ingest.get(rec.key), rec.ingest)
        self._last_ts[rec.key] = rec.ts
        if count >= self.n and (count - self.n) % self.step == 0:
            out = [
                ClosedWindow(
                    rec.key,
                    list(values),
                    self._last_ts.get(rec.key),
                    self._ingest.get(rec.key),
                )
            ]
            self._ingest[rec.key] = None
            return out
        return []

    def flush(self) -> list[ClosedWindow]:
        if not self.flush_partial:
            return []
        out: list[ClosedWindow] = []
        for key, (values, count) in self._state.items():
            emitted = count >= self.n and (count - self.n) % self.step == 0
            partial = count % self.step if count >= self.n else count
            if not emitted and partial:
                tail = list(values[-partial:])
                out.append(
                    ClosedWindow(
                        key, tail, self._last_ts.get(key), self._ingest.get(key)
                    )
                )
        self._state.clear()
        return out


class _TimeWindower(_Windower):
    """Event-time windows, per key, closed by watermarks.  A record
    with ``ts`` joins every window ``[k·step, k·step + size)``
    containing it; a watermark ``w`` closes (in start order) every
    window with ``start + size <= w``."""

    def __init__(self, size: float, step: float):
        self.size = size
        self.step = step
        #: (key, start) -> values; dict order = insertion order, and we
        #: sort starts at close time, so emission is deterministic.
        self._windows: dict[tuple[Any, float], list] = {}
        self._ingest: dict[tuple[Any, float], float | None] = {}
        self._keys_seen: list = []

    def _starts_for(self, ts: float) -> list[float]:
        last = math.floor(ts / self.step) * self.step
        starts = []
        start = last
        while start > ts - self.size:
            starts.append(start)
            start -= self.step
        starts.reverse()
        return starts

    def add(self, rec: Record) -> list[ClosedWindow]:
        if rec.ts is None:
            raise ValueError(
                "time windows need event-time timestamps; the record has ts=None"
            )
        if rec.key not in self._keys_seen:
            self._keys_seen.append(rec.key)
        for start in self._starts_for(rec.ts):
            slot = (rec.key, start)
            self._windows.setdefault(slot, []).append(rec.value)
            self._ingest[slot] = _merge_ingest(self._ingest.get(slot), rec.ingest)
        return []

    def _close(self, ready: Callable[[float], bool]) -> list[ClosedWindow]:
        out: list[ClosedWindow] = []
        for key in self._keys_seen:
            starts = sorted(s for (k, s) in self._windows if k == key and ready(s))
            for start in starts:
                slot = (key, start)
                out.append(
                    ClosedWindow(
                        key,
                        self._windows.pop(slot),
                        start + self.size,
                        self._ingest.pop(slot, None),
                    )
                )
        return out

    def advance(self, ts: float) -> list[ClosedWindow]:
        return self._close(lambda start: start + self.size <= ts)

    def flush(self) -> list[ClosedWindow]:
        return self._close(lambda start: True)


def run_windowed(
    spec: WindowSpec,
    elements: Iterable,
    fn: Callable[[list], Any] | None = None,
) -> list[Record]:
    """Replay *elements* (records/watermarks) through a fresh windower
    and return the emitted records — the batch-side twin of a streamed
    window stage, used by the differential suite so both paths share
    one windowing implementation."""
    windower = spec.make()
    out: list[Record] = []

    def emit(closed: list[ClosedWindow]) -> None:
        for w in closed:
            value = fn(w.values) if fn is not None else w.values
            out.append(Record(value, ts=w.end_ts, key=w.key, ingest=w.ingest))

    for item in elements:
        if isinstance(item, Watermark):
            emit(windower.advance(item.ts))
        else:
            emit(windower.add(item))
    emit(windower.flush())
    return out
