"""Stream graphs: long-lived stages wired by bounded streams.

A :class:`StreamGraph` is the hybrid task+dataflow construct: each
stage (source, ``map``/``filter``/``flat_map``/``key_by``, windowed
operators, ``batch``, sink) runs as a long-lived loop on its own
thread, consuming one input :class:`~repro.streaming.channel.Stream`
and producing another, with credit-based backpressure end to end.
Stage threads are *bound* to the owning
:class:`~repro.runtime.engine.Runtime` (``bind_current_thread``), so a
stage body is full task-runtime territory: it can call ``@task``
functions, ``submit_many()`` micro-batches, and ``wait_on`` the
resulting futures — and ordinary DAG tasks can symmetrically block on
a stream result.  That is the hybrid-workflows model (Ramon-Cortes et
al.) the source paper's group built on COMPSs.

Lifecycle integration with the runtime:

* every stream registers an interrupt notifier, so kill/abort/shutdown
  reaches threads parked on a full or empty stream;
* the graph registers a shutdown **drain hook**: ``shutdown(wait=True)``
  first stops the sources and joins the stages (flushing in-flight
  windows through the pipeline) and only then waits for the unfinished
  task count — stream scopes drain like everything else;
* a stage failure applies the runtime's failure-policy vocabulary
  **per element**: ``RETRY`` re-applies the operator to the element
  (up to ``max_retries``), ``IGNORE`` drops it, ``FAIL`` /
  ``CANCEL_SUCCESSORS`` poison every stream so the whole graph unwinds
  with zero leaked queue slots and ``join()`` raises
  :class:`StreamFailure`.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
import time
from typing import Any, Callable

from repro.runtime import tracectx as _tracectx
from repro.runtime.engine import Runtime, active_runtime
from repro.runtime.failures import CANCEL_SUCCESSORS, FAIL, IGNORE, RETRY
from repro.streaming.channel import EOS, Record, Stream, StreamClosed, Watermark
from repro.streaming.operators import ClosedWindow, WindowSpec

#: Latency reservoir length per stage — enough for stable p99 at test
#: scale without unbounded growth on long-running pipelines.
_RESERVOIR = 4096

#: Rate-controlled sources sleep in chunks no longer than this so a
#: drain request interrupts the pacing promptly.
_MAX_SLEEP = 0.05


class StreamFailure(Exception):
    """A stage failed terminally (or the runtime was interrupted) and
    the graph unwound.  ``stage`` names the failing stage; the original
    error is chained as ``__cause__``."""

    def __init__(self, stage: str, message: str):
        super().__init__(f"stream stage {stage!r}: {message}")
        self.stage = stage


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[idx]


@dataclasses.dataclass
class StageStats:
    """Counters and latency reservoir of one stage (its ``join()``
    deliverable)."""

    name: str
    kind: str
    n_in: int = 0
    n_out: int = 0
    errors: int = 0
    retries: int = 0
    dropped: int = 0
    error: str | None = None
    started_at: float | None = None
    finished_at: float | None = None
    latencies: collections.deque = dataclasses.field(
        default_factory=lambda: collections.deque(maxlen=_RESERVOIR)
    )

    def snapshot(self) -> dict:
        samples = list(self.latencies)
        elapsed = (
            (self.finished_at or time.monotonic()) - self.started_at
            if self.started_at is not None
            else 0.0
        )
        return {
            "name": self.name,
            "kind": self.kind,
            "n_in": self.n_in,
            "n_out": self.n_out,
            "errors": self.errors,
            "retries": self.retries,
            "dropped": self.dropped,
            "error": self.error,
            "p50_ms": _percentile(samples, 0.50) * 1000.0,
            "p99_ms": _percentile(samples, 0.99) * 1000.0,
            "rps": self.n_out / elapsed if elapsed > 0 else 0.0,
        }


class _Stage:
    """One long-lived stage loop.  ``kind`` selects the body; the
    failure policy wraps every per-element operator application."""

    def __init__(
        self,
        graph: "StreamGraph",
        name: str,
        kind: str,
        source: Stream | None,
        output: Stream | None,
        fn: Callable | None = None,
        *,
        spec: WindowSpec | None = None,
        batch_n: int | None = None,
        on_failure: str = FAIL,
        max_retries: int = 2,
        rate: float | None = None,
        timestamps: Callable[[int, Any], float] | None = None,
        watermark_interval: int | None = None,
        items: Any = None,
        collect: bool = False,
    ):
        self.graph = graph
        self.name = name
        self.kind = kind
        self.source = source
        self.output = output
        self.fn = fn
        self.spec = spec
        self.batch_n = batch_n
        self.on_failure = on_failure
        self.max_retries = max_retries
        self.rate = rate
        self.timestamps = timestamps
        self.watermark_interval = watermark_interval
        self.items = items
        self.collect = collect
        self.collected: list = []
        self.stats = StageStats(name=name, kind=kind)
        self._stop = False
        self.thread: threading.Thread | None = None

    # -- failure policy around one operator application ----------------
    def _apply(self, fn: Callable, *args: Any) -> tuple[bool, Any]:
        """Apply *fn*, honouring the stage's failure policy.  Returns
        ``(emitted, value)``; raises :class:`StreamFailure` when the
        policy is terminal."""
        attempt = 0
        while True:
            try:
                return True, fn(*args)
            except Exception as exc:  # noqa: BLE001 - policy decides
                self.stats.errors += 1
                if self.on_failure == RETRY and attempt < self.max_retries:
                    attempt += 1
                    self.stats.retries += 1
                    continue
                if self.on_failure == IGNORE:
                    self.stats.dropped += 1
                    return False, None
                raise StreamFailure(
                    self.name,
                    f"operator failed after {attempt + 1} attempt(s)",
                ) from exc

    def _emit(self, item: "Record | Watermark") -> None:
        assert self.output is not None
        self.output.put_item(item)
        if isinstance(item, Record):
            self.stats.n_out += 1
            self.graph._count(self.name, "out")

    def _observe(self, dt: float) -> None:
        self.stats.latencies.append(dt)
        m = self.graph._metrics
        if m is not None:
            m.observe("repro_stream_stage_seconds", dt, stage=self.name)

    # -- stage bodies ---------------------------------------------------
    def run(self) -> None:
        self.stats.started_at = time.monotonic()
        try:
            getattr(self, f"_run_{self.kind}")()
        finally:
            self.stats.finished_at = time.monotonic()

    def _run_source(self) -> None:
        out = self.output
        assert out is not None
        items = self.items() if callable(self.items) else self.items
        period = 1.0 / self.rate if self.rate else 0.0
        next_t = time.monotonic()
        i = 0
        last_ts: float | None = None
        try:
            for value in items:
                if self._stop:
                    break
                if period:
                    next_t += period
                    while not self._stop:
                        delay = next_t - time.monotonic()
                        if delay <= 0:
                            break
                        time.sleep(min(delay, _MAX_SLEEP))
                    if self._stop:
                        break
                ts = (
                    self.timestamps(i, value)
                    if self.timestamps is not None
                    else float(i)
                )
                t0 = time.monotonic()
                self._emit(Record(value, ts=ts, ingest=t0))
                self._observe(time.monotonic() - t0)
                i += 1
                last_ts = ts
                if self.watermark_interval and i % self.watermark_interval == 0:
                    out.put_item(Watermark(ts))
        except StreamClosed:
            # The consumer side went away first (drain overlap); the
            # elements already emitted are all that was asked for.
            pass
        if last_ts is not None and self.watermark_interval:
            try:
                out.put_item(Watermark(last_ts))
            except StreamClosed:
                pass
        out.close()

    def _iter_input(self):
        assert self.source is not None
        for item in self.source:
            if isinstance(item, Record):
                self.stats.n_in += 1
                self.graph._count(self.name, "in")
            yield item

    # map / filter / flat_map / key_by share one loop shape but differ
    # in what the operator result means; keep them explicit so the
    # stats and emission rules stay obvious.
    def _run_map(self) -> None:
        out = self.output
        assert out is not None and self.fn is not None
        try:
            for item in self._iter_input():
                if isinstance(item, Watermark):
                    out.put_item(item)
                    continue
                t0 = time.monotonic()
                emitted, value = self._apply(self.fn, item.value)
                self._observe(time.monotonic() - t0)
                if emitted:
                    self._emit(item.replace(value))
        finally:
            out.close()

    def _run_filter(self) -> None:
        out = self.output
        assert out is not None and self.fn is not None
        try:
            for item in self._iter_input():
                if isinstance(item, Watermark):
                    out.put_item(item)
                    continue
                t0 = time.monotonic()
                emitted, keep = self._apply(self.fn, item.value)
                self._observe(time.monotonic() - t0)
                if emitted and keep:
                    self._emit(item)
        finally:
            out.close()

    def _run_flat_map(self) -> None:
        out = self.output
        assert out is not None and self.fn is not None
        try:
            for item in self._iter_input():
                if isinstance(item, Watermark):
                    out.put_item(item)
                    continue
                t0 = time.monotonic()
                emitted, values = self._apply(self.fn, item.value)
                self._observe(time.monotonic() - t0)
                if not emitted:
                    continue
                for value in values:
                    self._emit(item.replace(value))
        finally:
            out.close()

    def _run_key_by(self) -> None:
        out = self.output
        assert out is not None and self.fn is not None
        try:
            for item in self._iter_input():
                if isinstance(item, Watermark):
                    out.put_item(item)
                    continue
                t0 = time.monotonic()
                emitted, key = self._apply(self.fn, item.value)
                self._observe(time.monotonic() - t0)
                if not emitted:
                    continue
                self._emit(
                    Record(item.value, ts=item.ts, key=key, ingest=item.ingest)
                )
        finally:
            out.close()

    def _emit_windows(self, closed: list[ClosedWindow]) -> None:
        for w in closed:
            if self.fn is not None:
                emitted, value = self._apply(self.fn, w.values)
                if not emitted:
                    continue
            else:
                value = w.values
            self._emit(Record(value, ts=w.end_ts, key=w.key, ingest=w.ingest))

    def _run_window(self) -> None:
        out = self.output
        assert out is not None and self.spec is not None
        windower = self.spec.make()
        try:
            for item in self._iter_input():
                t0 = time.monotonic()
                if isinstance(item, Watermark):
                    self._emit_windows(windower.advance(item.ts))
                    self._observe(time.monotonic() - t0)
                    out.put_item(item)
                    continue
                self._emit_windows(windower.add(item))
                self._observe(time.monotonic() - t0)
            # End of stream: flush whatever is still open so a bounded
            # feed loses nothing (partial-window semantics are the
            # window spec's call).
            self._emit_windows(windower.flush())
        finally:
            out.close()

    def _run_batch(self) -> None:
        out = self.output
        assert out is not None and self.batch_n is not None
        buffer: list = []
        ingest: float | None = None
        last: Record | None = None
        try:
            for item in self._iter_input():
                if isinstance(item, Watermark):
                    out.put_item(item)
                    continue
                buffer.append(item.value)
                last = item
                if item.ingest is not None:
                    ingest = (
                        item.ingest if ingest is None else max(ingest, item.ingest)
                    )
                if len(buffer) >= self.batch_n:
                    self._emit(Record(buffer, ts=last.ts, ingest=ingest))
                    buffer, ingest = [], None
            if buffer:
                self._emit(
                    Record(buffer, ts=last.ts if last else None, ingest=ingest)
                )
        finally:
            out.close()

    def _run_sink(self) -> None:
        fn = self.fn
        m = self.graph._metrics
        for item in self._iter_input():
            if isinstance(item, Watermark):
                continue
            t0 = time.monotonic()
            if fn is not None:
                emitted, value = self._apply(fn, item.value)
                if not emitted:
                    continue
            else:
                value = item.value
            if self.collect:
                self.collected.append(value)
            self.stats.n_out += 1
            now = time.monotonic()
            self._observe(now - t0)
            if item.ingest is not None:
                e2e = now - item.ingest
                self.stats.latencies[-1] = e2e  # e2e is the sink's headline
                if m is not None:
                    m.observe("repro_stream_e2e_seconds", e2e, stage=self.name)


class StreamGraph:
    """A wiring of stages and streams over one runtime.

    Build the topology with :meth:`source` / :meth:`map` /
    :meth:`window` / ... , then :meth:`start` it and :meth:`join` for
    the per-stage stats.  Use it as a context manager to get
    start/join (or abort on error) automatically.
    """

    def __init__(
        self,
        runtime: Runtime | None = None,
        *,
        name: str = "stream-graph",
        capacity: int = 64,
    ):
        self.runtime = runtime if runtime is not None else active_runtime()
        self.name = name
        self.capacity = capacity
        self.stages: list[_Stage] = []
        self.streams: list[Stream] = []
        self._consumed: set[int] = set()
        self._started = False
        self._joined = False
        self._error: BaseException | None = None
        self._error_stage: str | None = None
        self._lock = threading.Lock()
        self._metrics = (
            self.runtime.metrics_registry if self.runtime is not None else None
        )
        #: Root trace context of this graph run (minted at ``start``).
        #: Each stage thread gets a child installed ambiently, so every
        #: ``submit_many`` micro-batch a stage issues joins one trace.
        self.trace_ctx: "_tracectx.TraceContext | None" = None

    # -- topology -------------------------------------------------------
    def _new_stream(self, name: str, capacity: int | None) -> Stream:
        s = Stream(
            capacity or self.capacity,
            name=f"{self.name}.{name}",
            runtime=self.runtime,
        )
        self.streams.append(s)
        return s

    def _take(self, stream: Stream) -> Stream:
        if not isinstance(stream, Stream):
            raise TypeError(f"expected a Stream, got {type(stream).__name__}")
        if id(stream) in self._consumed:
            raise ValueError(
                f"stream {stream.name!r} already has a consumer; "
                "streams are single-consumer"
            )
        self._consumed.add(id(stream))
        return stream

    def _prepare(self, name: str) -> str:
        """Validate a new stage's name *before* any stream is created or
        consumed, so a rejected builder call leaves the topology
        untouched."""
        if self._started:
            raise RuntimeError("cannot add stages to a started graph")
        if any(s.name == name for s in self.stages):
            raise ValueError(f"duplicate stage name {name!r}")
        return name

    def _add(self, stage: _Stage) -> _Stage:
        self.stages.append(stage)
        return stage

    def source(
        self,
        items: Any,
        *,
        name: str = "source",
        rate: float | None = None,
        timestamps: Callable[[int, Any], float] | None = None,
        watermark_interval: int | None = None,
        capacity: int | None = None,
    ) -> Stream:
        """A source stage: emits *items* (an iterable, or a zero-arg
        callable returning one) as records.  ``rate`` paces emission in
        records/second; ``timestamps(i, value)`` assigns event time
        (default: the record index); ``watermark_interval`` emits a
        watermark every N records and once more at end-of-feed."""
        self._prepare(name)
        out = self._new_stream(name, capacity)
        self._add(
            _Stage(
                self,
                name,
                "source",
                None,
                out,
                items=items,
                rate=rate,
                timestamps=timestamps,
                watermark_interval=watermark_interval,
            )
        )
        return out

    def _transform(
        self,
        kind: str,
        stream: Stream,
        fn: Callable,
        name: str | None,
        on_failure: str,
        max_retries: int,
        capacity: int | None,
    ) -> Stream:
        name = self._prepare(name or f"{kind}{len(self.stages)}")
        inp = self._take(stream)
        out = self._new_stream(name, capacity)
        self._add(
            _Stage(
                self,
                name,
                kind,
                inp,
                out,
                fn,
                on_failure=on_failure,
                max_retries=max_retries,
            )
        )
        return out

    def map(
        self,
        stream: Stream,
        fn: Callable[[Any], Any],
        *,
        name: str | None = None,
        on_failure: str = FAIL,
        max_retries: int = 2,
        capacity: int | None = None,
    ) -> Stream:
        return self._transform("map", stream, fn, name, on_failure, max_retries, capacity)

    def filter(
        self,
        stream: Stream,
        fn: Callable[[Any], bool],
        *,
        name: str | None = None,
        on_failure: str = FAIL,
        max_retries: int = 2,
        capacity: int | None = None,
    ) -> Stream:
        return self._transform("filter", stream, fn, name, on_failure, max_retries, capacity)

    def flat_map(
        self,
        stream: Stream,
        fn: Callable[[Any], Any],
        *,
        name: str | None = None,
        on_failure: str = FAIL,
        max_retries: int = 2,
        capacity: int | None = None,
    ) -> Stream:
        return self._transform("flat_map", stream, fn, name, on_failure, max_retries, capacity)

    def key_by(
        self,
        stream: Stream,
        fn: Callable[[Any], Any],
        *,
        name: str | None = None,
        on_failure: str = FAIL,
        max_retries: int = 2,
        capacity: int | None = None,
    ) -> Stream:
        return self._transform("key_by", stream, fn, name, on_failure, max_retries, capacity)

    def window(
        self,
        stream: Stream,
        spec: WindowSpec,
        fn: Callable[[list], Any] | None = None,
        *,
        name: str | None = None,
        on_failure: str = FAIL,
        max_retries: int = 2,
        capacity: int | None = None,
    ) -> Stream:
        """A windowed operator: groups records per the spec (and per
        key), optionally aggregates each closed window with ``fn``
        (default: emit the value list)."""
        name = self._prepare(name or f"window{len(self.stages)}")
        inp = self._take(stream)
        out = self._new_stream(name, capacity)
        self._add(
            _Stage(
                self,
                name,
                "window",
                inp,
                out,
                fn,
                spec=spec,
                on_failure=on_failure,
                max_retries=max_retries,
            )
        )
        return out

    def batch(
        self,
        stream: Stream,
        n: int,
        *,
        name: str | None = None,
        capacity: int | None = None,
    ) -> Stream:
        """Micro-batching: emits lists of up to *n* consecutive values
        (the remainder flushes at end-of-stream)."""
        if n < 1:
            raise ValueError("batch size must be >= 1")
        name = self._prepare(name or f"batch{len(self.stages)}")
        inp = self._take(stream)
        out = self._new_stream(name, capacity)
        self._add(_Stage(self, name, "batch", inp, out, batch_n=n))
        return out

    def sink(
        self,
        stream: Stream,
        fn: Callable[[Any], Any] | None = None,
        *,
        name: str = "sink",
        collect: bool | None = None,
        on_failure: str = FAIL,
        max_retries: int = 2,
    ) -> _Stage:
        """Terminal stage: applies ``fn`` per value (if given) and —
        with ``collect`` (default: collect when no ``fn``) — keeps the
        values in arrival order for :meth:`results`."""
        if collect is None:
            collect = fn is None
        self._prepare(name)
        return self._add(
            _Stage(
                self,
                name,
                "sink",
                self._take(stream),
                None,
                fn,
                collect=collect,
                on_failure=on_failure,
                max_retries=max_retries,
            )
        )

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "StreamGraph":
        if self._started:
            raise RuntimeError("graph already started")
        if not self.stages:
            raise RuntimeError("graph has no stages")
        dangling = [
            s.name
            for s in self.streams
            if id(s) not in self._consumed
        ]
        if dangling:
            raise RuntimeError(
                f"streams with no consumer: {dangling}; every stage output "
                "must feed another stage or a sink"
            )
        self._started = True
        if self.runtime is not None:
            self.runtime.add_drain_hook(self._on_runtime_drain)
            if self.runtime.config.collect_trace:
                self.trace_ctx = _tracectx.child_of(_tracectx.current_context())
        for stage in self.stages:
            t = threading.Thread(
                target=self._stage_main,
                args=(stage,),
                name=f"{self.name}-{stage.name}",
                daemon=True,
            )
            stage.thread = t
            t.start()
        return self

    def _stage_main(self, stage: _Stage) -> None:
        rt = self.runtime
        prev = rt.bind_current_thread() if rt is not None else None
        # Stage-granularity tracing: each stage thread is one span
        # context under the graph root — per-record contexts would cost
        # a minting per element on the streaming hot path.
        prev_ctx = (
            _tracectx.set_context(self.trace_ctx.child())
            if self.trace_ctx is not None
            else None
        )
        try:
            stage.run()
        except BaseException as exc:  # noqa: BLE001 - unwind the graph
            stage.stats.error = repr(exc)
            self._fail(stage.name, exc)
        finally:
            if stage.output is not None and not stage.output.closed:
                stage.output.close()
            if self.trace_ctx is not None:
                _tracectx.set_context(prev_ctx)
            if rt is not None:
                rt.release_current_thread(prev)

    def _fail(self, stage_name: str | None, error: BaseException) -> None:
        """First terminal error wins; every stream is poisoned so all
        stages unwind promptly and no queue slot leaks."""
        with self._lock:
            if self._error is None:
                self._error = error
                self._error_stage = stage_name
            already = self._error is not error
        if already:
            return
        for stage in self.stages:
            stage._stop = True
        for stream in self.streams:
            stream.poison(error)

    def abort(self, error: BaseException | None = None) -> None:
        """Abortively stop the graph: poison every stream, drop queued
        elements.  ``join(raise_on_error=False)`` then collects what
        each stage managed to do."""
        self._fail(None, error or StreamFailure("<graph>", "aborted by caller"))

    def initiate_drain(self) -> None:
        """Graceful stop: sources stop emitting and close; in-flight
        elements (and open windows) flush through the remaining
        stages.  Non-blocking; ``join()`` observes the drained end."""
        for stage in self.stages:
            if stage.kind == "source":
                stage._stop = True

    def _on_runtime_drain(self) -> None:
        # Runs inside Runtime.shutdown(wait=True), before the runtime
        # waits out its unfinished count: stop feeding, flush, and join
        # the stage threads so every micro-batch they were going to
        # submit is in the DAG by the time the drain wait starts.
        self.initiate_drain()
        for stage in self.stages:
            if stage.thread is not None:
                stage.thread.join(timeout=30.0)

    def join(
        self, timeout: float | None = None, raise_on_error: bool = True
    ) -> dict[str, StageStats]:
        """Wait for every stage to finish and return per-stage stats.
        Raises :class:`StreamFailure` (chaining the original error) if
        any stage failed terminally, unless ``raise_on_error=False``."""
        if not self._started:
            raise RuntimeError("graph not started")
        deadline = time.monotonic() + timeout if timeout is not None else None
        for stage in self.stages:
            t = stage.thread
            if t is None:
                continue
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            t.join(timeout=remaining)
            if t.is_alive():
                raise StreamFailure(stage.name, f"stage did not finish in {timeout}s")
        if not self._joined:
            self._joined = True
            if self.runtime is not None:
                self.runtime.remove_drain_hook(self._on_runtime_drain)
            for stream in self.streams:
                stream._unregister()
        if raise_on_error and self._error is not None:
            if isinstance(self._error, StreamFailure):
                raise self._error
            raise StreamFailure(
                self._error_stage or "<graph>", "stage failed"
            ) from self._error
        return {s.name: s.stats for s in self.stages}

    def __enter__(self) -> "StreamGraph":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort(exc if isinstance(exc, BaseException) else None)
            self.join(raise_on_error=False)
        else:
            self.join()

    # -- results & telemetry -------------------------------------------
    @property
    def error(self) -> BaseException | None:
        return self._error

    def results(self, sink: "_Stage | str") -> list:
        """Collected values of a ``collect=True`` sink, arrival order."""
        if isinstance(sink, str):
            matches = [s for s in self.stages if s.name == sink]
            if not matches:
                raise KeyError(f"no stage named {sink!r}")
            sink = matches[0]
        return sink.collected

    def _count(self, stage: str, port: str) -> None:
        m = self._metrics
        if m is not None:
            m.inc("repro_stream_records_total", 1.0, stage=stage, port=port)

    def slots_leaked(self) -> int:
        """Total queue-slot imbalance across the graph's streams
        (zero in a healthy or fully-unwound graph)."""
        return sum(s.slots_leaked() for s in self.streams)

    def metrics_snapshot(self) -> dict:
        """Graph-local telemetry: per-stage p50/p99/throughput and
        per-stream depth/credit accounting — available with or without
        the runtime metrics registry."""
        return {
            "graph": self.name,
            "stages": {s.name: s.stats.snapshot() for s in self.stages},
            "streams": {s.name: s.stats() for s in self.streams},
        }

    def publish_gauges(self) -> None:
        """Fold live queue-depth / latency-quantile / throughput gauges
        into the runtime metrics registry (Prometheus exposition and
        ``repro trace`` read from there).  Safe no-op without the
        ``metrics`` observability flag."""
        m = self._metrics
        if m is None:
            return
        for stream in self.streams:
            st = stream.stats()
            m.set_gauge("repro_stream_queue_depth", st["depth"], stream=st["name"])
            m.set_gauge("repro_stream_queue_credits", st["credits"], stream=st["name"])
            m.set_gauge(
                "repro_stream_queue_high_water", st["high_water"], stream=st["name"]
            )
        for stage in self.stages:
            snap = stage.stats.snapshot()
            m.set_gauge(
                "repro_stream_stage_latency_seconds",
                snap["p50_ms"] / 1000.0,
                stage=stage.name,
                quantile="0.5",
            )
            m.set_gauge(
                "repro_stream_stage_latency_seconds",
                snap["p99_ms"] / 1000.0,
                stage=stage.name,
                quantile="0.99",
            )
            m.set_gauge("repro_stream_stage_rps", snap["rps"], stage=stage.name)


__all__ = [
    "StreamGraph",
    "StreamFailure",
    "StageStats",
    "CANCEL_SUCCESSORS",
    "FAIL",
    "IGNORE",
    "RETRY",
    "EOS",
]
