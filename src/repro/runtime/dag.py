"""Dependency graph built at submission time.

Mirrors the PyCOMPSs execution graph (paper Figs. 4, 6, 8, 9, 10):
nodes are task instances, edges are data dependencies.  Backed by a
:class:`networkx.DiGraph` so analyses (critical path, width, levels)
are one-liners, but wrapped so mutation stays thread-safe.
"""

from __future__ import annotations

import threading
from typing import Iterable

import networkx as nx


class TaskGraph:
    """Thread-safe append-only task dependency graph."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._lock = threading.Lock()

    def add_task(self, task_id: int, name: str, deps: Iterable[int], **attrs) -> None:
        with self._lock:
            self._graph.add_node(task_id, name=name, **attrs)
            for dep in deps:
                self._graph.add_edge(dep, task_id)

    def add_tasks(
        self,
        nodes: Iterable[tuple[int, dict]],
        edges: Iterable[tuple[int, int]],
    ) -> None:
        """Insert a whole submission batch under one lock acquisition:
        *nodes* as ``(task_id, attrs)`` pairs (attrs must include
        ``name``), *edges* as ``(dep, task_id)`` pairs."""
        with self._lock:
            self._graph.add_nodes_from(nodes)
            self._graph.add_edges_from(edges)

    def add_retry(self, prev_id: int, new_id: int, name: str, attempt: int, **attrs) -> None:
        """Add a resubmission attempt node, chained to the failed
        attempt by a ``kind="retry"`` edge (rendered dashed in DOT)."""
        with self._lock:
            self._graph.add_node(new_id, name=name, attempt=attempt, retry_of=prev_id, **attrs)
            self._graph.add_edge(prev_id, new_id, kind="retry")

    def set_attr(self, task_id: int, **attrs) -> None:
        with self._lock:
            self._graph.nodes[task_id].update(attrs)

    def set_attrs(self, updates: Iterable[tuple[int, dict]]) -> None:
        """Apply many ``(task_id, attrs)`` updates under one lock
        acquisition (the fused-unit completion path batches its
        members' terminal-state stamps through here)."""
        with self._lock:
            nodes = self._graph.nodes
            for task_id, attrs in updates:
                nodes[task_id].update(attrs)

    # -- analyses ---------------------------------------------------------
    def snapshot(self) -> nx.DiGraph:
        """A copy safe to analyse while tasks keep being submitted."""
        with self._lock:
            return self._graph.copy()

    @property
    def n_tasks(self) -> int:
        with self._lock:
            return self._graph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        with self._lock:
            return self._graph.number_of_edges()

    def levels(self) -> list[list[int]]:
        """Topological generations: tasks in the same level have no
        dependencies between them and can run concurrently (the
        "horizontal lines" of the paper's graph figures)."""
        g = self.snapshot()
        return [sorted(gen) for gen in nx.topological_generations(g)]

    def depth(self) -> int:
        """Length of the longest dependency chain (critical path in tasks)."""
        g = self.snapshot()
        if g.number_of_nodes() == 0:
            return 0
        return nx.dag_longest_path_length(g) + 1

    def max_width(self) -> int:
        """Maximum number of concurrently-runnable tasks."""
        levels = self.levels()
        return max((len(level) for level in levels), default=0)

    def task_names(self) -> dict[int, str]:
        g = self.snapshot()
        return {n: d.get("name", "?") for n, d in g.nodes(data=True)}

    def count_by_name(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for name in self.task_names().values():
            counts[name] = counts.get(name, 0) + 1
        return counts
