"""Failure-management policies and per-task options.

This is the COMPSs ``on_failure`` machinery: every task declares what
the runtime should do when an attempt raises (or times out), and the
runtime — not the task body — performs resubmission, so retry attempts
are first-class DAG nodes visible in the trace and the DOT export.

Policies
--------
``FAIL``
    Abort the whole workflow: the error surfaces on the task's futures,
    every pending task in the runtime is cancelled and further
    submissions raise :class:`~repro.runtime.exceptions.WorkflowAbortedError`
    (COMPSs: "failure of the whole workflow").
``RETRY``
    Resubmit the task up to ``max_retries`` extra attempts (default
    from :class:`~repro.runtime.config.RuntimeConfig`), with
    exponential backoff and deterministic jitter; if every attempt
    fails, fall back to ``CANCEL_SUCCESSORS`` semantics.
``CANCEL_SUCCESSORS`` (default)
    Cancel the transitive successors of the failed task; independent
    branches keep running and the error surfaces on ``wait_on``.
``IGNORE``
    Swallow the failure: the task's futures resolve to the declared
    ``failure_default`` and successors run normally.  The failed
    attempt is still recorded in the trace with ``status="ignored"``.

``max_retries`` composes with every policy: the policy only applies
once all attempts are exhausted, so ``on_failure="IGNORE"`` with
``max_retries=2`` means "try three times, then substitute the default".
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

from repro.runtime.exceptions import TaskDefinitionError

#: COMPSs-style failure policies.
FAIL = "FAIL"
RETRY = "RETRY"
IGNORE = "IGNORE"
CANCEL_SUCCESSORS = "CANCEL_SUCCESSORS"

POLICIES = (FAIL, RETRY, IGNORE, CANCEL_SUCCESSORS)

#: Sentinel distinguishing "no failure_default declared" from ``None``.
_UNSET = object()


def validate_policy(policy: str) -> str:
    if policy not in POLICIES:
        raise TaskDefinitionError(
            f"unknown on_failure policy {policy!r}; expected one of {POLICIES}"
        )
    return policy


@dataclasses.dataclass(frozen=True)
class TaskOptions:
    """Call-site (or decorator-level) task options.

    Every field defaults to "unset"; unset fields fall back to the
    ``@task`` declaration and then to the runtime's
    :class:`~repro.runtime.config.RuntimeConfig` defaults.  Created
    explicitly via ``my_task.opts(label=..., retries=...)(args)`` —
    the supported replacement for the deprecated ``_task_label`` kwarg.
    """

    label: str | None = None
    on_failure: str | None = None
    max_retries: int | None = None
    time_out: float | None = None
    failure_default: Any = _UNSET
    priority: int | None = None
    retry_backoff: float | None = None
    #: Opt this task out of (or explicitly into) result checkpointing
    #: when the runtime has a checkpoint store; ``None`` inherits
    #: (default: checkpointed when pure — no INOUT/OUT, returns > 0).
    checkpoint: bool | None = None

    def __post_init__(self) -> None:
        if self.on_failure is not None:
            validate_policy(self.on_failure)
        if self.max_retries is not None and self.max_retries < 0:
            raise TaskDefinitionError("max_retries must be >= 0")
        if self.time_out is not None and self.time_out <= 0:
            raise TaskDefinitionError("time_out must be > 0 seconds")
        if self.retry_backoff is not None and self.retry_backoff < 0:
            raise TaskDefinitionError("retry_backoff must be >= 0")

    def merged_over(self, base: "TaskOptions") -> "TaskOptions":
        """These options with *base* filling any unset field."""
        return TaskOptions(
            label=self.label if self.label is not None else base.label,
            on_failure=self.on_failure if self.on_failure is not None else base.on_failure,
            max_retries=self.max_retries if self.max_retries is not None else base.max_retries,
            time_out=self.time_out if self.time_out is not None else base.time_out,
            failure_default=(
                self.failure_default
                if self.failure_default is not _UNSET
                else base.failure_default
            ),
            priority=self.priority if self.priority is not None else base.priority,
            retry_backoff=(
                self.retry_backoff if self.retry_backoff is not None else base.retry_backoff
            ),
            checkpoint=self.checkpoint if self.checkpoint is not None else base.checkpoint,
        )


#: Options of a task that declared nothing.
NO_OPTIONS = TaskOptions()


@dataclasses.dataclass(frozen=True)
class ResolvedOptions:
    """Fully-resolved effective options for one task instance."""

    label: str | None
    on_failure: str
    max_retries: int
    time_out: float | None
    failure_default: Any
    priority: int
    retry_backoff: float
    retry_backoff_cap: float
    jitter_seed: int
    #: Whether this instance may be checkpointed/restored (still gated
    #: on the task being pure and the runtime having a store).
    checkpoint: bool = True


def resolve_options(config, spec_options: TaskOptions, call_options: TaskOptions | None) -> ResolvedOptions:
    """Merge call-site > decorator > runtime-config defaults."""
    opts = (call_options or NO_OPTIONS).merged_over(spec_options)
    on_failure = opts.on_failure or config.default_on_failure
    max_retries = opts.max_retries
    if max_retries is None:
        # RETRY without an explicit budget uses the configured default;
        # every other policy defaults to no resubmission.
        max_retries = config.default_max_retries if on_failure == RETRY else 0
    return ResolvedOptions(
        label=opts.label,
        on_failure=on_failure,
        max_retries=max_retries,
        time_out=opts.time_out if opts.time_out is not None else config.default_time_out,
        failure_default=None if opts.failure_default is _UNSET else opts.failure_default,
        priority=opts.priority if opts.priority is not None else 0,
        retry_backoff=(
            opts.retry_backoff if opts.retry_backoff is not None else config.retry_backoff
        ),
        retry_backoff_cap=config.retry_backoff_cap,
        jitter_seed=config.jitter_seed,
        checkpoint=opts.checkpoint if opts.checkpoint is not None else True,
    )


def retry_delay(
    base: float,
    attempt: int,
    *,
    task_name: str,
    root_id: int,
    seed: int = 0,
    cap: float | None = None,
) -> float:
    """Backoff before retry *attempt* (1-based): exponential with
    deterministic jitter.

    The jitter factor in ``[0.75, 1.25)`` is derived from a SHA-256
    hash of ``(seed, task_name, root_id, attempt)``, so a re-run of the
    same workflow under the same seed waits exactly as long — retries
    stay reproducible, yet synchronized thundering-herd resubmission is
    broken up.

    Shared by both retry layers: the in-process engine's task retries
    (``root_id`` = the task's root instance id) and the durable queue
    service's redelivery backoff (:mod:`repro.service.queue`, with
    ``root_id`` = the queue task id) — one backoff policy everywhere.
    """
    if base <= 0 or attempt <= 0:
        return 0.0
    raw = base * (2 ** (attempt - 1))
    digest = hashlib.sha256(f"{seed}:{task_name}:{root_id}:{attempt}".encode()).digest()
    jitter = 0.75 + (int.from_bytes(digest[:4], "big") / 2**32) * 0.5
    delay = raw * jitter
    if cap is not None:
        delay = min(delay, cap)
    return delay
