"""Workflow provenance records.

The paper registers each execution on WorkflowHub with COMPSs'
provenance support.  We reproduce the substance: a JSON-serialisable
record describing the run (workflow name, parameters, environment), the
executed task graph, and per-task-type timing statistics — enough to
re-derive every number the run reported.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import time
from typing import Any

import numpy as np

from repro._version import __version__
from repro.runtime.dag import TaskGraph
from repro.runtime.tracing import Trace


@dataclasses.dataclass
class ProvenanceRecord:
    workflow: str
    parameters: dict[str, Any]
    created_at: float
    environment: dict[str, str]
    n_tasks: int
    n_edges: int
    depth: int
    max_width: int
    task_stats: dict[str, dict[str, float]]
    makespan: float
    total_task_time: float
    results: dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Failure-management summary (failed / ignored / retried attempt
    #: counts, per task name) — empty dict for a clean run.
    failures: dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Free-form run events (e.g. dropped federated clients, injected
    #: faults, simulated node failures), in occurrence order.
    events: list[dict[str, Any]] = dataclasses.field(default_factory=list)
    #: Checkpoint-resume summary (counts of tasks replayed from the
    #: checkpoint store, per task name) — empty dict for a cold run.
    restored: dict[str, Any] = dataclasses.field(default_factory=dict)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(dataclasses.asdict(self), indent=indent, default=_jsonable)

    def save(self, path) -> None:
        """Write the record to *path* as JSON, atomically."""
        from repro.runtime.atomic_write import atomic_write

        atomic_write(path, self.to_json())


def _jsonable(obj: Any) -> Any:
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer, np.floating)):
        return obj.item()
    return str(obj)


def build_provenance(
    workflow: str,
    graph: TaskGraph,
    trace: Trace,
    parameters: dict[str, Any] | None = None,
    results: dict[str, Any] | None = None,
    events: list[dict[str, Any]] | None = None,
) -> ProvenanceRecord:
    """Assemble a provenance record from a finished run.

    ``events`` carries out-of-band occurrences the trace alone cannot
    express (dropped federated clients, injected faults, node failures);
    failure statistics are derived from the trace's attempt records.
    """
    stats: dict[str, dict[str, float]] = {}
    for name, records in trace.by_name().items():
        # Restored attempts never ran — their zero durations would skew
        # the timing statistics; they are summarised separately below.
        executed = [r for r in records if r.status != "restored"]
        if not executed:
            continue
        durations = np.array([r.duration for r in executed])
        stats[name] = {
            "count": float(len(executed)),
            "mean_s": float(durations.mean()),
            "min_s": float(durations.min()),
            "max_s": float(durations.max()),
            "total_s": float(durations.sum()),
        }
    return ProvenanceRecord(
        workflow=workflow,
        parameters=dict(parameters or {}),
        created_at=time.time(),
        environment={
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repro": __version__,
            "numpy": np.__version__,
        },
        n_tasks=graph.n_tasks,
        n_edges=graph.n_edges,
        depth=graph.depth(),
        max_width=graph.max_width(),
        task_stats=stats,
        makespan=trace.makespan,
        total_task_time=trace.total_task_time,
        results=dict(results or {}),
        failures=_failure_summary(trace),
        events=list(events or []),
        restored=_restored_summary(trace),
    )


def _failure_summary(trace: Trace) -> dict[str, Any]:
    """Summarise failure management from attempt records; empty for a
    clean run so existing provenance consumers see no change."""
    failed = [r for r in trace if r.status == "failed"]
    ignored = [r for r in trace if r.status == "ignored"]
    retried = [r for r in trace if r.attempt > 0]
    if not failed and not ignored and not retried:
        return {}
    by_name: dict[str, dict[str, int]] = {}
    for kind, records in (
        ("failed_attempts", failed),
        ("ignored", ignored),
        ("retries", retried),
    ):
        for r in records:
            by_name.setdefault(r.name, {"failed_attempts": 0, "ignored": 0, "retries": 0})
            by_name[r.name][kind] += 1
    return {
        "failed_attempts": len(failed),
        "ignored": len(ignored),
        "retries": len(retried),
        "by_name": by_name,
    }


def _restored_summary(trace: Trace) -> dict[str, Any]:
    """Summarise checkpoint replay from the trace; empty for a cold run
    so existing provenance consumers see no change."""
    restored = [r for r in trace if r.status == "restored"]
    if not restored:
        return {}
    by_name: dict[str, int] = {}
    for r in restored:
        by_name[r.name] = by_name.get(r.name, 0) + 1
    return {"count": len(restored), "by_name": by_name}
