"""Deterministic fault injection — chaos testing for task workflows.

A :class:`FaultInjector` intercepts task executions by name and makes
the Nth execution (or a seeded random fraction of executions) fail or
stall, so resilience claims — "this workflow survives two transient
failures of ``train``" — become executable tests instead of prose::

    from repro.runtime import Runtime, task, wait_on
    from repro.runtime.faults import fail_nth, inject

    with Runtime(executor="sequential"), inject(fail_nth("train", 1, 2)):
        model = train.opts(max_retries=2)(data)   # fails twice, then succeeds
        wait_on(model)

Executions are counted per task *name* across the whole injector
lifetime, attempts included — execution 1 is the first attempt, so
``fail_nth("train", 1, 2)`` makes the runtime's third attempt the
first one to run clean.  Probabilistic rules draw from a per-name
generator seeded from ``(seed, name)``, so a given seed produces the
same failure pattern on every run (per-name execution order is
deterministic under the ``sequential`` executor).

Injectors nest: the innermost ``inject(...)`` context is consulted
first, and every active injector sees every execution.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import threading
import time
from typing import Callable, Iterator

from repro.runtime.exceptions import FaultInjectedError


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One injection rule, matched against task names.

    ``executions`` is a frozen set of 1-based execution indices the
    rule fires on; ``None`` means "consult ``probability`` instead"
    (and a probability of ``None`` then means "every execution").
    """

    task: str
    kind: str  # "fail" | "delay"
    executions: frozenset[int] | None = None
    probability: float | None = None
    delay: float = 0.0
    error: Callable[[], BaseException] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("fail", "delay"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.executions is not None and any(n < 1 for n in self.executions):
            raise ValueError("execution indices are 1-based")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")


def fail_nth(task: str, *executions: int, message: str | None = None) -> FaultRule:
    """Fail the given 1-based executions of *task* with
    :class:`FaultInjectedError`."""
    if not executions:
        raise ValueError("fail_nth needs at least one execution index")
    text = message or f"injected fault in {task!r}"
    return FaultRule(
        task=task,
        kind="fail",
        executions=frozenset(executions),
        error=lambda: FaultInjectedError(text),
    )


def delay_nth(task: str, *executions: int, seconds: float) -> FaultRule:
    """Stall the given executions of *task* by *seconds* (e.g. to force
    a ``time_out`` to fire deterministically)."""
    if not executions:
        raise ValueError("delay_nth needs at least one execution index")
    return FaultRule(task=task, kind="delay", executions=frozenset(executions), delay=seconds)


def random_failures(task: str, probability: float) -> FaultRule:
    """Fail each execution of *task* independently with *probability*
    (drawn from the injector's seeded per-name stream)."""
    return FaultRule(
        task=task,
        kind="fail",
        probability=probability,
        error=lambda: FaultInjectedError(f"injected random fault in {task!r}"),
    )


class FaultInjector:
    """Applies a set of :class:`FaultRule` to task executions.

    Use as a context manager (or via :func:`inject`) to activate; the
    runtime consults every active injector right before invoking each
    task body.  ``injector.log`` records ``(task, execution, action)``
    tuples for every fired rule, so tests can assert exactly which
    faults were injected.
    """

    def __init__(self, *rules: FaultRule, seed: int = 0):
        self.rules = tuple(rules)
        self.seed = seed
        self.log: list[tuple[str, int, str]] = []
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def executions(self, task: str) -> int:
        """Executions of *task* seen so far."""
        with self._lock:
            return self._counts.get(task, 0)

    def _roll(self, task: str, execution: int) -> float:
        """Deterministic uniform draw in [0, 1) for one execution."""
        digest = hashlib.sha256(f"{self.seed}:{task}:{execution}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def on_execute(self, task: str) -> None:
        """Hook called by the engine; may sleep or raise."""
        matching = [r for r in self.rules if r.task == task]
        with self._lock:
            execution = self._counts.get(task, 0) + 1
            self._counts[task] = execution
        if not matching:
            return
        for rule in matching:
            if rule.executions is not None:
                fires = execution in rule.executions
            elif rule.probability is not None:
                fires = self._roll(task, execution) < rule.probability
            else:
                fires = True
            if not fires:
                continue
            if rule.kind == "delay":
                with self._lock:
                    self.log.append((task, execution, f"delay {rule.delay}s"))
                time.sleep(rule.delay)
            else:
                with self._lock:
                    self.log.append((task, execution, "fail"))
                assert rule.error is not None
                raise rule.error()

    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        _push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _pop(self)


@contextlib.contextmanager
def inject(*rules: FaultRule, seed: int = 0) -> Iterator[FaultInjector]:
    """Activate a :class:`FaultInjector` for the enclosed block."""
    injector = FaultInjector(*rules, seed=seed)
    with injector:
        yield injector


# ----------------------------------------------------------------------
# active-injector stack (innermost first)
# ----------------------------------------------------------------------
_active: list[FaultInjector] = []
_active_lock = threading.Lock()


def _push(injector: FaultInjector) -> None:
    with _active_lock:
        _active.append(injector)


def _pop(injector: FaultInjector) -> None:
    with _active_lock:
        if injector in _active:
            _active.remove(injector)


def on_task_execute(task: str) -> None:
    """Engine hook: apply every active injector to one execution."""
    with _active_lock:
        injectors = list(reversed(_active))
    for injector in injectors:
        injector.on_execute(task)
