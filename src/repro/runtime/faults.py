"""Deterministic fault injection — chaos testing for task workflows.

A :class:`FaultInjector` intercepts task executions by name and makes
the Nth execution (or a seeded random fraction of executions) fail or
stall, so resilience claims — "this workflow survives two transient
failures of ``train``" — become executable tests instead of prose::

    from repro.runtime import Runtime, task, wait_on
    from repro.runtime.faults import fail_nth, inject

    with Runtime(executor="sequential"), inject(fail_nth("train", 1, 2)):
        model = train.opts(max_retries=2)(data)   # fails twice, then succeeds
        wait_on(model)

Executions are counted per task *name* across the whole injector
lifetime, attempts included — execution 1 is the first attempt, so
``fail_nth("train", 1, 2)`` makes the runtime's third attempt the
first one to run clean.  Probabilistic rules draw from a per-name
generator seeded from ``(seed, name)``, so a given seed produces the
same failure pattern on every run (per-name execution order is
deterministic under the ``sequential`` executor).

Injectors nest: the innermost ``inject(...)`` context is consulted
first, and every active injector sees every execution.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import threading
import time
from typing import Callable, Iterator

from repro.runtime.exceptions import FaultInjectedError, WorkflowKilledError


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One injection rule, matched against task names.

    ``task`` is a task name, or ``"*"`` to match every task.
    ``executions`` is a frozen set of 1-based execution indices the
    rule fires on; ``None`` means "consult ``probability`` instead"
    (and a probability of ``None`` then means "every execution").
    ``after`` is the global (all task names pooled) execution count a
    ``"kill"`` rule lets complete before firing.  ``"corrupt"`` rules
    fire on checkpoint *writes* rather than task executions.
    ``"kill_worker"`` rules do not raise: they ask the execution
    backend to crash the worker *process* running the matched execution
    (SIGKILL under the ``processes`` backend, a simulated
    :class:`~repro.runtime.exceptions.NodeFailureError` under
    ``threads``).
    """

    task: str
    kind: str  # "fail" | "delay" | "kill" | "corrupt" | "kill_worker"
    executions: frozenset[int] | None = None
    probability: float | None = None
    delay: float = 0.0
    error: Callable[[], BaseException] | None = None
    after: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("fail", "delay", "kill", "corrupt", "kill_worker"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.executions is not None and any(n < 1 for n in self.executions):
            raise ValueError("execution indices are 1-based")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")
        if self.after is not None and self.after < 0:
            raise ValueError("after must be >= 0")
        if self.kind == "kill" and self.after is None:
            raise ValueError("kill rules need an 'after' task count")

    def matches(self, task: str) -> bool:
        return self.task == "*" or self.task == task


def fail_nth(task: str, *executions: int, message: str | None = None) -> FaultRule:
    """Fail the given 1-based executions of *task* with
    :class:`FaultInjectedError`."""
    if not executions:
        raise ValueError("fail_nth needs at least one execution index")
    text = message or f"injected fault in {task!r}"
    return FaultRule(
        task=task,
        kind="fail",
        executions=frozenset(executions),
        error=lambda: FaultInjectedError(text),
    )


def delay_nth(task: str, *executions: int, seconds: float) -> FaultRule:
    """Stall the given executions of *task* by *seconds* (e.g. to force
    a ``time_out`` to fire deterministically)."""
    if not executions:
        raise ValueError("delay_nth needs at least one execution index")
    return FaultRule(task=task, kind="delay", executions=frozenset(executions), delay=seconds)


def kill_after_n_tasks(n: int, message: str | None = None) -> FaultRule:
    """Simulate a process kill once *n* task executions have started.

    The (n+1)-th task execution — counted across *all* task names —
    raises :class:`~repro.runtime.exceptions.WorkflowKilledError`, a
    ``BaseException`` that tears through the engine's failure policies
    like SIGKILL would.  Pair with a checkpointed runtime and the
    ``sequential`` executor to make crash/resume paths provable::

        try:
            with Runtime(executor="sequential", config=cfg):
                run_workflow()
        except WorkflowKilledError:
            pass          # "the process died"
        with Runtime(executor="sequential", config=cfg):
            run_workflow()  # resumes from the checkpoint store
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    text = message or f"workflow killed after {n} task executions"
    return FaultRule(
        task="*", kind="kill", after=n, error=lambda: WorkflowKilledError(text)
    )


def corrupt_nth(task: str, *writes: int) -> FaultRule:
    """Corrupt the given 1-based checkpoint *writes* of *task*.

    Fires on the checkpoint-write hook (not on task execution): after
    the store persists the entry, its payload bytes are flipped in
    place, so the next resume sees a checksum mismatch and must detect,
    log and recompute the entry.  ``task="*"`` corrupts any task's
    writes; named-blob writes (epoch/round checkpoints) match on their
    tag.
    """
    if not writes:
        raise ValueError("corrupt_nth needs at least one write index")
    return FaultRule(task=task, kind="corrupt", executions=frozenset(writes))


def kill_worker(task: str, *executions: int) -> FaultRule:
    """Crash the worker *process* running the given 1-based executions
    of *task* — the node-failure experiment.

    Under the ``processes`` backend the worker SIGKILLs itself mid-task;
    the coordinator detects the broken pipe and fails the attempt with
    :class:`~repro.runtime.exceptions.NodeFailureError`, which feeds the
    ordinary ``on_failure``/retry machinery (a retry lands on a fresh
    worker).  Under the ``threads`` backend the same
    :class:`NodeFailureError` is raised directly (``simulated=True``),
    so differential tests see identical failure schedules::

        with inject(kill_worker("train", 1)):   # first execution dies
            model = train.opts(max_retries=1)(data)   # retry succeeds
    """
    if not executions:
        raise ValueError("kill_worker needs at least one execution index")
    return FaultRule(task=task, kind="kill_worker", executions=frozenset(executions))


def random_failures(task: str, probability: float) -> FaultRule:
    """Fail each execution of *task* independently with *probability*
    (drawn from the injector's seeded per-name stream)."""
    return FaultRule(
        task=task,
        kind="fail",
        probability=probability,
        error=lambda: FaultInjectedError(f"injected random fault in {task!r}"),
    )


class FaultInjector:
    """Applies a set of :class:`FaultRule` to task executions.

    Use as a context manager (or via :func:`inject`) to activate; the
    runtime consults every active injector right before invoking each
    task body.  ``injector.log`` records ``(task, execution, action)``
    tuples for every fired rule, so tests can assert exactly which
    faults were injected.
    """

    def __init__(self, *rules: FaultRule, seed: int = 0):
        self.rules = tuple(rules)
        self.seed = seed
        self.log: list[tuple[str, int, str]] = []
        self._counts: dict[str, int] = {}
        self._total = 0
        self._ckpt_counts: dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def executions(self, task: str) -> int:
        """Executions of *task* seen so far."""
        with self._lock:
            return self._counts.get(task, 0)

    @property
    def total_executions(self) -> int:
        """Task executions seen so far across all names."""
        with self._lock:
            return self._total

    def _roll(self, task: str, execution: int) -> float:
        """Deterministic uniform draw in [0, 1) for one execution."""
        digest = hashlib.sha256(f"{self.seed}:{task}:{execution}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def on_execute(self, task: str) -> None:
        """Hook called by the engine; may sleep or raise.  Counts the
        execution (``kill_worker`` rules consult the same counter via
        :meth:`worker_kill_pending` without re-counting)."""
        matching = [
            r
            for r in self.rules
            if r.kind not in ("corrupt", "kill_worker") and r.matches(task)
        ]
        with self._lock:
            execution = self._counts.get(task, 0) + 1
            self._counts[task] = execution
            self._total += 1
            total = self._total
        if not matching:
            return
        for rule in matching:
            if rule.kind == "kill":
                if total > rule.after:
                    with self._lock:
                        self.log.append((task, execution, "kill"))
                    assert rule.error is not None
                    raise rule.error()
                continue
            if rule.executions is not None:
                fires = execution in rule.executions
            elif rule.probability is not None:
                fires = self._roll(task, execution) < rule.probability
            else:
                fires = True
            if not fires:
                continue
            if rule.kind == "delay":
                with self._lock:
                    self.log.append((task, execution, f"delay {rule.delay}s"))
                time.sleep(rule.delay)
            else:
                with self._lock:
                    self.log.append((task, execution, "fail"))
                assert rule.error is not None
                raise rule.error()

    def worker_kill_pending(self, task: str) -> bool:
        """Should the backend crash the worker running *task*'s current
        execution?  Called by the engine right after :func:`on_execute`
        counted the execution, so indices line up with ``fail_nth``."""
        with self._lock:
            execution = self._counts.get(task, 0)
        fired = False
        for rule in self.rules:
            if rule.kind != "kill_worker" or not rule.matches(task):
                continue
            if rule.executions is not None:
                fires = execution in rule.executions
            elif rule.probability is not None:
                fires = self._roll(f"kw:{task}", execution) < rule.probability
            else:
                fires = True
            if fires:
                with self._lock:
                    self.log.append((task, execution, "kill_worker"))
                fired = True
        return fired

    def on_checkpoint(self, task: str, path: str) -> None:
        """Hook called by the checkpoint store after persisting an entry
        for *task* (or a named blob, matched on its tag)."""
        with self._lock:
            write = self._ckpt_counts.get(task, 0) + 1
            self._ckpt_counts[task] = write
        for rule in self.rules:
            if rule.kind != "corrupt" or not rule.matches(task):
                continue
            if rule.executions is not None:
                fires = write in rule.executions
            elif rule.probability is not None:
                fires = self._roll(f"ckpt:{task}", write) < rule.probability
            else:
                fires = True
            if fires:
                with self._lock:
                    self.log.append((task, write, "corrupt"))
                _flip_last_byte(path)

    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        _push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _pop(self)


@contextlib.contextmanager
def inject(*rules: FaultRule, seed: int = 0) -> Iterator[FaultInjector]:
    """Activate a :class:`FaultInjector` for the enclosed block."""
    injector = FaultInjector(*rules, seed=seed)
    with injector:
        yield injector


# ----------------------------------------------------------------------
# active-injector stack (innermost first)
# ----------------------------------------------------------------------
_active: list[FaultInjector] = []
_active_lock = threading.Lock()


def _push(injector: FaultInjector) -> None:
    with _active_lock:
        _active.append(injector)


def _pop(injector: FaultInjector) -> None:
    with _active_lock:
        if injector in _active:
            _active.remove(injector)


def on_task_execute(task: str) -> None:
    """Engine hook: apply every active injector to one execution."""
    if not _active:  # unlocked fast bail — list append/remove is atomic
        return
    with _active_lock:
        injectors = list(reversed(_active))
    for injector in injectors:
        injector.on_execute(task)


def worker_kill_requested(task: str) -> bool:
    """Engine hook: does any active injector want the worker process
    running *task*'s current execution crashed?"""
    if not _active:
        return False
    with _active_lock:
        injectors = list(reversed(_active))
    return any([inj.worker_kill_pending(task) for inj in injectors])


def on_checkpoint_write(task: str, path: str) -> None:
    """Checkpoint-store hook: let active injectors corrupt the freshly
    written entry file (``corrupt_nth`` rules)."""
    with _active_lock:
        injectors = list(reversed(_active))
    for injector in injectors:
        injector.on_checkpoint(task, path)


def _flip_last_byte(path: str) -> None:
    """In-place single-byte corruption of a file's payload tail."""
    with open(path, "r+b") as fh:
        fh.seek(-1, 2)
        byte = fh.read(1)
        fh.seek(-1, 2)
        fh.write(bytes([byte[0] ^ 0xFF]))
