"""Futures: placeholders for values produced by not-yet-executed tasks.

A :class:`Future` is what a ``@task``-decorated function returns at call
time.  Passing a future into another task creates a true (read-after-
write) dependency between the two tasks; calling
:func:`repro.runtime.wait_on` synchronises it into a concrete value.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.runtime.exceptions import CancelledTaskError

_PENDING = "pending"
_DONE = "done"
_FAILED = "failed"
_CANCELLED = "cancelled"

#: Serialises lazy event materialisation across futures.  One global
#: lock is fine: it is only ever taken by a ``result()`` call that
#: found its future still pending — the slow path by definition.
_materialize_lock = threading.Lock()

#: Installed by :mod:`repro.runtime.engine` at import time (futures
#: only exist once an engine does).  Called with a runtime id when a
#: still-pending future is waited on or polled, it arms that runtime's
#: buffered fused-task units: a pending future may belong to a fused
#: unit its submitter left open (accumulating), and a waiter that only
#: reads future state would otherwise never trigger the flush that
#: schedules it — deadlocking ``submit(); result()`` chains that never
#: go through ``wait_on``/``barrier``.
_pending_wait_hook = None


class Future:
    """A single value produced by a task.

    Futures are created by the runtime only; user code never constructs
    them directly.  Each future knows the task that produces it
    (``task_id``) and its position among that task's return values
    (``index``), which the tracing layer uses to attribute data sizes.
    """

    __slots__ = (
        "task_id",
        "index",
        "_state",
        "_value",
        "_error",
        "_event",
        "_runtime_id",
    )

    def __init__(self, task_id: int, index: int, runtime_id: int):
        self.task_id = task_id
        self.index = index
        self._state = _PENDING
        self._value: Any = None
        self._error: BaseException | None = None
        #: Materialised lazily on the first blocking ``result()`` call.
        #: Most futures in fine-grained workloads are resolved before
        #: anyone waits on them, so allocating a ``threading.Event``
        #: (with its internal condition + lock) per future at submit
        #: time was pure overhead on the scheduling hot path.
        self._event: threading.Event | None = None
        self._runtime_id = runtime_id

    # -- state transitions (runtime-internal) ---------------------------
    # The value/error is written *before* the state flips away from
    # pending, and the state *before* the event is checked: a reader
    # that observes a non-pending state therefore always sees the
    # value.  The interpreter's sequentially-consistent bytecode
    # execution closes the materialise/set race: if the setter misses
    # the event (reads None), its state store already happened before
    # the waiter's event store, so the waiter's re-check of the state
    # after publishing its event must see the terminal state.
    def _set_result(self, value: Any) -> None:
        self._value = value
        self._state = _DONE
        event = self._event
        if event is not None:
            event.set()

    def _set_error(self, error: BaseException) -> None:
        self._error = error
        self._state = _FAILED
        event = self._event
        if event is not None:
            event.set()

    def _cancel(self) -> None:
        self._state = _CANCELLED
        event = self._event
        if event is not None:
            event.set()

    # -- inspection ------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once the producing task finished (successfully or not)."""
        if self._state == _PENDING:
            # A polling loop must be able to make progress even if this
            # future sits in a buffered fused unit — see the hook doc.
            hook = _pending_wait_hook
            if hook is not None:
                hook(self._runtime_id)
        return self._state != _PENDING

    @property
    def failed(self) -> bool:
        return self._state == _FAILED

    def result(self, timeout: float | None = None) -> Any:
        """Block until the value is available and return it.

        Raises the producing task's error (wrapped in
        :class:`TaskExecutionError`) if it failed, or
        :class:`CancelledTaskError` if it was cancelled.
        """
        if self._state == _PENDING:
            # Flush any fused unit still buffering this (or an
            # upstream) task before blocking on a pure event wait:
            # nothing else would ever arm it.
            hook = _pending_wait_hook
            if hook is not None:
                hook(self._runtime_id)
            event = self._event
            if event is None:
                with _materialize_lock:
                    event = self._event
                    if event is None:
                        event = self._event = threading.Event()
            # Re-check after publishing the event: a setter running
            # concurrently either saw our event (and will set it) or
            # completed before our store, in which case the state is
            # already terminal here.
            if self._state == _PENDING and not event.wait(timeout):
                raise TimeoutError(
                    f"future from task {self.task_id} not resolved within {timeout}s"
                )
        if self._state == _FAILED:
            assert self._error is not None
            raise self._error
        if self._state == _CANCELLED:
            raise CancelledTaskError(f"task {self.task_id} was cancelled")
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Future task={self.task_id}[{self.index}] {self._state}>"


def is_future(obj: Any) -> bool:
    """True if *obj* is a runtime future."""
    return isinstance(obj, Future)


def scan_futures(obj: Any) -> list[Future]:
    """Collect futures reachable from *obj*.

    The runtime detects dependencies through arguments, mirroring
    COMPSs: futures may appear directly, or inside (nested) lists,
    tuples and dict values.  Sets are not scanned because futures are
    compared by identity and a set of futures is almost always a bug.
    """
    found: list[Future] = []
    _scan(obj, found)
    return found


def _scan(obj: Any, out: list[Future]) -> None:
    if isinstance(obj, Future):
        out.append(obj)
    elif isinstance(obj, (list, tuple)):
        for item in obj:
            _scan(item, out)
    elif isinstance(obj, dict):
        for item in obj.values():
            _scan(item, out)


def resolve_futures(obj: Any) -> Any:
    """Deep-replace futures in *obj* with their concrete results.

    Used by the executor right before invoking a task body, and by
    ``wait_on`` when handed a container of futures.  Containers are
    rebuilt (lists stay lists, tuples stay tuples) so task bodies can
    mutate list arguments without affecting the caller's structure.
    """
    if isinstance(obj, Future):
        return obj.result()
    if isinstance(obj, list):
        return [resolve_futures(v) for v in obj]
    if isinstance(obj, tuple):
        return tuple(resolve_futures(v) for v in obj)
    if isinstance(obj, dict):
        return {k: resolve_futures(v) for k, v in obj.items()}
    return obj
