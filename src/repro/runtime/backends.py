"""Execution backends: where a task body actually runs.

The engine (:mod:`repro.runtime.engine`) owns *scheduling* — dependency
release, help-while-waiting, retries, checkpoint replay — and delegates
the single step "invoke this task body with these resolved arguments"
to an :class:`ExecutorBackend`:

* :class:`ThreadBackend` (``RuntimeConfig(backend="threads")``, the
  default) calls the function in the scheduling thread, exactly as the
  engine always has.  NumPy kernels release the GIL, nested tasks see
  the live runtime, INOUT arguments are mutated in place.
* :class:`ProcessPoolBackend` (``backend="processes"``, or
  ``REPRO_BACKEND=processes``) ships the call to a persistent worker
  *process* over a pipe — the COMPSs executor-process model — so pure
  Python task bodies (SMO loops, feature extraction) escape the GIL on
  multi-core machines.

Serialization layer (process backend)
-------------------------------------
Calls are framed as pickle **protocol 5** with out-of-band buffers:
NumPy blocks travel as raw buffer frames after the payload instead of
being copied into the pickle stream (:func:`_encode` / :func:`_decode`).
Functions are never pickled — a task is transported as its
``(module, qualname)`` and re-imported inside the worker, unwrapping
the ``@task`` decorator to the raw body.

Not every task can cross a process boundary.  The backend falls back to
an **inline** call (thread-backend semantics, same results) when:

* the task declares INOUT/OUT writes — mutations of the caller's
  objects cannot propagate back from another address space;
* the function is defined in a local scope (``<locals>`` in its
  qualname) — not importable by the worker;
* an argument or the result does not pickle;
* the worker cannot resolve the function (e.g. ``__main__`` tasks of a
  script the worker did not import).

Tasks that *nest* (submit sub-tasks) are dispatchable: inside a worker
there is no active runtime, so nested ``@task`` calls degrade to plain
inline calls and ``wait_on`` is a pass-through — same values, computed
within the worker.

Worker lifecycle
----------------
Workers are spawned lazily (``spawn`` context: safe with the
multithreaded coordinator), warmed up with a ping, and kept in one
module-level pool shared by every Runtime so short-lived runtimes (the
test suite creates hundreds) do not pay respawn costs.  A worker that
dies mid-call — crash, OOM kill, or the ``kill_worker`` fault injector
— is detected by the broken pipe and surfaces as
:class:`~repro.runtime.exceptions.NodeFailureError` in the dispatching
thread, which feeds the ordinary ``on_failure``/retry machinery.
``shutdown_workers()`` (also registered ``atexit``) terminates the pool.
"""

from __future__ import annotations

import atexit
import importlib
import logging
import os
import pickle
import signal
import struct
import sys
import threading
import time
from typing import Any

from repro.runtime.exceptions import NodeFailureError

_logger = logging.getLogger("repro.runtime.backends")

#: Seconds to wait for a fresh worker's warm-up ping reply.
_SPAWN_TIMEOUT = 30.0

BACKENDS = ("threads", "processes")


# ----------------------------------------------------------------------
# attempt-local state (both sides of the pipe)
# ----------------------------------------------------------------------
_exec_tls = threading.local()


def current_attempt() -> int:
    """0-based retry attempt of the task body running on this thread.

    Valid on the coordinator (thread backend / inline fallback) *and*
    inside worker processes, so task bodies that want deterministic
    attempt-dependent behaviour — "fail twice, then succeed" — need no
    process-shared counters."""
    return getattr(_exec_tls, "attempt", 0)


def _call_with_attempt(func, args, kwargs, attempt: int):
    prev = getattr(_exec_tls, "attempt", None)
    _exec_tls.attempt = attempt
    try:
        return func(*args, **kwargs)
    finally:
        if prev is None:
            del _exec_tls.attempt
        else:
            _exec_tls.attempt = prev


# ----------------------------------------------------------------------
# serialization: pickle protocol 5 + out-of-band buffers over a pipe
# ----------------------------------------------------------------------
def _encode(obj: Any) -> list[bytes]:
    """Frame *obj* as ``[count-header, payload, buffer...]``.

    NumPy arrays (anything exporting :class:`pickle.PickleBuffer`) stay
    out of the pickle stream and travel as raw trailing frames — no
    intermediate copy into the payload bytes."""
    buffers: list[pickle.PickleBuffer] = []
    payload = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    frames = [struct.pack("<I", len(buffers)), payload]
    frames.extend(buf.raw() for buf in buffers)
    return frames


def _decode(frames: list[bytes]) -> Any:
    return pickle.loads(frames[1], buffers=frames[2:])


def _send_frames(conn, frames: list[bytes]) -> None:
    for frame in frames:
        conn.send_bytes(frame)


def _recv_frames(conn) -> list[bytes]:
    """Receive one framed message.  Raises ``EOFError``/``OSError`` when
    the peer died — connection errors mean *crash*, never bad data."""
    header = conn.recv_bytes()
    (n_buffers,) = struct.unpack("<I", header)
    frames = [header, conn.recv_bytes()]
    for _ in range(n_buffers):
        frames.append(conn.recv_bytes())
    return frames


def _send(conn, obj: Any) -> None:
    _send_frames(conn, _encode(obj))


def _recv(conn) -> Any:
    return _decode(_recv_frames(conn))


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _resolve_task_function(module_name: str, qualname: str):
    """Import ``module_name`` and walk to ``qualname``, unwrapping a
    ``@task`` decorator to the raw body (the module attribute is the
    wrapper; ``wrapper.spec.func`` is the function to call)."""
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    spec = getattr(obj, "spec", None)
    func = getattr(spec, "func", None)
    if callable(func):
        return func
    if callable(obj):
        return obj
    raise TypeError(f"{module_name}.{qualname} is not callable")


def _safe_send(conn, reply: tuple, fallback: tuple) -> None:
    """Send *reply*; if it does not serialize (unpicklable exception or
    result), send the pre-built *fallback* instead.  The worker must
    answer every request exactly once or the coordinator would read it
    as a crash."""
    try:
        frames = _encode(reply)
    except Exception:
        frames = _encode(fallback)
    _send_frames(conn, frames)


def _worker_main(conn, search_path: list[str]) -> None:
    """Loop of one worker process: serve ``run`` requests until told to
    exit or the pipe closes."""
    # The coordinator owns interrupt handling; a Ctrl-C against the
    # process group must not tear down workers mid-reply.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    for entry in search_path:
        if entry not in sys.path:
            sys.path.append(entry)
    pid = os.getpid()
    while True:
        try:
            request = _recv(conn)
        except (EOFError, OSError):
            return  # coordinator went away
        kind = request[0]
        if kind == "exit":
            return
        if kind == "ping":
            _send(conn, ("pong", pid))
            continue
        _, module_name, qualname, args, kwargs, attempt, kill_self = request
        if kill_self:
            # Fault injection: die like a crashed node, no reply, no
            # cleanup — the coordinator sees the broken pipe.
            os.kill(pid, signal.SIGKILL)
        try:
            func = _resolve_task_function(module_name, qualname)
        except Exception as exc:  # noqa: BLE001 - reported, not fatal
            _send(conn, ("unresolvable", f"{type(exc).__name__}: {exc}", pid))
            continue
        try:
            value = _call_with_attempt(func, args, kwargs, attempt)
        except BaseException as exc:  # noqa: BLE001 - relayed to coordinator
            fallback = (
                "raised",
                RuntimeError(f"worker exception did not pickle: {exc!r}"),
                pid,
            )
            _safe_send(conn, ("raised", exc, pid), fallback)
            continue
        _safe_send(conn, ("ok", value, pid), ("badresult", repr(value)[:200], pid))


class _WorkerDied(Exception):
    """Internal: the pipe to a worker broke (crash or kill)."""


_spawn_lock = threading.Lock()


def _start_without_main_reimport(process) -> None:
    """Start a spawn-context process *without* re-importing the
    parent's ``__main__`` module in the child.

    The default spawn bootstrap re-runs the parent's main script so
    objects pickled from ``__main__`` can be rebuilt — but this backend
    never pickles anything from ``__main__`` (tasks travel by
    ``(module, qualname)`` and ``__main__`` tasks run inline), so the
    re-import is pure cost *and* a hazard: an unguarded workflow script
    would recursively execute on every worker spawn.  The preparation
    data is patched for the duration of ``start()`` (under a lock —
    concurrent spawns see the same, idempotent patch)."""
    from multiprocessing import spawn as mp_spawn

    with _spawn_lock:
        original = mp_spawn.get_preparation_data

        def stripped(name):
            data = original(name)
            data.pop("init_main_from_path", None)
            data.pop("init_main_from_name", None)
            return data

        mp_spawn.get_preparation_data = stripped
        try:
            process.start()
        finally:
            mp_spawn.get_preparation_data = original


class _Worker:
    """Coordinator-side handle of one worker process."""

    def __init__(self, ctx):
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, list(sys.path)),
            name="repro-backend-worker",
            daemon=True,
        )
        _start_without_main_reimport(self.process)
        child_conn.close()
        self.conn = parent_conn
        self.pid: int | None = self.process.pid

    def warm_up(self, timeout: float = _SPAWN_TIMEOUT) -> None:
        _send(self.conn, ("ping",))
        if not self.conn.poll(timeout):
            self.close()
            raise TimeoutError(f"worker {self.pid} did not answer warm-up ping")
        reply = _recv(self.conn)
        self.pid = reply[1]

    def call(self, frames: list[bytes]) -> list[bytes]:
        """Send one encoded request, block for the reply frames.  Raises
        :class:`_WorkerDied` when the worker process is gone."""
        try:
            _send_frames(self.conn, frames)
            return _recv_frames(self.conn)
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise _WorkerDied(str(exc)) from exc

    def alive(self) -> bool:
        return self.process.is_alive()

    def close(self, timeout: float = 1.0) -> None:
        try:
            _send(self.conn, ("exit",))
        except (OSError, ValueError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        try:
            self.conn.close()
        except OSError:
            pass


class WorkerPool:
    """Lazily-grown pool of persistent worker processes.

    One module-level instance is shared by every
    :class:`ProcessPoolBackend` (see :func:`get_worker_pool`): workers
    outlive individual Runtimes, so a suite creating hundreds of
    short-lived runtimes pays the spawn + import cost once per worker,
    not once per runtime.  Concurrency *limits* are per-backend
    (``max_workers`` semaphore), not per-pool."""

    def __init__(self, ctx_method: str = "spawn"):
        import multiprocessing

        self._ctx = multiprocessing.get_context(ctx_method)
        self._idle: list[_Worker] = []
        self._all: list[_Worker] = []
        self._lock = threading.Lock()
        self.spawned = 0
        self.closed = False

    def acquire(self) -> _Worker:
        """An idle live worker, or a freshly spawned + warmed-up one."""
        while True:
            with self._lock:
                if self.closed:
                    raise RuntimeError("worker pool is shut down")
                worker = self._idle.pop() if self._idle else None
            if worker is None:
                break
            if worker.alive():
                return worker
            self._forget(worker)
            worker.close(timeout=0.1)
        worker = _Worker(self._ctx)
        try:
            worker.warm_up()
        except BaseException:
            worker.close(timeout=0.1)
            raise
        with self._lock:
            self._all.append(worker)
            self.spawned += 1
        return worker

    def release(self, worker: _Worker) -> None:
        if not worker.alive():
            self.discard(worker)
            return
        with self._lock:
            if not self.closed:
                self._idle.append(worker)
                return
        worker.close(timeout=0.1)

    def discard(self, worker: _Worker) -> None:
        """Drop a dead (or poisoned) worker for good."""
        self._forget(worker)
        worker.close(timeout=0.1)

    def _forget(self, worker: _Worker) -> None:
        with self._lock:
            if worker in self._all:
                self._all.remove(worker)
            if worker in self._idle:
                self._idle.remove(worker)

    @property
    def n_idle(self) -> int:
        with self._lock:
            return len(self._idle)

    @property
    def n_workers(self) -> int:
        with self._lock:
            return len(self._all)

    def shutdown(self) -> None:
        with self._lock:
            self.closed = True
            workers = list(self._all)
            self._all.clear()
            self._idle.clear()
        for worker in workers:
            worker.close()


_pool: WorkerPool | None = None
_pool_lock = threading.Lock()


def get_worker_pool() -> WorkerPool:
    """The shared worker pool, created on first use."""
    global _pool
    with _pool_lock:
        if _pool is None or _pool.closed:
            _pool = WorkerPool()
        return _pool


def shutdown_workers() -> None:
    """Terminate every pooled worker process (re-created on demand)."""
    with _pool_lock:
        pool = _pool
    if pool is not None:
        pool.shutdown()


atexit.register(shutdown_workers)


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class ExecutorBackend:
    """Strategy interface: run one resolved task body.

    ``run`` receives the task's :class:`~repro.runtime.model.TaskSpec`
    and fully-resolved (future-free) arguments and returns
    ``(result, pid)`` — the pid of the OS process that executed the
    body, recorded in the trace.  ``kill_worker=True`` asks the backend
    to simulate a worker crash for this call (the ``kill_worker`` fault
    injector); every backend must surface it as
    :class:`~repro.runtime.exceptions.NodeFailureError`.
    """

    name = "abstract"

    def run(
        self,
        spec,
        args: tuple,
        kwargs: dict,
        *,
        attempt: int = 0,
        kill_worker: bool = False,
    ) -> tuple[Any, int]:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release backend resources (no-op by default)."""

    def stats(self) -> dict:
        return {"backend": self.name}


class ThreadBackend(ExecutorBackend):
    """In-process execution: the body runs on the calling thread.

    This is the engine's historical behaviour, unchanged — nesting,
    help-while-waiting and INOUT mutation all work because everything
    shares the coordinator's address space."""

    name = "threads"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._n_tasks = 0

    def run(self, spec, args, kwargs, *, attempt=0, kill_worker=False):
        if kill_worker:
            # No real worker process to kill: simulate the observable
            # outcome (the dispatching side sees a dead node) so fault
            # schedules behave identically across backends.
            raise NodeFailureError(os.getpid(), task_name=spec.name, simulated=True)
        with self._lock:
            self._n_tasks += 1
        return _call_with_attempt(spec.func, args, kwargs, attempt), os.getpid()

    def stats(self) -> dict:
        with self._lock:
            return {"backend": self.name, "tasks_run": self._n_tasks}


class ProcessPoolBackend(ExecutorBackend):
    """Dispatch task bodies to persistent worker processes.

    ``max_workers`` bounds the calls in flight (a semaphore over the
    shared :class:`WorkerPool`); non-dispatchable calls fall back to an
    inline invocation with identical semantics (see the module
    docstring for the rules)."""

    name = "processes"

    def __init__(self, max_workers: int):
        self.max_workers = max(1, int(max_workers))
        self._slots = threading.BoundedSemaphore(self.max_workers)
        self._lock = threading.Lock()
        self._counts = {
            "dispatched": 0,
            "inline": 0,
            "serialization_fallbacks": 0,
            "unresolvable": 0,
            "result_fallbacks": 0,
            "worker_crashes": 0,
        }
        #: Cumulative seconds spent encoding requests and decoding
        #: replies on the coordinator side — the serialization share of
        #: dispatch overhead (``stats()["serialization_seconds"]``).
        self._serialization_seconds = 0.0
        #: spec ids proven non-dispatchable (writes, locals, resolution
        #: failure) — skip the round trip next time.
        self._inline_only: set[int] = set()

    # -- dispatch rules -------------------------------------------------
    def _dispatchable(self, spec) -> bool:
        if id(spec) in self._inline_only:
            return False
        func = spec.func
        module = getattr(func, "__module__", None)
        qualname = getattr(func, "__qualname__", "")
        ok = (
            not spec.has_writes  # INOUT mutations cannot cross processes
            # Workers never import the coordinator's main script (see
            # _start_without_main_reimport), so __main__ tasks run here.
            and module not in (None, "__main__", "__mp_main__")
            and "<locals>" not in qualname
        )
        if not ok:
            with self._lock:
                self._inline_only.add(id(spec))
        return ok

    def _count(self, key: str) -> None:
        with self._lock:
            self._counts[key] += 1

    def _run_inline(self, spec, args, kwargs, attempt, kill_worker):
        if kill_worker:
            raise NodeFailureError(os.getpid(), task_name=spec.name, simulated=True)
        self._count("inline")
        return _call_with_attempt(spec.func, args, kwargs, attempt), os.getpid()

    # -- execution ------------------------------------------------------
    def run(self, spec, args, kwargs, *, attempt=0, kill_worker=False):
        if not self._dispatchable(spec):
            return self._run_inline(spec, args, kwargs, attempt, kill_worker)
        request = (
            "run",
            spec.func.__module__,
            spec.func.__qualname__,
            args,
            kwargs,
            attempt,
            kill_worker,
        )
        t0 = time.perf_counter()
        try:
            frames = _encode(request)
        except Exception:  # unpicklable argument: run where the data is
            self._count("serialization_fallbacks")
            return self._run_inline(spec, args, kwargs, attempt, kill_worker)
        finally:
            with self._lock:
                self._serialization_seconds += time.perf_counter() - t0

        with self._slots:
            pool = get_worker_pool()
            worker = pool.acquire()
            pid = worker.pid or -1
            try:
                reply_frames = worker.call(frames)
            except _WorkerDied as exc:
                pool.discard(worker)
                self._count("worker_crashes")
                raise NodeFailureError(
                    pid, task_name=spec.name, simulated=kill_worker
                ) from exc
            pool.release(worker)

        t0 = time.perf_counter()
        try:
            reply = _decode(reply_frames)
        except Exception as exc:  # noqa: BLE001 - a data error, not a crash
            raise RuntimeError(
                f"undecodable reply from worker {pid} for task "
                f"{spec.name!r}: {exc!r}"
            ) from exc
        finally:
            with self._lock:
                self._serialization_seconds += time.perf_counter() - t0
        kind = reply[0]
        if kind == "ok":
            self._count("dispatched")
            return reply[1], reply[2]
        if kind == "raised":
            self._count("dispatched")
            error = reply[1]
            try:
                error._repro_worker_pid = reply[2]
            except Exception:  # noqa: BLE001 - slots/immutable exceptions
                pass
            raise error
        if kind == "unresolvable":
            # Worker could not import the function (e.g. __main__ task):
            # remember and run locally from now on.
            _logger.debug(
                "task %r not resolvable in worker (%s); running inline",
                spec.name,
                reply[1],
            )
            with self._lock:
                self._inline_only.add(id(spec))
            self._count("unresolvable")
            return self._run_inline(spec, args, kwargs, attempt, False)
        if kind == "badresult":
            # Result did not pickle; recompute locally (pure tasks only
            # are dispatched, so re-running is safe).
            with self._lock:
                self._inline_only.add(id(spec))
            self._count("result_fallbacks")
            return self._run_inline(spec, args, kwargs, attempt, False)
        raise RuntimeError(f"unknown worker reply {kind!r}")

    def stats(self) -> dict:
        pool = _pool
        with self._lock:
            counts = dict(self._counts)
            serialization_seconds = self._serialization_seconds
        return {
            "backend": self.name,
            "max_workers": self.max_workers,
            "pool_workers": pool.n_workers if pool is not None else 0,
            "serialization_seconds": serialization_seconds,
            **counts,
        }


def create_backend(name: str, max_workers: int) -> ExecutorBackend:
    """Instantiate the backend selected by ``RuntimeConfig.backend``."""
    if name == "threads":
        return ThreadBackend()
    if name == "processes":
        return ProcessPoolBackend(max_workers)
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")
