"""Execution backends: where a task body actually runs.

The engine (:mod:`repro.runtime.engine`) owns *scheduling* — dependency
release, help-while-waiting, retries, checkpoint replay — and delegates
the single step "invoke this task body with these resolved arguments"
to an :class:`ExecutorBackend`:

* :class:`ThreadBackend` (``RuntimeConfig(backend="threads")``, the
  default) calls the function in the scheduling thread, exactly as the
  engine always has.  NumPy kernels release the GIL, nested tasks see
  the live runtime, INOUT arguments are mutated in place.
* :class:`ProcessPoolBackend` (``backend="processes"``, or
  ``REPRO_BACKEND=processes``) ships the call to a persistent worker
  *process* over a pipe — the COMPSs executor-process model — so pure
  Python task bodies (SMO loops, feature extraction) escape the GIL on
  multi-core machines.

Serialization layer (process backend)
-------------------------------------
Calls are framed as pickle **protocol 5** with out-of-band buffers:
NumPy blocks travel as raw buffer frames after the payload instead of
being copied into the pickle stream (:func:`_encode` / :func:`_decode`).
Functions are never pickled — a task is transported as its
``(module, qualname)`` and re-imported inside the worker, unwrapping
the ``@task`` decorator to the raw body.

Not every task can cross a process boundary.  The backend falls back to
an **inline** call (thread-backend semantics, same results) when:

* the task declares INOUT/OUT writes — mutations of the caller's
  objects cannot propagate back from another address space;
* the function is defined in a local scope (``<locals>`` in its
  qualname) — not importable by the worker;
* an argument or the result does not pickle;
* the worker cannot resolve the function (e.g. ``__main__`` tasks of a
  script the worker did not import).

Tasks that *nest* (submit sub-tasks) are dispatchable: inside a worker
there is no active runtime, so nested ``@task`` calls degrade to plain
inline calls and ``wait_on`` is a pass-through — same values, computed
within the worker.

Data plane (shared-memory object store)
---------------------------------------
When the backend is built with an
:class:`~repro.runtime.store.ObjectStore`, large NumPy arguments stop
crossing the pipe: the coordinator *freezes* them into shared-memory
segments (put-once — repeated arguments are dedup hits) and sends tiny
:class:`~repro.runtime.store.ObjectRef` handles instead.  The worker
maps each segment once into a bounded cache and hands the task body a
read-only zero-copy view; large results are frozen by the worker into
fresh segments that the coordinator adopts into the store, so task
chains move references, never buffers.  Dispatch is locality-aware: a
residency map (which worker holds which segments) steers each call to
the worker already caching the largest share of its input bytes.
``stats()`` exposes the accounting — ``pipe_bytes_sent/recv``,
``store_bytes_moved`` (fresh segment attaches), ``store_bytes_saved``
(pickle bytes avoided), locality hit/miss counters.

Worker lifecycle
----------------
Workers are spawned lazily (``spawn`` context: safe with the
multithreaded coordinator), warmed up with a ping, and kept in one
module-level pool shared by every Runtime so short-lived runtimes (the
test suite creates hundreds) do not pay respawn costs.  A worker that
dies mid-call — crash, OOM kill, or the ``kill_worker`` fault injector
— is detected by the broken pipe and surfaces as
:class:`~repro.runtime.exceptions.NodeFailureError` in the dispatching
thread, which feeds the ordinary ``on_failure``/retry machinery.
``shutdown_workers()`` (also registered ``atexit``) terminates the pool.
"""

from __future__ import annotations

import atexit
import dataclasses
import importlib
import logging
import os
import pickle
import signal
import struct
import sys
import threading
import time
from typing import Any

import numpy as np

from repro.runtime import tracectx as _tracectx
from repro.runtime.exceptions import NodeFailureError
from repro.runtime.store import ObjectRef, ObjectStore, StoreError, WorkerStore

_logger = logging.getLogger("repro.runtime.backends")

#: Seconds to wait for a fresh worker's warm-up ping reply.
_SPAWN_TIMEOUT = 30.0

BACKENDS = ("threads", "processes")


# ----------------------------------------------------------------------
# attempt-local state (both sides of the pipe)
# ----------------------------------------------------------------------
_exec_tls = threading.local()


def current_attempt() -> int:
    """0-based retry attempt of the task body running on this thread.

    Valid on the coordinator (thread backend / inline fallback) *and*
    inside worker processes, so task bodies that want deterministic
    attempt-dependent behaviour — "fail twice, then succeed" — need no
    process-shared counters."""
    return getattr(_exec_tls, "attempt", 0)


def _call_with_attempt(func, args, kwargs, attempt: int):
    prev = getattr(_exec_tls, "attempt", None)
    _exec_tls.attempt = attempt
    try:
        return func(*args, **kwargs)
    finally:
        if prev is None:
            del _exec_tls.attempt
        else:
            _exec_tls.attempt = prev


# ----------------------------------------------------------------------
# serialization: pickle protocol 5 + out-of-band buffers over a pipe
# ----------------------------------------------------------------------
def _encode(obj: Any) -> list[bytes]:
    """Frame *obj* as ``[count-header, payload, buffer...]``.

    NumPy arrays (anything exporting :class:`pickle.PickleBuffer`) stay
    out of the pickle stream and travel as raw trailing frames — no
    intermediate copy into the payload bytes."""
    buffers: list[pickle.PickleBuffer] = []
    payload = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    frames = [struct.pack("<I", len(buffers)), payload]
    frames.extend(buf.raw() for buf in buffers)
    return frames


def _decode(frames: list[bytes]) -> Any:
    return pickle.loads(frames[1], buffers=frames[2:])


def _send_frames(conn, frames: list[bytes]) -> None:
    for frame in frames:
        conn.send_bytes(frame)


def _recv_frames(conn) -> list[bytes]:
    """Receive one framed message.  Raises ``EOFError``/``OSError`` when
    the peer died — connection errors mean *crash*, never bad data."""
    header = conn.recv_bytes()
    (n_buffers,) = struct.unpack("<I", header)
    frames = [header, conn.recv_bytes()]
    for _ in range(n_buffers):
        frames.append(conn.recv_bytes())
    return frames


def _send(conn, obj: Any) -> None:
    _send_frames(conn, _encode(obj))


def _recv(conn) -> Any:
    return _decode(_recv_frames(conn))


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _resolve_task_function(module_name: str, qualname: str):
    """Import ``module_name`` and walk to ``qualname``, unwrapping a
    ``@task`` decorator to the raw body (the module attribute is the
    wrapper; ``wrapper.spec.func`` is the function to call)."""
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    spec = getattr(obj, "spec", None)
    func = getattr(spec, "func", None)
    if callable(func):
        return func
    if callable(obj):
        return obj
    raise TypeError(f"{module_name}.{qualname} is not callable")


def _safe_send(conn, reply: tuple, fallback: tuple) -> None:
    """Send *reply*; if it does not serialize (unpicklable exception or
    result), send the pre-built *fallback* instead.  The worker must
    answer every request exactly once or the coordinator would read it
    as a crash."""
    try:
        frames = _encode(reply)
    except Exception:
        frames = _encode(fallback)
    _send_frames(conn, frames)


def _worker_main(conn, search_path: list[str]) -> None:
    """Loop of one worker process: serve ``run`` requests until told to
    exit or the pipe closes."""
    # The coordinator owns interrupt handling; a Ctrl-C against the
    # process group must not tear down workers mid-reply.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    for entry in search_path:
        if entry not in sys.path:
            sys.path.append(entry)
    pid = os.getpid()
    worker_store = WorkerStore()
    while True:
        try:
            request = _recv(conn)
        except (EOFError, OSError):
            return  # coordinator went away
        kind = request[0]
        if kind == "exit":
            return
        if kind == "ping":
            _send(conn, ("pong", pid))
            continue
        # Older coordinators send 8-tuples (no trace header); stay
        # compatible — the pooled workers outlive individual runtimes.
        _, module_name, qualname, args, kwargs, attempt, kill_self, store_cfg = request[:8]
        trace_header = request[8] if len(request) > 8 else None
        if kill_self:
            # Fault injection: die like a crashed node, no reply, no
            # cleanup — the coordinator sees the broken pipe.
            os.kill(pid, signal.SIGKILL)
        info = None
        if store_cfg is not None:
            # Data plane active: map incoming refs to read-only views
            # (cache hit = zero bytes moved) before the body runs.
            info = WorkerStore.new_info()
            try:
                args = worker_store.thaw(args, info)
                kwargs = worker_store.thaw(kwargs, info)
            except Exception as exc:  # noqa: BLE001 - segment gone = data error
                _send(conn, ("unresolvable", f"{type(exc).__name__}: {exc}", pid))
                continue
        try:
            func = _resolve_task_function(module_name, qualname)
        except Exception as exc:  # noqa: BLE001 - reported, not fatal
            _send(conn, ("unresolvable", f"{type(exc).__name__}: {exc}", pid))
            continue
        trace_ctx = None
        if trace_header:
            # The context rides the task frame: install it ambiently so
            # structured logs emitted by the body carry the trace id
            # (the span itself is recorded coordinator-side, with this
            # worker's pid from the reply).
            try:
                trace_ctx = _tracectx.TraceContext.from_header(trace_header)
            except ValueError:
                trace_ctx = None
        try:
            with _tracectx.use_context(trace_ctx):
                value = _call_with_attempt(func, args, kwargs, attempt)
        except BaseException as exc:  # noqa: BLE001 - relayed to coordinator
            fallback = (
                "raised",
                RuntimeError(f"worker exception did not pickle: {exc!r}"),
                pid,
                info,
            )
            _safe_send(conn, ("raised", exc, pid, info), fallback)
            continue
        if store_cfg is not None:
            # Freeze large results into fresh segments (adopted by the
            # coordinator) and trim the attachment cache to budget.
            try:
                value = worker_store.freeze(
                    value, store_cfg["prefix"], store_cfg["threshold"], info
                )
            except Exception:  # noqa: BLE001 - fall back to pickling the value
                pass
            info["evicted"] = worker_store.prune(store_cfg["cache_bytes"])
        _safe_send(conn, ("ok", value, pid, info), ("badresult", repr(value)[:200], pid, info))


class _WorkerDied(Exception):
    """Internal: the pipe to a worker broke (crash or kill)."""


_spawn_lock = threading.Lock()


def _start_without_main_reimport(process) -> None:
    """Start a spawn-context process *without* re-importing the
    parent's ``__main__`` module in the child.

    The default spawn bootstrap re-runs the parent's main script so
    objects pickled from ``__main__`` can be rebuilt — but this backend
    never pickles anything from ``__main__`` (tasks travel by
    ``(module, qualname)`` and ``__main__`` tasks run inline), so the
    re-import is pure cost *and* a hazard: an unguarded workflow script
    would recursively execute on every worker spawn.  The preparation
    data is patched for the duration of ``start()`` (under a lock —
    concurrent spawns see the same, idempotent patch)."""
    from multiprocessing import spawn as mp_spawn

    with _spawn_lock:
        original = mp_spawn.get_preparation_data

        def stripped(name):
            data = original(name)
            data.pop("init_main_from_path", None)
            data.pop("init_main_from_name", None)
            return data

        mp_spawn.get_preparation_data = stripped
        try:
            process.start()
        finally:
            mp_spawn.get_preparation_data = original


class _Worker:
    """Coordinator-side handle of one worker process."""

    def __init__(self, ctx):
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, list(sys.path)),
            name="repro-backend-worker",
            daemon=True,
        )
        _start_without_main_reimport(self.process)
        child_conn.close()
        self.conn = parent_conn
        self.pid: int | None = self.process.pid

    def warm_up(self, timeout: float = _SPAWN_TIMEOUT) -> None:
        _send(self.conn, ("ping",))
        if not self.conn.poll(timeout):
            self.close()
            raise TimeoutError(f"worker {self.pid} did not answer warm-up ping")
        reply = _recv(self.conn)
        self.pid = reply[1]

    def call(self, frames: list[bytes]) -> list[bytes]:
        """Send one encoded request, block for the reply frames.  Raises
        :class:`_WorkerDied` when the worker process is gone."""
        try:
            _send_frames(self.conn, frames)
            return _recv_frames(self.conn)
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise _WorkerDied(str(exc)) from exc

    def alive(self) -> bool:
        return self.process.is_alive()

    def close(self, timeout: float = 1.0) -> None:
        try:
            _send(self.conn, ("exit",))
        except (OSError, ValueError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        try:
            self.conn.close()
        except OSError:
            pass


class WorkerPool:
    """Lazily-grown pool of persistent worker processes.

    One module-level instance is shared by every
    :class:`ProcessPoolBackend` (see :func:`get_worker_pool`): workers
    outlive individual Runtimes, so a suite creating hundreds of
    short-lived runtimes pays the spawn + import cost once per worker,
    not once per runtime.  Concurrency *limits* are per-backend
    (``max_workers`` semaphore), not per-pool."""

    def __init__(self, ctx_method: str = "spawn"):
        import multiprocessing

        self._ctx = multiprocessing.get_context(ctx_method)
        self._idle: list[_Worker] = []
        self._all: list[_Worker] = []
        self._lock = threading.Lock()
        self.spawned = 0
        self.closed = False

    def acquire(self, prefer_pid: int | None = None) -> _Worker:
        """An idle live worker, or a freshly spawned + warmed-up one.

        ``prefer_pid`` is the locality hint: when that worker is idle
        it is picked over the default LIFO choice, so a task lands on
        the process already caching its input segments."""
        while True:
            with self._lock:
                if self.closed:
                    raise RuntimeError("worker pool is shut down")
                worker = None
                if prefer_pid is not None:
                    for candidate in self._idle:
                        if candidate.pid == prefer_pid:
                            self._idle.remove(candidate)
                            worker = candidate
                            break
                if worker is None and self._idle:
                    worker = self._idle.pop()
            if worker is None:
                break
            if worker.alive():
                return worker
            self._forget(worker)
            worker.close(timeout=0.1)
        worker = _Worker(self._ctx)
        try:
            worker.warm_up()
        except BaseException:
            worker.close(timeout=0.1)
            raise
        with self._lock:
            self._all.append(worker)
            self.spawned += 1
        return worker

    def release(self, worker: _Worker) -> None:
        if not worker.alive():
            self.discard(worker)
            return
        with self._lock:
            if not self.closed:
                self._idle.append(worker)
                return
        worker.close(timeout=0.1)

    def discard(self, worker: _Worker) -> None:
        """Drop a dead (or poisoned) worker for good."""
        self._forget(worker)
        worker.close(timeout=0.1)

    def _forget(self, worker: _Worker) -> None:
        with self._lock:
            if worker in self._all:
                self._all.remove(worker)
            if worker in self._idle:
                self._idle.remove(worker)

    @property
    def n_idle(self) -> int:
        with self._lock:
            return len(self._idle)

    @property
    def n_workers(self) -> int:
        with self._lock:
            return len(self._all)

    def shutdown(self) -> None:
        with self._lock:
            self.closed = True
            workers = list(self._all)
            self._all.clear()
            self._idle.clear()
        for worker in workers:
            worker.close()


_pool: WorkerPool | None = None
_pool_lock = threading.Lock()


def get_worker_pool() -> WorkerPool:
    """The shared worker pool, created on first use."""
    global _pool
    with _pool_lock:
        if _pool is None or _pool.closed:
            _pool = WorkerPool()
        return _pool


def shutdown_workers() -> None:
    """Terminate every pooled worker process (re-created on demand)."""
    with _pool_lock:
        pool = _pool
    if pool is not None:
        pool.shutdown()


atexit.register(shutdown_workers)


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class ExecutorBackend:
    """Strategy interface: run one resolved task body.

    ``run`` receives the task's :class:`~repro.runtime.model.TaskSpec`
    and fully-resolved (future-free) arguments and returns
    ``(result, pid, info)`` — the pid of the OS process that executed
    the body (recorded in the trace) and a per-call data-plane
    accounting dict (``bytes_moved``/``bytes_saved``/hit counters, or
    ``None`` when no object store is attached).  ``kill_worker=True``
    asks the backend to simulate a worker crash for this call (the
    ``kill_worker`` fault injector); every backend must surface it as
    :class:`~repro.runtime.exceptions.NodeFailureError`.

    ``handles_refs`` tells the engine whether arguments may contain
    :class:`~repro.runtime.store.ObjectRef` handles: a backend that
    does not handle them gets arguments dereferenced by the engine
    before ``run``.
    """

    name = "abstract"
    #: True when ``run`` accepts ObjectRef arguments (and may return
    #: refs inside results).
    handles_refs = False

    def run(
        self,
        spec,
        args: tuple,
        kwargs: dict,
        *,
        attempt: int = 0,
        kill_worker: bool = False,
    ) -> tuple[Any, int, dict | None]:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release backend resources (no-op by default)."""

    def stats(self) -> dict:
        return {"backend": self.name}


class ThreadBackend(ExecutorBackend):
    """In-process execution: the body runs on the calling thread.

    This is the engine's historical behaviour, unchanged — nesting,
    help-while-waiting and INOUT mutation all work because everything
    shares the coordinator's address space."""

    name = "threads"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._n_tasks = 0

    def run(self, spec, args, kwargs, *, attempt=0, kill_worker=False):
        if kill_worker:
            # No real worker process to kill: simulate the observable
            # outcome (the dispatching side sees a dead node) so fault
            # schedules behave identically across backends.
            raise NodeFailureError(os.getpid(), task_name=spec.name, simulated=True)
        with self._lock:
            self._n_tasks += 1
        return _call_with_attempt(spec.func, args, kwargs, attempt), os.getpid(), None

    def count_inline(self, n: int) -> None:
        """Account for *n* bodies the engine ran in-process without
        going through :meth:`run` (fused-unit fast path), keeping
        ``tasks_run`` exact."""
        with self._lock:
            self._n_tasks += n

    def stats(self) -> dict:
        with self._lock:
            return {"backend": self.name, "tasks_run": self._n_tasks}


class ProcessPoolBackend(ExecutorBackend):
    """Dispatch task bodies to persistent worker processes.

    ``max_workers`` bounds the calls in flight (a semaphore over the
    shared :class:`WorkerPool`); non-dispatchable calls fall back to an
    inline invocation with identical semantics (see the module
    docstring for the rules).  With an :class:`ObjectStore` attached
    (``store=``), large array arguments and results travel by
    reference through shared memory, and dispatch prefers the worker
    already holding a task's input segments (``locality=True``)."""

    name = "processes"

    def __init__(
        self,
        max_workers: int,
        store: ObjectStore | None = None,
        locality: bool = True,
    ):
        self.max_workers = max(1, int(max_workers))
        self._store = store
        self._locality = bool(locality) and store is not None
        self.handles_refs = store is not None
        #: Per-worker cache budget: same order as the coordinator store
        #: (a worker never caches more than the store can hold).
        self._worker_cache_bytes = store.capacity_bytes if store is not None else 0
        self._slots = threading.BoundedSemaphore(self.max_workers)
        self._lock = threading.Lock()
        self._counts = {
            "dispatched": 0,
            "inline": 0,
            "serialization_fallbacks": 0,
            "unresolvable": 0,
            "result_fallbacks": 0,
            "worker_crashes": 0,
            # -- data-plane counters (all zero without a store) --------
            "pipe_bytes_sent": 0,
            "pipe_bytes_recv": 0,
            "store_bytes_moved": 0,
            "store_bytes_saved": 0,
            "store_hits": 0,
            "store_misses": 0,
            "locality_hits": 0,
            "locality_misses": 0,
        }
        #: Residency map: worker pid -> {segment name: nbytes} — which
        #: worker caches which segments, fed by reply accounting and
        #: consumed by the locality preference.  Guarded by ``_lock``.
        self._residency: dict[int, dict[str, int]] = {}
        #: Cumulative seconds spent encoding requests and decoding
        #: replies on the coordinator side — the serialization share of
        #: dispatch overhead (``stats()["serialization_seconds"]``).
        self._serialization_seconds = 0.0
        #: spec ids proven non-dispatchable (writes, locals, resolution
        #: failure) — skip the round trip next time.
        self._inline_only: set[int] = set()

    # -- dispatch rules -------------------------------------------------
    def _dispatchable(self, spec) -> bool:
        if id(spec) in self._inline_only:
            return False
        func = spec.func
        module = getattr(func, "__module__", None)
        qualname = getattr(func, "__qualname__", "")
        ok = (
            not spec.has_writes  # INOUT mutations cannot cross processes
            # Workers never import the coordinator's main script (see
            # _start_without_main_reimport), so __main__ tasks run here.
            and module not in (None, "__main__", "__mp_main__")
            and "<locals>" not in qualname
        )
        if not ok:
            with self._lock:
                self._inline_only.add(id(spec))
        return ok

    def _count(self, key: str, n: int = 1) -> None:
        with self._lock:
            self._counts[key] += n

    def _run_inline(self, spec, args, kwargs, attempt, kill_worker):
        if kill_worker:
            raise NodeFailureError(os.getpid(), task_name=spec.name, simulated=True)
        if self._store is not None:
            # Fallback args may carry refs (future results live in the
            # store); the inline body needs the concrete arrays.
            args = self._store.deref(args)
            kwargs = self._store.deref(kwargs)
        self._count("inline")
        return _call_with_attempt(spec.func, args, kwargs, attempt), os.getpid(), None

    # -- data plane -----------------------------------------------------
    def _freeze_args(self, obj: Any, leases: list, segments: dict[str, int]) -> Any:
        """Replace large arrays/known refs in *obj* with transport-
        stamped refs.  Leases pin each object resident until the call
        completes; *segments* collects the input segment sizes for the
        locality preference."""
        store = self._store
        assert store is not None

        def freeze(value: Any) -> Any:
            if isinstance(value, ObjectRef):
                segment = store.lease(value)
                leases.append(value)
                segments[segment] = value.nbytes
                return dataclasses.replace(value, segment=segment)
            if (
                isinstance(value, np.ndarray)
                and value.dtype != object
                and value.nbytes >= store.threshold_bytes
            ):
                ref = store.put(value)
                segment = store.lease(ref)
                leases.append(ref)
                segments[segment] = ref.nbytes
                return dataclasses.replace(ref, segment=segment)
            if isinstance(value, list):
                return [freeze(v) for v in value]
            if isinstance(value, tuple):
                return tuple(freeze(v) for v in value)
            if isinstance(value, dict):
                return {k: freeze(v) for k, v in value.items()}
            return value

        return freeze(obj)

    def _preferred_pid(self, segments: dict[str, int]) -> int | None:
        """The worker caching the largest share of *segments*' bytes."""
        if not self._locality or not segments:
            return None
        best_pid, best_bytes = None, 0
        with self._lock:
            for pid, cached in self._residency.items():
                overlap = sum(nbytes for seg, nbytes in segments.items() if seg in cached)
                if overlap > best_bytes:
                    best_pid, best_bytes = pid, overlap
        return best_pid

    def _absorb_info(self, pid: int, info: dict | None) -> dict | None:
        """Fold one reply's data-plane accounting into the counters,
        the residency map and the store (adopting worker-created result
        segments).  Returns the per-call summary for the trace."""
        if info is None:
            return None
        store = self._store
        created_bytes = 0
        if store is not None:
            for oid, segment, shape, dtype, nbytes in info.get("created", ()):
                try:
                    store.adopt(oid, segment, shape, dtype, nbytes)
                    created_bytes += nbytes
                except StoreError:
                    pass  # store shut down mid-call: segment swept later
        moved = info.get("moved_bytes", 0)
        hit_bytes = info.get("hit_bytes", 0)
        # "Saved" counts pickle-pipe bytes avoided: every by-ref input
        # byte (whether freshly mapped or a cache hit) plus every
        # worker-frozen result byte.  "Moved" is the subset that had to
        # be mapped into the worker fresh — the locality miss cost.
        saved = moved + hit_bytes + created_bytes
        with self._lock:
            self._counts["store_bytes_moved"] += moved
            self._counts["store_bytes_saved"] += saved
            self._counts["store_hits"] += len(info.get("hits", ()))
            self._counts["store_misses"] += len(info.get("attached", ()))
            cached = self._residency.setdefault(pid, {})
            for _oid, segment, nbytes in info.get("attached", ()):
                cached[segment] = nbytes
            for _oid, segment, _shape, _dtype, nbytes in info.get("created", ()):
                cached[segment] = nbytes
            for segment in info.get("evicted", ()):
                cached.pop(segment, None)
        return {
            "bytes_moved": moved,
            "bytes_saved": saved,
            "store_hits": len(info.get("hits", ())),
            "store_misses": len(info.get("attached", ())),
        }

    # -- execution ------------------------------------------------------
    def run(self, spec, args, kwargs, *, attempt=0, kill_worker=False):
        if not self._dispatchable(spec):
            return self._run_inline(spec, args, kwargs, attempt, kill_worker)
        store = self._store
        leases: list[ObjectRef] = []
        segments: dict[str, int] = {}
        store_cfg = None
        try:
            if store is not None:
                store_cfg = {
                    "prefix": store.prefix,
                    "threshold": store.threshold_bytes,
                    "cache_bytes": self._worker_cache_bytes,
                }
                try:
                    args = self._freeze_args(args, leases, segments)
                    kwargs = self._freeze_args(kwargs, leases, segments)
                except StoreError:
                    # Unstorable argument (or store shut down): ship the
                    # call the classic way, buffers over the pipe.
                    store_cfg = None
            # The engine installs the executing attempt's trace context
            # ambiently before calling run(); ship it across the pipe
            # as a traceparent header so worker-side logs correlate.
            ambient = _tracectx.current_context()
            request = (
                "run",
                spec.func.__module__,
                spec.func.__qualname__,
                args,
                kwargs,
                attempt,
                kill_worker,
                store_cfg,
                ambient.to_header() if ambient is not None else None,
            )
            t0 = time.perf_counter()
            try:
                frames = _encode(request)
            except Exception:  # unpicklable argument: run where the data is
                self._count("serialization_fallbacks")
                return self._run_inline(spec, args, kwargs, attempt, kill_worker)
            finally:
                with self._lock:
                    self._serialization_seconds += time.perf_counter() - t0

            preferred = self._preferred_pid(segments)
            with self._slots:
                pool = get_worker_pool()
                worker = pool.acquire(prefer_pid=preferred)
                pid = worker.pid or -1
                if preferred is not None:
                    self._count("locality_hits" if pid == preferred else "locality_misses")
                self._count("pipe_bytes_sent", sum(len(f) for f in frames))
                try:
                    reply_frames = worker.call(frames)
                except _WorkerDied as exc:
                    pool.discard(worker)
                    self._count("worker_crashes")
                    with self._lock:
                        self._residency.pop(pid, None)
                    raise NodeFailureError(
                        pid, task_name=spec.name, simulated=kill_worker
                    ) from exc
                pool.release(worker)
                self._count("pipe_bytes_recv", sum(len(f) for f in reply_frames))
        finally:
            if store is not None:
                for ref in leases:
                    store.unlease(ref)

        t0 = time.perf_counter()
        try:
            reply = _decode(reply_frames)
        except Exception as exc:  # noqa: BLE001 - a data error, not a crash
            raise RuntimeError(
                f"undecodable reply from worker {pid} for task "
                f"{spec.name!r}: {exc!r}"
            ) from exc
        finally:
            with self._lock:
                self._serialization_seconds += time.perf_counter() - t0
        kind = reply[0]
        info = self._absorb_info(pid, reply[3] if len(reply) > 3 else None)
        if kind == "ok":
            self._count("dispatched")
            return reply[1], reply[2], info
        if kind == "raised":
            self._count("dispatched")
            error = reply[1]
            try:
                error._repro_worker_pid = reply[2]
                # the failed attempt's data-plane accounting: input
                # segments were mapped before the body raised.
                error._repro_dinfo = info
            except Exception:  # noqa: BLE001 - slots/immutable exceptions
                pass
            raise error
        if kind == "unresolvable":
            # Worker could not import the function (e.g. __main__ task):
            # remember and run locally from now on.
            _logger.debug(
                "task %r not resolvable in worker (%s); running inline",
                spec.name,
                reply[1],
            )
            with self._lock:
                self._inline_only.add(id(spec))
            self._count("unresolvable")
            return self._run_inline(spec, args, kwargs, attempt, False)
        if kind == "badresult":
            # Result did not pickle; recompute locally (pure tasks only
            # are dispatched, so re-running is safe).
            with self._lock:
                self._inline_only.add(id(spec))
            self._count("result_fallbacks")
            return self._run_inline(spec, args, kwargs, attempt, False)
        raise RuntimeError(f"unknown worker reply {kind!r}")

    def stats(self) -> dict:
        pool = _pool
        with self._lock:
            counts = dict(self._counts)
            serialization_seconds = self._serialization_seconds
        hits, misses = counts["store_hits"], counts["store_misses"]
        out = {
            "backend": self.name,
            "max_workers": self.max_workers,
            "pool_workers": pool.n_workers if pool is not None else 0,
            "serialization_seconds": serialization_seconds,
            "store_enabled": self._store is not None,
            "store_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            **counts,
        }
        if self._store is not None:
            for key, value in self._store.stats().items():
                out[f"store_{key}"] = value
        return out


def create_backend(
    name: str,
    max_workers: int,
    store: ObjectStore | None = None,
    locality: bool = True,
) -> ExecutorBackend:
    """Instantiate the backend selected by ``RuntimeConfig.backend``.

    *store* attaches the shared-memory data plane (process backend
    only; the thread backend shares the coordinator's address space and
    needs no transport)."""
    if name == "threads":
        return ThreadBackend()
    if name == "processes":
        return ProcessPoolBackend(max_workers, store=store, locality=locality)
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")
