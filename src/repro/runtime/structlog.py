"""Structured logging with trace correlation.

A thin layer over the stdlib ``logging`` module (so ``caplog``,
handlers and level filtering keep working) that attaches **correlation
fields** to every record: the ambient
:class:`~repro.runtime.tracectx.TraceContext` (trace_id / span_id),
the emitting pid, and whatever the call site knows (task_id, tenant,
attempt, worker).  Two render modes:

* default — classic single-line text with the fields appended as
  ``key=value`` pairs, readable in terminals and test output;
* JSON lines — one JSON object per record, enabled by
  ``REPRO_LOG_JSON=1`` (or :func:`configure`), for machine ingestion
  (``repro logs`` pretty-prints these back).

Usage::

    from repro.runtime.structlog import get_logger
    log = get_logger("repro.service.queue")
    log.info("task claimed", task_id=7, tenant="acme", attempt=1)

Fields land in ``record.repro_fields`` so downstream handlers (or the
flight recorder) can read them structurally; the message string is
rendered once, lazily, by the formatter.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import threading
import time
from typing import Any, Optional

from repro.runtime import tracectx

__all__ = [
    "StructLogger",
    "get_logger",
    "configure",
    "json_mode_enabled",
    "StructFormatter",
    "format_event",
]

_FIELDS_ATTR = "repro_fields"
_lock = threading.Lock()
_configured = False


def json_mode_enabled(environ: Optional[dict] = None) -> bool:
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_LOG_JSON", "").strip().lower()
    return raw in ("1", "true", "yes", "on")


def format_event(
    level: str, logger: str, message: str, fields: dict[str, Any], *, json_mode: bool
) -> str:
    """Render one structured event — the single code path both the
    formatter and tests go through."""
    if json_mode:
        payload = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": logger,
            "msg": message,
        }
        payload.update(fields)
        try:
            return json.dumps(payload, default=repr)
        except (TypeError, ValueError):
            return json.dumps(
                {k: repr(v) for k, v in payload.items()}
            )
    if not fields:
        return message
    suffix = " ".join(f"{k}={_scalar(v)}" for k, v in fields.items())
    return f"{message} {suffix}"


def _scalar(value: Any) -> str:
    text = str(value)
    if " " in text or '"' in text:
        return json.dumps(text)
    return text


class StructFormatter(logging.Formatter):
    """Formatter rendering ``repro_fields`` — text or JSON lines."""

    def __init__(self, *, json_mode: bool = False):
        super().__init__()
        self.json_mode = json_mode

    def format(self, record: logging.LogRecord) -> str:
        fields = getattr(record, _FIELDS_ATTR, None) or {}
        message = record.getMessage()
        if record.exc_info and not record.exc_text:
            record.exc_text = self.formatException(record.exc_info)
        rendered = format_event(
            record.levelname,
            record.name,
            message,
            fields,
            json_mode=self.json_mode,
        )
        if record.exc_text and not self.json_mode:
            rendered = f"{rendered}\n{record.exc_text}"
        return rendered


class StructLogger:
    """A named logger whose methods take correlation fields as kwargs.

    Wraps (never subclasses) a stdlib logger: level gating, handler
    fan-out and ``caplog`` capture all behave exactly as stdlib
    logging.  The ambient trace context and the pid are attached
    automatically; explicit kwargs win over ambient values.
    """

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger):
        self._logger = logger

    @property
    def name(self) -> str:
        return self._logger.name

    @property
    def stdlib(self) -> logging.Logger:
        return self._logger

    def isEnabledFor(self, level: int) -> bool:  # noqa: N802 - stdlib shape
        return self._logger.isEnabledFor(level)

    def _emit(
        self, level: int, message: str, exc_info: Any = None, **fields: Any
    ) -> None:
        if not self._logger.isEnabledFor(level):
            return
        ctx = tracectx.current_context()
        merged: dict[str, Any] = {"pid": os.getpid()}
        if ctx is not None:
            merged["trace_id"] = ctx.trace_id
            merged["span_id"] = ctx.span_id
        merged.update({k: v for k, v in fields.items() if v is not None})
        self._logger.log(
            level, message, exc_info=exc_info, extra={_FIELDS_ATTR: merged}
        )

    def debug(self, message: str, **fields: Any) -> None:
        self._emit(logging.DEBUG, message, **fields)

    def info(self, message: str, **fields: Any) -> None:
        self._emit(logging.INFO, message, **fields)

    def warning(self, message: str, **fields: Any) -> None:
        self._emit(logging.WARNING, message, **fields)

    def error(self, message: str, **fields: Any) -> None:
        self._emit(logging.ERROR, message, **fields)

    def exception(self, message: str, **fields: Any) -> None:
        self._emit(logging.ERROR, message, exc_info=sys.exc_info(), **fields)


def get_logger(name: str) -> StructLogger:
    """The :class:`StructLogger` for *name* (stdlib-backed)."""
    return StructLogger(logging.getLogger(name))


def configure(
    *,
    json_mode: Optional[bool] = None,
    level: int = logging.INFO,
    stream: Any = None,
    force: bool = False,
) -> logging.Handler:
    """Attach one structured handler to the ``repro`` logger tree.

    Idempotent per process unless *force*.  *json_mode* defaults to
    the ``REPRO_LOG_JSON`` environment variable.  Returns the handler
    (tests point *stream* at a ``StringIO`` and read it back).
    """
    global _configured
    root = logging.getLogger("repro")
    with _lock:
        if json_mode is None:
            json_mode = json_mode_enabled()
        if force:
            for handler in [
                h for h in root.handlers if getattr(h, "_repro_struct", False)
            ]:
                root.removeHandler(handler)
            _configured = False
        if _configured:
            for handler in root.handlers:
                if getattr(handler, "_repro_struct", False):
                    return handler
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(StructFormatter(json_mode=json_mode))
        handler._repro_struct = True  # type: ignore[attr-defined]
        root.addHandler(handler)
        if root.level == logging.NOTSET or root.level > level:
            root.setLevel(level)
        _configured = True
        return handler
