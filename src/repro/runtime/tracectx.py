"""Distributed trace contexts (W3C-traceparent style).

A :class:`TraceContext` is the ``(trace_id, span_id, parent_id)``
triple that follows one logical request across every causal boundary
the system has grown: thread → thread inside one
:class:`~repro.runtime.engine.Runtime`, coordinator → worker process
over the pickle pipe, client → durable-queue row → lease → embedded
runtime in :mod:`repro.service`, and stream source → stage → micro-
batched ``submit_many`` in :mod:`repro.streaming`.

The design constraints, in order:

1. **Minting must be almost free.**  ``Runtime.submit`` runs in ~40 µs;
   the trace layer is held to a ≤ 10 % overhead bound by
   ``benchmarks/test_observability_overhead.py``.  Span ids therefore
   come from one random 64-bit base plus a process-wide
   ``itertools.count()`` — ``next()`` on a count is a single GIL-atomic
   C call, orders of magnitude cheaper than ``os.urandom`` per span,
   while staying unique within a process and colliding across
   processes only with ~2⁻⁶⁴ probability (the base is random per
   process).
2. **Propagation is ambient.**  Task bodies and service workers don't
   pass contexts by hand; the current context lives in a
   ``threading.local`` and everything that submits work reads it.
   :func:`use_context` installs one for a scope, the engine installs
   the executing task's context around its body, so nested submissions
   become children automatically.
3. **The wire format is text.**  ``to_header()`` emits the W3C
   ``traceparent`` shape (``00-{trace}-{span}-01``) so a context can
   ride a sqlite column, a pickle frame, an environment variable or a
   JSON log line unchanged, and ``from_header()`` round-trips it.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import struct
import threading
from typing import Iterator, Optional

__all__ = [
    "TraceContext",
    "new_trace",
    "child_of",
    "current_context",
    "set_context",
    "use_context",
]

_HEADER_VERSION = "00"
_FLAGS_SAMPLED = "01"

# One random base per process; ids are base + counter.  ``next()`` on
# itertools.count is GIL-atomic, so minting needs no lock, and neither
# mint pays a syscall (``os.urandom`` runs once at import).
_span_base = struct.unpack("<Q", os.urandom(8))[0]
_span_counter = itertools.count(1)
_trace_base = int.from_bytes(os.urandom(16), "little")
_trace_counter = itertools.count(1)


def _mint_span_id() -> str:
    return format((_span_base + next(_span_counter)) & 0xFFFFFFFFFFFFFFFF, "016x")


def _mint_trace_id() -> str:
    mask = (1 << 128) - 1
    return format((_trace_base + next(_trace_counter)) & mask, "032x")


@dataclasses.dataclass(slots=True)
class TraceContext:
    """One node of a distributed trace: this span and its parentage.

    ``trace_id`` is 32 lowercase hex chars (128 bits), shared by every
    span of one logical request.  ``span_id`` is 16 hex chars (64
    bits), unique to this span.  ``parent_id`` is the span id of the
    causal parent, or ``None`` for a root span.

    Treat instances as immutable — they are shared across threads and
    stamped onto records.  (Not ``frozen=True``: frozen dataclasses
    construct through ``object.__setattr__``, ~2x slower, and a context
    is minted on every traced ``submit``, which is held to a ≤ 10 %
    overhead bound.)
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def child(self) -> "TraceContext":
        """A fresh child span in the same trace."""
        return TraceContext(
            trace_id=self.trace_id, span_id=_mint_span_id(), parent_id=self.span_id
        )

    def to_header(self) -> str:
        """W3C-``traceparent``-shaped text form.

        The parent id doesn't travel in a traceparent header (the
        receiver's parent *is* the sender's span), so ``from_header``
        restores it as ``None`` — mint a :meth:`child` at the receiving
        side to continue the trace.
        """
        return f"{_HEADER_VERSION}-{self.trace_id}-{self.span_id}-{_FLAGS_SAMPLED}"

    @classmethod
    def from_header(cls, header: str) -> "TraceContext":
        parts = header.strip().split("-")
        if len(parts) != 4:
            raise ValueError(f"malformed traceparent header: {header!r}")
        _version, trace_id, span_id, _flags = parts
        if len(trace_id) != 32 or len(span_id) != 16:
            raise ValueError(f"malformed traceparent header: {header!r}")
        int(trace_id, 16)  # raises ValueError on non-hex
        int(span_id, 16)
        return cls(trace_id=trace_id, span_id=span_id)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }


def new_trace() -> TraceContext:
    """Mint a root context: fresh trace id, fresh span, no parent."""
    return TraceContext(trace_id=_mint_trace_id(), span_id=_mint_span_id())


def child_of(parent: Optional[TraceContext]) -> TraceContext:
    """A child of *parent*, or a new root when *parent* is None."""
    if parent is None:
        return new_trace()
    return parent.child()


_tls = threading.local()


def current_context() -> Optional[TraceContext]:
    """The ambient context of the calling thread (None outside any)."""
    return getattr(_tls, "ctx", None)


def set_context(ctx: Optional[TraceContext]) -> Optional[TraceContext]:
    """Install *ctx* as the calling thread's ambient context and
    return the previous one (restore it when the scope ends)."""
    prev = getattr(_tls, "ctx", None)
    _tls.ctx = ctx
    return prev


class use_context:
    """``with use_context(ctx): ...`` — ambient context for a scope.

    A tiny hand-rolled context manager (not ``@contextmanager``) so
    entering/exiting costs two attribute writes, usable on hot paths.
    """

    __slots__ = ("_ctx", "_prev")

    def __init__(self, ctx: Optional[TraceContext]):
        self._ctx = ctx

    def __enter__(self) -> Optional[TraceContext]:
        self._prev = set_context(self._ctx)
        return self._ctx

    def __exit__(self, exc_type, exc, tb) -> None:
        set_context(self._prev)


def iter_lineage(ctx: TraceContext) -> Iterator[str]:
    """The span ids from *ctx* upward that are knowable locally (this
    span, then its parent id if recorded)."""
    yield ctx.span_id
    if ctx.parent_id is not None:
        yield ctx.parent_id
