"""PyCOMPSs-compatible API facade.

Paper snippets written against the PyCOMPSs binding run verbatim when
they import the synchronisation primitives from here::

    from repro.runtime import task
    from repro.runtime.compat import compss_wait_on, compss_barrier

    @task(returns=1)
    def increment(v):
        return v + 1

    value = compss_wait_on(increment(1))
    compss_barrier()

Only the programming-model surface is mirrored — ``compss_wait_on``,
``compss_barrier``, ``compss_open`` and the delete helpers.  Decorator
compatibility comes from :func:`repro.runtime.task` itself, which
accepts the COMPSs-style ``returns=`` / direction keywords.

``compss_wait_on`` and ``compss_delete_object`` are also the
data-plane funnels of the old implicit-value API: values living in the
shared-memory object store (:mod:`repro.runtime.store`) come back as
arrays from ``compss_wait_on``, and ``compss_delete_object`` releases
their store references.  The transitional ``put_object``/``get_object``
helpers from the first store prototype are kept as deprecated shims
over ``Runtime.put``/``Runtime.get``.
"""

from __future__ import annotations

import os
import warnings
from typing import Any, IO

from repro.runtime import engine
from repro.runtime.future import resolve_futures

__all__ = [
    "compss_wait_on",
    "compss_barrier",
    "compss_open",
    "compss_delete_object",
    "compss_delete_file",
    "put_object",
    "get_object",
]


def compss_wait_on(*objs: Any) -> Any:
    """Synchronise one or more (possibly nested) future-bearing objects
    into concrete values, PyCOMPSs-style.

    With a single argument the value is returned directly; with several
    a list is returned, matching the PyCOMPSs binding.
    """
    rt = engine.active_runtime()

    def sync(obj: Any) -> Any:
        if rt is None:
            return resolve_futures(obj)
        return rt.wait_on(obj)

    if len(objs) == 1:
        return sync(objs[0])
    return [sync(obj) for obj in objs]


def compss_barrier(no_more_tasks: bool = False) -> None:
    """Block until every task submitted from the current scope is done.

    ``no_more_tasks`` is accepted for signature compatibility; this
    runtime frees task structures eagerly either way.
    """
    del no_more_tasks
    rt = engine.active_runtime()
    if rt is not None:
        rt.barrier()


def compss_open(file_name: Any, mode: str = "r") -> IO:
    """Synchronise a (possibly future) file path and open it.

    Tasks that produce files return their path; ``compss_open`` waits
    for the producing task and hands back a regular file object, like
    the PyCOMPSs runtime does after staging the file in.
    """
    target = compss_wait_on(file_name)
    if not isinstance(target, (str, os.PathLike)):
        raise TypeError(
            f"compss_open expects a file path (or a future of one), got {type(target).__name__}"
        )
    return open(target, mode)


def compss_delete_object(*objs: Any) -> bool:
    """Drop runtime bookkeeping for *objs*.

    Dependency versions are tracked by object identity and garbage
    collected with the objects themselves; what *is* released here are
    shared-memory store references (:class:`~repro.runtime.store.ObjectRef`
    handles, or futures resolved to them) — the last reference frees
    the segment deterministically.  Returns True like the PyCOMPSs
    binding.
    """
    rt = engine.active_runtime()
    if rt is not None:
        for obj in objs:
            rt.release(obj)
    return True


def put_object(value: Any) -> Any:
    """Deprecated shim of the first object-store prototype: use
    ``Runtime.put`` (or keep passing arrays directly — the process
    backend stores large ones automatically).  Outside a runtime the
    value passes through unchanged."""
    warnings.warn(
        "put_object() is deprecated; use Runtime.put(value) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    rt = engine.active_runtime()
    if rt is None:
        return value
    return rt.put(value)


def get_object(obj: Any) -> Any:
    """Deprecated shim of the first object-store prototype: use
    ``Runtime.get`` / ``compss_wait_on``."""
    warnings.warn(
        "get_object() is deprecated; use Runtime.get(obj) or "
        "compss_wait_on(obj) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    rt = engine.active_runtime()
    if rt is None:
        return resolve_futures(obj)
    return rt.get(obj)


def compss_delete_file(*paths: Any) -> bool:
    """Delete files produced by tasks (after synchronising their
    producing tasks)."""
    ok = True
    for path in paths:
        target = compss_wait_on(path)
        try:
            os.remove(target)
        except OSError:
            ok = False
    return ok
