"""Task model: specifications (the decorated function) and instances
(one node of the dependency graph per invocation)."""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Callable

from repro.runtime.directions import Direction
from repro.runtime.future import Future

#: Task lifecycle states.
PENDING = "pending"
READY = "ready"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"


@dataclasses.dataclass(frozen=True)
class Constraints:
    """Resource constraints of a task, mirroring COMPSs ``@constraint``.

    ``computing_units`` is the number of cores the task occupies on its
    node while running; ``gpus`` the number of GPU devices.  These are
    ignored by the local thread executor (which models one core per
    worker) but drive the cluster simulator's placement decisions.
    """

    computing_units: int = 1
    gpus: int = 0

    def __post_init__(self) -> None:
        if self.computing_units < 1:
            raise ValueError("computing_units must be >= 1")
        if self.gpus < 0:
            raise ValueError("gpus must be >= 0")


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """Immutable description of a task type (one per decorated function)."""

    func: Callable[..., Any]
    name: str
    returns: int
    directions: dict[str, Direction]
    constraints: Constraints
    #: Parameter names of the function, positionally ordered (for
    #: mapping positional args onto declared directions).
    param_names: tuple[str, ...]

    @property
    def has_writes(self) -> bool:
        return any(d is not Direction.IN for d in self.directions.values())


class TaskInstance:
    """One submitted invocation of a task — a node of the DAG."""

    __slots__ = (
        "task_id",
        "spec",
        "args",
        "kwargs",
        "deps",
        "futures",
        "state",
        "parent_id",
        "label",
        "error",
        "_remaining",
        "_lock",
        "_owner_scope",
    )

    def __init__(
        self,
        task_id: int,
        spec: TaskSpec,
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
        deps: frozenset[int],
        futures: tuple[Future, ...],
        parent_id: int | None,
        label: str | None,
    ):
        self.task_id = task_id
        self.spec = spec
        self.args = args
        self.kwargs = kwargs
        self.deps = deps
        self.futures = futures
        self.state = PENDING
        self.parent_id = parent_id
        self.label = label
        self.error: BaseException | None = None
        self._remaining = len(deps)
        self._lock = threading.Lock()

    def dep_completed(self) -> bool:
        """Mark one dependency as satisfied; True if the task became ready."""
        with self._lock:
            self._remaining -= 1
            return self._remaining == 0

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TaskInstance {self.name}#{self.task_id} {self.state}>"
