"""Task model: specifications (the decorated function) and instances
(one node of the dependency graph per invocation)."""

from __future__ import annotations

import dataclasses
import functools
import threading
from typing import Any, Callable

from repro.runtime.directions import Direction
from repro.runtime.failures import NO_OPTIONS, TaskOptions
from repro.runtime.future import Future

#: Task lifecycle states.
PENDING = "pending"
READY = "ready"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
#: Failed, but the failure was swallowed by ``on_failure="IGNORE"`` —
#: successors run against the declared default value.
IGNORED = "ignored"
CANCELLED = "cancelled"
#: Completed without executing: the result was replayed from the
#: checkpoint store (trace/graph status of resumed tasks).
RESTORED = "restored"

#: States from which an instance never moves again.
TERMINAL_STATES = frozenset({DONE, FAILED, IGNORED, CANCELLED})

#: The task lifecycle state machine.  ``PENDING -> RUNNING`` is the
#: sequential executor (submission executes inline, skipping READY);
#: ``PENDING -> DONE`` is a checkpoint restore (the body never runs).
#: The stress harness validates transitions against this table when
#: ``RuntimeConfig(debug_invariants=True)``.
VALID_TRANSITIONS: dict[str, frozenset[str]] = {
    PENDING: frozenset({READY, RUNNING, DONE, CANCELLED}),
    READY: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({DONE, FAILED, IGNORED, CANCELLED}),
    DONE: frozenset(),
    FAILED: frozenset(),
    IGNORED: frozenset(),
    CANCELLED: frozenset(),
}


@dataclasses.dataclass(frozen=True)
class Constraints:
    """Resource constraints of a task, mirroring COMPSs ``@constraint``.

    ``computing_units`` is the number of cores the task occupies on its
    node while running; ``gpus`` the number of GPU devices.  These are
    ignored by the local thread executor (which models one core per
    worker) but drive the cluster simulator's placement decisions.
    """

    computing_units: int = 1
    gpus: int = 0

    def __post_init__(self) -> None:
        if self.computing_units < 1:
            raise ValueError("computing_units must be >= 1")
        if self.gpus < 0:
            raise ValueError("gpus must be >= 0")


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """Immutable description of a task type (one per decorated function)."""

    func: Callable[..., Any]
    name: str
    returns: int
    directions: dict[str, Direction]
    constraints: Constraints
    #: Parameter names of the function, positionally ordered (for
    #: mapping positional args onto declared directions).
    param_names: tuple[str, ...]
    #: Declared parameter defaults, so direction-annotated parameters
    #: left at their default still take part in dependency detection
    #: (an INOUT parameter at its default records a write like any
    #: explicitly-passed argument).
    param_defaults: dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Decorator-level option defaults (``on_failure``, ``max_retries``,
    #: ``time_out``, ...); call sites override them via ``.opts(...)``.
    options: TaskOptions = NO_OPTIONS

    @functools.cached_property
    def has_writes(self) -> bool:
        # Per-spec constant, but on the submit hot path (dependency
        # scan + fusion eligibility check it twice per call) — cache
        # the dict walk.  ``cached_property`` writes straight into the
        # instance ``__dict__``, which a frozen dataclass still has.
        return any(d is not Direction.IN for d in self.directions.values())


@dataclasses.dataclass(frozen=True, slots=True)
class TaskCall:
    """One deferred task invocation, for batch submission.

    Built with ``my_task.defer(*args, **kwargs)`` (or
    ``my_task.opts(...).defer(...)`` to carry call-site option
    overrides) and handed to ``Runtime.submit_many``, which submits a
    whole list under one intake pass.  Nothing runs at construction —
    a ``TaskCall`` is just the frozen call site."""

    spec: TaskSpec
    args: tuple = ()
    kwargs: dict = dataclasses.field(default_factory=dict)
    options: TaskOptions | None = None
    label: str | None = None


class TaskInstance:
    """One submitted invocation of a task — a node of the DAG."""

    __slots__ = (
        "task_id",
        "spec",
        "args",
        "kwargs",
        "deps",
        "futures",
        "state",
        "parent_id",
        "label",
        "error",
        "options",
        "attempt",
        "retry_of",
        "root_id",
        "signature",
        "worker_pid",
        "t_submit",
        "t_ready",
        "t_dispatch",
        "t_body_start",
        "t_end",
        "worker_name",
        "bytes_moved",
        "bytes_saved",
        "trace_ctx",
        "_remaining",
        "_lock",
        "_owner_scope",
        "_abandoned",
        "_finalized",
        "_fused_unit",
    )

    def __init__(
        self,
        task_id: int,
        spec: TaskSpec,
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
        deps: frozenset[int],
        futures: tuple[Future, ...],
        parent_id: int | None,
        label: str | None,
    ):
        self.task_id = task_id
        self.spec = spec
        self.args = args
        self.kwargs = kwargs
        self.deps = deps
        self.futures = futures
        self.state = PENDING
        self.parent_id = parent_id
        self.label = label
        self.error: BaseException | None = None
        #: Resolved effective options, set by the runtime at submission.
        self.options = None
        #: 0-based attempt number; > 0 for runtime resubmissions.
        self.attempt = 0
        #: task_id of the previous attempt (None for first attempts).
        self.retry_of: int | None = None
        #: task_id of the first attempt (== task_id when attempt == 0).
        self.root_id = task_id
        #: Deterministic checkpoint signature (None = not checkpointable).
        self.signature: str | None = None
        #: pid of the OS process that ran (or crashed running) this
        #: attempt's body — the coordinator pid for the thread backend,
        #: a pool worker's pid when the process backend dispatched it.
        self.worker_pid: int | None = None
        #: Lifecycle span timestamps (monotonic, relative to the
        #: runtime's epoch), stamped by the engine as the attempt moves
        #: through ``submitted -> ready -> dispatched -> running ->
        #: terminal``.  None until the corresponding transition.
        self.t_submit: float | None = None
        self.t_ready: float | None = None
        self.t_dispatch: float | None = None
        self.t_body_start: float | None = None
        self.t_end: float | None = None
        #: Name of the worker thread that claimed this attempt.
        self.worker_name: str | None = None
        #: Data-plane accounting of this attempt (stamped by the engine
        #: from the backend's per-call info): bytes freshly mapped into
        #: the executing worker, and pickle-pipe bytes avoided by
        #: passing shared-memory references instead of buffers.
        self.bytes_moved = 0
        self.bytes_saved = 0
        #: Distributed-trace context of this attempt
        #: (:class:`~repro.runtime.tracectx.TraceContext`), minted at
        #: submission when trace collection is on; None otherwise.
        self.trace_ctx = None
        self._remaining = len(deps)
        self._lock = threading.Lock()
        #: True once a timed-out body thread was abandoned.
        self._abandoned = False
        #: Guards completion bookkeeping against the run/cancel race.
        self._finalized = False
        #: The :class:`~repro.runtime.engine.FusedTask` this instance
        #: is a member of (None = not fused).  Set while the instance
        #: is buffered/scheduled inside a fused unit; cleared when the
        #: unit is demoted (retry, singleton arm) so the normal
        #: enqueue-on-dep-completion path resumes.
        self._fused_unit = None

    def dep_completed(self) -> bool:
        """Mark one dependency as satisfied; True if the task became ready."""
        with self._lock:
            self._remaining -= 1
            return self._remaining == 0

    def claim_run(self) -> str | None:
        """Atomically claim the right to execute this instance.

        Returns the previous state on success (the claimer must run the
        body), or ``None`` when the instance was already cancelled or
        finalized.  Mutually exclusive with :meth:`try_cancel` under
        ``_lock``, closing the race between a worker picking a task up
        and an abort cancelling it."""
        with self._lock:
            if self._finalized or self.state == CANCELLED:
                return None
            prev = self.state
            self.state = RUNNING
            return prev

    def try_cancel(self) -> str | None:
        """Atomically claim cancellation of a not-yet-running instance.

        Returns the previous state on success (the claimer must run the
        cancellation bookkeeping exactly once), or ``None`` when the
        instance already started running or was already finalized."""
        with self._lock:
            if self._finalized or self.state == RUNNING:
                return None
            prev = self.state
            self.state = CANCELLED
            self._finalized = True
            return prev

    def try_finalize(self) -> bool:
        """Claim the right to run this instance's completion
        bookkeeping (scope/unfinished counters, child propagation).
        Exactly one caller wins; the loser must do nothing."""
        with self._lock:
            if self._finalized:
                return False
            self._finalized = True
            return True

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TaskInstance {self.name}#{self.task_id} {self.state}>"
