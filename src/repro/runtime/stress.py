"""Deterministic concurrency stress harness for the event-driven
scheduler.

Each *seed* expands into a randomized-but-reproducible schedule of
submissions, barging waiters, nested scopes, INOUT write chains,
retries with live backoff timers, and — depending on the seed's mode —
an abort (``on_failure="FAIL"``), a workflow kill
(:class:`WorkflowKilledError` *or* a raw ``KeyboardInterrupt`` escaping
a task body), or a shutdown race.  A run fails on any of:

* **hangs** — a watchdog thread bounds every seed's wall clock; on
  expiry the stacks of all live threads are dumped (the classic
  signature of a lost wakeup is every thread parked in
  ``Condition.wait``);
* **lost wakeups / wrong values** — every future's value is checked
  against a reference interpretation of the same schedule;
* **negative scope counts / illegal state transitions** — the runtime
  runs with ``debug_invariants=True`` and any recorded violation fails
  the seed;
* **structural leaks** — after a clean drain the runtime must be
  quiesced: empty ready queue, zero unfinished, every task terminal
  (``Runtime.check_invariants(quiesced=True)``).

``--store`` mixes shared-memory data-plane traffic into every seed:
ndarray tasks whose blocks travel through the object store (some via
``Runtime.put``, some stored automatically by the process backend),
verified bit-exactly against a reference interpretation, with
store/trace byte accounting reconciled after every cleanly-drained
seed (:func:`~repro.runtime.observability.reconcile_store`).

Run it via ``python -m repro stress`` or ``make stress``.
"""

from __future__ import annotations

import argparse
import dataclasses
import itertools
import random
import sys
import threading
import time
import traceback
from typing import Any

import numpy as np

from repro.runtime.backends import current_attempt
from repro.runtime.config import RuntimeConfig
from repro.runtime.directions import INOUT
from repro.runtime.engine import Runtime, pop_runtime, push_runtime
from repro.runtime.exceptions import (
    CancelledTaskError,
    RuntimeStateError,
    TaskExecutionError,
    WorkflowAbortedError,
    WorkflowKilledError,
)
from repro.runtime.task import task

#: seed % 4 selects the scenario family.
MODES = ("mixed", "abort", "kill", "shutdown")

#: Distinguishes flaky-task submissions across runs in one process.
_RUN_IDS = itertools.count()


# ----------------------------------------------------------------------
# task vocabulary
# ----------------------------------------------------------------------
@task(returns=1)
def _add(a, b):
    return a + b


@task(returns=1, on_failure="RETRY", max_retries=3)
def _flaky_add(a, b, key=None, failures=0):
    """Fails its first *failures* attempts, then behaves like ``_add``.

    Exercises the resubmission path (fresh DAG node, backoff timer,
    future hand-over) under concurrency.  Flakiness is keyed on
    :func:`~repro.runtime.backends.current_attempt`, which is valid on
    the coordinator *and* inside backend worker processes — a shared
    seen-counter would not survive the process boundary (*key* only
    keeps distinct submissions from sharing a checkpoint signature)."""
    attempt = current_attempt()
    if attempt < failures:
        raise RuntimeError(f"injected flake {key} (attempt {attempt})")
    return a + b


@task(returns=1)
def _nested_sum(values):
    """Submits one child task per element and synchronises inside the
    task body — the paper's nesting pattern, and the scheduler's
    help-while-waiting path under load."""
    from repro.runtime import wait_on

    futs = [_add(v, 1) for v in values]
    return sum(wait_on(futs))


@task(box=INOUT)
def _bump(box, by):
    box.value += by


@task(returns=1)
def _scale(block, k):
    """Exact ndarray op for the store mode: integer-valued float blocks
    times integer scalars stay bit-exact, so results can be compared
    with ``np.array_equal`` across process boundaries."""
    return block * k


@task(returns=1)
def _block_sum(a, b):
    return a + b


@task(returns=1)
def _boom(kind):
    if kind == "kill":
        raise WorkflowKilledError("stress-injected kill")
    if kind == "interrupt":
        raise KeyboardInterrupt("stress-injected interrupt")
    raise ValueError("stress-injected failure")


_boom_abort = _boom.opts(on_failure="FAIL")


class _Box:
    """Mutable INOUT target; the runtime orders writers by identity."""

    def __init__(self) -> None:
        self.value = 0


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
@dataclasses.dataclass
class StressReport:
    seed: int
    mode: str
    ok: bool
    n_tasks: int
    duration: float
    problems: list[str] = dataclasses.field(default_factory=list)

    def line(self) -> str:
        status = "ok" if self.ok else "FAIL"
        head = (
            f"seed {self.seed:>4}  mode={self.mode:<8} "
            f"tasks={self.n_tasks:>4}  {self.duration * 1000:7.1f}ms  {status}"
        )
        if self.problems:
            head += "".join(f"\n    - {p}" for p in self.problems)
        return head


def _dump_stacks() -> str:
    lines = []
    for tid, frame in sys._current_frames().items():
        name = next(
            (t.name for t in threading.enumerate() if t.ident == tid), str(tid)
        )
        lines.append(f"--- thread {name} ---")
        lines.append("".join(traceback.format_stack(frame)))
    return "\n".join(lines)


def run_under_watchdog(fn, timeout: float, label: str) -> dict[str, Any]:
    """Run ``fn()`` on a daemon thread bounded by *timeout* seconds.

    Returns an outcome dict: ``ok`` and ``duration`` always; ``value``
    on success; ``error``/``trace`` when *fn* raised; ``problems``
    (human-readable lines, including a full stack dump of every live
    thread on a hang) whenever ``ok`` is false.  On timeout the thread
    is abandoned, not killed — the point is that the *suite* keeps
    moving and reports the hang instead of wedging.

    Shared by the stress suite's per-seed watchdog and the service
    chaos harness (:mod:`repro.service.chaos`): anything driving
    scheduler-level scenarios in CI needs the same guarantee that a
    lost wakeup shows up as a failure with stacks, not a hung job.
    """
    outcome: dict[str, Any] = {}

    def target() -> None:
        try:
            outcome["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - relayed to the outcome
            outcome["error"] = exc
            outcome["trace"] = traceback.format_exc()

    thread = threading.Thread(target=target, name=label, daemon=True)
    t0 = time.perf_counter()
    thread.start()
    thread.join(timeout)
    duration = time.perf_counter() - t0
    if thread.is_alive():
        # Watchdog trip: dump every live flight recorder — the event
        # window leading into the hang is exactly what the black box
        # exists for.  Best effort; the stack dump is the primary
        # artifact when no recorder is attached.
        from repro.runtime import flightrec

        dumps = flightrec.dump_all(f"watchdog: {label}")
        problems = [
            f"HANG: {label} did not finish within {timeout}s",
            _dump_stacks(),
        ]
        if dumps:
            problems.append("flight recorder dumps: " + ", ".join(dumps))
        return {
            "ok": False,
            "duration": duration,
            "problems": problems,
            "flightrec_dumps": dumps,
        }
    if "error" in outcome:
        return {
            "ok": False,
            "duration": duration,
            "error": outcome["error"],
            "trace": outcome.get("trace", ""),
            "problems": [
                f"{label} raised {outcome['error']!r}",
                outcome.get("trace", ""),
            ],
        }
    return {"ok": True, "duration": duration, "value": outcome.get("value")}


# ----------------------------------------------------------------------
# scenario
# ----------------------------------------------------------------------
def _run_scenario(
    seed: int,
    n_ops: int,
    workers: int,
    backend: str = "threads",
    observability: str = "",
    store: bool = False,
    fusion: bool = False,
) -> StressReport:
    t0 = time.perf_counter()
    rng = random.Random(seed)
    mode = MODES[seed % len(MODES)]
    run_id = next(_RUN_IDS)
    problems: list[str] = []

    cfg = RuntimeConfig(
        executor="threads",
        backend=backend,
        max_workers=workers,
        name=f"stress-{seed}",
        debug_invariants=True,
        fusion=fusion,
        retry_backoff=0.0005,
        retry_backoff_cap=0.002,
        # The store reconciliation needs the trace's byte totals.
        collect_trace=store,
        observability=observability,
        store="on" if store else "auto",
        store_threshold_bytes=4096 if store else 65536,
    )
    rt = Runtime(config=cfg)
    push_runtime(rt)

    #: (future, expected value) for every verifiable submission.
    tracked: list[tuple[Any, int]] = []
    #: (future/ref, expected ndarray) for store-mode array submissions.
    tracked_arrays: list[tuple[Any, np.ndarray]] = []
    tracked_lock = threading.Lock()
    box = _Box()
    box_expected = 0
    clean_drain = False

    def pick_operand() -> tuple[Any, int]:
        """An int literal or an earlier future, with its expected value."""
        with tracked_lock:
            if tracked and rng.random() < 0.5:
                return tracked[rng.randrange(len(tracked))]
        value = rng.randint(-50, 50)
        return value, value

    def submit_array_op() -> None:
        """Store-mode traffic: integer-valued float blocks (bit-exact
        under scaling/addition) flowing through the shared-memory data
        plane — some pre-seeded with ``Runtime.put``, some stored
        automatically by the backend when dispatched."""
        with tracked_lock:
            reuse = tracked_arrays and rng.random() < 0.5
            if reuse:
                a, av = tracked_arrays[rng.randrange(len(tracked_arrays))]
        if not reuse:
            av = np.full((32, 32), float(rng.randint(-9, 9)))
            a = rt.put(av) if rng.random() < 0.5 else av
        roll = rng.random()
        if roll < 0.5:
            k = rng.randint(2, 5)
            fut, expected = _scale(a, k), av * k
        else:
            bv = np.full((32, 32), float(rng.randint(-9, 9)))
            fut, expected = _block_sum(a, bv), av + bv
        with tracked_lock:
            tracked_arrays.append((fut, expected))

    def submit_one(i: int) -> None:
        nonlocal box_expected
        if store and rng.random() < 0.30:
            submit_array_op()
            return
        roll = rng.random()
        if roll < 0.45:
            (a, av), (b, bv) = pick_operand(), pick_operand()
            if rng.random() < 0.25:
                fut = _add.opts(priority=rng.randint(-5, 5))(a, b)
            else:
                fut = _add(a, b)
            with tracked_lock:
                tracked.append((fut, av + bv))
        elif roll < 0.60:
            (a, av), (b, bv) = pick_operand(), pick_operand()
            fut = _flaky_add(
                a, b, key=(run_id, i), failures=rng.randint(1, 2)
            )
            with tracked_lock:
                tracked.append((fut, av + bv))
        elif roll < 0.72:
            values = [rng.randint(-20, 20) for _ in range(rng.randint(2, 5))]
            fut = _nested_sum(values)
            with tracked_lock:
                tracked.append((fut, sum(values) + len(values)))
        elif roll < 0.85:
            by = rng.randint(1, 9)
            _bump(box, by)
            box_expected += by
        else:
            # Barging waiter on the submitting thread: synchronise a
            # random earlier future mid-stream and check it now.
            with tracked_lock:
                if not tracked:
                    return
                fut, expected = tracked[rng.randrange(len(tracked))]
            got = rt.wait_on(fut)
            if got != expected:
                problems.append(
                    f"mid-stream wait_on returned {got!r}, expected {expected!r}"
                )

    def verify_values() -> None:
        with tracked_lock:
            snapshot = list(tracked)
        for fut, expected in snapshot:
            got = rt.wait_on(fut)
            if got != expected:
                problems.append(
                    f"future of task {fut.task_id} resolved to {got!r}, "
                    f"expected {expected!r}"
                )
        if box.value != box_expected:
            problems.append(
                f"INOUT box ended at {box.value}, expected {box_expected}"
            )

    def verify_arrays() -> None:
        """Check store-mode array results bit-exactly.  Must run before
        ``rt.shutdown`` — shutdown tears the shared-memory store down,
        after which outstanding refs are deliberately dead."""
        with tracked_lock:
            snapshot = list(tracked_arrays)
        for fut, expected in snapshot:
            got = rt.get(fut)
            if not (isinstance(got, np.ndarray) and np.array_equal(got, expected)):
                problems.append(
                    f"store-mode array result diverged: got {got!r:.80}, "
                    f"expected fill {expected.flat[0]!r}"
                )

    def barging_waiters(n: int) -> list[threading.Thread]:
        """Concurrent threads synchronising random futures while the
        pool is still churning — the waiter/worker race.  Each thread's
        sub-seed is drawn on the submitting thread, so the schedule
        stays a pure function of the seed."""

        def wait_some(sub_seed: int) -> None:
            local = random.Random(sub_seed)
            for _ in range(10):
                with tracked_lock:
                    if not tracked:
                        return
                    fut, expected = tracked[local.randrange(len(tracked))]
                try:
                    got = rt.wait_on(fut)
                except (WorkflowAbortedError, WorkflowKilledError,
                        CancelledTaskError, TaskExecutionError,
                        RuntimeStateError, KeyboardInterrupt):
                    return  # expected under abort/kill/shutdown seeds
                if got != expected:
                    problems.append(
                        f"barging waiter saw {got!r} for task {fut.task_id}, "
                        f"expected {expected!r}"
                    )

        threads = [
            threading.Thread(
                target=wait_some,
                args=(rng.randint(0, 2**31),),
                name=f"stress-waiter-{j}",
                daemon=True,
            )
            for j in range(n)
        ]
        for t in threads:
            t.start()
        return threads

    try:
        if mode == "mixed":
            waiters = barging_waiters(2)
            for i in range(n_ops):
                submit_one(i)
            for t in waiters:
                t.join()
            rt.barrier()
            verify_values()
            verify_arrays()
            clean_drain = True

        elif mode == "abort":
            # Retries with live backoff timers racing the abort.
            for i in range(n_ops // 2):
                submit_one(i)
            waiters = barging_waiters(2)
            _boom_abort("fail")
            try:
                for i in range(n_ops // 2, n_ops):
                    submit_one(i)
            except (WorkflowAbortedError, CancelledTaskError, TaskExecutionError):
                pass  # submissions/waits racing the abort may observe it
            try:
                rt.barrier()
                problems.append("abort seed: barrier() did not raise")
            except WorkflowAbortedError:
                pass
            for t in waiters:
                t.join()
            rt.shutdown(wait=True)
            clean_drain = True

        elif mode == "kill":
            kind = "kill" if rng.random() < 0.5 else "interrupt"
            for i in range(n_ops // 2):
                submit_one(i)
            waiters = barging_waiters(2)
            _boom(kind)
            try:
                rt.barrier()
                problems.append(f"kill seed ({kind}): barrier() did not raise")
            except (WorkflowKilledError, KeyboardInterrupt):
                pass
            for t in waiters:
                t.join()
            rt.shutdown(wait=False)

        else:  # shutdown
            waiters = barging_waiters(2)
            for i in range(n_ops):
                submit_one(i)
            for t in waiters:
                t.join()
            if store:
                # Array refs die with the store at shutdown; check them
                # first (plain values below still survive shutdown).
                rt.barrier()
                verify_arrays()
            rt.shutdown(wait=True)
            verify_values()
            try:
                _add(1, 1)
                problems.append("submit after shutdown did not raise")
            except RuntimeStateError:
                pass
            clean_drain = True
    finally:
        pop_runtime(rt)

    problems.extend(rt.check_invariants(quiesced=clean_drain))
    stats = rt.stats()
    if clean_drain and stats["ready_queue"]:
        problems.append(f"ready queue not drained: {stats['ready_queue']}")
    if clean_drain and "metrics" in observability:
        # Metrics must reconcile exactly with stats() on a drained run:
        # every lifecycle event was emitted exactly once.
        from repro.runtime.observability import reconcile

        problems.extend(reconcile(rt))
    if clean_drain and store and backend == "processes":
        # Data-plane byte accounting must agree between the backend
        # counters and the per-task trace records on a clean drain.
        from repro.runtime.observability import reconcile_store

        problems.extend(reconcile_store(rt))
    if mode in ("mixed", "shutdown"):
        rt.shutdown(wait=False)

    return StressReport(
        seed=seed,
        mode=mode,
        ok=not problems,
        n_tasks=stats["n_tasks"],
        duration=time.perf_counter() - t0,
        problems=problems,
    )


# ----------------------------------------------------------------------
# fusion differential
# ----------------------------------------------------------------------
def _run_fusion_workload(
    seed: int, n_ops: int, workers: int, fusion: bool
) -> tuple[list[Any], dict]:
    """One deterministic pure-task DAG, built stage by stage from the
    seed.  Every stage goes through ``submit_many`` so the fusion pass
    sees whole map stages and chains; all tasks are pure and the RNG
    never observes execution results, so two runs of the same seed
    must produce bit-identical values regardless of scheduling."""
    from repro.runtime import wait_on

    rng = random.Random(seed)
    width = 8
    cfg = RuntimeConfig(
        executor="threads",
        max_workers=workers,
        name=f"fusediff-{seed}-{'on' if fusion else 'off'}",
        debug_invariants=True,
        fusion=fusion,
    )
    rt = Runtime(config=cfg)
    push_runtime(rt)
    try:
        stage = rt.submit_many(
            [_add.defer(rng.randint(-50, 50), i) for i in range(width)]
        )
        all_futs = list(stage)
        # Three unconditional map stages first: each extends every open
        # unit, so the fusion-on run is *guaranteed* at least 8 units of
        # 4 members regardless of the random op sequence (later stages
        # fuse only opportunistically — whether a flushed chain re-opens
        # depends on whether its parent already ran, a benign race).
        for _ in range(3):
            stage = rt.submit_many([_add.defer(f, rng.randint(-5, 5)) for f in stage])
            all_futs.extend(stage)
        for _ in range(max(1, n_ops // width)):
            op = rng.random()
            if op < 0.5:
                # map stage: element-wise successor of the last stage
                stage = rt.submit_many(
                    [_add.defer(f, rng.randint(-5, 5)) for f in stage]
                )
            elif op < 0.8:
                # fan-out: a fresh stage chained off one prior element
                root = stage[rng.randrange(len(stage))]
                stage = rt.submit_many([_add.defer(root, k) for k in range(width)])
            else:
                # mirror-pair stage: each element consumes two parents,
                # which breaks chain fusion and exercises the demotion
                # of buffered units back onto the ready queue
                stage = rt.submit_many(
                    [
                        _add.defer(stage[i], stage[-1 - i])
                        for i in range(len(stage))
                    ]
                )
            all_futs.extend(stage)
        values = wait_on(all_futs)
        rt.shutdown(wait=True)
        stats = rt.stats()
        problems = rt.check_invariants(quiesced=True)
        if problems:
            raise AssertionError(f"invariant violations: {problems}")
    finally:
        pop_runtime(rt)
    return values, stats


def run_differential(
    seed: int, n_ops: int = 240, workers: int = 4, timeout: float = 60.0
) -> StressReport:
    """Fusion bit-identity differential: run the same seeded DAG with
    fusion off and on and require every future's value to match
    bit-for-bit, the same task count, and that the fused run actually
    fused something (a silently-disabled optimizer would pass any
    equivalence check)."""
    t0 = time.perf_counter()

    def body() -> list[str]:
        base_vals, base_stats = _run_fusion_workload(seed, n_ops, workers, False)
        fused_vals, fused_stats = _run_fusion_workload(seed, n_ops, workers, True)
        problems: list[str] = []
        if base_vals != fused_vals:
            diffs = [
                i for i, (a, b) in enumerate(zip(base_vals, fused_vals)) if a != b
            ]
            problems.append(
                f"fusion changed {len(diffs)} value(s), first at index {diffs[0]}: "
                f"{base_vals[diffs[0]]!r} != {fused_vals[diffs[0]]!r}"
            )
        if base_stats["n_tasks"] != fused_stats["n_tasks"]:
            problems.append(
                "task count diverged: "
                f"{base_stats['n_tasks']} unfused vs {fused_stats['n_tasks']} fused"
            )
        if base_stats["scheduler"].get("fused_tasks", 0):
            problems.append(
                f"fusion-off run fused {base_stats['scheduler']['fused_tasks']} tasks"
            )
        if not fused_stats["scheduler"].get("fused_tasks", 0):
            problems.append("fusion-on run never fused a task")
        return problems

    outcome = run_under_watchdog(body, timeout, f"fusediff-seed-{seed}")
    problems = outcome["problems"] if not outcome["ok"] else outcome["value"]
    return StressReport(
        seed=seed,
        mode="fusediff",
        ok=not problems,
        n_tasks=0,
        duration=time.perf_counter() - t0,
        problems=problems,
    )


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def run_seed(
    seed: int,
    n_ops: int = 120,
    workers: int = 4,
    timeout: float = 60.0,
    backend: str = "threads",
    observability: str = "",
    store: bool = False,
    fusion: bool = False,
) -> StressReport:
    """Run one seed under a hang watchdog.

    The scenario runs on a daemon thread; if it does not finish within
    *timeout* seconds the seed fails with a full stack dump of every
    live thread — a scheduler hang (lost wakeup, stuck shutdown) shows
    up here instead of wedging the suite."""
    outcome = run_under_watchdog(
        lambda: _run_scenario(
            seed, n_ops, workers, backend, observability, store, fusion
        ),
        timeout,
        f"stress-seed-{seed}",
    )
    if not outcome["ok"]:
        return StressReport(
            seed=seed,
            mode=MODES[seed % len(MODES)],
            ok=False,
            n_tasks=0,
            duration=outcome["duration"],
            problems=outcome["problems"],
        )
    return outcome["value"]


def run_suite(
    seeds,
    n_ops: int = 120,
    workers: int = 4,
    timeout: float = 60.0,
    verbose: bool = True,
    backend: str = "threads",
    observability: str = "",
    store: bool = False,
    fusion: bool = False,
) -> list[StressReport]:
    reports = []
    for seed in seeds:
        report = run_seed(
            seed,
            n_ops=n_ops,
            workers=workers,
            timeout=timeout,
            backend=backend,
            observability=observability,
            store=store,
            fusion=fusion,
        )
        reports.append(report)
        if verbose:
            print(report.line(), flush=True)
    return reports


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro stress",
        description="concurrency stress harness for the task scheduler",
    )
    parser.add_argument(
        "--seeds", type=int, default=20, help="run seeds 0..N-1 (default 20)"
    )
    parser.add_argument(
        "--seed",
        type=int,
        action="append",
        default=None,
        help="run specific seed(s) instead (repeatable)",
    )
    parser.add_argument("--ops", type=int, default=120, help="operations per seed")
    parser.add_argument("--workers", type=int, default=4, help="pool size")
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="per-seed hang watchdog (s)"
    )
    parser.add_argument(
        "--backend",
        choices=("threads", "processes"),
        default="threads",
        help="execution backend to stress (default threads)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="enable the metrics registry and reconcile it against "
        "stats() after every cleanly-drained seed",
    )
    parser.add_argument(
        "--store",
        action="store_true",
        help="mix shared-memory data-plane traffic (ndarray tasks, "
        "Runtime.put) into every seed and reconcile the store byte "
        "accounting on clean drains",
    )
    parser.add_argument(
        "--fuse",
        action="store_true",
        help="run every seed with the task-fusion pass enabled "
        "(fusion=True); the same reference checks apply, so any "
        "fusion-induced divergence fails the seed",
    )
    parser.add_argument(
        "--differential",
        action="store_true",
        help="fusion bit-identity differential: run each seed's "
        "deterministic DAG twice, fusion off and on, and require "
        "bit-identical values and matching task counts",
    )
    args = parser.parse_args(argv)

    seeds = args.seed if args.seed else range(args.seeds)
    if args.differential:
        reports = []
        for seed in seeds:
            report = run_differential(
                seed, n_ops=args.ops, workers=args.workers, timeout=args.timeout
            )
            reports.append(report)
            print(report.line(), flush=True)
        failed = [r for r in reports if not r.ok]
        print(
            f"fusediff: {len(reports) - len(failed)}/{len(reports)} seeds passed",
            flush=True,
        )
        return 1 if failed else 0
    reports = run_suite(
        seeds,
        n_ops=args.ops,
        workers=args.workers,
        timeout=args.timeout,
        backend=args.backend,
        observability="metrics" if args.metrics else "",
        store=args.store,
        fusion=args.fuse,
    )
    failed = [r for r in reports if not r.ok]
    print(
        f"stress: {len(reports) - len(failed)}/{len(reports)} seeds passed",
        flush=True,
    )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
