"""Crash-consistent file writes.

Every artefact the runtime persists — checkpoint entries, manifests,
traces, provenance records, DOT graphs, Chrome traces — goes through
:func:`atomic_write`: the data is written to a temporary file in the
*same directory*, flushed and fsynced, then atomically renamed over the
destination (and the directory entry fsynced).  A reader therefore
always sees either the previous complete file or the new complete file,
never a partially-written one — the property the checkpoint store's
recovery guarantees are built on.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write(path: str | os.PathLike, data: bytes | str, encoding: str = "utf-8") -> None:
    """Atomically replace *path* with *data* (temp file + fsync + rename).

    ``str`` data is encoded with *encoding*.  The temporary file lives in
    the destination directory so the final :func:`os.replace` never
    crosses a filesystem boundary (which would break atomicity).
    """
    if isinstance(data, str):
        data = data.encode(encoding)
    path = Path(path)
    fd, tmp = tempfile.mkstemp(prefix=f".{path.name}.", suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


def atomic_write_text(path: str | os.PathLike, text: str, encoding: str = "utf-8") -> None:
    """Alias of :func:`atomic_write` for text payloads (readability)."""
    atomic_write(path, text, encoding=encoding)


def _fsync_dir(directory: Path) -> None:
    """Flush the directory entry so the rename itself is durable.

    Best effort: some filesystems (and all of Windows) refuse O_RDONLY
    directory handles; losing the *rename* durability there still never
    exposes a torn file, only possibly the old complete one.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(fd)
