"""Task-based runtime — the PyCOMPSs/COMPSs analog.

Public surface:

* :func:`task` — decorator turning a function into a task; per-task
  failure management via ``on_failure`` / ``max_retries`` /
  ``time_out``, call-site overrides via ``my_task.opts(...)``.
* :data:`IN` / :data:`INOUT` / :data:`OUT` — parameter directions.
* :class:`Runtime` — runtime instance (use as a context manager);
  configured by a :class:`RuntimeConfig` (``REPRO_*`` env overrides).
  ``RuntimeConfig(backend="processes")`` (or ``REPRO_BACKEND``)
  dispatches task bodies to persistent worker processes
  (:mod:`repro.runtime.backends`); :func:`current_attempt` exposes the
  retry attempt inside a task body on either backend, and
  :func:`shutdown_workers` tears the shared worker pool down.
* :func:`wait_on` — synchronise futures into values
  (``compss_wait_on``).
* :func:`barrier` — wait for all tasks of the current scope
  (``compss_barrier``).
* :class:`ObjectRef` / :class:`ObjectStore` — the shared-memory data
  plane (:mod:`repro.runtime.store`): ``Runtime.put(value)`` returns a
  ref accepted anywhere the value would be, ``Runtime.get``/
  ``wait_on`` turn refs back into arrays, ``Runtime.release`` frees
  them.  With ``backend="processes"`` large array arguments and
  results travel by reference automatically (``RuntimeConfig(store=,
  store_capacity_mb=, locality=)`` / ``REPRO_STORE_*``).
* :class:`TaskCall` / ``my_task.defer(...)`` — deferred call sites for
  ``Runtime.submit_many(calls)`` batch intake.
* :mod:`repro.runtime.compat` — PyCOMPSs-named aliases
  (:func:`compss_wait_on`, :func:`compss_barrier`, :func:`compss_open`)
  so paper snippets run verbatim.
* :mod:`repro.runtime.faults` — deterministic fault injection for
  resilience testing.
* :class:`Constraints` — per-task resource requirements.
* :func:`to_dot` / :func:`graph_summary` — execution-graph export.
* :func:`build_provenance` — provenance record of a finished run.
* :class:`CheckpointStore` — crash-consistent persistence of task
  results; set ``RuntimeConfig(checkpoint_dir=...)`` (or
  ``REPRO_CHECKPOINT_DIR``) and a killed workflow resumes, re-executing
  only the tasks whose results are not already in the store.
* :func:`atomic_write` — temp file + fsync + rename file writes, used
  by every exporter here and available to applications.
* :mod:`repro.runtime.observability` — lifecycle event bus, metrics
  registry (``Runtime.metrics()`` / Prometheus exposition), live
  progress reporting and trace analysis (:func:`critical_path`,
  :func:`summarize_trace`); enabled with
  ``RuntimeConfig(observability="metrics,progress")`` or
  ``REPRO_METRICS=1`` / ``REPRO_OBSERVABILITY``.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.atomic_write import atomic_write, atomic_write_text
from repro.runtime.backends import current_attempt, shutdown_workers
from repro.runtime.checkpoint import CheckpointStore, fingerprint, task_signature
from repro.runtime.config import RuntimeConfig
from repro.runtime.directions import IN, INOUT, OUT, Direction
from repro.runtime.engine import Runtime, active_runtime
from repro.runtime.exceptions import (
    CancelledTaskError,
    CheckpointError,
    FaultInjectedError,
    NodeFailureError,
    RuntimeStateError,
    TaskDefinitionError,
    TaskExecutionError,
    TaskTimeoutError,
    WorkflowAbortedError,
    WorkflowKilledError,
)
from repro.runtime.failures import (
    CANCEL_SUCCESSORS,
    FAIL,
    IGNORE,
    POLICIES,
    RETRY,
    TaskOptions,
)
from repro.runtime.future import Future, is_future, resolve_futures
from repro.runtime.model import Constraints, TaskCall
from repro.runtime.store import ObjectRef, ObjectStore, StoreError, is_ref
from repro.runtime.observability import (
    CriticalPath,
    EventBus,
    MetricsRegistry,
    ProgressReporter,
    TaskEvent,
    critical_path,
    summarize_trace,
    to_prometheus,
)
from repro.runtime.dot import graph_summary, save_dot, to_dot
from repro.runtime.provenance import ProvenanceRecord, build_provenance
from repro.runtime.task import task
from repro.runtime.tracing import TaskRecord, Trace
from repro.runtime import faults
from repro.runtime.compat import (
    compss_barrier,
    compss_delete_file,
    compss_delete_object,
    compss_open,
    compss_wait_on,
)

__all__ = [
    "task",
    "IN",
    "INOUT",
    "OUT",
    "Direction",
    "Runtime",
    "RuntimeConfig",
    "TaskOptions",
    "active_runtime",
    "wait_on",
    "barrier",
    "Constraints",
    "TaskCall",
    "Future",
    "is_future",
    "ObjectRef",
    "ObjectStore",
    "StoreError",
    "is_ref",
    "Trace",
    "TaskRecord",
    "TaskEvent",
    "EventBus",
    "MetricsRegistry",
    "ProgressReporter",
    "CriticalPath",
    "critical_path",
    "summarize_trace",
    "to_prometheus",
    "to_dot",
    "save_dot",
    "graph_summary",
    "ProvenanceRecord",
    "build_provenance",
    "faults",
    "CheckpointStore",
    "fingerprint",
    "task_signature",
    "atomic_write",
    "atomic_write_text",
    "FAIL",
    "RETRY",
    "IGNORE",
    "CANCEL_SUCCESSORS",
    "POLICIES",
    "TaskDefinitionError",
    "TaskExecutionError",
    "TaskTimeoutError",
    "RuntimeStateError",
    "CancelledTaskError",
    "NodeFailureError",
    "current_attempt",
    "shutdown_workers",
    "WorkflowAbortedError",
    "WorkflowKilledError",
    "CheckpointError",
    "FaultInjectedError",
    "compss_wait_on",
    "compss_barrier",
    "compss_open",
    "compss_delete_object",
    "compss_delete_file",
]


def wait_on(obj: Any) -> Any:
    """Synchronise futures (possibly nested in containers) to values.

    Outside any runtime this is a pass-through (after resolving stray
    futures), matching PyCOMPSs' behaviour in sequential execution.
    """
    rt = active_runtime()
    if rt is None:
        return resolve_futures(obj)
    return rt.wait_on(obj)


def barrier() -> None:
    """Block until every task submitted from the current scope finished."""
    rt = active_runtime()
    if rt is not None:
        rt.barrier()
