"""Crash-consistent checkpoint store for workflow resume.

The paper's workloads are exactly the kind that die at hour N-1:
multi-hour CNN training and multi-node dislib sweeps, where COMPSs-style
recovery means restarting from *persisted task results*, not just
retrying an in-flight attempt.  This module provides that layer:

* :func:`fingerprint` — deterministic content hash of task arguments
  (NumPy arrays, primitives, containers, picklable objects).
* :func:`function_identity` — stable identity of a registered task
  function (qualified name + source hash), so editing a task body
  invalidates its old checkpoints.
* :class:`CheckpointStore` — a directory of self-describing entry
  files, each written atomically (temp file + fsync + rename) with a
  SHA-256 payload checksum, plus an atomically maintained manifest.

The runtime keys entries by a *task signature*: function identity +
argument fingerprint + call lineage (the occurrence index among calls
with identical identity/arguments, so repeated invocations stay
distinct).  Future-valued arguments contribute the *signature of their
producing task* rather than their value — which is what lets a resumed
run skip a deep suffix of the DAG without materialising any upstream
data.

Corrupt entries (torn writes survive only as checksum mismatches thanks
to the atomic protocol; bit rot and injected corruption show up the
same way) are **logged and recomputed**, never raised to the workflow.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import logging
import os
import pickle
import threading
import time
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.runtime import faults as _faults
from repro.runtime.atomic_write import atomic_write
from repro.runtime.exceptions import CheckpointError

logger = logging.getLogger("repro.runtime.checkpoint")

#: Entry-file magic: format name + version, newline-terminated.
MAGIC = b"REPROCKPT1\n"

#: Manifest format version.
MANIFEST_VERSION = 1


class UnfingerprintableError(TypeError):
    """The object cannot be deterministically fingerprinted.

    The engine treats this as "not checkpointable": the task simply
    executes every time instead of failing the workflow.
    """


# ----------------------------------------------------------------------
# fingerprinting
# ----------------------------------------------------------------------
def fingerprint(obj: Any) -> str:
    """Deterministic SHA-256 hex digest of *obj*'s content.

    Covers the argument types our workflows pass between tasks: NumPy
    arrays (dtype + shape + raw bytes), primitives, lists/tuples/dicts
    (recursively), and — as a fallback — anything picklable.  Raises
    :class:`UnfingerprintableError` for the rest.
    """
    h = hashlib.sha256()
    _update(h, obj, resolve=None)
    return h.hexdigest()


def _update(h, obj: Any, resolve: Callable[[Any], tuple] | None) -> None:
    import numpy as np

    if obj is None or isinstance(obj, (bool, int)):
        h.update(f"p:{obj!r};".encode())
    elif isinstance(obj, float):
        h.update(b"f:")
        h.update(np.float64(obj).tobytes())
    elif isinstance(obj, str):
        raw = obj.encode()
        h.update(f"s:{len(raw)}:".encode())
        h.update(raw)
    elif isinstance(obj, (bytes, bytearray)):
        h.update(f"b:{len(obj)}:".encode())
        h.update(bytes(obj))
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(f"a:{arr.dtype.str}:{arr.shape}:".encode())
        h.update(arr.tobytes())
    elif isinstance(obj, np.generic):
        h.update(f"g:{obj.dtype.str}:".encode())
        h.update(obj.tobytes())
    elif resolve is not None and _is_future(obj):
        h.update(b"F:")
        _update(h, resolve(obj), resolve)
    elif isinstance(obj, (list, tuple)):
        h.update(f"l:{type(obj).__name__}:{len(obj)}:".encode())
        for item in obj:
            _update(h, item, resolve)
    elif isinstance(obj, dict):
        entries = []
        for key, value in obj.items():
            kh = hashlib.sha256()
            _update(kh, key, resolve)
            entries.append((kh.hexdigest(), value))
        entries.sort(key=lambda kv: kv[0])
        h.update(f"d:{len(entries)}:".encode())
        for key_digest, value in entries:
            h.update(key_digest.encode())
            _update(h, value, resolve)
    else:
        try:
            payload = pickle.dumps(obj, protocol=4)
        except Exception as exc:
            raise UnfingerprintableError(
                f"cannot fingerprint {type(obj).__name__} argument"
            ) from exc
        h.update(f"o:{len(payload)}:".encode())
        h.update(payload)


def _is_future(obj: Any) -> bool:
    from repro.runtime.future import Future

    return isinstance(obj, Future)


def function_identity(func: Callable, name: str | None = None) -> str:
    """Stable identity of a task function across processes.

    Qualified name plus a hash of the source text (falling back to the
    compiled bytecode for sources that cannot be read), so renaming *or
    editing* a task invalidates checkpoints keyed on the old behaviour.
    """
    qual = f"{getattr(func, '__module__', '?')}.{getattr(func, '__qualname__', repr(func))}"
    try:
        body = inspect.getsource(func)
    except (OSError, TypeError):
        code = getattr(func, "__code__", None)
        body = code.co_code.hex() if code is not None else repr(func)
    h = hashlib.sha256()
    h.update(f"{name or ''}|{qual}|".encode())
    h.update(body.encode())
    return h.hexdigest()


def task_signature(
    identity: str,
    args: tuple,
    kwargs: dict,
    resolve: Callable[[Any], tuple] | None = None,
) -> str:
    """Base signature of one task invocation (before call lineage).

    *resolve* maps a :class:`~repro.runtime.future.Future` argument to a
    stable key — the engine passes ``(producer_signature, index)`` —
    and may raise :class:`UnfingerprintableError` when the producer has
    no signature.
    """
    h = hashlib.sha256()
    h.update(identity.encode())
    _update(h, args, resolve)
    _update(h, kwargs, resolve)
    return h.hexdigest()


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class CheckpointEntry:
    """Metadata of one persisted entry (the payload stays on disk)."""

    key: str
    task: str
    path: str
    nbytes: int
    sha256: str
    created_at: float


@dataclasses.dataclass
class VerifyReport:
    """Outcome of :meth:`CheckpointStore.verify`."""

    ok: list[str] = dataclasses.field(default_factory=list)
    corrupt: list[str] = dataclasses.field(default_factory=list)
    #: entry files missing from the manifest (e.g. a crash between the
    #: entry rename and the manifest update) — valid and re-indexed.
    orphaned: list[str] = dataclasses.field(default_factory=list)
    #: manifest rows whose entry file is gone.
    missing: list[str] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.corrupt and not self.missing


class CheckpointStore:
    """A directory of checkpoint entries with crash-consistent writes.

    Layout::

        <root>/manifest.json          rebuildable index of the entries
        <root>/entries/<id>.ckpt      MAGIC + JSON header line + payload

    Every entry file and every manifest revision is written with
    :func:`~repro.runtime.atomic_write.atomic_write`, so a reader never
    observes a torn file; the payload checksum in the header catches
    everything else (bit rot, injected corruption).  ``get`` verifies
    the checksum on every read and returns ``None`` for corrupt or
    missing entries — the caller recomputes, it never crashes.

    Keys are arbitrary strings: the engine uses task signatures, the
    higher layers (epoch/round/grid checkpoints) use human-readable
    tags.  Values are tuples of Python objects, pickled.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.entries_dir = self.root / "entries"
        if self.root.exists() and not self.root.is_dir():
            raise CheckpointError(f"checkpoint path {self.root} is not a directory")
        self.entries_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._manifest = self._load_manifest()

    # -- paths ----------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    def _entry_id(self, key: str) -> str:
        return hashlib.sha256(key.encode()).hexdigest()[:40]

    def _entry_path(self, key: str) -> Path:
        return self.entries_dir / f"{self._entry_id(key)}.ckpt"

    # -- manifest -------------------------------------------------------
    def _load_manifest(self) -> dict[str, dict]:
        try:
            raw = json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            # No manifest (fresh store, or lost between entry writes):
            # the entry files are the source of truth, re-index them.
            return self._rebuild_manifest()
        except (OSError, ValueError):
            logger.warning("unreadable checkpoint manifest %s; rebuilding", self.manifest_path)
            return self._rebuild_manifest()
        if raw.get("version") != MANIFEST_VERSION:
            logger.warning("unknown manifest version in %s; rebuilding", self.manifest_path)
            return self._rebuild_manifest()
        return dict(raw.get("entries", {}))

    def _rebuild_manifest(self) -> dict[str, dict]:
        """Re-index every readable entry file on disk."""
        entries: dict[str, dict] = {}
        for path in sorted(self.entries_dir.glob("*.ckpt")):
            header = self._read_header(path)
            if header is not None:
                entries[path.stem] = header
        return entries

    def _flush_manifest(self) -> None:
        atomic_write(
            self.manifest_path,
            json.dumps({"version": MANIFEST_VERSION, "entries": self._manifest}, indent=1),
        )

    # -- entry file format ---------------------------------------------
    @staticmethod
    def _read_header(path: Path) -> dict | None:
        try:
            with open(path, "rb") as fh:
                if fh.read(len(MAGIC)) != MAGIC:
                    return None
                return json.loads(fh.readline().decode())
        except (OSError, ValueError):
            return None

    def _read_entry(self, path: Path) -> tuple[dict, bytes] | None:
        """(header, payload) or None when the file is unreadable."""
        try:
            with open(path, "rb") as fh:
                if fh.read(len(MAGIC)) != MAGIC:
                    return None
                header = json.loads(fh.readline().decode())
                payload = fh.read()
            return header, payload
        except (OSError, ValueError):
            return None

    # -- public API -----------------------------------------------------
    def put(self, key: str, task: str, values: tuple) -> CheckpointEntry:
        """Persist *values* under *key*, atomically; returns the entry.

        An existing entry for the key is replaced (epoch/round
        checkpoints overwrite in place; task signatures never collide
        within a run thanks to call lineage).
        """
        payload = pickle.dumps(tuple(values), protocol=4)
        header = {
            "key": key,
            "task": task,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "nbytes": len(payload),
            "created_at": time.time(),
        }
        path = self._entry_path(key)
        blob = MAGIC + json.dumps(header).encode() + b"\n" + payload
        atomic_write(path, blob)
        with self._lock:
            self._manifest[path.stem] = header
            self._flush_manifest()
        # fault-injection hook: lets tests corrupt this write in place
        _faults.on_checkpoint_write(task, str(path))
        return CheckpointEntry(
            key=key,
            task=task,
            path=str(path),
            nbytes=header["nbytes"],
            sha256=header["sha256"],
            created_at=header["created_at"],
        )

    def get(self, key: str, expect: int | None = None) -> tuple | None:
        """Verified payload for *key*, or ``None``.

        ``None`` means "recompute": the entry is absent, its checksum
        does not match its payload, its stored key differs (hash-prefix
        collision), or — with *expect* — its arity is wrong.  Corrupt
        entries are logged and deleted so they cannot shadow a fresh
        write that dies before the manifest update.
        """
        path = self._entry_path(key)
        parsed = self._read_entry(path)
        if parsed is None:
            if path.exists():
                self._discard_corrupt(path, "unreadable entry")
            return None
        header, payload = parsed
        if header.get("key") != key:
            logger.warning("checkpoint key collision at %s; recomputing", path.name)
            return None
        if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
            self._discard_corrupt(path, f"checksum mismatch for task {header.get('task')!r}")
            return None
        try:
            values = pickle.loads(payload)
        except Exception:
            self._discard_corrupt(path, "undecodable payload")
            return None
        if not isinstance(values, tuple) or (expect is not None and len(values) != expect):
            self._discard_corrupt(path, "unexpected payload shape")
            return None
        return values

    def contains(self, key: str) -> bool:
        return self._entry_path(key).exists()

    def _discard_corrupt(self, path: Path, reason: str) -> None:
        logger.warning("corrupt checkpoint entry %s (%s): recomputing", path.name, reason)
        try:
            path.unlink()
        except OSError:
            pass
        with self._lock:
            if path.stem in self._manifest:
                del self._manifest[path.stem]
                self._flush_manifest()

    # -- inspection / maintenance --------------------------------------
    def entries(self) -> Iterator[CheckpointEntry]:
        """Manifest view of the store, oldest first."""
        with self._lock:
            rows = sorted(self._manifest.items(), key=lambda kv: kv[1].get("created_at", 0.0))
        for stem, header in rows:
            yield CheckpointEntry(
                key=header.get("key", ""),
                task=header.get("task", "?"),
                path=str(self.entries_dir / f"{stem}.ckpt"),
                nbytes=int(header.get("nbytes", 0)),
                sha256=header.get("sha256", ""),
                created_at=float(header.get("created_at", 0.0)),
            )

    def stats(self) -> dict:
        with self._lock:
            headers = list(self._manifest.values())
        by_task: dict[str, int] = {}
        for h in headers:
            by_task[h.get("task", "?")] = by_task.get(h.get("task", "?"), 0) + 1
        return {
            "root": str(self.root),
            "n_entries": len(headers),
            "total_bytes": sum(int(h.get("nbytes", 0)) for h in headers),
            "by_task": by_task,
        }

    def verify(self) -> VerifyReport:
        """Check every entry file against its checksum and the manifest."""
        report = VerifyReport()
        on_disk: set[str] = set()
        for path in sorted(self.entries_dir.glob("*.ckpt")):
            on_disk.add(path.stem)
            parsed = self._read_entry(path)
            if parsed is None:
                report.corrupt.append(path.name)
                continue
            header, payload = parsed
            if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
                report.corrupt.append(path.name)
                continue
            report.ok.append(path.name)
            with self._lock:
                if path.stem not in self._manifest:
                    report.orphaned.append(path.name)
                    self._manifest[path.stem] = header
        with self._lock:
            for stem in list(self._manifest):
                if stem not in on_disk:
                    report.missing.append(f"{stem}.ckpt")
                    del self._manifest[stem]
            if report.orphaned or report.missing:
                self._flush_manifest()
        return report

    def prune(
        self,
        task: str | None = None,
        corrupt: bool = False,
        older_than: float | None = None,
        everything: bool = False,
    ) -> list[str]:
        """Delete matching entries; returns the removed file names.

        ``corrupt=True`` removes checksum-failing and unindexed files;
        ``task`` removes entries of one task/tag; ``older_than`` removes
        entries created more than that many seconds ago; ``everything``
        empties the store.
        """
        removed: list[str] = []
        cutoff = None if older_than is None else time.time() - older_than
        for path in sorted(self.entries_dir.glob("*.ckpt")):
            header = self._read_header(path)
            payload_ok = False
            if header is not None:
                parsed = self._read_entry(path)
                payload_ok = (
                    parsed is not None
                    and hashlib.sha256(parsed[1]).hexdigest() == header.get("sha256")
                )
            drop = everything
            if corrupt and not payload_ok:
                drop = True
            if task is not None and header is not None and header.get("task") == task:
                drop = True
            if (
                cutoff is not None
                and header is not None
                and float(header.get("created_at", 0.0)) < cutoff
            ):
                drop = True
            if drop:
                try:
                    path.unlink()
                    removed.append(path.name)
                except OSError:
                    pass
        with self._lock:
            changed = False
            for name in removed:
                stem = name.rsplit(".", 1)[0]
                if stem in self._manifest:
                    del self._manifest[stem]
                    changed = True
            if changed or removed:
                self._flush_manifest()
        return removed

    def clear(self) -> None:
        self.prune(everything=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CheckpointStore {self.root} entries={self.stats()['n_entries']}>"


def as_store(store: "CheckpointStore | str | os.PathLike | None") -> CheckpointStore | None:
    """Coerce a user-facing ``checkpoint_dir`` argument (path or store
    instance) into a :class:`CheckpointStore`."""
    if store is None or isinstance(store, CheckpointStore):
        return store
    return CheckpointStore(store)
