"""Parameter directions, mirroring COMPSs' IN / INOUT / OUT semantics.

A task parameter's direction tells the runtime how the task uses the
data, which is what lets it infer the dependency graph:

* ``IN`` (default): the task only reads the value.  A dependency is
  created on whichever task produced it (if any).
* ``INOUT``: the task reads *and mutates* the object in place.  The
  runtime versions the object so that later readers depend on this
  task, and this task depends on the previous writer.
* ``OUT``: the task overwrites the object without reading it.  Later
  readers depend on this task; this task still serialises after the
  previous writer (no value flows, but the storage is reused).
"""

from __future__ import annotations

import enum


class Direction(enum.Enum):
    IN = "in"
    INOUT = "inout"
    OUT = "out"


#: Aliases accepted in the ``@task`` decorator, e.g.
#: ``@task(model=INOUT, returns=1)``.
IN = Direction.IN
INOUT = Direction.INOUT
OUT = Direction.OUT

_ALIASES = {
    "in": Direction.IN,
    "inout": Direction.INOUT,
    "out": Direction.OUT,
    Direction.IN: Direction.IN,
    Direction.INOUT: Direction.INOUT,
    Direction.OUT: Direction.OUT,
}


def coerce_direction(value: object) -> Direction:
    """Normalise a user-supplied direction (enum member or string)."""
    if isinstance(value, str):
        key: object = value.lower()
    else:
        key = value
    try:
        return _ALIASES[key]  # type: ignore[index]
    except (KeyError, TypeError):
        raise_value = value
        from repro.runtime.exceptions import TaskDefinitionError

        raise TaskDefinitionError(
            f"unknown parameter direction {raise_value!r}; "
            "expected IN, INOUT, OUT or their string names"
        ) from None
