"""Crash flight recorder: the last N lifecycle events, always on hand.

A :class:`FlightRecorder` is a bounded ring buffer
(``collections.deque(maxlen=...)``) of recent
:class:`~repro.runtime.observability.TaskEvent` objects plus an
optional metrics-snapshot callback.  It subscribes to a runtime's
event bus and costs one ``deque.append`` per event (appends on a
bounded deque are GIL-atomic, so the subscriber needs no lock); memory
is bounded by ``capacity`` regardless of workflow size.

When something goes wrong — workflow kill/abort, a stress-harness
watchdog trip, or ``SIGTERM`` on a service — the recorder **dumps**
everything it holds to a JSON file: the recent event window, a final
metrics snapshot, the reason, and identifying fields (pid, runtime
name, wall-clock time).  The dump is the black box a crashed run
leaves behind; ``repro logs <dump.json>`` renders it.

Enable per-runtime with ``RuntimeConfig(flightrec_dir=...)`` /
``REPRO_FLIGHTREC=<dir>`` (the engine then dumps automatically on
kill/abort), or construct one explicitly and attach it to any bus.
Module-level :func:`dump_all` walks every live recorder — the hook the
stress watchdog and the service SIGTERM handler call, where no
runtime reference is in scope.
"""

from __future__ import annotations

import collections
import dataclasses
import json
import os
import threading
import time
import weakref
from pathlib import Path
from typing import Any, Callable, Optional

from repro.runtime.observability import TaskEvent

__all__ = ["FlightRecorder", "dump_all", "load_dump"]

#: Default ring capacity: enough to hold the full lifecycle of ~400
#: tasks (5 events each) while staying a few MB at worst.
DEFAULT_CAPACITY = 2048

_registry: "weakref.WeakSet[FlightRecorder]" = weakref.WeakSet()
_registry_lock = threading.Lock()


class FlightRecorder:
    """Bounded event ring + dump-to-JSON, attachable to an EventBus."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        name: str = "repro",
        dump_dir: str | os.PathLike | None = None,
        metrics_snapshot: Optional[Callable[[], dict[str, Any]]] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.name = name
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self._metrics_snapshot = metrics_snapshot
        self._ring: collections.deque[TaskEvent] = collections.deque(maxlen=capacity)
        self._dropped = 0
        self._dump_lock = threading.Lock()
        self._dumped: list[str] = []
        with _registry_lock:
            _registry.add(self)

    # -- the bus subscriber --------------------------------------------
    def record(self, event: TaskEvent) -> None:
        ring = self._ring
        if len(ring) == self.capacity:
            # deque drops the oldest silently; keep an honest tally so
            # a dump says how much history fell off the ring.
            self._dropped += 1
        ring.append(event)

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        return self._dropped

    @property
    def dumps_written(self) -> list[str]:
        return list(self._dumped)

    # -- dumping --------------------------------------------------------
    def snapshot(self, reason: str = "manual") -> dict[str, Any]:
        """The dump payload as a dict (no file written)."""
        events = [dataclasses.asdict(e) for e in list(self._ring)]
        payload: dict[str, Any] = {
            "format": "repro-flightrec-v1",
            "reason": reason,
            "name": self.name,
            "pid": os.getpid(),
            "wall_time": time.time(),
            "capacity": self.capacity,
            "n_events": len(events),
            "n_dropped": self._dropped,
            "events": events,
        }
        if self._metrics_snapshot is not None:
            try:
                payload["metrics"] = self._metrics_snapshot()
            except Exception as exc:  # noqa: BLE001 - a dump must not fail
                payload["metrics_error"] = repr(exc)
        return payload

    def dump(
        self, path: str | os.PathLike | None = None, *, reason: str = "manual"
    ) -> str:
        """Write the ring + metrics to *path* (default: a timestamped
        file under ``dump_dir``, or the cwd) and return the path."""
        with self._dump_lock:
            if path is None:
                directory = self.dump_dir if self.dump_dir is not None else Path(".")
                directory.mkdir(parents=True, exist_ok=True)
                stamp = time.strftime("%Y%m%d-%H%M%S")
                path = directory / f"flightrec-{self.name}-{os.getpid()}-{stamp}.json"
            payload = self.snapshot(reason=reason)
            from repro.runtime.atomic_write import atomic_write

            atomic_write(path, json.dumps(payload, default=repr) + "\n")
            self._dumped.append(str(path))
            return str(path)

    def close(self) -> None:
        with _registry_lock:
            _registry.discard(self)


def dump_all(reason: str, directory: str | os.PathLike | None = None) -> list[str]:
    """Dump every live recorder (watchdog trips and signal handlers
    call this — they have no runtime reference in scope).  Returns the
    written paths; a recorder whose dump fails is skipped."""
    with _registry_lock:
        recorders = list(_registry)
    written: list[str] = []
    for recorder in recorders:
        try:
            if directory is not None:
                stamp = time.strftime("%Y%m%d-%H%M%S")
                target = Path(directory)
                target.mkdir(parents=True, exist_ok=True)
                path = target / (
                    f"flightrec-{recorder.name}-{os.getpid()}-{stamp}.json"
                )
                written.append(recorder.dump(path, reason=reason))
            else:
                written.append(recorder.dump(reason=reason))
        except Exception:  # noqa: BLE001 - best effort on the way down
            continue
    return written


def load_dump(path: str | os.PathLike) -> dict[str, Any]:
    """Parse a flight-recorder dump, validating its format marker."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("format") != "repro-flightrec-v1":
        raise ValueError(f"{path} is not a flight-recorder dump")
    return payload
