"""Data-version registry used to detect dependencies through mutation.

COMPSs renames data on every write so that each task reads a specific
*version* of an object.  We reproduce the dependency-tracking half of
that mechanism: every object passed with direction ``INOUT``/``OUT``
gets an entry mapping its identity to the id of the last task that
wrote it.  A later task receiving the same object (any direction)
depends on that writer; a later writer replaces the entry.

Objects are tracked by ``id()`` while the registry holds a strong
reference, so identity cannot be recycled underneath us.  The registry
lives for the duration of a runtime scope and is cleared on shutdown.
"""

from __future__ import annotations

import threading
from typing import Any


class DataRegistry:
    """Maps object identity -> (object, last_writer_task_id, version)."""

    def __init__(self) -> None:
        self._entries: dict[int, tuple[Any, int, int]] = {}
        self._lock = threading.Lock()

    def last_writer(self, obj: Any) -> int | None:
        """Task id of the most recent writer of *obj*, or None."""
        with self._lock:
            entry = self._entries.get(id(obj))
            return entry[1] if entry is not None else None

    def version(self, obj: Any) -> int:
        """Current version number of *obj* (0 if never written)."""
        with self._lock:
            entry = self._entries.get(id(obj))
            return entry[2] if entry is not None else 0

    def record_write(self, obj: Any, task_id: int) -> int:
        """Register *task_id* as the new last writer of *obj*.

        Returns the new version number.
        """
        with self._lock:
            entry = self._entries.get(id(obj))
            version = (entry[2] if entry is not None else 0) + 1
            self._entries[id(obj)] = (obj, task_id, version)
            return version

    @property
    def empty(self) -> bool:
        """True while no write was ever recorded.

        Read without the registry lock: the engine only calls this
        under its dependency lock, where every ``record_write`` also
        happens, so the answer is exact there — it gates the submit
        fast path that skips the per-argument registry walk for pure
        tasks in workflows that never used INOUT at all.
        """
        return not self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
